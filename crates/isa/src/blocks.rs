//! Basic-block boundary discovery over scheduled bundles.
//!
//! A *leader* is a bundle index where straight-line execution can begin:
//! the entry bundle, every resolved control-flow target, and the bundle
//! after any control-flow operation (the fall-through of a conditional
//! branch, the return point of a call). The maximal runs between leaders
//! are the basic blocks a block-compiling simulator backend precompiles —
//! within a run, execution is straight-line by construction.
//!
//! Discovery works over the scheduled [`Bundle`]s (the same artifact the
//! encoder serializes): each bundle holds at most one control operation
//! ([`Bundle::control_op`]), and scheduled control operations carry
//! resolved bundle-index targets. Unresolved targets (possible only in
//! hand-built code) contribute no leader; a simulator taking such an edge
//! must handle it dynamically.

use crate::bundle::Bundle;
use crate::opcode::Opcode;

/// Marks the basic-block leaders of a scheduled program.
///
/// Returns one flag per bundle: `true` where a basic block may begin. The
/// entry bundle is always a leader (when the program is non-empty), as is
/// every resolved branch/goto/call target and every bundle following a
/// control operation. `call` return points (`pc + 1`) are leaders through
/// the latter rule, so `return`s into scheduled code always land on a
/// block boundary.
#[must_use]
pub fn block_leaders(bundles: &[Bundle]) -> Vec<bool> {
    let mut leaders = vec![false; bundles.len()];
    if let Some(first) = leaders.first_mut() {
        *first = true;
    }
    for (i, bundle) in bundles.iter().enumerate() {
        let Some(op) = bundle.control_op() else {
            continue;
        };
        if i + 1 < bundles.len() {
            leaders[i + 1] = true;
        }
        // `ret` targets are dynamic and `halt` has none; everything else
        // carries a resolved bundle index after scheduling.
        if !matches!(op.opcode, Opcode::Ret | Opcode::Halt) {
            if let Some(t) = op.target {
                if let Some(flag) = leaders.get_mut(t as usize) {
                    *flag = true;
                }
            }
        }
    }
    leaders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::op::{Dest, Op, Src};
    use crate::reg::{Br, Gpr};

    fn bundle(ops: Vec<Op>) -> Bundle {
        let cfg = MachineConfig::st200();
        let mut b = Bundle::new();
        for op in ops {
            b.push(op, &cfg).unwrap();
        }
        b
    }

    fn movi(rd: u8, v: i32) -> Op {
        Op::new(Opcode::Mov, Dest::Gpr(Gpr::new(rd)), &[Src::Imm(v)])
    }

    fn halt() -> Op {
        Op::new(Opcode::Halt, Dest::None, &[])
    }

    #[test]
    fn empty_program_has_no_leaders() {
        assert!(block_leaders(&[]).is_empty());
    }

    #[test]
    fn straight_line_code_is_one_block() {
        let bundles = vec![
            bundle(vec![movi(1, 1)]),
            bundle(vec![movi(2, 2)]),
            bundle(vec![halt()]),
        ];
        assert_eq!(block_leaders(&bundles), vec![true, false, false]);
    }

    #[test]
    fn branch_targets_and_fallthroughs_are_leaders() {
        // 0: movi        <- entry leader
        // 1: br $b0 -> 3 <- control: 2 and 3 become leaders
        // 2: movi
        // 3: halt
        let br = Op::new(Opcode::BrT, Dest::None, &[Src::Br(Br::new(0))]).with_target(3);
        let bundles = vec![
            bundle(vec![movi(1, 1)]),
            bundle(vec![br]),
            bundle(vec![movi(2, 2)]),
            bundle(vec![halt()]),
        ];
        assert_eq!(block_leaders(&bundles), vec![true, false, true, true]);
    }

    #[test]
    fn call_return_point_is_a_leader() {
        let call = Op::new(Opcode::Call, Dest::None, &[]).with_target(3);
        let bundles = vec![
            bundle(vec![movi(1, 1)]),
            bundle(vec![call]),
            bundle(vec![halt()]),
            bundle(vec![Op::new(Opcode::Ret, Dest::None, &[])]),
        ];
        // Return point (2) and call target (3) are leaders; 3 is also
        // followed by nothing, so no out-of-range flag is set.
        assert_eq!(block_leaders(&bundles), vec![true, false, true, true]);
    }

    #[test]
    fn out_of_range_target_sets_no_leader() {
        let goto = Op::new(Opcode::Goto, Dest::None, &[]).with_target(99);
        let bundles = vec![bundle(vec![goto]), bundle(vec![halt()])];
        assert_eq!(block_leaders(&bundles), vec![true, true]);
    }
}
