//! Operation codes and their static properties.
//!
//! The opcode set follows the 1-cluster ST200 of the paper: a scalar RISC-ish
//! integer core (4 ALUs, 2 multipliers, 1 load/store unit, 1 branch unit)
//! plus a *basic SIMD subset* working on four 8-bit or two 16-bit sub-words,
//! and the RFU custom-instruction families explored in the case study:
//!
//! * **A1-style ISA extensions** — 1-cycle SIMD operations that are missing
//!   from the basic subset (horizontal averages, rounding fix-ups). They
//!   execute in the RFU fabric but issue like ordinary ALU operations (the
//!   paper assumes "up to 4 instructions per cycle" for scenario A1).
//! * **`RFUINIT` / `RFUSEND` / `RFUEXEC`** — the generic three-step protocol
//!   for configured instructions with implicit operands (scenarios A2/A3).
//! * **Custom prefetch and kernel-loop instructions** — the loop-level
//!   experiments (Tables 2–7), where the RFU autonomously accesses memory.

use std::fmt;

/// Functional-unit class an operation issues to.
///
/// Per-cycle availability in the 1-cluster ST200 (see
/// [`MachineConfig`](crate::MachineConfig)): 4 ALU slots, 2 multiplier
/// slots, 1 load/store slot, 1 branch slot and 1 RFU dispatch slot, with at
/// most 4 syllables issued in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Integer ALU, including the basic SIMD subset and the A1 extensions.
    Alu,
    /// 16×32 multiplier.
    Mul,
    /// Load/store unit (one data-cache access per cycle).
    Mem,
    /// Branch unit.
    Branch,
    /// RFU dispatch slot (`RFUSEND`/`RFUEXEC`/prefetch/loop instructions are
    /// serialized on the single reconfigurable unit).
    Rfu,
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Alu => "alu",
            FuClass::Mul => "mul",
            FuClass::Mem => "mem",
            FuClass::Branch => "branch",
            FuClass::Rfu => "rfu",
        };
        f.write_str(s)
    }
}

/// Every operation understood by the machine.
///
/// Sub-word SIMD operations treat a 32-bit register as four unsigned bytes
/// (suffix `4`) or two 16-bit lanes (suffix `2`), little-endian: byte 0 is
/// bits 7..0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Opcode {
    // ---- scalar ALU -----------------------------------------------------
    /// `rd = rs1 + rs2`
    Add,
    /// `rd = rs1 - rs2`
    Sub,
    /// `rd = rs1 & rs2`
    And,
    /// `rd = rs1 & !rs2`
    Andc,
    /// `rd = rs1 | rs2`
    Or,
    /// `rd = rs1 ^ rs2`
    Xor,
    /// `rd = !(rs1 | rs2)`
    Nor,
    /// `rd = rs1 << rs2` (amounts ≥ 32 yield 0)
    Sll,
    /// `rd = rs1 >> rs2` logical (amounts ≥ 32 yield 0)
    Srl,
    /// `rd = rs1 >> rs2` arithmetic (amounts ≥ 32 yield the sign fill)
    Sra,
    /// `rd = min(rs1, rs2)` signed
    Min,
    /// `rd = max(rs1, rs2)` signed
    Max,
    /// `rd = min(rs1, rs2)` unsigned
    Minu,
    /// `rd = max(rs1, rs2)` unsigned
    Maxu,
    /// `rd = rs1` (also the canonical move-immediate when `rs1` is an
    /// immediate operand)
    Mov,
    /// `rd = sign_extend_8(rs1)`
    Sxtb,
    /// `rd = sign_extend_16(rs1)`
    Sxth,
    /// `rd = rs1 & 0xff`
    Zxtb,
    /// `rd = rs1 & 0xffff`
    Zxth,
    /// `rd = byte<imm>(rs1)` zero-extended; `imm` in `0..4`
    Extbu,
    /// `rd = rs1 with byte<imm> replaced by low byte of rs2`
    Insb,
    /// `rd = (b ? rs1 : rs2)` — select on a branch register
    Slct,

    // ---- comparisons (destination may be a GPR or a branch register) ----
    /// `d = (rs1 == rs2)`
    CmpEq,
    /// `d = (rs1 != rs2)`
    CmpNe,
    /// `d = (rs1 < rs2)` signed
    CmpLt,
    /// `d = (rs1 <= rs2)` signed
    CmpLe,
    /// `d = (rs1 > rs2)` signed
    CmpGt,
    /// `d = (rs1 >= rs2)` signed
    CmpGe,
    /// `d = (rs1 < rs2)` unsigned
    CmpLtu,
    /// `d = (rs1 <= rs2)` unsigned
    CmpLeu,
    /// `d = (rs1 > rs2)` unsigned
    CmpGtu,
    /// `d = (rs1 >= rs2)` unsigned
    CmpGeu,

    // ---- multiplier ------------------------------------------------------
    /// `rd = rs1 * rs2` (low 32 bits; issues to a 16×32 multiplier pair)
    Mul,
    /// `rd = (rs1 * rs2) >> 32` signed high part
    Mulh,
    /// `rd = (low16(rs1) signed) * rs2`
    Mull16,

    // ---- basic SIMD subset (available to the optimized reference code) --
    /// per-byte wrapping add
    Add4,
    /// per-byte wrapping subtract
    Sub4,
    /// per-byte saturating unsigned add
    Adds4u,
    /// per-byte saturating unsigned subtract
    Subs4u,
    /// per-byte floor average `(a+b)>>1`
    Avg4,
    /// per-byte rounded average `(a+b+1)>>1`
    Avg4r,
    /// per-byte absolute difference `|a-b|`
    Absd4,
    /// sum of the four per-byte absolute differences, scalar result
    Sad4,
    /// per-byte unsigned maximum
    Max4u,
    /// per-byte unsigned minimum
    Min4u,

    // ---- A1 ISA extensions (1-cycle RFU-fabric SIMD, 4-issue) ----------
    /// Horizontal floor average over a 5-byte window: with
    /// `a[0..4] = bytes(rs1)` and `a[4] = byte0(rs2)`,
    /// `rd.byte[i] = (a[i] + a[i+1]) >> 1`.
    Avgh4,
    /// Horizontal LSB of the pair sums over the same window:
    /// `rd.byte[i] = (a[i] + a[i+1]) & 1` — the bit lost by [`Opcode::Avgh4`],
    /// needed for the exact rounding adjustment.
    Lsbh4,
    /// Per-byte rounding fix-up for the diagonal interpolation: given the two
    /// per-row pair-sum LSB words `rs1`, `rs2` (from [`Opcode::Lsbh4`]) the
    /// result byte is 1 when `l1 + l2 == 2`, else 0. Adding it to
    /// `avg4r(hy, hy1)` is *almost* exact; the remaining half-LSB is folded
    /// by [`Opcode::Dadj4`].
    Rfix4,
    /// Final diagonal adjustment: `rd.byte[i] = dsel(hy[i], hy1[i], fix[i])`
    /// merges the floor averages with the carry information so that the
    /// composite equals `(p00+p01+p10+p11+2)>>2` exactly. Semantically the
    /// simulator computes `((hy+hy1+fix... ) )` — see `rvliw-sim` for the
    /// reference semantics.
    Dadj4,
    /// 2-pixel (16-bit lane) horizontal pair sum: with the window
    /// `a[0..2] = {byte<imm>(rs1), byte<imm+1>, byte<imm+2>}` the two lanes
    /// of `rd` are `a[0]+a[1]` and `a[1]+a[2]`. The narrow 2-pixel variant of
    /// the A1 family, for fabrics with a 16-bit internal datapath.
    Hadd2,
    /// Per-16-bit-lane `(x + 2) >> 2` with the result confined to 0..255 —
    /// the diagonal rounding divide for the 2-pixel A1 variant.
    Rnd2,
    /// Pack the low bytes of the two 16-bit lanes of `rs1` and `rs2` into the
    /// four bytes of `rd` (lanes of `rs1` become bytes 0–1).
    Pack4,

    // ---- load/store ------------------------------------------------------
    /// `rd = mem32[rs1 + imm]`
    Ldw,
    /// `rd = sign_extend(mem16[rs1 + imm])`
    Ldh,
    /// `rd = zero_extend(mem16[rs1 + imm])`
    Ldhu,
    /// `rd = sign_extend(mem8[rs1 + imm])`
    Ldb,
    /// `rd = zero_extend(mem8[rs1 + imm])`
    Ldbu,
    /// `mem32[rs2 + imm] = rs1`
    Stw,
    /// `mem16[rs2 + imm] = low16(rs1)`
    Sth,
    /// `mem8[rs2 + imm] = low8(rs1)`
    Stb,
    /// Software prefetch of the line containing `rs1 + imm` into the
    /// prefetch buffer; non-blocking.
    Pft,

    // ---- branch unit -----------------------------------------------------
    /// Branch to `imm` (bundle label) when the branch register is true.
    BrT,
    /// Branch to `imm` when the branch register is false.
    BrF,
    /// Unconditional jump to `imm`.
    Goto,
    /// Call: `$r63 = return address`, jump to `imm`.
    Call,
    /// Return to the address in `$r63` (or `rs1` if given).
    Ret,
    /// Stop simulation.
    Halt,
    /// No operation (an explicit filler syllable).
    Nop,

    // ---- RFU custom-instruction protocol --------------------------------
    /// `RFUINIT(#cfg)` — make configuration `cfg` current in the RFU.
    /// With the paper's baseline assumption the reconfiguration penalty is
    /// zero; a non-zero penalty model is available for ablations.
    RfuInit,
    /// `RFUSEND(#cfg, op1[, op2])` — load up to two explicit 32-bit operands
    /// into the RFU input registers of configuration `cfg` (the slot counter
    /// is implicit in the configuration state).
    RfuSend,
    /// `rd = RFUEXEC(#cfg, [op1[, op2]])` — execute configuration `cfg` over
    /// the previously sent (implicit) and explicit operands, writing one
    /// destination register.
    RfuExec,
    /// Custom macroblock-pattern prefetch: the RFU autonomously issues one
    /// cache-line request per macroblock row starting at address `rs1`
    /// (plus the crossing line when a row straddles a cache line), as a
    /// separate non-blocking thread. `imm` selects the pattern
    /// (reference / candidate, row count, gather-to-line-buffer).
    RfuPref,
    /// Long-latency kernel-loop instruction: the entire `GetSad` loop as one
    /// RFU instruction with autonomous memory access. Sources carry the
    /// candidate address and packed alignment/interpolation parameters; the
    /// destination receives the SAD.
    RfuLoop,
}

impl Opcode {
    /// The functional-unit class this operation issues to.
    #[must_use]
    pub fn class(self) -> FuClass {
        use Opcode::*;
        match self {
            Mul | Mulh | Mull16 => FuClass::Mul,
            Ldw | Ldh | Ldhu | Ldb | Ldbu | Stw | Sth | Stb | Pft => FuClass::Mem,
            BrT | BrF | Goto | Call | Ret | Halt => FuClass::Branch,
            RfuInit | RfuSend | RfuExec | RfuPref | RfuLoop => FuClass::Rfu,
            _ => FuClass::Alu,
        }
    }

    /// Whether this is one of the A1-scenario ISA-extension operations
    /// (1-cycle SIMD executed by the RFU fabric but issued on ALU slots).
    #[must_use]
    pub fn is_a1_extension(self) -> bool {
        use Opcode::*;
        matches!(self, Avgh4 | Lsbh4 | Rfix4 | Dadj4 | Hadd2 | Rnd2 | Pack4)
    }

    /// Whether the operation reads data memory.
    #[must_use]
    pub fn is_load(self) -> bool {
        use Opcode::*;
        matches!(self, Ldw | Ldh | Ldhu | Ldb | Ldbu)
    }

    /// Whether the operation writes data memory.
    #[must_use]
    pub fn is_store(self) -> bool {
        use Opcode::*;
        matches!(self, Stw | Sth | Stb)
    }

    /// Whether the operation may change control flow.
    #[must_use]
    pub fn is_control(self) -> bool {
        use Opcode::*;
        matches!(self, BrT | BrF | Goto | Call | Ret | Halt)
    }

    /// Whether the operation is a comparison (destination may be a branch
    /// register).
    #[must_use]
    pub fn is_compare(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | CmpLtu | CmpLeu | CmpGtu | CmpGeu
        )
    }

    /// Whether the operation belongs to the RFU custom-instruction protocol.
    #[must_use]
    pub fn is_rfu(self) -> bool {
        self.class() == FuClass::Rfu
    }

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Andc => "andc",
            Or => "or",
            Xor => "xor",
            Nor => "nor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Min => "min",
            Max => "max",
            Minu => "minu",
            Maxu => "maxu",
            Mov => "mov",
            Sxtb => "sxtb",
            Sxth => "sxth",
            Zxtb => "zxtb",
            Zxth => "zxth",
            Extbu => "extbu",
            Insb => "insb",
            Slct => "slct",
            CmpEq => "cmpeq",
            CmpNe => "cmpne",
            CmpLt => "cmplt",
            CmpLe => "cmple",
            CmpGt => "cmpgt",
            CmpGe => "cmpge",
            CmpLtu => "cmpltu",
            CmpLeu => "cmpleu",
            CmpGtu => "cmpgtu",
            CmpGeu => "cmpgeu",
            Mul => "mul",
            Mulh => "mulh",
            Mull16 => "mull16",
            Add4 => "add4",
            Sub4 => "sub4",
            Adds4u => "adds4u",
            Subs4u => "subs4u",
            Avg4 => "avg4",
            Avg4r => "avg4r",
            Absd4 => "absd4",
            Sad4 => "sad4",
            Max4u => "max4u",
            Min4u => "min4u",
            Avgh4 => "avgh4",
            Lsbh4 => "lsbh4",
            Rfix4 => "rfix4",
            Dadj4 => "dadj4",
            Hadd2 => "hadd2",
            Rnd2 => "rnd2",
            Pack4 => "pack4",
            Ldw => "ldw",
            Ldh => "ldh",
            Ldhu => "ldhu",
            Ldb => "ldb",
            Ldbu => "ldbu",
            Stw => "stw",
            Sth => "sth",
            Stb => "stb",
            Pft => "pft",
            BrT => "br",
            BrF => "brf",
            Goto => "goto",
            Call => "call",
            Ret => "return",
            Halt => "halt",
            Nop => "nop",
            RfuInit => "rfuinit",
            RfuSend => "rfusend",
            RfuExec => "rfuexec",
            RfuPref => "rfupref",
            RfuLoop => "rfuloop",
        }
    }

    /// All opcodes, in declaration order (used by encode/decode and by
    /// exhaustive tests).
    #[must_use]
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Add, Sub, And, Andc, Or, Xor, Nor, Sll, Srl, Sra, Min, Max, Minu, Maxu, Mov, Sxtb,
            Sxth, Zxtb, Zxth, Extbu, Insb, Slct, CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe, CmpLtu,
            CmpLeu, CmpGtu, CmpGeu, Mul, Mulh, Mull16, Add4, Sub4, Adds4u, Subs4u, Avg4, Avg4r,
            Absd4, Sad4, Max4u, Min4u, Avgh4, Lsbh4, Rfix4, Dadj4, Hadd2, Rnd2, Pack4, Ldw, Ldh,
            Ldhu, Ldb, Ldbu, Stw, Sth, Stb, Pft, BrT, BrF, Goto, Call, Ret, Halt, Nop, RfuInit,
            RfuSend, RfuExec, RfuPref, RfuLoop,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = HashSet::new();
        for op in Opcode::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }

    #[test]
    fn class_partition_is_consistent() {
        for &op in Opcode::all() {
            if op.is_load() || op.is_store() || op == Opcode::Pft {
                assert_eq!(op.class(), FuClass::Mem);
            }
            if op.is_control() {
                assert_eq!(op.class(), FuClass::Branch);
            }
            if op.is_rfu() {
                assert_eq!(op.class(), FuClass::Rfu);
            }
            assert!(!(op.is_load() && op.is_store()));
        }
    }

    #[test]
    fn a1_extensions_issue_on_alu_slots() {
        for &op in Opcode::all() {
            if op.is_a1_extension() {
                assert_eq!(op.class(), FuClass::Alu, "{op} must be 4-issue");
            }
        }
    }

    #[test]
    fn compares_are_alu() {
        for &op in Opcode::all() {
            if op.is_compare() {
                assert_eq!(op.class(), FuClass::Alu);
            }
        }
    }

    #[test]
    fn all_contains_every_discriminant_once() {
        let all = Opcode::all();
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
