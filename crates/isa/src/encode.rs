//! Binary encoding and decoding of operations.
//!
//! The encoding is a simple little-endian 32-bit syllable stream, used by the
//! instruction-cache model (code footprint) and by round-trip tests. It is
//! lossless for every [`Op`] the assembler can produce.
//!
//! Layout of the head word:
//!
//! ```text
//! bits  0..8   opcode index (into Opcode::all())
//! bits  8..10  destination kind (0 none, 1 GPR, 2 BR)
//! bits 10..16  destination register index
//! bits 16..20  number of sources
//! bit  20      has RFU configuration id (u16 in the next word)
//! bit  21      has branch target (u32 in the next word)
//! ```
//!
//! Each source then follows as one word — tag in bits 30..32 (0 GPR, 1 BR,
//! 2 immediate) — with immediates carrying their 32-bit value in one extra
//! word.

use std::fmt;

use crate::{Br, Dest, Gpr, Op, Opcode, Src};

/// Error returned by [`decode_op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The word stream ended in the middle of an operation.
    Truncated,
    /// An unknown opcode index.
    BadOpcode(u32),
    /// An invalid register index or operand tag.
    BadOperand,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction stream"),
            DecodeError::BadOpcode(x) => write!(f, "unknown opcode index {x}"),
            DecodeError::BadOperand => write!(f, "invalid operand encoding"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes one operation, appending 32-bit words to `out`.
pub fn encode_op(op: &Op, out: &mut Vec<u32>) {
    let opcode_idx = Opcode::all()
        .iter()
        .position(|&o| o == op.opcode)
        .unwrap_or_else(|| unreachable!("Opcode::all() covers every variant"))
        as u32;
    let (dkind, didx) = match op.dest {
        Dest::None => (0u32, 0u32),
        Dest::Gpr(r) => (1, u32::from(r.index())),
        Dest::Br(b) => (2, u32::from(b.index())),
    };
    let mut head = opcode_idx | (dkind << 8) | (didx << 10) | ((op.srcs().len() as u32) << 16);
    if op.cfg.is_some() {
        head |= 1 << 20;
    }
    if op.target.is_some() {
        head |= 1 << 21;
    }
    out.push(head);
    if let Some(cfg) = op.cfg {
        out.push(u32::from(cfg));
    }
    if let Some(t) = op.target {
        out.push(t);
    }
    for s in op.srcs() {
        match s {
            Src::Gpr(r) => out.push(u32::from(r.index())),
            Src::Br(b) => out.push((1 << 30) | u32::from(b.index())),
            Src::Imm(v) => {
                out.push(2 << 30);
                out.push(*v as u32);
            }
        }
    }
}

/// Decodes one operation from `words`, returning it and the number of words
/// consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the stream is truncated or malformed.
pub fn decode_op(words: &[u32]) -> Result<(Op, usize), DecodeError> {
    let mut pos = 0usize;
    let mut next = || -> Result<u32, DecodeError> {
        let w = *words.get(pos).ok_or(DecodeError::Truncated)?;
        pos += 1;
        Ok(w)
    };
    let head = next()?;
    let opcode_idx = head & 0xff;
    let opcode = *Opcode::all()
        .get(opcode_idx as usize)
        .ok_or(DecodeError::BadOpcode(opcode_idx))?;
    let dkind = (head >> 8) & 0x3;
    let didx = (head >> 10) & 0x3f;
    let nsrcs = ((head >> 16) & 0xf) as usize;
    let has_cfg = head & (1 << 20) != 0;
    let has_target = head & (1 << 21) != 0;
    let dest = match dkind {
        0 => Dest::None,
        1 => Dest::Gpr(Gpr::try_new(didx as u8).ok_or(DecodeError::BadOperand)?),
        2 => Dest::Br(Br::try_new(didx as u8).ok_or(DecodeError::BadOperand)?),
        _ => return Err(DecodeError::BadOperand),
    };
    let cfg = if has_cfg {
        Some(u16::try_from(next()?).map_err(|_| DecodeError::BadOperand)?)
    } else {
        None
    };
    let target = if has_target { Some(next()?) } else { None };
    let mut srcs = Vec::with_capacity(nsrcs);
    for _ in 0..nsrcs {
        let w = next()?;
        let tag = w >> 30;
        let payload = w & 0x3fff_ffff;
        let s = match tag {
            0 => Src::Gpr(
                Gpr::try_new(u8::try_from(payload).map_err(|_| DecodeError::BadOperand)?)
                    .ok_or(DecodeError::BadOperand)?,
            ),
            1 => Src::Br(
                Br::try_new(u8::try_from(payload).map_err(|_| DecodeError::BadOperand)?)
                    .ok_or(DecodeError::BadOperand)?,
            ),
            2 => Src::Imm(next()? as i32),
            _ => return Err(DecodeError::BadOperand),
        };
        srcs.push(s);
    }
    if srcs.len() > crate::MAX_SRCS {
        return Err(DecodeError::BadOperand);
    }
    let mut op = Op::new(opcode, dest, &srcs);
    op.cfg = cfg;
    op.target = target;
    Ok((op, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: &Op) {
        let mut words = Vec::new();
        encode_op(op, &mut words);
        let (decoded, used) = decode_op(&words).unwrap();
        assert_eq!(used, words.len(), "consumed all words for {op}");
        assert_eq!(&decoded, op, "round-trip for {op}");
    }

    #[test]
    fn roundtrip_simple_alu() {
        roundtrip(&Op::rrr(Opcode::Add, Gpr::new(3), Gpr::new(1), Gpr::new(2)));
    }

    #[test]
    fn roundtrip_immediate_forms() {
        roundtrip(&Op::rri(Opcode::Ldw, Gpr::new(9), Gpr::new(8), -1234));
        roundtrip(&Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(0), i32::MAX));
        roundtrip(&Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(0), i32::MIN));
    }

    #[test]
    fn roundtrip_branch_with_target() {
        let op = Op::new(Opcode::BrT, Dest::None, &[Br::new(3).into()]).with_target(77);
        roundtrip(&op);
    }

    #[test]
    fn roundtrip_rfu_with_cfg_and_many_srcs() {
        let srcs: Vec<Src> = (0..8).map(|i| Src::Gpr(Gpr::new(i * 7))).collect();
        let op = Op::new(Opcode::RfuSend, Dest::None, &srcs).with_cfg(511);
        roundtrip(&op);
    }

    #[test]
    fn roundtrip_compare_to_branch_register() {
        let op = Op::new(
            Opcode::CmpLtu,
            Dest::Br(Br::new(7)),
            &[Gpr::new(63).into(), Src::Imm(255)],
        );
        roundtrip(&op);
    }

    #[test]
    fn roundtrip_every_opcode_minimal() {
        for &opc in Opcode::all() {
            roundtrip(&Op::new(opc, Dest::None, &[]));
        }
    }

    #[test]
    fn decode_truncated_fails() {
        let op = Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(2), 100_000);
        let mut words = Vec::new();
        encode_op(&op, &mut words);
        for n in 0..words.len() {
            assert!(decode_op(&words[..n]).is_err() || n == 0 && words.is_empty());
        }
    }

    #[test]
    fn decode_bad_opcode_fails() {
        let words = [0xffu32];
        assert_eq!(decode_op(&words).unwrap_err(), DecodeError::BadOpcode(0xff));
    }
}
