//! Reference semantics of the sub-word SIMD operations.
//!
//! A 32-bit register is treated as four unsigned bytes (suffix `4`) or two
//! 16-bit lanes (suffix `2`), little-endian. These pure functions are the
//! single source of truth for both the simulator and the kernel unit tests.
//!
//! The `avgh4`/`lsbh4`/`rfix4`/`dadj4` and `hadd2`/`rnd2`/`pack4` families
//! are the **A1-scenario ISA extensions**: the "similar (but less generic)
//! missing instructions" the paper adds through the RFU to reformulate the
//! diagonal half-sample interpolation with intermediate horizontal and
//! vertical interpolations plus exact rounding adjustments.

#[inline]
fn bytes(x: u32) -> [u8; 4] {
    x.to_le_bytes()
}

#[inline]
fn pack(b: [u8; 4]) -> u32 {
    u32::from_le_bytes(b)
}

#[inline]
fn map2(a: u32, b: u32, f: impl Fn(u8, u8) -> u8) -> u32 {
    let (a, b) = (bytes(a), bytes(b));
    pack([f(a[0], b[0]), f(a[1], b[1]), f(a[2], b[2]), f(a[3], b[3])])
}

/// Per-byte wrapping add.
#[must_use]
pub fn add4(a: u32, b: u32) -> u32 {
    map2(a, b, u8::wrapping_add)
}

/// Per-byte wrapping subtract.
#[must_use]
pub fn sub4(a: u32, b: u32) -> u32 {
    map2(a, b, u8::wrapping_sub)
}

/// Per-byte saturating unsigned add.
#[must_use]
pub fn adds4u(a: u32, b: u32) -> u32 {
    map2(a, b, u8::saturating_add)
}

/// Per-byte saturating unsigned subtract.
#[must_use]
pub fn subs4u(a: u32, b: u32) -> u32 {
    map2(a, b, u8::saturating_sub)
}

/// Per-byte floor average `(a+b)>>1`.
#[must_use]
pub fn avg4(a: u32, b: u32) -> u32 {
    map2(a, b, |x, y| ((u16::from(x) + u16::from(y)) >> 1) as u8)
}

/// Per-byte rounded average `(a+b+1)>>1` (the MPEG-4 half-sample average
/// with rounding control 0).
#[must_use]
pub fn avg4r(a: u32, b: u32) -> u32 {
    map2(a, b, |x, y| ((u16::from(x) + u16::from(y) + 1) >> 1) as u8)
}

/// Per-byte absolute difference.
#[must_use]
pub fn absd4(a: u32, b: u32) -> u32 {
    map2(a, b, u8::abs_diff)
}

/// Scalar sum of the four per-byte absolute differences.
#[must_use]
pub fn sad4(a: u32, b: u32) -> u32 {
    bytes(a)
        .iter()
        .zip(bytes(b))
        .map(|(&x, y)| u32::from(x.abs_diff(y)))
        .sum()
}

/// Per-byte unsigned maximum.
#[must_use]
pub fn max4u(a: u32, b: u32) -> u32 {
    map2(a, b, u8::max)
}

/// Per-byte unsigned minimum.
#[must_use]
pub fn min4u(a: u32, b: u32) -> u32 {
    map2(a, b, u8::min)
}

/// The 5-byte sliding window of the horizontal A1 operations: the four
/// bytes of `a` extended with byte 0 of `b`.
#[inline]
fn window5(a: u32, b: u32) -> [u16; 5] {
    let ab = bytes(a);
    [
        u16::from(ab[0]),
        u16::from(ab[1]),
        u16::from(ab[2]),
        u16::from(ab[3]),
        u16::from(bytes(b)[0]),
    ]
}

/// A1: horizontal floor average over the 5-byte window:
/// `out[i] = (w[i] + w[i+1]) >> 1`.
#[must_use]
pub fn avgh4(a: u32, b: u32) -> u32 {
    let w = window5(a, b);
    pack([
        ((w[0] + w[1]) >> 1) as u8,
        ((w[1] + w[2]) >> 1) as u8,
        ((w[2] + w[3]) >> 1) as u8,
        ((w[3] + w[4]) >> 1) as u8,
    ])
}

/// A1: LSB of the horizontal pair sums over the 5-byte window — the bit
/// [`avgh4`] discards, needed for the exact rounding adjustment.
#[must_use]
pub fn lsbh4(a: u32, b: u32) -> u32 {
    let w = window5(a, b);
    pack([
        ((w[0] + w[1]) & 1) as u8,
        ((w[1] + w[2]) & 1) as u8,
        ((w[2] + w[3]) & 1) as u8,
        ((w[3] + w[4]) & 1) as u8,
    ])
}

/// A1: per-byte carry candidate `l1 & l2 & 1` (both pair sums odd).
#[must_use]
pub fn rfix4(l1: u32, l2: u32) -> u32 {
    l1 & l2 & 0x0101_0101
}

/// A1: final diagonal adjustment. With `ty`/`ty1` the per-row horizontal
/// floor averages and `c` the carry candidate from [`rfix4`]:
///
/// `out[i] = avg4r(ty, ty1)[i] + (c[i] & !(ty[i] ^ ty1[i]) & 1)`
///
/// so that the composite `dadj4(avgh4(y), avgh4(y1), rfix4(lsbh4(y),
/// lsbh4(y1)))` equals the exact MPEG-4 diagonal interpolation
/// `(p00+p01+p10+p11+2)>>2`.
#[must_use]
pub fn dadj4(ty: u32, ty1: u32, c: u32) -> u32 {
    let base = avg4r(ty, ty1);
    let parity_even = !(ty ^ ty1) & 0x0101_0101;
    add4(base, c & parity_even)
}

/// The byte window of `a` extended by `b` (8 bytes) used by [`hadd2`].
#[inline]
fn window8(a: u32, b: u32) -> [u16; 8] {
    let (a, b) = (bytes(a), bytes(b));
    [
        u16::from(a[0]),
        u16::from(a[1]),
        u16::from(a[2]),
        u16::from(a[3]),
        u16::from(b[0]),
        u16::from(b[1]),
        u16::from(b[2]),
        u16::from(b[3]),
    ]
}

/// A1 (2-pixel datapath): horizontal pair sums as 16-bit lanes. With the
/// window `w = bytes(a) ++ bytes(b)` and byte offset `k` (0–5):
/// lane 0 = `w[k] + w[k+1]`, lane 1 = `w[k+1] + w[k+2]`.
///
/// # Panics
///
/// Panics if `k > 5` (the window has 8 bytes).
#[must_use]
pub fn hadd2(a: u32, b: u32, k: u32) -> u32 {
    let w = window8(a, b);
    let k = k as usize;
    assert!(k <= 5, "hadd2 offset {k} out of the 8-byte window");
    let lane0 = w[k] + w[k + 1];
    let lane1 = w[k + 1] + w[k + 2];
    u32::from(lane0) | (u32::from(lane1) << 16)
}

/// A1 (2-pixel datapath): per-16-bit-lane `(x + 2) >> 2`, clamped to a byte
/// — the diagonal rounding divide.
#[must_use]
pub fn rnd2(a: u32) -> u32 {
    let lo = ((a & 0xffff) + 2) >> 2;
    let hi = (((a >> 16) & 0xffff) + 2) >> 2;
    (lo.min(255)) | ((hi.min(255)) << 16)
}

/// A1 (2-pixel datapath): packs the low bytes of the 16-bit lanes of `a`
/// and `b` into four bytes (`a` lanes become bytes 0–1).
#[must_use]
pub fn pack4(a: u32, b: u32) -> u32 {
    pack([
        (a & 0xff) as u8,
        ((a >> 16) & 0xff) as u8,
        (b & 0xff) as u8,
        ((b >> 16) & 0xff) as u8,
    ])
}

/// Scalar shift semantics of the machine: amounts ≥ 32 yield 0 (logical) or
/// the sign fill (arithmetic).
#[must_use]
pub fn sll(a: u32, amount: u32) -> u32 {
    if amount >= 32 {
        0
    } else {
        a << amount
    }
}

/// Logical right shift; amounts ≥ 32 yield 0.
#[must_use]
pub fn srl(a: u32, amount: u32) -> u32 {
    if amount >= 32 {
        0
    } else {
        a >> amount
    }
}

/// Arithmetic right shift; amounts ≥ 32 yield the sign fill.
#[must_use]
pub fn sra(a: u32, amount: u32) -> u32 {
    let a = a as i32;
    (if amount >= 32 { a >> 31 } else { a >> amount }) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact diagonal interpolation of one pixel, the golden model.
    fn diag_exact(p00: u8, p01: u8, p10: u8, p11: u8) -> u8 {
        ((u16::from(p00) + u16::from(p01) + u16::from(p10) + u16::from(p11) + 2) >> 2) as u8
    }

    #[test]
    fn sad4_is_sum_of_absd4() {
        let a = 0x10_80_ff_00;
        let b = 0x20_70_fe_01;
        let absd = absd4(a, b).to_le_bytes();
        assert_eq!(sad4(a, b), absd.iter().map(|&x| u32::from(x)).sum());
    }

    #[test]
    fn avg4r_rounds_up() {
        assert_eq!(avg4r(0x0000_0001, 0x0000_0002), 0x0000_0002);
        assert_eq!(avg4(0x0000_0001, 0x0000_0002), 0x0000_0001);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(adds4u(0xff00_00ff, 0x0100_0001), 0xff00_00ff);
        assert_eq!(adds4u(0x0000_00f0, 0x0000_0020), 0x0000_00ff);
        assert_eq!(subs4u(0x0000_0001, 0x0000_0002), 0);
    }

    #[test]
    fn a1_four_pixel_family_is_exact_diagonal() {
        // Exhaustive-ish: pseudo-random byte windows.
        let mut seed = 0x1234_5678u32;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            seed
        };
        for _ in 0..2000 {
            let (wy, wyn) = (next(), next());
            let (wy1, wy1n) = (next(), next());
            let ty = avgh4(wy, wyn);
            let l1 = lsbh4(wy, wyn);
            let ty1 = avgh4(wy1, wy1n);
            let l2 = lsbh4(wy1, wy1n);
            let out = dadj4(ty, ty1, rfix4(l1, l2)).to_le_bytes();
            let y = [
                wy.to_le_bytes()[0],
                wy.to_le_bytes()[1],
                wy.to_le_bytes()[2],
                wy.to_le_bytes()[3],
                wyn.to_le_bytes()[0],
            ];
            let y1 = [
                wy1.to_le_bytes()[0],
                wy1.to_le_bytes()[1],
                wy1.to_le_bytes()[2],
                wy1.to_le_bytes()[3],
                wy1n.to_le_bytes()[0],
            ];
            for i in 0..4 {
                assert_eq!(
                    out[i],
                    diag_exact(y[i], y[i + 1], y1[i], y1[i + 1]),
                    "pixel {i} of window {y:?} / {y1:?}"
                );
            }
        }
    }

    #[test]
    fn a1_two_pixel_family_is_exact_diagonal() {
        let mut seed = 0x8765_4321u32;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            seed
        };
        for _ in 0..2000 {
            let (ay, by) = (next(), next());
            let (ay1, by1) = (next(), next());
            for k in 0..=5u32 {
                let s = (hadd2(ay, by, k) as u64) + (hadd2(ay1, by1, k) as u64);
                // Lane-wise add never carries across (each lane ≤ 1020).
                let s = s as u32;
                let out = rnd2(s);
                let wy = window8(ay, by);
                let wy1 = window8(ay1, by1);
                for lane in 0..2usize {
                    let p = k as usize + lane;
                    let exact =
                        diag_exact(wy[p] as u8, wy[p + 1] as u8, wy1[p] as u8, wy1[p + 1] as u8);
                    let got = ((out >> (16 * lane)) & 0xff) as u8;
                    assert_eq!(got, exact, "lane {lane} at offset {k}");
                }
            }
        }
    }

    #[test]
    fn pack4_orders_lanes() {
        let a = 0x0022_0011; // lanes 0x11, 0x22
        let b = 0x0044_0033;
        assert_eq!(pack4(a, b), 0x4433_2211);
    }

    #[test]
    fn shift_semantics_saturate_amounts() {
        assert_eq!(sll(0xffff_ffff, 32), 0);
        assert_eq!(srl(0xffff_ffff, 40), 0);
        assert_eq!(sra(0x8000_0000, 99), 0xffff_ffff);
        assert_eq!(sra(0x4000_0000, 33), 0);
        assert_eq!(sll(1, 4), 16);
    }

    #[test]
    #[should_panic(expected = "out of the 8-byte window")]
    fn hadd2_rejects_bad_offset() {
        let _ = hadd2(0, 0, 6);
    }
}
