//! VLIW bundles: the set of operations issued in one cycle.

use std::fmt;

use crate::{FuClass, MachineConfig, Op};

/// Per-cycle functional-unit usage of a (partial) bundle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUse {
    /// Issued syllables (operations plus long-immediate extensions).
    pub syllables: usize,
    /// ALU operations (including SIMD and A1 extensions).
    pub alu: usize,
    /// Multiplier operations.
    pub mul: usize,
    /// Load/store/prefetch operations.
    pub mem: usize,
    /// Branch-unit operations.
    pub branch: usize,
    /// RFU dispatches.
    pub rfu: usize,
}

impl ResourceUse {
    /// Accumulates one operation.
    pub fn add(&mut self, op: &Op) {
        self.syllables += op.syllables();
        match op.opcode.class() {
            FuClass::Alu => self.alu += 1,
            FuClass::Mul => self.mul += 1,
            FuClass::Mem => self.mem += 1,
            FuClass::Branch => self.branch += 1,
            FuClass::Rfu => self.rfu += 1,
        }
    }

    /// Whether this usage fits within the machine's per-cycle resources.
    #[must_use]
    pub fn fits(&self, cfg: &MachineConfig) -> bool {
        self.syllables <= cfg.issue_width
            && self.alu <= cfg.num_alus
            && self.mul <= cfg.num_muls
            && self.mem <= cfg.num_mem_units
            && self.branch <= cfg.num_branch_units
            && self.rfu <= cfg.num_rfu_slots
    }
}

/// Error produced when an operation cannot be added to a bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// Issue width or a functional-unit class is exhausted this cycle.
    ResourceConflict {
        /// The class that overflowed (or `None` for total issue width).
        class: Option<FuClass>,
    },
    /// A second control-flow operation in the same bundle.
    MultipleBranches,
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::ResourceConflict { class: Some(c) } => {
                write!(f, "no free {c} slot in bundle")
            }
            BundleError::ResourceConflict { class: None } => {
                write!(f, "bundle issue width exhausted")
            }
            BundleError::MultipleBranches => write!(f, "bundle already contains a branch"),
        }
    }
}

impl std::error::Error for BundleError {}

/// One long instruction word: up to `issue_width` syllables issued together.
///
/// All operations in a bundle read their sources from the register state
/// *before* the bundle executes (parallel-read VLIW semantics).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bundle {
    ops: Vec<Op>,
}

impl Bundle {
    /// Creates an empty bundle.
    #[must_use]
    pub fn new() -> Self {
        Bundle::default()
    }

    /// Creates a bundle from operations, validating resources.
    ///
    /// # Errors
    ///
    /// Returns the first [`BundleError`] encountered.
    pub fn from_ops(ops: &[Op], cfg: &MachineConfig) -> Result<Self, BundleError> {
        let mut b = Bundle::new();
        for op in ops {
            b.push(*op, cfg)?;
        }
        Ok(b)
    }

    /// Tries to add an operation, enforcing the machine's per-cycle
    /// resources.
    ///
    /// # Errors
    ///
    /// [`BundleError::ResourceConflict`] when no slot of the required class
    /// (or no syllable) is free; [`BundleError::MultipleBranches`] when a
    /// second control-flow operation is added.
    pub fn push(&mut self, op: Op, cfg: &MachineConfig) -> Result<(), BundleError> {
        if op.opcode.is_control() && self.ops.iter().any(|o| o.opcode.is_control()) {
            return Err(BundleError::MultipleBranches);
        }
        let mut usage = self.resource_use();
        usage.add(&op);
        if !usage.fits(cfg) {
            let class = match op.opcode.class() {
                c @ (FuClass::Alu
                | FuClass::Mul
                | FuClass::Mem
                | FuClass::Branch
                | FuClass::Rfu) => {
                    let over = match c {
                        FuClass::Alu => usage.alu > cfg.num_alus,
                        FuClass::Mul => usage.mul > cfg.num_muls,
                        FuClass::Mem => usage.mem > cfg.num_mem_units,
                        FuClass::Branch => usage.branch > cfg.num_branch_units,
                        FuClass::Rfu => usage.rfu > cfg.num_rfu_slots,
                    };
                    over.then_some(c)
                }
            };
            return Err(BundleError::ResourceConflict { class });
        }
        self.ops.push(op);
        Ok(())
    }

    /// The operations in this bundle.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Whether the bundle holds no operations (an empty cycle).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Current resource usage.
    #[must_use]
    pub fn resource_use(&self) -> ResourceUse {
        let mut u = ResourceUse::default();
        for op in &self.ops {
            u.add(op);
        }
        u
    }

    /// The control-flow operation of this bundle, if any.
    #[must_use]
    pub fn control_op(&self) -> Option<&Op> {
        self.ops.iter().find(|o| o.opcode.is_control())
    }
}

impl fmt::Display for Bundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ops.is_empty() {
            return write!(f, "  nop ;;");
        }
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        write!(f, ";;")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dest, Gpr, Opcode};

    fn cfg() -> MachineConfig {
        MachineConfig::st200()
    }

    fn alu_op(i: u8) -> Op {
        Op::rrr(Opcode::Add, Gpr::new(i), Gpr::new(1), Gpr::new(2))
    }

    #[test]
    fn four_alu_ops_fit() {
        let mut b = Bundle::new();
        for i in 10..14 {
            b.push(alu_op(i), &cfg()).unwrap();
        }
        assert_eq!(b.ops().len(), 4);
    }

    #[test]
    fn fifth_op_rejected_by_issue_width() {
        let mut b = Bundle::new();
        for i in 10..14 {
            b.push(alu_op(i), &cfg()).unwrap();
        }
        let err = b.push(alu_op(20), &cfg()).unwrap_err();
        assert!(matches!(err, BundleError::ResourceConflict { .. }));
    }

    #[test]
    fn only_one_memory_op_per_cycle() {
        let mut b = Bundle::new();
        let ld = Op::rri(Opcode::Ldw, Gpr::new(4), Gpr::new(5), 0);
        b.push(ld, &cfg()).unwrap();
        let err = b
            .push(Op::rri(Opcode::Ldw, Gpr::new(6), Gpr::new(5), 4), &cfg())
            .unwrap_err();
        assert_eq!(
            err,
            BundleError::ResourceConflict {
                class: Some(FuClass::Mem)
            }
        );
    }

    #[test]
    fn only_two_multiplies_per_cycle() {
        let mut b = Bundle::new();
        let m = |d| Op::rrr(Opcode::Mul, Gpr::new(d), Gpr::new(1), Gpr::new(2));
        b.push(m(10), &cfg()).unwrap();
        b.push(m(11), &cfg()).unwrap();
        let err = b.push(m(12), &cfg()).unwrap_err();
        assert_eq!(
            err,
            BundleError::ResourceConflict {
                class: Some(FuClass::Mul)
            }
        );
    }

    #[test]
    fn long_immediate_consumes_extra_syllable() {
        let mut b = Bundle::new();
        let long = Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(2), 100_000);
        b.push(long, &cfg()).unwrap();
        // Two syllables used; only two 1-syllable ops fit now.
        b.push(alu_op(10), &cfg()).unwrap();
        b.push(alu_op(11), &cfg()).unwrap();
        let err = b.push(alu_op(12), &cfg()).unwrap_err();
        assert_eq!(err, BundleError::ResourceConflict { class: None });
    }

    #[test]
    fn two_branches_rejected() {
        let mut b = Bundle::new();
        let br = Op::new(Opcode::Goto, Dest::None, &[]).with_target(1);
        b.push(br, &cfg()).unwrap();
        assert_eq!(
            b.push(br, &cfg()).unwrap_err(),
            BundleError::MultipleBranches
        );
    }

    #[test]
    fn rfu_slot_is_single() {
        let mut b = Bundle::new();
        let send = Op::new(Opcode::RfuSend, Dest::None, &[Gpr::new(1).into()]).with_cfg(0);
        b.push(send, &cfg()).unwrap();
        let err = b.push(send, &cfg()).unwrap_err();
        assert_eq!(
            err,
            BundleError::ResourceConflict {
                class: Some(FuClass::Rfu)
            }
        );
    }

    #[test]
    fn a1_extension_ops_use_alu_slots_not_rfu() {
        // Four A1 extension ops can issue in one cycle (the paper's
        // "up to 4 instructions per cycle" assumption for scenario A1).
        let mut b = Bundle::new();
        for i in 10..14 {
            let op = Op::rrr(Opcode::Avgh4, Gpr::new(i), Gpr::new(1), Gpr::new(2));
            b.push(op, &cfg()).unwrap();
        }
        assert_eq!(b.resource_use().alu, 4);
        assert_eq!(b.resource_use().rfu, 0);
    }
}
