//! Machine configuration: per-cycle resources and operation latencies.

use crate::{FuClass, Op, Opcode};

/// Static description of the modelled core: issue resources and
/// compiler-visible latencies.
///
/// The default [`MachineConfig::st200`] reflects the paper's 1-cluster ST200:
/// 4-issue, 4 ALUs, 2 multipliers, 1 load/store unit, 1 branch unit, plus the
/// single RFU dispatch slot of the modified architecture (Figure 1).
///
/// ```
/// use rvliw_isa::MachineConfig;
/// let cfg = MachineConfig::st200();
/// assert_eq!(cfg.issue_width, 4);
/// assert_eq!(cfg.num_alus, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Maximum syllables issued per cycle.
    pub issue_width: usize,
    /// Integer ALUs (also execute the SIMD subset and A1 extensions).
    pub num_alus: usize,
    /// 16×32 multipliers.
    pub num_muls: usize,
    /// Load/store units (data-cache ports).
    pub num_mem_units: usize,
    /// Branch units.
    pub num_branch_units: usize,
    /// RFU dispatch slots (the single tightly-coupled reconfigurable unit).
    pub num_rfu_slots: usize,
    /// ALU / SIMD result latency in cycles.
    pub lat_alu: u64,
    /// Multiplier result latency.
    pub lat_mul: u64,
    /// Load-use latency on a data-cache hit.
    pub lat_load: u64,
    /// Latency of a comparison writing a branch register (the branch
    /// condition network is slower than the bypass network).
    pub lat_cmp_to_br: u64,
    /// Latency of `RFUSEND`/`RFUINIT` (operand transfer into the RFU).
    pub lat_rfu_send: u64,
    /// Latency of a *short* `RFUEXEC` custom instruction. The paper assumes
    /// single-cycle execution for the instruction-level scenarios.
    pub lat_rfu_exec: u64,
}

impl MachineConfig {
    /// The paper's 1-cluster ST200 with the RFU attached.
    #[must_use]
    pub fn st200() -> Self {
        MachineConfig {
            issue_width: 4,
            num_alus: 4,
            num_muls: 2,
            num_mem_units: 1,
            num_branch_units: 1,
            num_rfu_slots: 1,
            lat_alu: 1,
            lat_mul: 3,
            lat_load: 3,
            lat_cmp_to_br: 2,
            lat_rfu_send: 1,
            lat_rfu_exec: 1,
        }
    }

    /// Compiler-visible result latency of `op`, in cycles.
    ///
    /// `RFULOOP` instructions have a configuration-dependent latency supplied
    /// by the RFU model at run time; this method returns 1 for them (the
    /// dispatch cost) — the simulator accounts the busy time separately.
    #[must_use]
    pub fn latency(&self, op: &Op) -> u64 {
        use Opcode::*;
        match op.opcode {
            CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | CmpLtu | CmpLeu | CmpGtu | CmpGeu => {
                if matches!(op.dest, crate::Dest::Br(_)) {
                    self.lat_cmp_to_br
                } else {
                    self.lat_alu
                }
            }
            RfuInit | RfuSend => self.lat_rfu_send,
            RfuExec => self.lat_rfu_exec,
            RfuPref | RfuLoop => 1,
            _ => match op.opcode.class() {
                FuClass::Alu => self.lat_alu,
                FuClass::Mul => self.lat_mul,
                FuClass::Mem => self.lat_load,
                FuClass::Branch => 1,
                FuClass::Rfu => self.lat_rfu_exec,
            },
        }
    }

    /// Free slots of a class per cycle.
    #[must_use]
    pub fn slots(&self, class: FuClass) -> usize {
        match class {
            FuClass::Alu => self.num_alus,
            FuClass::Mul => self.num_muls,
            FuClass::Mem => self.num_mem_units,
            FuClass::Branch => self.num_branch_units,
            FuClass::Rfu => self.num_rfu_slots,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::st200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Br, Dest, Gpr, Op};

    #[test]
    fn st200_defaults() {
        let c = MachineConfig::st200();
        assert_eq!(
            (c.num_alus, c.num_muls, c.num_mem_units, c.num_branch_units),
            (4, 2, 1, 1)
        );
        assert_eq!(c, MachineConfig::default());
    }

    #[test]
    fn compare_latency_depends_on_destination() {
        let c = MachineConfig::st200();
        let to_br = Op::new(
            Opcode::CmpLt,
            Dest::Br(Br::new(0)),
            &[Gpr::new(1).into(), Gpr::new(2).into()],
        );
        let to_gpr = Op::new(
            Opcode::CmpLt,
            Dest::Gpr(Gpr::new(3)),
            &[Gpr::new(1).into(), Gpr::new(2).into()],
        );
        assert_eq!(c.latency(&to_br), 2);
        assert_eq!(c.latency(&to_gpr), 1);
    }

    #[test]
    fn load_latency_is_three() {
        let c = MachineConfig::st200();
        let ld = Op::rri(Opcode::Ldw, Gpr::new(4), Gpr::new(5), 0);
        assert_eq!(c.latency(&ld), 3);
    }

    #[test]
    fn mul_latency_is_three() {
        let c = MachineConfig::st200();
        let m = Op::rrr(Opcode::Mul, Gpr::new(4), Gpr::new(5), Gpr::new(6));
        assert_eq!(c.latency(&m), 3);
    }

    #[test]
    fn slots_by_class() {
        let c = MachineConfig::st200();
        assert_eq!(c.slots(FuClass::Alu), 4);
        assert_eq!(c.slots(FuClass::Rfu), 1);
    }
}
