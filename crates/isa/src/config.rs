//! Machine configuration: per-cycle resources and operation latencies.

use std::fmt;
use std::str::FromStr;

use crate::{FuClass, Op, Opcode};

/// Which fetch/issue engine executes the scheduled kernel programs.
///
/// Both substrates run the *same* scheduled bundles against the same
/// memory hierarchy, fault plans and RFU datapath; only the issue timing
/// differs. The default, [`Substrate::Vliw4`], is the paper's 4-issue
/// VLIW machine; [`Substrate::ScalarInOrder`] is a scalar in-order
/// 5-stage RISC pipe that issues one operation per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Substrate {
    /// The 4-issue, parallel-read VLIW host of the paper.
    #[default]
    Vliw4,
    /// A scalar in-order 5-stage RISC host: one operation per cycle, an
    /// extra branch bubble for the longer pipe, otherwise the same
    /// architectural semantics.
    ScalarInOrder,
}

impl Substrate {
    /// All substrates, in sweep-axis order.
    #[must_use]
    pub fn all() -> [Substrate; 2] {
        [Substrate::Vliw4, Substrate::ScalarInOrder]
    }

    /// The canonical spec/CLI token (`"vliw4"` / `"scalar"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Substrate::Vliw4 => "vliw4",
            Substrate::ScalarInOrder => "scalar",
        }
    }
}

impl fmt::Display for Substrate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Substrate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "vliw4" | "vliw" => Ok(Substrate::Vliw4),
            "scalar" | "scalar-in-order" => Ok(Substrate::ScalarInOrder),
            other => Err(format!(
                "unknown substrate `{other}` (expected `vliw4` or `scalar`)"
            )),
        }
    }
}

/// Static description of the modelled core: issue resources and
/// compiler-visible latencies.
///
/// The default [`MachineConfig::st200`] reflects the paper's 1-cluster ST200:
/// 4-issue, 4 ALUs, 2 multipliers, 1 load/store unit, 1 branch unit, plus the
/// single RFU dispatch slot of the modified architecture (Figure 1).
///
/// ```
/// use rvliw_isa::MachineConfig;
/// let cfg = MachineConfig::st200();
/// assert_eq!(cfg.issue_width, 4);
/// assert_eq!(cfg.num_alus, 4);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Maximum syllables issued per cycle.
    pub issue_width: usize,
    /// Integer ALUs (also execute the SIMD subset and A1 extensions).
    pub num_alus: usize,
    /// 16×32 multipliers.
    pub num_muls: usize,
    /// Load/store units (data-cache ports).
    pub num_mem_units: usize,
    /// Branch units.
    pub num_branch_units: usize,
    /// RFU dispatch slots (the single tightly-coupled reconfigurable unit).
    pub num_rfu_slots: usize,
    /// ALU / SIMD result latency in cycles.
    pub lat_alu: u64,
    /// Multiplier result latency.
    pub lat_mul: u64,
    /// Load-use latency on a data-cache hit.
    pub lat_load: u64,
    /// Latency of a comparison writing a branch register (the branch
    /// condition network is slower than the bypass network).
    pub lat_cmp_to_br: u64,
    /// Latency of `RFUSEND`/`RFUINIT` (operand transfer into the RFU).
    pub lat_rfu_send: u64,
    /// Latency of a *short* `RFUEXEC` custom instruction. The paper assumes
    /// single-cycle execution for the instruction-level scenarios.
    pub lat_rfu_exec: u64,
    /// Which fetch/issue engine executes programs on this machine.
    pub substrate: Substrate,
}

impl fmt::Debug for MachineConfig {
    /// Hand-rolled so the rendering at the default substrate stays
    /// byte-identical to the pre-substrate derive output: the scenario
    /// cache canonicalizes configurations via their `Debug` string, and
    /// pre-existing VLIW keys must not move. Exhaustive destructuring
    /// makes adding a field without revisiting this a compile error.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let MachineConfig {
            issue_width,
            num_alus,
            num_muls,
            num_mem_units,
            num_branch_units,
            num_rfu_slots,
            lat_alu,
            lat_mul,
            lat_load,
            lat_cmp_to_br,
            lat_rfu_send,
            lat_rfu_exec,
            substrate,
        } = self;
        let mut d = f.debug_struct("MachineConfig");
        d.field("issue_width", issue_width)
            .field("num_alus", num_alus)
            .field("num_muls", num_muls)
            .field("num_mem_units", num_mem_units)
            .field("num_branch_units", num_branch_units)
            .field("num_rfu_slots", num_rfu_slots)
            .field("lat_alu", lat_alu)
            .field("lat_mul", lat_mul)
            .field("lat_load", lat_load)
            .field("lat_cmp_to_br", lat_cmp_to_br)
            .field("lat_rfu_send", lat_rfu_send)
            .field("lat_rfu_exec", lat_rfu_exec);
        if *substrate != Substrate::Vliw4 {
            d.field("substrate", substrate);
        }
        d.finish()
    }
}

impl MachineConfig {
    /// The paper's 1-cluster ST200 with the RFU attached.
    #[must_use]
    pub fn st200() -> Self {
        MachineConfig {
            issue_width: 4,
            num_alus: 4,
            num_muls: 2,
            num_mem_units: 1,
            num_branch_units: 1,
            num_rfu_slots: 1,
            lat_alu: 1,
            lat_mul: 3,
            lat_load: 3,
            lat_cmp_to_br: 2,
            lat_rfu_send: 1,
            lat_rfu_exec: 1,
            substrate: Substrate::Vliw4,
        }
    }

    /// The same machine with `substrate` selected.
    #[must_use]
    pub fn with_substrate(mut self, substrate: Substrate) -> Self {
        self.substrate = substrate;
        self
    }

    /// Compiler-visible result latency of `op`, in cycles.
    ///
    /// `RFULOOP` instructions have a configuration-dependent latency supplied
    /// by the RFU model at run time; this method returns 1 for them (the
    /// dispatch cost) — the simulator accounts the busy time separately.
    #[must_use]
    pub fn latency(&self, op: &Op) -> u64 {
        use Opcode::*;
        match op.opcode {
            CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | CmpLtu | CmpLeu | CmpGtu | CmpGeu => {
                if matches!(op.dest, crate::Dest::Br(_)) {
                    self.lat_cmp_to_br
                } else {
                    self.lat_alu
                }
            }
            RfuInit | RfuSend => self.lat_rfu_send,
            RfuExec => self.lat_rfu_exec,
            RfuPref | RfuLoop => 1,
            _ => match op.opcode.class() {
                FuClass::Alu => self.lat_alu,
                FuClass::Mul => self.lat_mul,
                FuClass::Mem => self.lat_load,
                FuClass::Branch => 1,
                FuClass::Rfu => self.lat_rfu_exec,
            },
        }
    }

    /// Free slots of a class per cycle.
    #[must_use]
    pub fn slots(&self, class: FuClass) -> usize {
        match class {
            FuClass::Alu => self.num_alus,
            FuClass::Mul => self.num_muls,
            FuClass::Mem => self.num_mem_units,
            FuClass::Branch => self.num_branch_units,
            FuClass::Rfu => self.num_rfu_slots,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::st200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Br, Dest, Gpr, Op};

    #[test]
    fn st200_defaults() {
        let c = MachineConfig::st200();
        assert_eq!(
            (c.num_alus, c.num_muls, c.num_mem_units, c.num_branch_units),
            (4, 2, 1, 1)
        );
        assert_eq!(c, MachineConfig::default());
    }

    #[test]
    fn compare_latency_depends_on_destination() {
        let c = MachineConfig::st200();
        let to_br = Op::new(
            Opcode::CmpLt,
            Dest::Br(Br::new(0)),
            &[Gpr::new(1).into(), Gpr::new(2).into()],
        );
        let to_gpr = Op::new(
            Opcode::CmpLt,
            Dest::Gpr(Gpr::new(3)),
            &[Gpr::new(1).into(), Gpr::new(2).into()],
        );
        assert_eq!(c.latency(&to_br), 2);
        assert_eq!(c.latency(&to_gpr), 1);
    }

    #[test]
    fn load_latency_is_three() {
        let c = MachineConfig::st200();
        let ld = Op::rri(Opcode::Ldw, Gpr::new(4), Gpr::new(5), 0);
        assert_eq!(c.latency(&ld), 3);
    }

    #[test]
    fn mul_latency_is_three() {
        let c = MachineConfig::st200();
        let m = Op::rrr(Opcode::Mul, Gpr::new(4), Gpr::new(5), Gpr::new(6));
        assert_eq!(c.latency(&m), 3);
    }

    #[test]
    fn slots_by_class() {
        let c = MachineConfig::st200();
        assert_eq!(c.slots(FuClass::Alu), 4);
        assert_eq!(c.slots(FuClass::Rfu), 1);
    }

    #[test]
    fn debug_at_default_substrate_matches_pre_substrate_rendering() {
        // The scenario cache hashes this string: the VLIW rendering must
        // stay byte-identical to what the derived Debug produced before
        // the substrate field existed.
        let c = MachineConfig::st200();
        let s = format!("{c:?}");
        assert!(!s.contains("substrate"), "default must omit substrate: {s}");
        assert_eq!(
            s,
            "MachineConfig { issue_width: 4, num_alus: 4, num_muls: 2, \
             num_mem_units: 1, num_branch_units: 1, num_rfu_slots: 1, \
             lat_alu: 1, lat_mul: 3, lat_load: 3, lat_cmp_to_br: 2, \
             lat_rfu_send: 1, lat_rfu_exec: 1 }"
        );
    }

    #[test]
    fn debug_appends_substrate_only_when_scalar() {
        let c = MachineConfig::st200().with_substrate(Substrate::ScalarInOrder);
        let s = format!("{c:?}");
        assert!(s.ends_with("substrate: ScalarInOrder }"), "{s}");
    }

    #[test]
    fn substrate_tokens_round_trip() {
        for su in Substrate::all() {
            assert_eq!(su.name().parse::<Substrate>(), Ok(su));
            assert_eq!(su.to_string(), su.name());
        }
        assert_eq!("vliw".parse::<Substrate>(), Ok(Substrate::Vliw4));
        assert!("sparc".parse::<Substrate>().is_err());
        assert_eq!(Substrate::default(), Substrate::Vliw4);
    }
}
