#![warn(missing_docs)]
//! # rvliw-isa
//!
//! Instruction-set model for an ST200/Lx-like clustered VLIW core augmented
//! with a run-time Reconfigurable Functional Unit (RFU), as studied in
//! *"A Video Compression Case Study on a Reconfigurable VLIW Architecture"*
//! (Rizzo & Colavin, DATE 2002).
//!
//! The modelled machine is the 1-cluster ST200 configuration of the paper:
//!
//! * a 4-issue datapath with **4 32-bit integer ALUs**, **2 16×32
//!   multipliers**, **1 load/store unit** and **1 branch unit**;
//! * **64 general-purpose 32-bit registers** (`$r0` hardwired to zero) and
//!   **8 1-bit branch registers** holding branch conditions, predicates and
//!   carries;
//! * a SIMD computing model through sub-word parallelism (four 8-bit or two
//!   16-bit lanes per 32-bit operation);
//! * an **RFU issue slot** through which custom instructions
//!   (`RFUINIT` / `RFUSEND` / `RFUEXEC`, custom prefetches and long-latency
//!   kernel-loop instructions) are dispatched.
//!
//! The crate is purely structural: it defines registers, operations, bundles
//! and their static properties (functional-unit class, latency, encoding).
//! Execution semantics live in `rvliw-sim`; scheduling in `rvliw-asm`.
//!
//! ```
//! use rvliw_isa::{Op, Opcode, Gpr, MachineConfig};
//!
//! let op = Op::rrr(Opcode::Add, Gpr::new(3), Gpr::new(1), Gpr::new(2));
//! let cfg = MachineConfig::st200();
//! assert_eq!(cfg.latency(&op), 1);
//! assert_eq!(op.to_string(), "add $r3 = $r1, $r2");
//! ```

pub mod blocks;
pub mod bundle;
pub mod config;
pub mod encode;
pub mod op;
pub mod opcode;
pub mod reg;
pub mod simd;

pub use blocks::block_leaders;
pub use bundle::{Bundle, BundleError, ResourceUse};
pub use config::{MachineConfig, Substrate};
pub use encode::{decode_op, encode_op, DecodeError};
pub use op::{Dest, Op, Src};
pub use opcode::{FuClass, Opcode};
pub use reg::{Br, Gpr, RegParseError};

/// Number of general-purpose registers in one cluster.
pub const NUM_GPRS: usize = 64;
/// Number of 1-bit branch registers in one cluster.
pub const NUM_BRS: usize = 8;
/// Maximum number of operations (syllables) issued per cycle.
pub const ISSUE_WIDTH: usize = 4;
/// Maximum number of explicit source operands of an RFU custom instruction
/// ("up to eight input and one output operands" in the paper).
pub const MAX_SRCS: usize = 8;
