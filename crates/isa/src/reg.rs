//! Register names: general-purpose registers and 1-bit branch registers.
//!
//! The single-cluster ST200 of the paper has 64 32-bit general purpose
//! registers and 8 1-bit branch registers (branch conditions, predicates and
//! carries). `$r0` always reads as zero, following the Lx convention.

use std::fmt;
use std::str::FromStr;

use crate::{NUM_BRS, NUM_GPRS};

/// A general-purpose 32-bit register, `$r0`..`$r63`.
///
/// `$r0` is hardwired to zero: the simulator discards writes to it and always
/// reads 0, which gives the assembler a free source of the constant zero and
/// a sink for unwanted results.
///
/// ```
/// use rvliw_isa::Gpr;
/// assert_eq!(Gpr::new(5).index(), 5);
/// assert_eq!(Gpr::ZERO.to_string(), "$r0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gpr(u8);

impl Gpr {
    /// The hardwired-zero register `$r0`.
    pub const ZERO: Gpr = Gpr(0);
    /// The link register used by `call`/`return` (by convention `$r63`).
    pub const LINK: Gpr = Gpr(63);
    /// The stack pointer (by convention `$r12`, as on ST200).
    pub const SP: Gpr = Gpr(12);

    /// Creates `$r<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_GPRS,
            "GPR index out of range (0..64)"
        );
        Gpr(index)
    }

    /// Creates `$r<index>` without bounds checking the index.
    ///
    /// Returns `None` when `index >= 64` instead of panicking.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_GPRS).then_some(Gpr(index))
    }

    /// The register number, `0..64`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}", self.0)
    }
}

/// A 1-bit branch register, `$b0`..`$b7`.
///
/// Branch registers hold branch conditions, predicates and carries; they are
/// written by compare operations and read by conditional branches and
/// `slct` (select).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Br(u8);

impl Br {
    /// Creates `$b<index>`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_BRS,
            "branch register index out of range (0..8)"
        );
        Br(index)
    }

    /// Creates `$b<index>`, returning `None` when out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_BRS).then_some(Br(index))
    }

    /// The register number, `0..8`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Br {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$b{}", self.0)
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegParseError {
    text: String,
}

impl RegParseError {
    fn new(text: &str) -> Self {
        RegParseError {
            text: text.to_owned(),
        }
    }
}

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for RegParseError {}

impl FromStr for Gpr {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("$r")
            .or_else(|| s.strip_prefix('r'))
            .ok_or_else(|| RegParseError::new(s))?;
        let idx: u8 = body.parse().map_err(|_| RegParseError::new(s))?;
        Gpr::try_new(idx).ok_or_else(|| RegParseError::new(s))
    }
}

impl FromStr for Br {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("$b")
            .or_else(|| s.strip_prefix('b'))
            .ok_or_else(|| RegParseError::new(s))?;
        let idx: u8 = body.parse().map_err(|_| RegParseError::new(s))?;
        Br::try_new(idx).ok_or_else(|| RegParseError::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_roundtrip_display_parse() {
        for i in 0..64u8 {
            let r = Gpr::new(i);
            let parsed: Gpr = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn br_roundtrip_display_parse() {
        for i in 0..8u8 {
            let b = Br::new(i);
            let parsed: Br = b.to_string().parse().unwrap();
            assert_eq!(parsed, b);
        }
    }

    #[test]
    fn gpr_zero_is_zero() {
        assert!(Gpr::ZERO.is_zero());
        assert!(!Gpr::new(1).is_zero());
    }

    #[test]
    fn try_new_bounds() {
        assert!(Gpr::try_new(63).is_some());
        assert!(Gpr::try_new(64).is_none());
        assert!(Br::try_new(7).is_some());
        assert!(Br::try_new(8).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_new_panics_out_of_range() {
        let _ = Gpr::new(64);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("$r64".parse::<Gpr>().is_err());
        assert!("$b8".parse::<Br>().is_err());
        assert!("x3".parse::<Gpr>().is_err());
        assert!("$r".parse::<Gpr>().is_err());
        assert!("$rxx".parse::<Gpr>().is_err());
    }

    #[test]
    fn parse_accepts_bare_form() {
        assert_eq!("r7".parse::<Gpr>().unwrap(), Gpr::new(7));
        assert_eq!("b3".parse::<Br>().unwrap(), Br::new(3));
    }
}
