//! A single operation (one syllable of a VLIW bundle) with its operands.

use std::fmt;

use crate::{Br, Gpr, Opcode, MAX_SRCS};

/// A source operand: a general-purpose register, a branch register or an
/// immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A general-purpose register.
    Gpr(Gpr),
    /// A 1-bit branch register.
    Br(Br),
    /// A 32-bit immediate. Immediates outside the 9-bit signed range consume
    /// an extension syllable in the bundle (Lx-style long immediates).
    Imm(i32),
}

impl Src {
    /// Whether this immediate (if any) needs a long-immediate extension
    /// syllable (outside the 9-bit signed short range).
    #[must_use]
    pub fn needs_extension(self) -> bool {
        match self {
            Src::Imm(v) => !(-256..=255).contains(&v),
            _ => false,
        }
    }
}

impl From<Gpr> for Src {
    fn from(r: Gpr) -> Self {
        Src::Gpr(r)
    }
}

impl From<Br> for Src {
    fn from(b: Br) -> Self {
        Src::Br(b)
    }
}

impl From<i32> for Src {
    fn from(v: i32) -> Self {
        Src::Imm(v)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Gpr(r) => r.fmt(f),
            Src::Br(b) => b.fmt(f),
            Src::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A destination operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dest {
    /// No destination (stores, branches, `RFUSEND`…).
    #[default]
    None,
    /// A general-purpose register.
    Gpr(Gpr),
    /// A branch register (comparison results, carries).
    Br(Br),
}

impl From<Gpr> for Dest {
    fn from(r: Gpr) -> Self {
        Dest::Gpr(r)
    }
}

impl From<Br> for Dest {
    fn from(b: Br) -> Self {
        Dest::Br(b)
    }
}

/// One operation: opcode plus destination, sources, optional immediate-index
/// and optional RFU configuration id.
///
/// Sources are stored inline (no heap allocation) because the simulator
/// executes millions of operations; RFU custom instructions may carry up to
/// [`MAX_SRCS`] explicit sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Op {
    /// The operation code.
    pub opcode: Opcode,
    /// Destination (or [`Dest::None`]).
    pub dest: Dest,
    srcs: [Src; MAX_SRCS],
    nsrcs: u8,
    /// RFU configuration id for `RFU*` opcodes.
    pub cfg: Option<u16>,
    /// Branch target label id for control-flow opcodes (resolved by the
    /// assembler to a bundle index).
    pub target: Option<u32>,
}

impl Op {
    /// Creates an operation with an explicit source list.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SRCS`] sources are given.
    #[must_use]
    pub fn new(opcode: Opcode, dest: Dest, srcs: &[Src]) -> Self {
        assert!(
            srcs.len() <= MAX_SRCS,
            "operation {opcode} has {} sources (max {MAX_SRCS})",
            srcs.len()
        );
        let mut arr = [Src::Imm(0); MAX_SRCS];
        arr[..srcs.len()].copy_from_slice(srcs);
        Op {
            opcode,
            dest,
            srcs: arr,
            nsrcs: srcs.len() as u8,
            cfg: None,
            target: None,
        }
    }

    /// Three-register form: `opcode rd = rs1, rs2`.
    #[must_use]
    pub fn rrr(opcode: Opcode, rd: Gpr, rs1: Gpr, rs2: Gpr) -> Self {
        Op::new(opcode, rd.into(), &[rs1.into(), rs2.into()])
    }

    /// Register-immediate form: `opcode rd = rs1, imm`.
    #[must_use]
    pub fn rri(opcode: Opcode, rd: Gpr, rs1: Gpr, imm: i32) -> Self {
        Op::new(opcode, rd.into(), &[rs1.into(), imm.into()])
    }

    /// Sets the RFU configuration id (builder style).
    #[must_use]
    pub fn with_cfg(mut self, cfg: u16) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Sets the branch target label id (builder style).
    #[must_use]
    pub fn with_target(mut self, target: u32) -> Self {
        self.target = Some(target);
        self
    }

    /// The source operands.
    #[must_use]
    pub fn srcs(&self) -> &[Src] {
        &self.srcs[..self.nsrcs as usize]
    }

    /// Number of syllables this operation occupies in a bundle: 1, plus 1
    /// for a long-immediate extension.
    #[must_use]
    pub fn syllables(&self) -> usize {
        1 + usize::from(self.srcs().iter().any(|s| s.needs_extension()))
    }

    /// GPRs read by this operation.
    pub fn gpr_reads(&self) -> impl Iterator<Item = Gpr> + '_ {
        self.srcs().iter().filter_map(|s| match s {
            Src::Gpr(r) => Some(*r),
            _ => None,
        })
    }

    /// Branch registers read by this operation.
    pub fn br_reads(&self) -> impl Iterator<Item = Br> + '_ {
        self.srcs().iter().filter_map(|s| match s {
            Src::Br(b) => Some(*b),
            _ => None,
        })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        if let Some(cfg) = self.cfg {
            write!(f, "#{cfg}")?;
        }
        match self.dest {
            Dest::None => {}
            Dest::Gpr(r) => write!(f, " {r} =")?,
            Dest::Br(b) => write!(f, " {b} =")?,
        }
        for (i, s) in self.srcs().iter().enumerate() {
            if i == 0 {
                write!(f, " {s}")?;
            } else {
                write!(f, ", {s}")?;
            }
        }
        if let Some(t) = self.target {
            write!(f, " -> L{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_three_reg() {
        let op = Op::rrr(Opcode::Add, Gpr::new(3), Gpr::new(1), Gpr::new(2));
        assert_eq!(op.to_string(), "add $r3 = $r1, $r2");
    }

    #[test]
    fn display_store_has_no_dest() {
        let op = Op::new(
            Opcode::Stw,
            Dest::None,
            &[Gpr::new(5).into(), Gpr::new(6).into(), Src::Imm(8)],
        );
        assert_eq!(op.to_string(), "stw $r5, $r6, 8");
    }

    #[test]
    fn syllable_count_long_immediate() {
        let short = Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(2), 255);
        let long = Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(2), 256);
        let neg_short = Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(2), -256);
        let neg_long = Op::rri(Opcode::Add, Gpr::new(1), Gpr::new(2), -257);
        assert_eq!(short.syllables(), 1);
        assert_eq!(long.syllables(), 2);
        assert_eq!(neg_short.syllables(), 1);
        assert_eq!(neg_long.syllables(), 2);
    }

    #[test]
    fn rfu_send_with_many_sources() {
        let srcs: Vec<Src> = (0..8).map(|i| Src::Gpr(Gpr::new(i))).collect();
        let op = Op::new(Opcode::RfuSend, Dest::None, &srcs).with_cfg(3);
        assert_eq!(op.srcs().len(), 8);
        assert_eq!(op.cfg, Some(3));
        assert!(op.to_string().starts_with("rfusend#3 $r0"));
    }

    #[test]
    #[should_panic(expected = "sources")]
    fn too_many_sources_panics() {
        let srcs: Vec<Src> = (0..9).map(|_| Src::Imm(0)).collect();
        let _ = Op::new(Opcode::RfuSend, Dest::None, &srcs);
    }

    #[test]
    fn reads_iterators() {
        let op = Op::new(
            Opcode::Slct,
            Gpr::new(1).into(),
            &[Br::new(2).into(), Gpr::new(3).into(), Gpr::new(4).into()],
        );
        let gprs: Vec<_> = op.gpr_reads().collect();
        let brs: Vec<_> = op.br_reads().collect();
        assert_eq!(gprs, vec![Gpr::new(3), Gpr::new(4)]);
        assert_eq!(brs, vec![Br::new(2)]);
    }
}
