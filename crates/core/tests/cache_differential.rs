//! Differential tests for the scenario result cache: the warm (cached)
//! path must be bit-identical to the cold (simulating) path for every
//! checked-in spec, at every thread count, and cached faulty runs must
//! never leak into clean runs (or vice versa).
//!
//! These run on `Workload::tiny()` for speed; the full 25-frame warm
//! `tables --spec specs/ --check` equivalence is CI's `cache-smoke` job.

use std::path::{Path, PathBuf};

use rvliw_core::{
    verify_cache, CaseStudy, ExperimentSpec, Scenario, ScenarioCache, Sweep, TablesSnapshot,
    Workload,
};
use rvliw_fault::{FaultPlan, FaultProfile};

fn specs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

fn load_spec(name: &str) -> ExperimentSpec {
    let path = specs_dir().join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    ExperimentSpec::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn table_specs() -> Vec<ExperimentSpec> {
    (1..=7)
        .map(|i| load_spec(&format!("table{i}.json")))
        .collect()
}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rvliw-cache-diff-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open(dir: &Path, w: &Workload) -> ScenarioCache {
    ScenarioCache::open(dir, w, "tiny").expect("cache opens")
}

/// The union of the seven table specs, run cold (simulating, populating
/// the cache) and then warm (served from disk) at 1 and 4 threads: every
/// `TablesSnapshot` cell is bit-identical, and the warm runs are pure
/// hits. An uncached run is the cross-check that caching never bends the
/// measurement.
#[test]
fn table_specs_cold_then_warm_are_bit_identical() {
    let w = Workload::tiny();
    let specs = table_specs();
    let dir = tmpdir("tables");

    let uncached = CaseStudy::run_from_specs(&specs, &w, 2, |_| {}).expect("specs cover the grid");
    let want = TablesSnapshot::capture(&uncached).cells;

    let cold = open(&dir, &w);
    let cs = CaseStudy::run_from_specs_cached(&specs, &w, 1, |_| {}, Some(&cold))
        .expect("cold run completes");
    assert_eq!(TablesSnapshot::capture(&cs).cells, want);
    let counts = cold.counts();
    assert_eq!(counts.hits, 0, "first run over an empty cache cannot hit");
    assert_eq!(counts.misses, 12, "one miss per grid scenario");
    assert_eq!(counts.writes, 12, "every measurement is published");

    for threads in [1, 4] {
        let warm = open(&dir, &w);
        let cs = CaseStudy::run_from_specs_cached(&specs, &w, threads, |_| {}, Some(&warm))
            .expect("warm run completes");
        assert_eq!(
            TablesSnapshot::capture(&cs).cells,
            want,
            "warm tables drifted at {threads} thread(s)"
        );
        let counts = warm.counts();
        assert_eq!(counts.hits, 12, "warm run at {threads} thread(s)");
        assert_eq!(counts.misses, 0);
        assert_eq!(counts.stale, 0);
    }

    // And the populated cache re-simulates clean: zero divergent entries.
    let report = verify_cache(&dir, 12, 2).expect("verify runs");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.checked, 12);
    assert_eq!(report.unverifiable, 0);
}

/// Every checked-in spec — the seven tables plus the off-grid β sweep —
/// through the `rvliw sweep` engine: the cold and warm JSON matrices are
/// byte-identical across thread counts.
#[test]
fn sweep_json_matrices_are_bit_identical_cold_and_warm() {
    let w = Workload::tiny();
    let names = [
        "table1.json",
        "table2.json",
        "table3.json",
        "table4.json",
        "table5.json",
        "table6.json",
        "table7.json",
        "offgrid_beta_sweep.json",
    ];
    for name in names {
        let dir = tmpdir("sweep");
        let sweep = Sweep::expand(load_spec(name)).expect("spec expands");
        let cold_cache = open(&dir, &w);
        let cold = sweep.run_cached(&w, 1, |_| {}, Some(&cold_cache));
        assert!(cold.is_complete(), "{name}: cold sweep must complete");
        for threads in [1, 4] {
            let warm_cache = open(&dir, &w);
            let warm = sweep.run_cached(&w, threads, |_| {}, Some(&warm_cache));
            assert_eq!(
                cold.to_json_string(),
                warm.to_json_string(),
                "{name}: warm matrix drifted at {threads} thread(s)"
            );
            let counts = warm_cache.counts();
            assert_eq!(counts.hits, sweep.scenarios().len() as u64, "{name}");
            assert_eq!(counts.misses, 0, "{name}");
        }
    }
}

/// The fault plan is part of the key: a cached faulty measurement is
/// never served for a clean run, and a cached clean measurement is never
/// served for a faulty run.
#[test]
fn faulty_and_clean_runs_never_share_cache_entries() {
    let w = Workload::tiny();
    let dir = tmpdir("fault");
    let clean = Scenario::orig();
    // `latency` only jitters timing — the scenario still completes, so
    // its (wrong-for-clean) measurement really lands in the cache.
    let faulty =
        Scenario::orig().with_fault_plan(FaultPlan::from_profile(FaultProfile::Latency, 7));

    let cache = open(&dir, &w);
    assert_ne!(
        cache.key_for(&clean),
        cache.key_for(&faulty),
        "fault seed/profile must be part of the cache key"
    );
    // Same profile, different seed: also a different key.
    let reseeded =
        Scenario::orig().with_fault_plan(FaultPlan::from_profile(FaultProfile::Latency, 8));
    assert_ne!(cache.key_for(&faulty), cache.key_for(&reseeded));

    let faulty_result = rvliw_core::run_me(&faulty, &w).expect("latency jitter only slows the run");
    cache.record(&faulty, &faulty_result);
    assert_eq!(
        cache.lookup(&clean),
        None,
        "a faulty measurement must not satisfy a clean lookup"
    );

    let clean_result = rvliw_core::run_me(&clean, &w).expect("clean run completes");
    cache.record(&clean, &clean_result);
    assert_eq!(cache.lookup(&clean), Some(clean_result.clone()));
    assert_eq!(cache.lookup(&faulty), Some(faulty_result.clone()));
    assert_ne!(
        clean_result.me_cycles, faulty_result.me_cycles,
        "sanity: the latency profile visibly perturbs the measurement"
    );
}
