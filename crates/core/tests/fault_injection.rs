//! The fault-injection harness end to end: the zero-fault plan is inert
//! (bit-identical tables), seeded fault runs are deterministic across
//! thread counts, a runaway scenario trips the cycle-budget watchdog, and
//! one failing scenario never perturbs the measurements of the others.

use rvliw_core::{run_me, CaseStudy, Scenario, ScenarioError, Workload};
use rvliw_fault::{FaultPlan, FaultProfile};
use rvliw_sim::SimError;

#[test]
fn zero_fault_plan_is_bit_identical_to_no_plan() {
    let w = Workload::tiny();
    let plain = CaseStudy::run_with_threads(&w, 2, |_| {});
    let zero = CaseStudy::run_with_fault_plan(&w, FaultPlan::none(), 2, |_| {});
    assert!(plain.is_complete() && zero.is_complete());
    assert_eq!(plain.orig, zero.orig);
    assert_eq!(plain.instr, zero.instr);
    assert_eq!(plain.loops, zero.loops);
    assert_eq!(plain.two_lb, zero.two_lb);
}

#[test]
fn seeded_fault_runs_are_deterministic_across_thread_counts() {
    let w = Workload::tiny();
    let plan = FaultPlan::from_profile(FaultProfile::Chaos, 42);
    let serial = CaseStudy::run_with_fault_plan(&w, plan, 1, |_| {});
    let parallel = CaseStudy::run_with_fault_plan(&w, plan, 4, |_| {});
    // Substreams are derived from (seed, component, scenario label), so
    // which faults fire — and every resulting measurement or error — is
    // independent of thread scheduling.
    for (a, b) in serial.results().zip(parallel.results()) {
        assert_eq!(a, b);
    }
}

#[test]
fn runaway_scenario_trips_the_cycle_budget() {
    let w = Workload::tiny();
    let sc = Scenario::orig().with_cycle_limit(50);
    match run_me(&sc, &w) {
        Err(ScenarioError::Sim {
            source: SimError::CycleLimit { limit },
            ..
        }) => assert_eq!(limit, 50),
        other => panic!("expected CycleLimit, got {other:?}"),
    }
}

#[test]
fn failing_scenario_leaves_every_other_cell_bit_identical() {
    let w = Workload::tiny();
    let baseline = CaseStudy::run_with_threads(&w, 2, |_| {});
    // Poison one scenario (A2) with an impossible cycle budget.
    let mut scenarios = CaseStudy::scenarios();
    let poisoned = 2;
    scenarios[poisoned] = scenarios[poisoned].clone().with_cycle_limit(10);
    let cs = CaseStudy::run_scenarios(&scenarios, &w, 2, |_| {});

    assert!(!cs.is_complete());
    let failures = cs.failures();
    assert_eq!(failures.len(), 1);
    assert!(matches!(
        failures[0],
        ScenarioError::Sim {
            source: SimError::CycleLimit { .. },
            ..
        }
    ));

    for (i, (a, b)) in baseline.results().zip(cs.results()).enumerate() {
        if i == poisoned {
            assert!(b.is_err(), "slot {i} must hold the failure");
        } else {
            assert_eq!(a, b, "slot {i} must be bit-identical to the baseline");
        }
    }

    // Partial tables render, annotate the failure, and keep every
    // unaffected row.
    let t1 = cs.table1().to_string();
    assert!(
        t1.contains("[failed]"),
        "table 1 must annotate the failure:\n{t1}"
    );
    assert_eq!(cs.table1().rows.len(), 3, "Orig, A1, A3 rows survive");
    assert_eq!(cs.table2().rows.len(), 3, "loop tables unaffected");
    assert_eq!(cs.table7().rows.len(), 2, "two-LB tables unaffected");
}
