//! The checked-in `specs/` files against the built-in paper grid, and the
//! sweep engine's determinism guarantees.
//!
//! These are the behavior-preservation proofs for the spec-driven layer:
//! the seven `table*.json` specs union to exactly the hardcoded grid,
//! running them yields a bit-identical `TablesSnapshot`, and the off-grid
//! example spec runs deterministically across thread counts.

use std::path::{Path, PathBuf};

use rvliw_core::{
    CaseStudy, ExperimentSpec, Scenario, SpecError, Sweep, SweepAxes, TablesSnapshot, Workload,
};

fn specs_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

fn load_spec(name: &str) -> ExperimentSpec {
    let path = specs_dir().join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    ExperimentSpec::from_json_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn table_specs() -> Vec<ExperimentSpec> {
    (1..=7)
        .map(|i| load_spec(&format!("table{i}.json")))
        .collect()
}

/// The union of the seven table specs is exactly the built-in grid: same
/// labels, same order (after canonical reordering), same configuration.
#[test]
fn table_specs_union_to_the_paper_grid() {
    let mut by_label: Vec<Scenario> = Vec::new();
    for spec in table_specs() {
        assert_eq!(spec.frames, 25, "{}: paper tables use 25 frames", spec.name);
        assert_eq!(spec.baseline.as_deref(), Some("Orig"), "{}", spec.name);
        for sc in spec.scenarios().expect("table specs expand") {
            match by_label.iter().find(|s| s.label == sc.label) {
                None => by_label.push(sc),
                Some(existing) => {
                    assert_eq!(*existing, sc, "specs disagree about `{}`", existing.label)
                }
            }
        }
    }
    let canonical = CaseStudy::scenarios();
    assert_eq!(
        canonical
            .iter()
            .map(|s| s.label.as_str())
            .collect::<Vec<_>>(),
        [
            "Orig", "A1", "A2", "A3", "1x32 b=1", "1x32 b=5", "1x64 b=1", "1x64 b=5", "2x64 b=1",
            "2x64 b=5", "2LB b=1", "2LB b=5"
        ],
        "the canonical grid order is load-bearing (snapshot keys, fault salts)"
    );
    assert_eq!(by_label.len(), canonical.len());
    for want in &canonical {
        let got = by_label
            .iter()
            .find(|s| s.label == want.label)
            .unwrap_or_else(|| panic!("specs miss `{}`", want.label));
        assert_eq!(got, want, "spec scenario `{}` drifted", want.label);
    }
}

/// Spec-driven tables are bit-identical to the built-in grid on a tiny
/// workload (the full 25-frame equivalence is CI's `sweep-golden` job).
#[test]
fn spec_driven_tables_match_builtin_grid_bit_for_bit() {
    let workload = Workload::tiny();
    let specs = table_specs();
    let from_specs = CaseStudy::run_from_specs(&specs, &workload, 2, |_| {})
        .expect("table specs cover the grid");
    let builtin = CaseStudy::run_with_threads(&workload, 1, |_| {});
    assert!(from_specs.is_complete() && builtin.is_complete());
    assert_eq!(
        TablesSnapshot::capture(&from_specs).cells,
        TablesSnapshot::capture(&builtin).cells
    );
}

/// The off-grid example spec runs end-to-end and is bit-identical across
/// thread counts.
#[test]
fn offgrid_spec_runs_deterministically_across_thread_counts() {
    let spec = load_spec("offgrid_beta_sweep.json");
    let sweep = Sweep::expand(spec).expect("off-grid spec expands");
    // 1 ORIG + 8 betas at 2x64.
    assert_eq!(sweep.scenarios().len(), 9);
    let workload = Workload::tiny();
    let serial = sweep.run(&workload, 1, |_| {});
    let parallel = sweep.run(&workload, 4, |_| {});
    assert!(serial.is_complete(), "off-grid sweep must complete");
    assert_eq!(serial.to_json_string(), parallel.to_json_string());
    // Higher β slows the RFU: me_cycles must be non-decreasing in β.
    let cycles: Vec<u64> = serial.rows[1..]
        .iter()
        .map(|r| r.result.as_ref().expect("loop point runs").me_cycles)
        .collect();
    assert!(
        cycles.windows(2).all(|w| w[0] <= w[1]),
        "me_cycles not monotone in beta: {cycles:?}"
    );
}

/// The off-grid spec is rejected by the tables pipeline with a typed
/// grid-mismatch error, not a panic.
#[test]
fn offgrid_spec_is_rejected_by_the_tables_pipeline() {
    let mut specs = table_specs();
    specs.push(load_spec("offgrid_beta_sweep.json"));
    let workload = Workload::tiny();
    match CaseStudy::run_from_specs(&specs, &workload, 1, |_| {}) {
        Err(SpecError::GridMismatch { message }) => {
            assert!(message.contains("not part of the paper grid"), "{message}");
        }
        other => panic!(
            "expected GridMismatch, got {other:?}",
            other = other.map(|_| ())
        ),
    }
}

/// Duplicate labels across a single spec's sweeps are a typed error.
#[test]
fn duplicate_labels_are_a_typed_error() {
    let spec = ExperimentSpec::new("dup")
        .sweep(SweepAxes::loop_two_lb(vec![1]))
        .sweep(SweepAxes::loop_two_lb(vec![1]));
    assert_eq!(
        spec.scenarios().unwrap_err(),
        SpecError::DuplicateLabel {
            label: "2LB b=1".to_owned()
        }
    );
}

/// Missing paper-grid coverage is a typed error naming the missing label.
#[test]
fn missing_grid_coverage_is_a_typed_error() {
    let specs = vec![load_spec("table1.json")];
    let workload = Workload::tiny();
    match CaseStudy::run_from_specs(&specs, &workload, 1, |_| {}) {
        Err(SpecError::GridMismatch { message }) => {
            assert!(message.contains("missing"), "{message}");
        }
        other => panic!(
            "expected GridMismatch, got {other:?}",
            other = other.map(|_| ())
        ),
    }
}
