//! The parallel case-study runner must be bit-identical to the serial
//! one: scenario fan-out only changes wall-clock, never cycle counts.

use std::sync::Mutex;

use rvliw_core::{CaseStudy, Workload};

#[test]
fn parallel_case_study_matches_serial_bit_for_bit() {
    let w = Workload::tiny();
    let serial = CaseStudy::run_with_threads(&w, 1, |_| {});

    let labels = Mutex::new(Vec::new());
    let parallel = CaseStudy::run_with_threads(&w, 4, |label| {
        labels.lock().unwrap().push(label.to_string());
    });

    assert_eq!(serial.stride, parallel.stride);
    assert_eq!(serial.calls, parallel.calls);
    assert_eq!(serial.orig, parallel.orig);
    assert_eq!(serial.instr, parallel.instr);
    assert_eq!(serial.loops, parallel.loops);
    assert_eq!(serial.two_lb, parallel.two_lb);

    // Every scenario reported progress exactly once (order is up to the
    // thread scheduler, so compare as a multiset).
    let mut seen = labels.into_inner().unwrap();
    seen.sort();
    let mut expected: Vec<String> = serial
        .results()
        .map(|r| r.as_ref().expect("scenario succeeded").label.clone())
        .collect();
    expected.sort();
    assert_eq!(seen, expected);
}

#[test]
fn thread_count_env_override_parses() {
    // `default_threads` is process-global state; only assert the invariant
    // that it is at least one without mutating the environment.
    assert!(rvliw_core::default_threads() >= 1);
}
