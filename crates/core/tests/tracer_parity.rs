//! Parity between the tracing subsystem and the legacy counters: a
//! [`CountingTracer`] attached to a full scenario replay must bit-match
//! `SimStats`/`MemStats`/`RfuStats`, and attaching any tracer must not
//! perturb the simulation itself.
//!
//! This is what makes the `--metrics-out` exports trustworthy: the tracer
//! is an independent observer wired through different code paths
//! (per-event emission instead of end-of-run counters), so agreement here
//! cross-checks both accountings.

use rvliw_core::{run_me, run_me_with_tracer, CaseStudy, Workload};
use rvliw_trace::{CountingTracer, StallCause};

#[test]
fn counting_tracer_bit_matches_legacy_stats_on_every_scenario() {
    let w = Workload::tiny();
    for scenario in CaseStudy::scenarios() {
        let mut t = CountingTracer::new();
        let r = run_me_with_tracer(&scenario, &w, &mut t).expect("traced replay succeeds");
        let l = &r.label;

        // Tracing must not perturb the simulation: the traced replay
        // returns the exact result of the untraced one.
        let baseline = run_me(&scenario, &w).expect("untraced replay succeeds");
        assert_eq!(r, baseline, "{l}: tracer perturbed the simulation");

        // Issue counters.
        assert_eq!(t.bundles, r.core.bundles, "{l}: bundles");
        assert_eq!(t.ops, r.core.ops, "{l}: ops");

        // Core stall causes, one for one.
        assert_eq!(
            t.stall_cycles(StallCause::Ifetch),
            r.core.ifetch_stall_cycles,
            "{l}: ifetch stalls"
        );
        assert_eq!(
            t.stall_cycles(StallCause::Interlock),
            r.core.interlock_stalls,
            "{l}: interlock stalls"
        );
        assert_eq!(
            t.stall_cycles(StallCause::RfuBusy),
            r.core.rfu_busy_stalls,
            "{l}: rfu-busy stalls"
        );
        assert_eq!(
            t.stall_cycles(StallCause::BranchBubble),
            r.core.branch_stall_cycles,
            "{l}: branch bubbles"
        );
        assert_eq!(
            t.stall_cycles(StallCause::Reconfig),
            r.rfu.reconfig_penalty_cycles,
            "{l}: reconfig penalty"
        );

        // Data-side stalls: the tracer's own event-derived account and its
        // cause histogram must both equal the memory system's counter.
        assert_eq!(t.d_stall_cycles, r.mem.d_stall_cycles, "{l}: d-stalls");
        assert_eq!(
            t.stall_cycles(StallCause::DCache) + t.stall_cycles(StallCause::RfuLoop),
            r.mem.d_stall_cycles,
            "{l}: d-stall attribution"
        );

        // Memory traffic.
        assert_eq!(t.d_hits, r.mem.d_hits, "{l}: d-hits");
        assert_eq!(t.d_misses, r.mem.d_misses, "{l}: d-misses");
        assert_eq!(t.d_late_covered, r.mem.d_late_covered, "{l}: late-covered");
        assert_eq!(t.i_misses, r.mem.i_misses, "{l}: i-misses");
        assert_eq!(t.writebacks, r.mem.writebacks, "{l}: writebacks");
        assert_eq!(t.pf_issued, r.mem.pf_issued, "{l}: prefetches issued");
        assert_eq!(t.pf_dropped, r.mem.pf_dropped, "{l}: prefetches dropped");
        assert_eq!(
            t.pf_redundant, r.mem.pf_redundant,
            "{l}: redundant prefetches"
        );

        // RFU protocol activity.
        assert_eq!(t.rfu_inits, r.rfu.inits, "{l}: RFUINITs");
        assert_eq!(t.rfu_sends, r.rfu.sends, "{l}: RFUSENDs");
        assert_eq!(t.rfu_short_execs, r.rfu.execs, "{l}: short RFUEXECs");
        assert_eq!(
            t.rfu_loops,
            r.rfu.loops + r.rfu.dct_loops,
            "{l}: kernel loops"
        );
        assert_eq!(
            t.rfu_mb_prefetches, r.rfu.mb_prefetches,
            "{l}: MB prefetches"
        );
        assert_eq!(t.lba_waits, r.rfu.lba_waits, "{l}: LbA waits");
        assert_eq!(
            t.lba_wait_cycles, r.rfu.lba_wait_cycles,
            "{l}: LbA wait cycles"
        );
        assert_eq!(t.lbb_hits, r.rfu.lbb_hits, "{l}: LbB hits");
        assert_eq!(t.lbb_late, r.rfu.lbb_late, "{l}: LbB late");
        assert_eq!(t.lbb_misses, r.rfu.lbb_misses, "{l}: LbB misses");

        // The per-PC histogram partitions the totals.
        assert_eq!(
            t.per_pc.iter().map(|c| c.bundles).sum::<u64>(),
            t.bundles,
            "{l}: per-PC bundles partition"
        );
        assert_eq!(
            t.per_pc.iter().map(|c| c.stall_cycles).sum::<u64>(),
            t.total_stall_cycles(),
            "{l}: per-PC stalls partition"
        );
    }
}
