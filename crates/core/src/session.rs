//! [`SimSession`]: the single place a runnable [`Machine`] is assembled.
//!
//! Every consumer — the scenario runner, the `rvliw` CLI, the tables
//! binary, kernel test drivers and the examples — describes *what* machine
//! it wants (core and memory configuration, RFU program, reconfiguration
//! model, line-buffer geometry, fault plan, cycle budget) and lets
//! [`SimSession::build`] apply the pieces in the one correct order:
//!
//! 1. core + memory configuration ([`Machine::new`] — the only call site
//!    outside `sim`-internal tests),
//! 2. RFU installation (before anything that mutates the RFU),
//! 3. reconfiguration model and Line Buffer B geometry overrides,
//! 4. fault injectors (after the RFU is in place, so the injectors land in
//!    the unit that actually runs),
//! 5. the per-run cycle budget.
//!
//! Hand-assembled `Machine::new(...)` call sites used to repeat this
//! ordering by convention; the builder makes it structural.

use rvliw_fault::FaultPlan;
use rvliw_isa::{MachineConfig, Substrate};
use rvliw_mem::MemConfig;
use rvliw_rfu::{LineBufferB, MeLoopCfg, ReconfigModel, Rfu};
use rvliw_sim::{ExecBackend, Machine};

/// Builder assembling machine, memory, RFU, fault and budget configuration
/// into a runnable [`Machine`].
///
/// ```
/// use rvliw_core::SimSession;
///
/// let m = SimSession::st200().cycle_limit(1_000_000).build();
/// assert_eq!(m.cycle_limit, 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct SimSession {
    machine: MachineConfig,
    mem: MemConfig,
    me_loop: Option<MeLoopCfg>,
    reconfig: Option<ReconfigModel>,
    lbb_bank_lines: Option<usize>,
    fault: FaultPlan,
    salt: String,
    cycle_limit: Option<u64>,
    backend: Option<ExecBackend>,
}

impl SimSession {
    /// A session from explicit core and memory configurations.
    #[must_use]
    pub fn with_configs(machine: MachineConfig, mem: MemConfig) -> Self {
        SimSession {
            machine,
            mem,
            me_loop: None,
            reconfig: None,
            lbb_bank_lines: None,
            fault: FaultPlan::none(),
            salt: String::new(),
            cycle_limit: None,
            backend: None,
        }
    }

    /// The baseline ST200 core with the baseline memory configuration
    /// (8-entry prefetch buffer).
    #[must_use]
    pub fn st200() -> Self {
        Self::with_configs(MachineConfig::st200(), MemConfig::st200())
    }

    /// The ST200 core with the loop-level memory configuration (64-entry
    /// prefetch buffer, as the paper's loop-level scenarios use).
    #[must_use]
    pub fn st200_loop_level() -> Self {
        Self::with_configs(MachineConfig::st200(), MemConfig::st200_loop_level())
    }

    /// Overrides the core configuration.
    #[must_use]
    pub fn machine_config(mut self, cfg: MachineConfig) -> Self {
        self.machine = cfg;
        self
    }

    /// Overrides the memory configuration.
    #[must_use]
    pub fn mem_config(mut self, cfg: MemConfig) -> Self {
        self.mem = cfg;
        self
    }

    /// Selects the fetch/issue substrate the built machine runs on
    /// (mutates the core configuration — the substrate lives in
    /// [`MachineConfig`], which is the single source of truth).
    #[must_use]
    pub fn substrate(mut self, substrate: Substrate) -> Self {
        self.machine.substrate = substrate;
        self
    }

    /// Installs the case-study RFU with `cfg` as its ME-loop
    /// configuration (plus the instruction-level configurations). Without
    /// this, the machine keeps an empty default RFU — what the plain CLI
    /// `run`/`trace` path wants.
    #[must_use]
    pub fn me_loop(mut self, cfg: MeLoopCfg) -> Self {
        self.me_loop = Some(cfg);
        self
    }

    /// Overrides the RFU reconfiguration model (the paper's baseline is
    /// zero penalty; ablations pay per-load penalties).
    #[must_use]
    pub fn reconfig(mut self, model: ReconfigModel) -> Self {
        self.reconfig = Some(model);
        self
    }

    /// Overrides Line Buffer B's per-bank capacity (line-buffer geometry
    /// ablations; the paper uses 34 lines per bank).
    #[must_use]
    pub fn lbb_bank_lines(mut self, lines: usize) -> Self {
        self.lbb_bank_lines = Some(lines);
        self
    }

    /// Installs a fault-injection plan. `salt` names the run (typically
    /// the scenario label or the program path) so distinct runs under the
    /// same seed draw independent perturbation substreams.
    #[must_use]
    pub fn fault_plan(mut self, plan: FaultPlan, salt: &str) -> Self {
        self.fault = plan;
        self.salt = salt.to_owned();
        self
    }

    /// Caps every simulated run at `limit` cycles; exceeding it surfaces
    /// as a typed cycle-limit error instead of a hang.
    #[must_use]
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = Some(limit);
        self
    }

    /// Overrides the execution backend for machines this session builds.
    /// Without this, machines inherit [`ExecBackend::process_default`]
    /// (which the binaries' `--backend` flag sets). The backend never
    /// changes results — only how fast they are simulated.
    #[must_use]
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Assembles the machine. The session is reusable: each call builds a
    /// fresh, independent machine, which is what makes parallel scenario
    /// fan-out trivially sound.
    #[must_use]
    pub fn build(&self) -> Machine {
        let mut m = Machine::new(self.machine.clone(), self.mem.clone());
        if let Some(me) = self.me_loop {
            m.rfu = Rfu::with_case_study_configs(me);
        }
        if let Some(rc) = self.reconfig.clone() {
            m.rfu.set_reconfig_model(rc);
        }
        if let Some(lines) = self.lbb_bank_lines {
            m.rfu.lb_b = LineBufferB::with_bank_capacity(lines);
        }
        // After the RFU is in place: fault injectors, then the budget.
        m.set_fault_plan(&self.fault, &self.salt);
        if let Some(limit) = self.cycle_limit {
            m.cycle_limit = limit;
        }
        if let Some(backend) = self.backend {
            m.backend = backend;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_rfu::RfuBandwidth;

    #[test]
    fn cycle_limit_override_applies() {
        let default_limit = SimSession::st200().build().cycle_limit;
        let m = SimSession::st200().cycle_limit(1234).build();
        assert_eq!(m.cycle_limit, 1234);
        assert_ne!(default_limit, 1234);
    }

    #[test]
    fn substrate_reaches_the_built_machine() {
        let m = SimSession::st200()
            .substrate(Substrate::ScalarInOrder)
            .build();
        assert_eq!(m.config().substrate, Substrate::ScalarInOrder);
        let d = SimSession::st200().build();
        assert_eq!(d.config().substrate, Substrate::Vliw4);
    }

    #[test]
    fn builds_are_independent() {
        let session =
            SimSession::st200_loop_level().me_loop(MeLoopCfg::new(RfuBandwidth::B1x32, 1, 176));
        let mut a = session.build();
        let mut b = session.build();
        let addr = a.mem.ram.alloc(64, 32);
        a.mem.ram.store8(addr, 7);
        // A second build starts from fresh state: same alloc cursor.
        assert_eq!(b.mem.ram.alloc(64, 32), addr);
    }
}
