//! Where the cycles go: a per-scenario breakdown of the measured ME stage.
//!
//! The paper reasons about its results in exactly these terms — issue
//! cycles vs cache stalls vs the loop's compute/load balance — so the
//! breakdown is part of the reproduction's reporting, not just debugging.

use std::fmt;

use crate::runner::MeResult;

/// One scenario's ME cycles split into explanatory categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleBreakdown {
    /// Cycles issuing bundles (including RFU-busy time folded into issue
    /// for loop-level scenarios).
    pub issue: u64,
    /// Scoreboard interlock stalls (waiting on operand latency).
    pub interlock: u64,
    /// RFU-busy waits (the core waiting for a kernel-loop result).
    pub rfu_busy: u64,
    /// Taken-branch bubbles.
    pub branch: u64,
    /// Data-cache stalls (the paper's Tables 4–5 quantity).
    pub dcache: u64,
    /// Instruction-cache stalls.
    pub icache: u64,
    /// Total ME cycles.
    pub total: u64,
}

impl CycleBreakdown {
    /// Derives the breakdown from a measured result.
    #[must_use]
    pub fn of(r: &MeResult) -> Self {
        let interlock = r.core.interlock_stalls;
        let rfu_busy = r.core.rfu_busy_stalls;
        let branch = r.core.branch_stall_cycles;
        let dcache = r.mem.d_stall_cycles;
        let icache = r.core.ifetch_stall_cycles;
        let accounted = interlock + rfu_busy + branch + dcache + icache;
        CycleBreakdown {
            issue: r.me_cycles.saturating_sub(accounted),
            interlock,
            rfu_busy,
            branch,
            dcache,
            icache,
            total: r.me_cycles,
        }
    }

    /// A category's share of the total, in `0.0..=1.0`.
    #[must_use]
    pub fn share(&self, cycles: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        cycles as f64 / self.total as f64
    }
}

impl fmt::Display for CycleBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "issue {:>5.1}%  interlock {:>5.1}%  rfu-busy {:>5.1}%  branch {:>5.1}%  D$ {:>5.1}%  I$ {:>4.1}%",
            self.share(self.issue) * 100.0,
            self.share(self.interlock) * 100.0,
            self.share(self.rfu_busy) * 100.0,
            self.share(self.branch) * 100.0,
            self.share(self.dcache) * 100.0,
            self.share(self.icache) * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_me, Scenario, Workload};

    #[test]
    fn breakdown_accounts_for_every_cycle() {
        let w = Workload::tiny();
        for sc in [
            Scenario::orig(),
            Scenario::loop_level(rvliw_rfu::RfuBandwidth::B1x32, 1),
        ] {
            let r = run_me(&sc, &w).unwrap();
            let b = CycleBreakdown::of(&r);
            assert_eq!(
                b.issue + b.interlock + b.rfu_busy + b.branch + b.dcache + b.icache,
                b.total,
                "{}",
                sc.label
            );
            assert!(b.share(b.issue) > 0.0);
        }
    }

    #[test]
    fn loop_level_is_rfu_busy_dominated() {
        // The whole point of the kernel-loop mapping: the core mostly waits
        // for the RFU, not for its own issue slots.
        let w = Workload::tiny();
        let r = run_me(&Scenario::loop_two_lb(1), &w).unwrap();
        let b = CycleBreakdown::of(&r);
        assert!(
            b.share(b.rfu_busy) > 0.4,
            "rfu-busy share {:.2}",
            b.share(b.rfu_busy)
        );
    }

    #[test]
    fn orig_is_issue_and_interlock_dominated() {
        let w = Workload::tiny();
        let r = run_me(&Scenario::orig(), &w).unwrap();
        let b = CycleBreakdown::of(&r);
        assert!(b.share(b.issue) + b.share(b.interlock) > 0.6);
        assert!(b.share(b.rfu_busy) < 0.05);
    }

    #[test]
    fn display_sums_to_about_100_percent() {
        let w = Workload::tiny();
        let r = run_me(&Scenario::a2(), &w).unwrap();
        let b = CycleBreakdown::of(&r);
        let sum = b.share(b.issue)
            + b.share(b.interlock)
            + b.share(b.rfu_busy)
            + b.share(b.branch)
            + b.share(b.dcache)
            + b.share(b.icache);
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(b.to_string().contains("issue"));
    }
}
