//! Budgeted design-space exploration over the RFU configuration space.
//!
//! The paper fixes one design point and reports Tables 1–7 for it; this
//! module searches the space instead. An [`ExploreSpec`] names the axes
//! to search (RFU bandwidth / two-line-buffer engine, β, Line Buffer B
//! geometry, reconfiguration model, prefetch depth, data-cache geometry,
//! SAD approximation, search algorithm, substrate), an evaluation budget
//! and a strategy; [`run_explore`] drives one of two budgeted searches —
//! coordinate descent or a small generational/mutation loop — over it and
//! returns an [`ExploreOutcome`]: the cycles-vs-quality Pareto archive
//! plus, for every frontier point, a single-point [`ExperimentSpec`]
//! replayable with `rvliw sweep --spec`.
//!
//! Determinism contract:
//!
//! * All randomness comes from the fault crate's per-(seed, component,
//!   salt) substream derivation ([`FaultPlan::injector`]), so the same
//!   seed reproduces the same trajectory — candidate for candidate — at
//!   any thread count.
//! * Fitness batches run on the deterministic parallel runner (results
//!   are reassembled in input order), optionally through the supervised
//!   wrapper and the on-disk [`ScenarioCache`].
//! * The **budget counts unique design points evaluated** (including
//!   failed evaluations). Revisits of an already-evaluated point are
//!   served from an in-run memo and are free, and on-disk cache hits make
//!   warm runs faster but never alter the trajectory — which is what
//!   makes cold-cache and warm-cache runs byte-identical.
//!
//! Candidates are index vectors over the nine axes (engine, β, lbb,
//! reconfig, prefetch, dcache, approx, search, substrate). Each candidate
//! maps to a one-point [`ExperimentSpec`] and is evaluated by expanding
//! and running that spec, so an explore evaluation and a later
//! `rvliw sweep --spec` replay of the emitted frontier spec are the same
//! scenario by construction — same label, same cache key, same numbers.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

use mpeg4_enc::me::SearchAlgorithm;
use mpeg4_enc::ApproxSad;
use rvliw_fault::{FaultInjector, FaultPlan, FaultProfile};
use rvliw_isa::Substrate;
use rvliw_rfu::RfuBandwidth;
use rvliw_trace::Json;

use crate::cache::ScenarioCache;
use crate::spec::{
    as_obj, check_keys, parse_u64, parse_usize, pretty, req_arr, req_str, schema, DcacheSpec,
    ExperimentSpec, ReconfigSpec, SpecError, SweepAxes,
};
use crate::supervisor::{run_scenario_list_supervised, SupervisorConfig};
use crate::sweep::{fnum, ParetoPoint};
use crate::workload::Workload;

/// Number of search axes in a candidate index vector.
pub const AXES: usize = 9;

/// Which budgeted search drives the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreStrategy {
    /// Axis-at-a-time hill climbing with random restarts, alternating
    /// the lexicographic objective (cycles-first / inflation-first)
    /// between passes so both ends of the front are pulled on.
    CoordinateDescent,
    /// A small (μ+λ)-style generational loop: keep the better half of
    /// the population, refill with 1–2-axis mutants of kept parents.
    Generational,
}

impl ExploreStrategy {
    /// The canonical spec token (`coordinate-descent` / `generational`).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            ExploreStrategy::CoordinateDescent => "coordinate-descent",
            ExploreStrategy::Generational => "generational",
        }
    }

    /// Parses a [`Self::token`] back; `None` for unknown strategies.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "coordinate-descent" => Some(ExploreStrategy::CoordinateDescent),
            "generational" => Some(ExploreStrategy::Generational),
            _ => None,
        }
    }
}

/// A search objective token. The exploration always optimizes the full
/// cycles-vs-quality plane (the Pareto archive keys on both axes); the
/// spec field exists so a typo'd objective is a typed error instead of a
/// silently ignored key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Motion-estimation cycles (lower is better).
    MeCycles,
    /// Exact-SAD inflation vs the golden encode (lower is better).
    SadInflation,
}

impl Objective {
    /// The canonical spec token (`me_cycles` / `sad_inflation`).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Objective::MeCycles => "me_cycles",
            Objective::SadInflation => "sad_inflation",
        }
    }

    /// Parses a [`Self::token`] back; `None` for unknown objectives.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "me_cycles" => Some(Objective::MeCycles),
            "sad_inflation" => Some(Objective::SadInflation),
            _ => None,
        }
    }
}

/// One value of the engine axis: which loop-level acceleration scheme a
/// candidate uses. Bandwidth and the two-line-buffer scheme are a single
/// axis because the two-buffer scheme forces 1×32 bandwidth — keeping
/// them separate would alias distinct candidates onto one scenario label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Single line buffer at the given RFU data bandwidth.
    Loop(RfuBandwidth),
    /// The two-line-buffer scheme (bandwidth forced to 1×32).
    TwoLb,
}

impl EngineChoice {
    /// Every engine choice, in spec-token order.
    #[must_use]
    pub fn all() -> [EngineChoice; 4] {
        [
            EngineChoice::Loop(RfuBandwidth::B1x32),
            EngineChoice::Loop(RfuBandwidth::B1x64),
            EngineChoice::Loop(RfuBandwidth::B2x64),
            EngineChoice::TwoLb,
        ]
    }

    /// The canonical spec token (`1x32`, `1x64`, `2x64`, `2lb`).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            EngineChoice::Loop(bw) => bw.label(),
            EngineChoice::TwoLb => "2lb",
        }
    }

    /// Parses a [`Self::token`] back; `None` for unknown engines.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        EngineChoice::all().into_iter().find(|e| e.token() == s)
    }
}

/// The searchable axes. Every axis is a non-empty, duplicate-free list
/// of values; a candidate picks one index per axis.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSpace {
    /// Loop-level engine choices (required).
    pub engine: Vec<EngineChoice>,
    /// Technology-scaling factors β (required, each ≥ 1).
    pub betas: Vec<u64>,
    /// Line Buffer B per-bank capacities (`None` = the paper's 34).
    pub lbb_bank_lines: Vec<Option<usize>>,
    /// Reconfiguration-penalty models.
    pub reconfig: Vec<ReconfigSpec>,
    /// Prefetch-buffer depths (`None` = the loop-level default, 64).
    pub prefetch: Vec<Option<usize>>,
    /// Data-cache geometry overrides (`None` = the paper's 32 KB 4-way).
    pub dcache: Vec<Option<DcacheSpec>>,
    /// SAD approximations.
    pub approx: Vec<ApproxSad>,
    /// Search-algorithm overrides (`None` = the workload's own search).
    pub search: Vec<Option<SearchAlgorithm>>,
    /// Fetch/issue substrates.
    pub substrate: Vec<Substrate>,
}

impl ExploreSpace {
    /// A minimal space: the given engines and betas, every other axis at
    /// its single default value.
    #[must_use]
    pub fn new(engine: Vec<EngineChoice>, betas: Vec<u64>) -> Self {
        ExploreSpace {
            engine,
            betas,
            lbb_bank_lines: vec![None],
            reconfig: vec![ReconfigSpec::zero()],
            prefetch: vec![None],
            dcache: vec![None],
            approx: vec![ApproxSad::Exact],
            search: vec![None],
            substrate: vec![Substrate::Vliw4],
        }
    }

    /// Per-axis cardinalities, candidate-index order.
    #[must_use]
    pub fn lens(&self) -> [usize; AXES] {
        [
            self.engine.len(),
            self.betas.len(),
            self.lbb_bank_lines.len(),
            self.reconfig.len(),
            self.prefetch.len(),
            self.dcache.len(),
            self.approx.len(),
            self.search.len(),
            self.substrate.len(),
        ]
    }

    /// Total number of design points (saturating).
    #[must_use]
    pub fn size(&self) -> usize {
        self.lens()
            .iter()
            .fold(1usize, |acc, &n| acc.saturating_mul(n))
    }

    fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert(
            "engine".to_owned(),
            Json::Arr(
                self.engine
                    .iter()
                    .map(|e| Json::Str(e.token().to_owned()))
                    .collect(),
            ),
        );
        m.insert(
            "betas".to_owned(),
            Json::Arr(
                self.betas
                    .iter()
                    .map(|b| Json::Num(b.to_string()))
                    .collect(),
            ),
        );
        if self.lbb_bank_lines != [None] {
            m.insert(
                "lbb_bank_lines".to_owned(),
                Json::Arr(
                    self.lbb_bank_lines
                        .iter()
                        .map(|l| match l {
                            None => Json::Null,
                            Some(n) => Json::Num(n.to_string()),
                        })
                        .collect(),
                ),
            );
        }
        if self.reconfig != [ReconfigSpec::zero()] {
            m.insert(
                "reconfig".to_owned(),
                Json::Arr(self.reconfig.iter().map(|r| r.to_json()).collect()),
            );
        }
        SweepAxes::mem_axes_to_json(&mut m, &self.prefetch, &self.dcache);
        SweepAxes::axes_to_json(&mut m, &self.approx, &self.search, &self.substrate);
        Json::Obj(m)
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        let m = as_obj(j, path)?;
        check_keys(
            m,
            &[
                "engine",
                "betas",
                "lbb_bank_lines",
                "reconfig",
                "prefetch",
                "dcache",
                "approx",
                "search",
                "substrate",
            ],
            path,
        )?;
        let engine_arr = req_arr(m, "engine", path)?;
        if engine_arr.is_empty() {
            return Err(schema(format!("{path}.engine"), "must not be empty"));
        }
        let engine = engine_arr
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let p = format!("{path}.engine[{i}]");
                let s = v.as_str().ok_or_else(|| schema(&p, "expected a string"))?;
                EngineChoice::parse(s).ok_or_else(|| {
                    schema(
                        p,
                        format!("unknown engine `{s}` (want 1x32, 1x64, 2x64, 2lb)"),
                    )
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let beta_arr = req_arr(m, "betas", path)?;
        if beta_arr.is_empty() {
            return Err(schema(format!("{path}.betas"), "must not be empty"));
        }
        let betas = beta_arr
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let p = format!("{path}.betas[{i}]");
                let b = parse_u64(v, &p)?;
                if b == 0 {
                    return Err(schema(p, "beta must be at least 1"));
                }
                Ok(b)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let lbb_bank_lines = match m.get("lbb_bank_lines") {
            None => vec![None],
            Some(v) => {
                let p = format!("{path}.lbb_bank_lines");
                let arr = v
                    .as_array()
                    .ok_or_else(|| schema(&p, "expected an array of lines-or-null"))?;
                if arr.is_empty() {
                    return Err(schema(p, "must not be empty"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{p}[{i}]");
                        match v {
                            Json::Null => Ok(None),
                            other => {
                                let n = parse_usize(other, &p)?;
                                if n == 0 {
                                    return Err(schema(
                                        p,
                                        "per-bank capacity must be at least 1 line",
                                    ));
                                }
                                Ok(Some(n))
                            }
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let reconfig = match m.get("reconfig") {
            None => vec![ReconfigSpec::zero()],
            Some(v) => {
                let p = format!("{path}.reconfig");
                let arr = v
                    .as_array()
                    .ok_or_else(|| schema(&p, "expected an array of reconfig objects"))?;
                if arr.is_empty() {
                    return Err(schema(p, "must not be empty"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| ReconfigSpec::from_json(v, &format!("{p}[{i}]")))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let space = ExploreSpace {
            engine,
            betas,
            lbb_bank_lines,
            reconfig,
            prefetch: SweepAxes::prefetch_axis_from_json(m, path)?,
            dcache: SweepAxes::dcache_axis_from_json(m, path)?,
            approx: SweepAxes::approx_axis_from_json(m, path)?,
            search: SweepAxes::search_axis_from_json(m, path)?,
            substrate: SweepAxes::substrate_axis_from_json(m, path)?,
        };
        space.check_no_duplicates(path)?;
        Ok(space)
    }

    /// Rejects duplicate values on any axis — a duplicate would alias two
    /// candidate indices onto one scenario label, corrupting both the
    /// memo and the archive. Reconfig specs are compared after
    /// normalizing zero-penalty models (contexts are ignored when the
    /// penalty is 0, so all zero-penalty specs are the same label).
    fn check_no_duplicates(&self, path: &str) -> Result<(), SpecError> {
        fn no_dups<T: PartialEq>(axis: &[T], path: &str, key: &str) -> Result<(), SpecError> {
            for i in 1..axis.len() {
                if axis[..i].contains(&axis[i]) {
                    return Err(schema(
                        format!("{path}.{key}[{i}]"),
                        "duplicate axis value (it would alias scenario labels)",
                    ));
                }
            }
            Ok(())
        }
        no_dups(&self.engine, path, "engine")?;
        no_dups(&self.betas, path, "betas")?;
        no_dups(&self.lbb_bank_lines, path, "lbb_bank_lines")?;
        let normalized: Vec<ReconfigSpec> = self
            .reconfig
            .iter()
            .map(|r| {
                if r.penalty == 0 {
                    ReconfigSpec::zero()
                } else {
                    *r
                }
            })
            .collect();
        no_dups(&normalized, path, "reconfig")?;
        no_dups(&self.prefetch, path, "prefetch")?;
        no_dups(&self.dcache, path, "dcache")?;
        no_dups(&self.approx, path, "approx")?;
        no_dups(&self.search, path, "search")?;
        no_dups(&self.substrate, path, "substrate")
    }
}

/// A declarative exploration: the search space, the strategy, and the
/// evaluation budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSpec {
    /// Exploration name (reported in results).
    pub name: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// QCIF workload frames (the paper uses 25).
    pub frames: usize,
    /// Maximum number of **unique** design points to evaluate (≥ 1).
    /// Failed evaluations count; in-run revisits and on-disk cache hits
    /// do not change what counts — a point is charged exactly once.
    pub budget: usize,
    /// The search strategy.
    pub strategy: ExploreStrategy,
    /// Generational population size (≥ 2; ignored by coordinate
    /// descent).
    pub population: usize,
    /// The searchable axes.
    pub space: ExploreSpace,
}

/// Default generational population size.
const DEFAULT_POPULATION: usize = 8;

impl ExploreSpec {
    /// A spec over `space` with the defaults: 25 frames, population 8.
    #[must_use]
    pub fn new(name: &str, strategy: ExploreStrategy, budget: usize, space: ExploreSpace) -> Self {
        ExploreSpec {
            name: name.to_owned(),
            title: None,
            frames: 25,
            budget,
            strategy,
            population: DEFAULT_POPULATION,
            space,
        }
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] when the text is not JSON, otherwise any
    /// schema violation as [`SpecError::Schema`].
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let json = Json::parse(text).map_err(SpecError::Json)?;
        Self::from_json(&json)
    }

    /// Parses a spec from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`SpecError::Schema`] on any schema violation (wrong type,
    /// unknown key, empty axis, zero budget, unknown strategy or
    /// objective).
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let m = as_obj(json, "explore")?;
        check_keys(
            m,
            &[
                "name",
                "title",
                "frames",
                "budget",
                "strategy",
                "population",
                "objectives",
                "space",
            ],
            "explore",
        )?;
        let name = req_str(m, "name", "explore")?.to_owned();
        if name.is_empty() {
            return Err(schema("explore.name", "must not be empty"));
        }
        let title = match m.get("title") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| schema("explore.title", "expected a string"))?
                    .to_owned(),
            ),
        };
        let frames = match m.get("frames") {
            None => 25,
            Some(v) => {
                let n = parse_usize(v, "explore.frames")?;
                if n == 0 {
                    return Err(schema("explore.frames", "must be at least 1"));
                }
                n
            }
        };
        let budget = match m.get("budget") {
            None => return Err(schema("explore.budget", "missing (evaluation budget, ≥ 1)")),
            Some(v) => parse_usize(v, "explore.budget")?,
        };
        if budget == 0 {
            return Err(schema("explore.budget", "must allow at least 1 evaluation"));
        }
        let strategy_tok = req_str(m, "strategy", "explore")?;
        let strategy = ExploreStrategy::parse(strategy_tok).ok_or_else(|| {
            schema(
                "explore.strategy",
                format!(
                    "unknown strategy `{strategy_tok}` (want coordinate-descent or generational)"
                ),
            )
        })?;
        let population = match m.get("population") {
            None => DEFAULT_POPULATION,
            Some(v) => {
                let n = parse_usize(v, "explore.population")?;
                if n < 2 {
                    return Err(schema("explore.population", "must be at least 2"));
                }
                n
            }
        };
        // `objectives` is validated, not stored: the archive always keys
        // on both axes. Spelling one wrong is an error, not a no-op.
        if let Some(v) = m.get("objectives") {
            let arr = v
                .as_array()
                .ok_or_else(|| schema("explore.objectives", "expected an array of tokens"))?;
            let mut seen = Vec::new();
            for (i, o) in arr.iter().enumerate() {
                let p = format!("explore.objectives[{i}]");
                let s = o.as_str().ok_or_else(|| schema(&p, "expected a string"))?;
                let obj = Objective::parse(s).ok_or_else(|| {
                    schema(
                        &p,
                        format!("unknown objective `{s}` (want me_cycles, sad_inflation)"),
                    )
                })?;
                if seen.contains(&obj) {
                    return Err(schema(p, format!("duplicate objective `{s}`")));
                }
                seen.push(obj);
            }
            if seen.len() != 2 {
                return Err(schema(
                    "explore.objectives",
                    "must list exactly me_cycles and sad_inflation \
                     (the archive always keys on both)",
                ));
            }
        }
        let space_json = m
            .get("space")
            .ok_or_else(|| schema("explore.space", "missing (the search axes)"))?;
        let space = ExploreSpace::from_json(space_json, "explore.space")?;
        Ok(ExploreSpec {
            name,
            title,
            frames,
            budget,
            strategy,
            population,
            space,
        })
    }

    /// The spec as a JSON value. Defaulted fields are omitted, so
    /// [`Self::from_json`] round-trips to an equal spec.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("name".to_owned(), Json::Str(self.name.clone()));
        if let Some(t) = &self.title {
            m.insert("title".to_owned(), Json::Str(t.clone()));
        }
        m.insert("frames".to_owned(), Json::Num(self.frames.to_string()));
        m.insert("budget".to_owned(), Json::Num(self.budget.to_string()));
        m.insert(
            "strategy".to_owned(),
            Json::Str(self.strategy.token().to_owned()),
        );
        if self.population != DEFAULT_POPULATION {
            m.insert(
                "population".to_owned(),
                Json::Num(self.population.to_string()),
            );
        }
        m.insert("space".to_owned(), self.space.to_json());
        Json::Obj(m)
    }

    /// The spec as pretty-printed JSON text (the `specs/explore_*.json`
    /// format).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }

    /// The single-point [`ExperimentSpec`] for one candidate (an index
    /// per axis, [`AXES`] entries). `None` when any index is out of
    /// range. This is both how candidates are evaluated and what the
    /// frontier emits, so an explore evaluation and a `rvliw sweep
    /// --spec` replay are the same scenario by construction.
    #[must_use]
    pub fn point_spec(&self, candidate: &[usize]) -> Option<ExperimentSpec> {
        if candidate.len() != AXES {
            return None;
        }
        let s = &self.space;
        let engine = *s.engine.get(*candidate.first()?)?;
        let beta = *s.betas.get(*candidate.get(1)?)?;
        let lbb = *s.lbb_bank_lines.get(*candidate.get(2)?)?;
        let rc = *s.reconfig.get(*candidate.get(3)?)?;
        let pf = *s.prefetch.get(*candidate.get(4)?)?;
        let dc = *s.dcache.get(*candidate.get(5)?)?;
        let ap = *s.approx.get(*candidate.get(6)?)?;
        let se = *s.search.get(*candidate.get(7)?)?;
        let su = *s.substrate.get(*candidate.get(8)?)?;
        let (bandwidths, two_lb) = match engine {
            EngineChoice::Loop(bw) => (vec![bw], vec![false]),
            EngineChoice::TwoLb => (vec![RfuBandwidth::B1x32], vec![true]),
        };
        Some(ExperimentSpec {
            name: format!("{}-point", self.name),
            title: None,
            frames: self.frames,
            baseline: None,
            fault_profile: FaultProfile::None,
            fault_seed: 0,
            cycle_limit: None,
            sweeps: vec![SweepAxes::Loop {
                bandwidths,
                betas: vec![beta],
                two_line_buffers: two_lb,
                lbb_bank_lines: vec![lbb],
                reconfig: vec![rc],
                prefetch: vec![pf],
                dcache: vec![dc],
                approx: vec![ap],
                search: vec![se],
                substrate: vec![su],
            }],
        })
    }
}

/// An incremental Pareto archive over the cycles-vs-inflation plane,
/// using the same dominance relation as [`SweepOutcome::pareto`]
/// ([`ParetoPoint::dominates`]): coincident points share the archive,
/// a strictly dominating insertion evicts what it dominates.
///
/// [`SweepOutcome::pareto`]: crate::sweep::SweepOutcome::pareto
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    points: Vec<ParetoPoint>,
}

impl ParetoArchive {
    /// An empty archive.
    #[must_use]
    pub fn new() -> Self {
        ParetoArchive::default()
    }

    /// Offers a point. Returns `true` when the point was archived (it is
    /// not dominated by any archived point and its label is new);
    /// archiving evicts every point the newcomer strictly dominates.
    pub fn insert(&mut self, p: ParetoPoint) -> bool {
        if self.points.iter().any(|q| q.label == p.label) {
            return false;
        }
        if self.points.iter().any(|q| q.dominates(&p)) {
            return false;
        }
        self.points.retain(|q| !p.dominates(q));
        self.points.push(p);
        true
    }

    /// Whether the archive accounts for `p`: archived under its label,
    /// or strictly dominated by an archived point.
    #[must_use]
    pub fn covers(&self, p: &ParetoPoint) -> bool {
        self.points
            .iter()
            .any(|q| q.label == p.label || q.dominates(p))
    }

    /// Number of archived points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the archive is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The archived points sorted ascending by (ME cycles, SAD
    /// inflation, label) — the deterministic frontier order.
    #[must_use]
    pub fn sorted(&self) -> Vec<ParetoPoint> {
        let mut out = self.points.clone();
        out.sort_by(|a, b| {
            a.me_cycles
                .cmp(&b.me_cycles)
                .then(a.sad_inflation.total_cmp(&b.sad_inflation))
                .then_with(|| a.label.cmp(&b.label))
        });
        out
    }
}

/// One archived frontier point plus the single-point spec that replays
/// it through `rvliw sweep --spec`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The archived measurement.
    pub point: ParetoPoint,
    /// A one-scenario [`ExperimentSpec`] reproducing it.
    pub spec: ExperimentSpec,
}

/// The result of one exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// The spec name.
    pub name: String,
    /// The strategy that ran.
    pub strategy: ExploreStrategy,
    /// The search seed.
    pub seed: u64,
    /// Workload frames evaluated points ran over.
    pub frames: usize,
    /// The evaluation budget.
    pub budget: usize,
    /// Unique design points actually evaluated (≤ budget; failed
    /// evaluations count).
    pub evaluations: usize,
    /// Evaluation requests served from the in-run memo (free).
    pub revisits: usize,
    /// Labels of evaluations that failed (simulation error or
    /// non-finite quality), sorted.
    pub failures: Vec<String>,
    /// The Pareto frontier, ascending (cycles, inflation, label).
    pub frontier: Vec<FrontierPoint>,
}

impl ExploreOutcome {
    /// The outcome as a JSON value — the `rvliw explore` output format.
    ///
    /// Deliberately free of wall-clock, thread-count and cache-counter
    /// fields: for a fixed seed the bytes are identical at any thread
    /// count and on cold or warm caches.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("explore".to_owned(), Json::Str(self.name.clone()));
        m.insert(
            "strategy".to_owned(),
            Json::Str(self.strategy.token().to_owned()),
        );
        m.insert("seed".to_owned(), Json::Num(self.seed.to_string()));
        m.insert("frames".to_owned(), Json::Num(self.frames.to_string()));
        m.insert("budget".to_owned(), Json::Num(self.budget.to_string()));
        m.insert(
            "evaluations".to_owned(),
            Json::Num(self.evaluations.to_string()),
        );
        m.insert("revisits".to_owned(), Json::Num(self.revisits.to_string()));
        m.insert(
            "failures".to_owned(),
            Json::Arr(self.failures.iter().cloned().map(Json::Str).collect()),
        );
        m.insert(
            "frontier".to_owned(),
            Json::Arr(
                self.frontier
                    .iter()
                    .map(|f| {
                        let mut fm = BTreeMap::new();
                        fm.insert("label".to_owned(), Json::Str(f.point.label.clone()));
                        fm.insert(
                            "me_cycles".to_owned(),
                            Json::Num(f.point.me_cycles.to_string()),
                        );
                        fm.insert("sad_inflation".to_owned(), fnum(f.point.sad_inflation));
                        fm.insert("psnr_delta_db".to_owned(), fnum(f.point.psnr_delta_db));
                        fm.insert("spec".to_owned(), f.spec.to_json());
                        Json::Obj(fm)
                    })
                    .collect(),
            ),
        );
        Json::Obj(m)
    }

    /// The outcome as pretty-printed JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }
}

/// Lexicographic fitness comparison: cycles-first or inflation-first,
/// label as the final deterministic tie-break.
fn objective_cmp(a: &ParetoPoint, b: &ParetoPoint, cycles_first: bool) -> Ordering {
    let primary = if cycles_first {
        a.me_cycles
            .cmp(&b.me_cycles)
            .then(a.sad_inflation.total_cmp(&b.sad_inflation))
    } else {
        a.sad_inflation
            .total_cmp(&b.sad_inflation)
            .then(a.me_cycles.cmp(&b.me_cycles))
    };
    primary.then_with(|| a.label.cmp(&b.label))
}

/// Whether evaluation `a` strictly improves on `b` under the alternating
/// objective. Failed evaluations never improve on anything; anything
/// improves on a failure.
fn improves(a: Option<&ParetoPoint>, b: Option<&ParetoPoint>, cycles_first: bool) -> bool {
    match (a, b) {
        (None, _) => false,
        (Some(_), None) => true,
        (Some(a), Some(b)) => objective_cmp(a, b, cycles_first) == Ordering::Less,
    }
}

/// A uniformly drawn candidate (one index per axis).
fn random_candidate(inj: &mut FaultInjector, lens: &[usize; AXES]) -> Vec<usize> {
    lens.iter()
        .map(|&n| usize::try_from(inj.uniform((n as u64).saturating_sub(1))).unwrap_or(0))
        .collect()
}

/// The search driver: memoized fitness evaluation over the batched
/// (optionally supervised, optionally cached) parallel runner, plus the
/// incremental archive and the budget ledger.
struct Explorer<'a, F: Fn(&str) + Sync> {
    spec: &'a ExploreSpec,
    plan: FaultPlan,
    workload: &'a Workload,
    threads: usize,
    progress: &'a F,
    cache: Option<&'a ScenarioCache>,
    config: &'a SupervisorConfig,
    /// Candidate → evaluation (`None` = failed). Presence means the
    /// budget was charged.
    memo: BTreeMap<Vec<usize>, Option<ParetoPoint>>,
    /// Label → candidate, for re-deriving frontier specs at the end.
    labels: BTreeMap<String, Vec<usize>>,
    archive: ParetoArchive,
    /// Monotone count of successful archive insertions (the dry-restart
    /// progress signal; unlike `archive.len()` it never decreases).
    archive_inserts: usize,
    evaluations: usize,
    revisits: usize,
    failures: BTreeSet<String>,
}

impl<'a, F: Fn(&str) + Sync> Explorer<'a, F> {
    fn budget_left(&self) -> usize {
        self.spec.budget.saturating_sub(self.evaluations)
    }

    /// Whether every design point in the space has been evaluated.
    fn saturated(&self) -> bool {
        self.memo.len() >= self.spec.space.size()
    }

    /// Evaluates a batch of candidates: revisits are served from the
    /// memo for free; fresh candidates are charged against the budget
    /// (first-come within the batch) and run as one deterministic batch
    /// on the parallel runner. Returns one slot per input candidate;
    /// `None` means failed, budget-truncated, or out-of-range.
    fn evaluate_batch(&mut self, cands: &[Vec<usize>]) -> Vec<Option<ParetoPoint>> {
        let mut fresh: Vec<Vec<usize>> = Vec::new();
        for c in cands {
            if self.memo.contains_key(c) || fresh.contains(c) {
                self.revisits += 1;
                continue;
            }
            if fresh.len() < self.budget_left() {
                fresh.push(c.clone());
            }
        }
        let mut scenarios = Vec::new();
        let mut runnable: Vec<Vec<usize>> = Vec::new();
        for c in &fresh {
            let expanded = self
                .spec
                .point_spec(c)
                .map(|point| point.scenarios())
                .and_then(|r| r.ok())
                .and_then(|scs| scs.into_iter().next());
            match expanded {
                Some(sc) => {
                    scenarios.push(sc);
                    runnable.push(c.clone());
                }
                None => {
                    // Out-of-range candidate: unreachable from the
                    // strategies, but charged and recorded as a failure
                    // rather than panicking.
                    self.evaluations += 1;
                    self.failures.insert(format!("candidate {c:?}"));
                    self.memo.insert(c.clone(), None);
                }
            }
        }
        if !scenarios.is_empty() {
            let (results, _health) = run_scenario_list_supervised(
                &scenarios,
                self.workload,
                self.threads,
                self.progress,
                self.cache,
                self.config,
            );
            for ((c, sc), res) in runnable.iter().zip(&scenarios).zip(results) {
                self.evaluations += 1;
                let point = match res {
                    Ok(me) => {
                        // Exact scenarios carry no quality block: they are
                        // golden-identical, i.e. zero inflation.
                        let (inflation, psnr) = match me.quality {
                            Some(q) => (q.sad_inflation, q.psnr_delta_db),
                            None => (0.0, 0.0),
                        };
                        if inflation.is_nan() {
                            None
                        } else {
                            Some(ParetoPoint {
                                label: sc.label.clone(),
                                me_cycles: me.me_cycles,
                                sad_inflation: inflation,
                                psnr_delta_db: psnr,
                            })
                        }
                    }
                    Err(_) => None,
                };
                match &point {
                    Some(p) => {
                        if self.archive.insert(p.clone()) {
                            self.archive_inserts += 1;
                        }
                        self.labels.insert(p.label.clone(), c.clone());
                    }
                    None => {
                        self.failures.insert(sc.label.clone());
                    }
                }
                self.memo.insert(c.clone(), point);
            }
        }
        cands
            .iter()
            .map(|c| self.memo.get(c).cloned().flatten())
            .collect()
    }

    fn evaluate_one(&mut self, cand: &[usize]) -> Option<ParetoPoint> {
        self.evaluate_batch(std::slice::from_ref(&cand.to_vec()))
            .into_iter()
            .next()
            .flatten()
    }

    /// Coordinate descent with random restarts. Each restart draws a
    /// start point from the `explore-cd` substream, then climbs one axis
    /// at a time; passes alternate the lexicographic objective
    /// (cycles-first on even passes, inflation-first on odd) so both
    /// ends of the front are pulled on. Stops on budget exhaustion,
    /// space saturation, or two consecutive restarts that archive
    /// nothing new.
    fn coordinate_descent(&mut self) {
        let lens = self.spec.space.lens();
        let mut dry = 0usize;
        let mut restart: u64 = 0;
        while dry < 2 && self.budget_left() > 0 && !self.saturated() {
            let inserts_before = self.archive_inserts;
            let mut inj = self.plan.injector("explore-cd", &restart.to_string());
            let mut current = random_candidate(&mut inj, &lens);
            let mut best = self.evaluate_one(&current);
            let max_passes = AXES + 4;
            let mut stale_passes = 0usize;
            for pass in 0..max_passes {
                if self.budget_left() == 0 {
                    break;
                }
                let cycles_first = pass.is_multiple_of(2);
                let mut improved = false;
                for (axis, &len) in lens.iter().enumerate() {
                    if len <= 1 || self.budget_left() == 0 {
                        continue;
                    }
                    let alts: Vec<Vec<usize>> = (0..len)
                        .filter(|&v| current.get(axis) != Some(&v))
                        .map(|v| {
                            let mut c = current.clone();
                            if let Some(slot) = c.get_mut(axis) {
                                *slot = v;
                            }
                            c
                        })
                        .collect();
                    let evals = self.evaluate_batch(&alts);
                    for (c, e) in alts.iter().zip(evals) {
                        if improves(e.as_ref(), best.as_ref(), cycles_first) {
                            best = e;
                            current = c.clone();
                            improved = true;
                        }
                    }
                }
                if improved {
                    stale_passes = 0;
                } else {
                    stale_passes += 1;
                    // One dry pass per objective direction: converged.
                    if stale_passes >= 2 {
                        break;
                    }
                }
            }
            if self.archive_inserts == inserts_before {
                dry += 1;
            } else {
                dry = 0;
            }
            restart = restart.wrapping_add(1);
        }
    }

    /// A small (μ+λ) generational loop. The initial population comes
    /// from the `explore-gen-init` substream; each generation keeps the
    /// better half under the alternating objective and refills with
    /// children that mutate 1–2 axes of a kept parent (substream
    /// `explore-gen-mutate`, salted per generation and child). Stops on
    /// budget exhaustion, space saturation, or two consecutive
    /// generations that archive nothing new.
    fn generational(&mut self) {
        let lens = self.spec.space.lens();
        let pop_target = self.spec.population.min(self.spec.space.size()).max(2);
        let mut inj = self.plan.injector("explore-gen-init", "0");
        let mut pop: Vec<Vec<usize>> = Vec::new();
        let mut tries = 0usize;
        while pop.len() < pop_target && tries < pop_target.saturating_mul(16) {
            let c = random_candidate(&mut inj, &lens);
            if !pop.contains(&c) {
                pop.push(c);
            }
            tries += 1;
        }
        self.evaluate_batch(&pop);
        let mut dry = 0usize;
        let mut generation: u64 = 0;
        while dry < 2 && self.budget_left() > 0 && !self.saturated() {
            let inserts_before = self.archive_inserts;
            let cycles_first = generation.is_multiple_of(2);
            let mut ranked = pop.clone();
            ranked.sort_by(|x, y| {
                let ex = self.memo.get(x).cloned().flatten();
                let ey = self.memo.get(y).cloned().flatten();
                match (&ex, &ey) {
                    (Some(a), Some(b)) => objective_cmp(a, b, cycles_first).then_with(|| x.cmp(y)),
                    (Some(_), None) => Ordering::Less,
                    (None, Some(_)) => Ordering::Greater,
                    (None, None) => x.cmp(y),
                }
            });
            let keep = ranked.len().div_ceil(2).max(1);
            ranked.truncate(keep);
            let mut children: Vec<Vec<usize>> = Vec::new();
            for i in 0..pop_target.saturating_sub(keep).max(1) {
                let salt = format!("{generation}/{i}");
                let mut inj = self.plan.injector("explore-gen-mutate", &salt);
                let parent_idx =
                    usize::try_from(inj.uniform(keep.saturating_sub(1) as u64)).unwrap_or(0);
                let Some(parent) = ranked.get(parent_idx) else {
                    continue;
                };
                let mut child = parent.clone();
                let mutations = 1 + usize::try_from(inj.uniform(1)).unwrap_or(0);
                for _ in 0..mutations {
                    let axis =
                        usize::try_from(inj.uniform((AXES as u64).saturating_sub(1))).unwrap_or(0);
                    let Some(&len) = lens.get(axis) else {
                        continue;
                    };
                    if len <= 1 {
                        continue;
                    }
                    // A step in 1..len keeps the mutated index distinct.
                    let step = 1 + usize::try_from(inj.uniform((len as u64).saturating_sub(2)))
                        .unwrap_or(0);
                    if let Some(slot) = child.get_mut(axis) {
                        *slot = (*slot + step) % len;
                    }
                }
                children.push(child);
            }
            self.evaluate_batch(&children);
            pop = ranked;
            pop.extend(children);
            if self.archive_inserts == inserts_before {
                dry += 1;
            } else {
                dry = 0;
            }
            generation = generation.wrapping_add(1);
        }
    }

    fn into_outcome(self, seed: u64) -> ExploreOutcome {
        let frontier = self
            .archive
            .sorted()
            .into_iter()
            .filter_map(|point| {
                let cand = self.labels.get(&point.label)?;
                let spec = self.spec.point_spec(cand)?;
                Some(FrontierPoint { point, spec })
            })
            .collect();
        ExploreOutcome {
            name: self.spec.name.clone(),
            strategy: self.spec.strategy,
            seed,
            frames: self.spec.frames,
            budget: self.spec.budget,
            evaluations: self.evaluations,
            revisits: self.revisits,
            failures: self.failures.into_iter().collect(),
            frontier,
        }
    }
}

/// Runs one exploration: `spec`'s strategy over `spec`'s space, seeded
/// with `seed`, evaluating fitness on `workload` across `threads`
/// workers (optionally through the on-disk `cache` and the supervised
/// runner `config`).
///
/// For a fixed `(spec, seed)` the returned outcome — and its JSON
/// rendering — is identical at any thread count and on cold or warm
/// caches; see the module docs for the contract.
pub fn run_explore(
    spec: &ExploreSpec,
    seed: u64,
    workload: &Workload,
    threads: usize,
    progress: impl Fn(&str) + Sync,
    cache: Option<&ScenarioCache>,
    config: &SupervisorConfig,
) -> ExploreOutcome {
    let mut explorer = Explorer {
        spec,
        plan: FaultPlan::from_profile(FaultProfile::None, seed),
        workload,
        threads,
        progress: &progress,
        cache,
        config,
        memo: BTreeMap::new(),
        labels: BTreeMap::new(),
        archive: ParetoArchive::new(),
        archive_inserts: 0,
        evaluations: 0,
        revisits: 0,
        failures: BTreeSet::new(),
    };
    match spec.strategy {
        ExploreStrategy::CoordinateDescent => explorer.coordinate_descent(),
        ExploreStrategy::Generational => explorer.generational(),
    }
    explorer.into_outcome(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ExploreSpace {
        let mut s = ExploreSpace::new(
            vec![
                EngineChoice::Loop(RfuBandwidth::B1x32),
                EngineChoice::Loop(RfuBandwidth::B2x64),
                EngineChoice::TwoLb,
            ],
            vec![1, 5],
        );
        s.lbb_bank_lines = vec![None, Some(17)];
        s
    }

    fn spec() -> ExploreSpec {
        let mut sp = ExploreSpec::new("t", ExploreStrategy::CoordinateDescent, 6, space());
        sp.frames = 1;
        sp
    }

    #[test]
    fn spec_round_trips_through_json() {
        let sp = spec();
        let parsed = ExploreSpec::from_json_str(&sp.to_json_string()).unwrap();
        assert_eq!(parsed, sp);
        // Non-default axes survive too.
        let mut sp = spec();
        sp.strategy = ExploreStrategy::Generational;
        sp.population = 4;
        sp.space.prefetch = vec![None, Some(16)];
        sp.space.dcache = vec![
            None,
            Some(DcacheSpec {
                capacity_kb: 16,
                ways: 2,
            }),
        ];
        sp.space.approx = vec![ApproxSad::Exact, ApproxSad::SubsampledRows { step: 2 }];
        sp.space.reconfig = vec![
            ReconfigSpec::zero(),
            ReconfigSpec {
                penalty: 100,
                contexts: 2,
                prefetch_hiding: true,
            },
        ];
        let parsed = ExploreSpec::from_json_str(&sp.to_json_string()).unwrap();
        assert_eq!(parsed, sp);
    }

    #[test]
    fn point_spec_expands_to_exactly_one_scenario() {
        let sp = spec();
        let lens = sp.space.lens();
        let mut labels = BTreeSet::new();
        // Exhaustive over the first three axes (the rest are singleton).
        for e in 0..lens[0] {
            for b in 0..lens[1] {
                for l in 0..lens[2] {
                    let cand = vec![e, b, l, 0, 0, 0, 0, 0, 0];
                    let point = sp.point_spec(&cand).unwrap();
                    let scs = point.scenarios().unwrap();
                    assert_eq!(scs.len(), 1);
                    assert!(labels.insert(scs[0].label.clone()), "{}", scs[0].label);
                }
            }
        }
        assert_eq!(labels.len(), sp.space.size());
        // Out-of-range and wrong-arity candidates are None, not panics.
        assert!(sp.point_spec(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_none());
        assert!(sp.point_spec(&[0, 0, 0]).is_none());
    }

    #[test]
    fn archive_keeps_only_nondominated_points() {
        let p = |label: &str, cyc: u64, infl: f64| ParetoPoint {
            label: label.to_owned(),
            me_cycles: cyc,
            sad_inflation: infl,
            psnr_delta_db: 0.0,
        };
        let mut a = ParetoArchive::new();
        assert!(a.insert(p("x", 100, 0.02)));
        assert!(a.insert(p("y", 200, 0.01))); // trade-off: both stay
        assert!(!a.insert(p("z", 300, 0.03))); // dominated by both
        assert!(a.insert(p("w", 50, 0.0))); // dominates x and y
        assert_eq!(a.len(), 1);
        assert_eq!(a.sorted()[0].label, "w");
        // Coincident twin shares the archive; same-label re-offer is a
        // no-op.
        assert!(a.insert(p("w2", 50, 0.0)));
        assert!(!a.insert(p("w", 50, 0.0)));
        assert_eq!(a.len(), 2);
        // Every offered point is covered: archived or dominated.
        for q in [p("x", 100, 0.02), p("y", 200, 0.01), p("z", 300, 0.03)] {
            assert!(a.covers(&q), "{}", q.label);
        }
    }

    #[test]
    fn duplicate_axis_values_are_rejected() {
        let mut s = space();
        s.betas = vec![1, 5, 1];
        let sp = ExploreSpec::new("dup", ExploreStrategy::Generational, 4, s);
        let err = ExploreSpec::from_json_str(&sp.to_json_string()).unwrap_err();
        assert!(matches!(err, SpecError::Schema { .. }), "{err}");
        // Two zero-penalty reconfig models normalize to the same label.
        let mut s = space();
        s.reconfig = vec![
            ReconfigSpec::zero(),
            ReconfigSpec {
                penalty: 0,
                contexts: 2,
                prefetch_hiding: false,
            },
        ];
        let sp = ExploreSpec::new("dup2", ExploreStrategy::Generational, 4, s);
        let err = ExploreSpec::from_json_str(&sp.to_json_string()).unwrap_err();
        assert!(matches!(err, SpecError::Schema { .. }), "{err}");
    }
}
