//! The benchmark workload: a synthetic sequence encoded on the host, with
//! the full `GetSad` call trace.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mpeg4_enc::me::{MotionSearch, SearchAlgorithm};
use mpeg4_enc::{
    ApproxSad, EncodeReport, Encoder, EncoderConfig, Frame, QualityMetrics, SyntheticSequence,
};

/// An encoded sequence plus everything the simulator needs to replay its
/// motion-estimation work.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The source frames.
    pub frames: Vec<Frame>,
    /// The host encoding run (reconstructions + `GetSad` traces).
    pub report: EncodeReport,
    /// Luma row stride in bytes.
    pub stride: u32,
    /// Speed-vs-quality metrics against the golden full-search encode.
    /// `None` for base workloads; populated by [`Workload::derived`].
    pub quality: Option<QualityMetrics>,
}

/// FNV-1a over the workload's source luma planes: a cheap process-local
/// fingerprint used only to memoize derived encodes (never persisted).
fn frames_fingerprint(frames: &[Frame]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for f in frames {
        for &b in &(f.y.width() as u64).to_le_bytes() {
            eat(b);
        }
        for &b in &(f.y.height() as u64).to_le_bytes() {
            eat(b);
        }
        for y in 0..f.y.height() {
            for &b in f.y.row(y) {
                eat(b);
            }
        }
    }
    h
}

/// The golden encoder configuration every quality number is measured
/// against: exhaustive full search (range 8) with exact SAD and
/// half-sample refinement.
#[must_use]
pub fn golden_config() -> EncoderConfig {
    EncoderConfig {
        search: MotionSearch {
            algorithm: SearchAlgorithm::Full { range: 8 },
            half_sample: true,
            approx: ApproxSad::Exact,
        },
        ..EncoderConfig::default()
    }
}

/// Golden full-search exact encode of `frames`, memoized per frame set.
/// Encoding costs seconds for the paper sequence and every approximate
/// scenario over the same frames shares one golden reference.
fn golden_report(frames: &[Frame]) -> Arc<EncodeReport> {
    static GOLDEN: OnceLock<Mutex<HashMap<u64, Arc<EncodeReport>>>> = OnceLock::new();
    let key = frames_fingerprint(frames);
    let cache = GOLDEN.get_or_init(|| Mutex::new(HashMap::new()));
    if let Ok(map) = cache.lock() {
        if let Some(hit) = map.get(&key) {
            return Arc::clone(hit);
        }
    }
    let report = Arc::new(Encoder::new(golden_config()).encode(frames));
    if let Ok(mut map) = cache.lock() {
        map.insert(key, Arc::clone(&report));
    }
    report
}

impl Workload {
    /// The paper's workload: 25 synthetic QCIF frames, diamond search with
    /// half-sample refinement, Q = 10.
    #[must_use]
    pub fn paper() -> Self {
        Workload::from_sequence(&SyntheticSequence::qcif_25(), EncoderConfig::default())
    }

    /// The paper's workload, host-encoded at most once per process and
    /// shared behind an [`Arc`]. Encoding the 25-frame sequence costs
    /// seconds; everything downstream only reads the workload, so repeated
    /// callers (the `tables` binary, benches, tests) should prefer this.
    #[must_use]
    pub fn paper_shared() -> Arc<Workload> {
        static PAPER: OnceLock<Arc<Workload>> = OnceLock::new();
        Arc::clone(PAPER.get_or_init(|| Arc::new(Workload::paper())))
    }

    /// A reduced workload for unit tests and doc-tests (64×48, 3 frames).
    #[must_use]
    pub fn tiny() -> Self {
        Workload::from_sequence(
            &SyntheticSequence::new(64, 48, 3, 7),
            EncoderConfig::default(),
        )
    }

    /// A medium workload for benches (QCIF, few frames).
    #[must_use]
    pub fn qcif_frames(frames: usize) -> Self {
        Workload::from_sequence(
            &SyntheticSequence::new(176, 144, frames, 0x4652_4d4e),
            EncoderConfig::default(),
        )
    }

    /// Encodes `seq` with `config` and captures the traces.
    #[must_use]
    pub fn from_sequence(seq: &SyntheticSequence, config: EncoderConfig) -> Self {
        let frames = seq.generate();
        let report = Encoder::new(config).encode(&frames);
        let stride = frames[0].width() as u32;
        Workload {
            frames,
            report,
            stride,
            quality: None,
        }
    }

    /// Re-encodes this workload's source frames with an approximate SAD
    /// and/or a different search algorithm, attaching speed-vs-quality
    /// metrics measured against the golden full-search encode of the same
    /// frames.
    ///
    /// Derived workloads are memoized process-wide (keyed by the source
    /// frames and the approximation knobs): a sweep visiting the same
    /// approximate point from several bandwidth scenarios encodes it once.
    #[must_use]
    pub fn derived(&self, approx: ApproxSad, search: Option<SearchAlgorithm>) -> Arc<Workload> {
        type DerivedMap = HashMap<(u64, String), Arc<Workload>>;
        static DERIVED: OnceLock<Mutex<DerivedMap>> = OnceLock::new();
        let key = (
            frames_fingerprint(&self.frames),
            format!("{approx:?}|{search:?}"),
        );
        let cache = DERIVED.get_or_init(|| Mutex::new(HashMap::new()));
        if let Ok(map) = cache.lock() {
            if let Some(hit) = map.get(&key) {
                return Arc::clone(hit);
            }
        }
        let mut config = EncoderConfig::default();
        config.search.approx = approx;
        if let Some(algorithm) = search {
            config.search.algorithm = algorithm;
        }
        let report = Encoder::new(config).encode(&self.frames);
        let golden = golden_report(&self.frames);
        let quality = QualityMetrics::compare(&self.frames, &report, &golden);
        let derived = Arc::new(Workload {
            frames: self.frames.clone(),
            report,
            stride: self.stride,
            quality: Some(quality),
        });
        if let Ok(mut map) = cache.lock() {
            map.insert(key, Arc::clone(&derived));
        }
        derived
    }

    /// Total `GetSad` calls in the trace.
    #[must_use]
    pub fn num_calls(&self) -> usize {
        self.report.num_sad_calls()
    }

    /// Share of diagonal-interpolation calls (the paper's sequence: ≈18 %).
    #[must_use]
    pub fn diag_share(&self) -> f64 {
        self.report.interp_shares().3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_has_traces() {
        let w = Workload::tiny();
        assert!(w.num_calls() > 0);
        assert_eq!(w.stride, 64);
        assert!(w.quality.is_none());
    }

    #[test]
    fn paper_workload_diag_share_near_18_percent() {
        // This is the property the synthetic sequence is tuned for. It is
        // moderately expensive (~1 s release, a few seconds debug), but it
        // guards the central workload assumption.
        let w = Workload::paper();
        let d = w.diag_share();
        assert!((0.12..=0.24).contains(&d), "diagonal share {d:.3}");
        assert_eq!(w.frames.len(), 25);
    }

    #[test]
    fn derived_workloads_carry_quality_and_memoize() {
        let w = Workload::tiny();
        let d = w.derived(ApproxSad::SubsampledRows { step: 2 }, None);
        let q = d.quality.expect("derived workloads carry quality");
        assert!(q.sad_inflation >= 0.0);
        // Second request hits the memo: same allocation.
        let again = w.derived(ApproxSad::SubsampledRows { step: 2 }, None);
        assert!(Arc::ptr_eq(&d, &again));
        // The golden configuration itself scores exactly zero.
        let exact = w.derived(ApproxSad::Exact, Some(SearchAlgorithm::Full { range: 8 }));
        let gq = exact.quality.expect("golden-config derivation has quality");
        assert_eq!(gq.sad_inflation, 0.0);
        assert_eq!(gq.psnr_delta_db, 0.0);
    }
}
