//! The benchmark workload: a synthetic sequence encoded on the host, with
//! the full `GetSad` call trace.

use std::sync::{Arc, OnceLock};

use mpeg4_enc::{EncodeReport, Encoder, EncoderConfig, Frame, SyntheticSequence};

/// An encoded sequence plus everything the simulator needs to replay its
/// motion-estimation work.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The source frames.
    pub frames: Vec<Frame>,
    /// The host encoding run (reconstructions + `GetSad` traces).
    pub report: EncodeReport,
    /// Luma row stride in bytes.
    pub stride: u32,
}

impl Workload {
    /// The paper's workload: 25 synthetic QCIF frames, diamond search with
    /// half-sample refinement, Q = 10.
    #[must_use]
    pub fn paper() -> Self {
        Workload::from_sequence(&SyntheticSequence::qcif_25(), EncoderConfig::default())
    }

    /// The paper's workload, host-encoded at most once per process and
    /// shared behind an [`Arc`]. Encoding the 25-frame sequence costs
    /// seconds; everything downstream only reads the workload, so repeated
    /// callers (the `tables` binary, benches, tests) should prefer this.
    #[must_use]
    pub fn paper_shared() -> Arc<Workload> {
        static PAPER: OnceLock<Arc<Workload>> = OnceLock::new();
        Arc::clone(PAPER.get_or_init(|| Arc::new(Workload::paper())))
    }

    /// A reduced workload for unit tests and doc-tests (64×48, 3 frames).
    #[must_use]
    pub fn tiny() -> Self {
        Workload::from_sequence(
            &SyntheticSequence::new(64, 48, 3, 7),
            EncoderConfig::default(),
        )
    }

    /// A medium workload for benches (QCIF, few frames).
    #[must_use]
    pub fn qcif_frames(frames: usize) -> Self {
        Workload::from_sequence(
            &SyntheticSequence::new(176, 144, frames, 0x4652_4d4e),
            EncoderConfig::default(),
        )
    }

    /// Encodes `seq` with `config` and captures the traces.
    #[must_use]
    pub fn from_sequence(seq: &SyntheticSequence, config: EncoderConfig) -> Self {
        let frames = seq.generate();
        let report = Encoder::new(config).encode(&frames);
        let stride = frames[0].width() as u32;
        Workload {
            frames,
            report,
            stride,
        }
    }

    /// Total `GetSad` calls in the trace.
    #[must_use]
    pub fn num_calls(&self) -> usize {
        self.report.num_sad_calls()
    }

    /// Share of diagonal-interpolation calls (the paper's sequence: ≈18 %).
    #[must_use]
    pub fn diag_share(&self) -> f64 {
        self.report.interp_shares().3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_has_traces() {
        let w = Workload::tiny();
        assert!(w.num_calls() > 0);
        assert_eq!(w.stride, 64);
    }

    #[test]
    fn paper_workload_diag_share_near_18_percent() {
        // This is the property the synthetic sequence is tuned for. It is
        // moderately expensive (~1 s release, a few seconds debug), but it
        // guards the central workload assumption.
        let w = Workload::paper();
        let d = w.diag_share();
        assert!((0.12..=0.24).contains(&d), "diagonal share {d:.3}");
        assert_eq!(w.frames.len(), 25);
    }
}
