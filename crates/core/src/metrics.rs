//! Machine-readable snapshots of the reproduced tables.
//!
//! [`TablesSnapshot`] flattens every integer cell of Tables 1–7 (cycle
//! counts, stall counts, static latencies) into named cells that serialize
//! to JSON and compare exactly. The floating-point columns of the tables
//! (speedups, shares, reductions) are ratios of these integers, so an
//! integer-only comparison is a complete drift detector while staying
//! bit-exact across platforms.
//!
//! The `tables --check BENCH_tables.json` regression gate re-runs the case
//! study and diffs the fresh snapshot against the committed one; any
//! difference fails CI.

use std::collections::BTreeMap;

use rvliw_trace::Json;

use crate::tables::CaseStudy;

/// Every integer cell of Tables 1–7, keyed by a stable `table/row/column`
/// path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TablesSnapshot {
    /// Cell path → value. Sorted by path for stable serialization.
    pub cells: BTreeMap<String, u64>,
}

impl TablesSnapshot {
    /// Captures the integer cells of every table of `cs`.
    #[must_use]
    pub fn capture(cs: &CaseStudy) -> Self {
        let mut cells = BTreeMap::new();
        let mut put = |k: String, v: u64| {
            cells.insert(k, v);
        };

        put("workload/calls".into(), cs.calls);
        put("workload/stride".into(), u64::from(cs.stride));

        let t1 = cs.table1();
        for r in &t1.rows {
            put(format!("table1/{}/cycles", r.name), r.cycles);
        }

        let t2 = cs.table2();
        put("table2/Orig/cycles".into(), t2.orig_cycles);
        for r in &t2.rows {
            let bw = r.bw.label();
            put(format!("table2/{bw}/b1/lat"), r.lat_b1);
            put(format!("table2/{bw}/b1/cycles"), r.cycles_b1);
            put(format!("table2/{bw}/b5/lat"), r.lat_b5);
            put(format!("table2/{bw}/b5/cycles"), r.cycles_b5);
        }

        let t3 = cs.table3();
        for r in &t3.rows {
            let bw = r.bw.label();
            put(format!("table3/{bw}/lat_b1"), r.lat_b1);
            put(format!("table3/{bw}/lat_b5"), r.lat_b5);
        }

        let t4 = cs.table4();
        put("table4/Orig/stalls".into(), t4.orig_stalls);
        for r in &t4.rows {
            let bw = r.bw.label();
            put(format!("table4/{bw}/b1/stalls"), r.stalls_b1);
            put(format!("table4/{bw}/b5/stalls"), r.stalls_b5);
        }

        let t6 = cs.table6();
        for r in &t6.rows {
            put(
                format!("table6/b{}/{}/static_cycles", r.beta, r.bw.label()),
                r.static_cycles,
            );
        }

        let t7 = cs.table7();
        put("table7/Orig/cycles".into(), t7.orig_cycles);
        put("table7/Orig/stalls".into(), t7.orig_stalls);
        for r in &t7.rows {
            put(format!("table7/b{}/lat", r.beta), r.lat);
            put(format!("table7/b{}/ex_cycles", r.beta), r.ex_cycles);
            put(format!("table7/b{}/stalls", r.beta), r.stalls);
        }

        TablesSnapshot { cells }
    }

    /// Serializes the snapshot as a JSON object (cell path → integer).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.cells
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(v.to_string())))
                .collect(),
        )
    }

    /// Reads a snapshot back from the JSON produced by
    /// [`TablesSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending cell when the value is not an
    /// object of unsigned integers.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let Json::Obj(m) = json else {
            return Err("tables snapshot must be a JSON object".into());
        };
        let mut cells = BTreeMap::new();
        for (k, v) in m {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("cell `{k}` is not an unsigned integer"))?;
            cells.insert(k.clone(), n);
        }
        Ok(TablesSnapshot { cells })
    }

    /// Compares `self` (freshly measured) against `baseline` (committed).
    /// Returns one human-readable line per drifted, missing or unexpected
    /// cell; empty means bit-identical.
    #[must_use]
    pub fn diff(&self, baseline: &TablesSnapshot) -> Vec<String> {
        let mut out = Vec::new();
        for (k, base) in &baseline.cells {
            match self.cells.get(k) {
                None => out.push(format!("{k}: missing from fresh run (baseline {base})")),
                Some(fresh) if fresh != base => {
                    let delta = *fresh as i128 - *base as i128;
                    out.push(format!(
                        "{k}: baseline {base}, measured {fresh} ({delta:+})"
                    ));
                }
                Some(_) => {}
            }
        }
        for k in self.cells.keys() {
            if !baseline.cells.contains_key(k) {
                out.push(format!("{k}: not present in baseline"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    #[test]
    fn snapshot_roundtrips_and_diffs() {
        let cs = CaseStudy::run(&Workload::tiny());
        let snap = TablesSnapshot::capture(&cs);
        assert!(snap.cells.len() > 30, "all tables contribute cells");
        assert!(snap.cells.contains_key("table1/Orig/cycles"));
        assert!(snap.cells.contains_key("table7/b5/ex_cycles"));

        let json = snap.to_json();
        let back = TablesSnapshot::from_json(&Json::parse(&json.to_string()).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert!(snap.diff(&back).is_empty());

        let mut drifted = snap.clone();
        *drifted.cells.get_mut("table1/Orig/cycles").unwrap() += 1;
        drifted.cells.remove("table7/b5/stalls");
        drifted.cells.insert("table9/bogus".into(), 1);
        let d = drifted.diff(&snap);
        assert_eq!(d.len(), 3);
        assert!(d.iter().any(|l| l.contains("(+1)")));
    }

    #[test]
    fn from_json_rejects_non_integer_cells() {
        let j = Json::parse(r#"{"a": "x"}"#).unwrap();
        assert!(TablesSnapshot::from_json(&j).is_err());
        let j = Json::parse("[1,2]").unwrap();
        assert!(TablesSnapshot::from_json(&j).is_err());
    }
}
