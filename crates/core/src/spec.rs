//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is a serializable description of a scenario grid:
//! which design-space axes to sweep (kernel variant, RFU bandwidth,
//! technology scaling β, line-buffer scheme and geometry, reconfiguration
//! model) plus run-wide knobs (workload frames, baseline label, fault
//! profile/seed, cycle budget). The sweep engine (`crate::sweep`) expands
//! it into concrete [`Scenario`]s and runs them on the deterministic
//! parallel runner.
//!
//! Specs serialize as hand-rolled JSON over [`rvliw_trace::Json`] — the
//! build environment is offline, so no serde. Parsing is strict: unknown
//! keys, wrong types and out-of-range values are typed [`SpecError`]s,
//! never panics, and `parse(serialize(spec)) == spec` holds for every
//! representable spec.
//!
//! The seven `specs/table*.json` files at the workspace root describe the
//! paper's Tables 1–7; their union is exactly the hardcoded grid of
//! [`CaseStudy::scenarios`](crate::CaseStudy::scenarios), which CI asserts
//! bit-identical against the golden `BENCH_tables.json`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mpeg4_enc::me::SearchAlgorithm;
use mpeg4_enc::ApproxSad;
use rvliw_fault::{FaultPlan, FaultProfile};
use rvliw_isa::Substrate;
use rvliw_kernels::Variant;
use rvliw_mem::{CacheGeometry, ReplacementPolicy};
use rvliw_rfu::{ReconfigModel, RfuBandwidth};
use rvliw_trace::Json;

use crate::scenario::{approx_token, parse_approx, parse_search, search_token, Scenario};

/// Why a spec could not be parsed or expanded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The text is not JSON at all.
    Json(String),
    /// The JSON does not match the spec schema; `path` names the
    /// offending location (e.g. `sweeps[1].betas[0]`).
    Schema {
        /// Dotted path of the offending field.
        path: String,
        /// What was wrong with it.
        message: String,
    },
    /// Two expanded scenarios share a label. Labels key fault substreams
    /// and snapshot cells, so duplicates would silently alias state.
    DuplicateLabel {
        /// The label that appeared twice.
        label: String,
    },
    /// The expanded grid does not match what the consumer needs (the
    /// tables binary requires exactly the paper grid).
    GridMismatch {
        /// What differed.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid spec JSON: {e}"),
            SpecError::Schema { path, message } => write!(f, "spec field `{path}`: {message}"),
            SpecError::DuplicateLabel { label } => write!(
                f,
                "duplicate scenario label `{label}` (labels key fault substreams \
                 and snapshot cells and must be unique within a spec)"
            ),
            SpecError::GridMismatch { message } => write!(f, "scenario grid mismatch: {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

pub(crate) fn schema(path: impl Into<String>, message: impl Into<String>) -> SpecError {
    SpecError::Schema {
        path: path.into(),
        message: message.into(),
    }
}

/// A serializable reconfiguration model: the paper's zero-penalty baseline
/// or a multi-context penalty model (optionally with configuration
/// prefetch hiding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigSpec {
    /// Cycles per configuration load (0 = the paper's free baseline).
    pub penalty: u64,
    /// Resident configuration contexts (ignored when `penalty` is 0).
    pub contexts: usize,
    /// Whether idle time since the previous activation hides the penalty.
    pub prefetch_hiding: bool,
}

impl ReconfigSpec {
    /// The paper's baseline: reconfiguration is free.
    #[must_use]
    pub fn zero() -> Self {
        ReconfigSpec {
            penalty: 0,
            contexts: 1,
            prefetch_hiding: false,
        }
    }

    /// The runnable [`ReconfigModel`] this spec describes.
    #[must_use]
    pub fn model(&self) -> ReconfigModel {
        if self.penalty == 0 {
            return ReconfigModel::zero_penalty();
        }
        let m = ReconfigModel::with_penalty(self.penalty, self.contexts.max(1));
        if self.prefetch_hiding {
            m.with_prefetch_hiding()
        } else {
            m
        }
    }

    /// Label suffix distinguishing non-baseline models (empty for the
    /// zero-penalty baseline, so paper-grid labels are unchanged).
    pub(crate) fn label_suffix(&self) -> String {
        if self.penalty == 0 {
            String::new()
        } else {
            let pf = if self.prefetch_hiding { "+pf" } else { "" };
            format!(" rc={}x{}{}", self.penalty, self.contexts, pf)
        }
    }

    pub(crate) fn to_json(self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("penalty".to_owned(), Json::Num(self.penalty.to_string()));
        m.insert("contexts".to_owned(), Json::Num(self.contexts.to_string()));
        m.insert(
            "prefetch_hiding".to_owned(),
            Json::Bool(self.prefetch_hiding),
        );
        Json::Obj(m)
    }

    pub(crate) fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        let m = as_obj(j, path)?;
        check_keys(m, &["penalty", "contexts", "prefetch_hiding"], path)?;
        let penalty = match m.get("penalty") {
            None => 0,
            Some(v) => parse_u64(v, &format!("{path}.penalty"))?,
        };
        let contexts = match m.get("contexts") {
            None => 1,
            Some(v) => parse_usize(v, &format!("{path}.contexts"))?,
        };
        if contexts == 0 {
            return Err(schema(
                format!("{path}.contexts"),
                "at least one resident context is required",
            ));
        }
        let prefetch_hiding = match m.get("prefetch_hiding") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => {
                return Err(schema(
                    format!("{path}.prefetch_hiding"),
                    "expected a boolean",
                ))
            }
        };
        Ok(ReconfigSpec {
            penalty,
            contexts,
            prefetch_hiding,
        })
    }
}

/// A serializable data-cache geometry override: total capacity (in KB)
/// and associativity, with the paper's 32-byte line size and LRU policy.
///
/// Serialized as a compact token, e.g. `"16k/2w"` (16 KB, 2-way). Both
/// numbers must be powers of two so the cache model's index math stays on
/// shift-and-mask paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcacheSpec {
    /// Total capacity in kilobytes (a power of two, at least 1).
    pub capacity_kb: u32,
    /// Associativity (ways; a power of two in 1..=16).
    pub ways: u32,
}

impl DcacheSpec {
    /// The compact token this spec serializes as (`"32k/4w"`).
    #[must_use]
    pub fn token(&self) -> String {
        format!("{}k/{}w", self.capacity_kb, self.ways)
    }

    /// The concrete [`CacheGeometry`] this spec describes (paper line size
    /// and replacement policy).
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        CacheGeometry {
            capacity: self.capacity_kb * 1024,
            line_size: 32,
            ways: self.ways,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Parses a `"CAPk/WAYSw"` token; `None` when malformed or out of
    /// range.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let (cap, ways) = s.split_once('/')?;
        let cap: u32 = cap.strip_suffix('k')?.parse().ok()?;
        let ways: u32 = ways.strip_suffix('w')?.parse().ok()?;
        if !cap.is_power_of_two() || !ways.is_power_of_two() || ways > 16 || cap > 4096 {
            return None;
        }
        Some(DcacheSpec {
            capacity_kb: cap,
            ways,
        })
    }
}

/// One sweep of an [`ExperimentSpec`]: either a list of instruction-level
/// kernel variants or a cross-product of loop-level axes.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxes {
    /// Instruction-level points (Table 1):
    /// `variants × prefetch × dcache × approx × search × substrate`.
    Instruction {
        /// Kernel variants to run.
        variants: Vec<Variant>,
        /// Prefetch-buffer depths (`None` = the kind's default: 8 entries
        /// for instruction-level points, 64 for loop-level).
        prefetch: Vec<Option<usize>>,
        /// Data-cache geometry overrides (`None` = the paper's 32 KB
        /// 4-way).
        dcache: Vec<Option<DcacheSpec>>,
        /// SAD approximations (default `[exact]`).
        approx: Vec<ApproxSad>,
        /// Search-algorithm overrides (`None` = the workload's own search;
        /// default `[None]`).
        search: Vec<Option<SearchAlgorithm>>,
        /// Fetch/issue substrates (default `[vliw4]`).
        substrate: Vec<Substrate>,
    },
    /// Loop-level points (Tables 2–7): the full cross-product
    /// `bandwidths × betas × two_line_buffers × lbb_bank_lines ×
    /// reconfig × prefetch × dcache × approx × search × substrate`,
    /// expanded with the leftmost axis outermost.
    Loop {
        /// RFU data bandwidths.
        bandwidths: Vec<RfuBandwidth>,
        /// Technology-scaling factors β (each ≥ 1).
        betas: Vec<u64>,
        /// Line-buffer schemes (`false` = one buffer, `true` = two).
        two_line_buffers: Vec<bool>,
        /// Line Buffer B per-bank capacities (`None` = the paper's 34).
        lbb_bank_lines: Vec<Option<usize>>,
        /// Reconfiguration models.
        reconfig: Vec<ReconfigSpec>,
        /// Prefetch-buffer depths (`None` = the loop-level default, 64).
        prefetch: Vec<Option<usize>>,
        /// Data-cache geometry overrides (`None` = the paper's 32 KB
        /// 4-way).
        dcache: Vec<Option<DcacheSpec>>,
        /// SAD approximations (default `[exact]`).
        approx: Vec<ApproxSad>,
        /// Search-algorithm overrides (default `[None]`).
        search: Vec<Option<SearchAlgorithm>>,
        /// Fetch/issue substrates (default `[vliw4]`).
        substrate: Vec<Substrate>,
    },
}

impl SweepAxes {
    /// An instruction-level sweep over `variants`.
    #[must_use]
    pub fn instruction(variants: Vec<Variant>) -> Self {
        SweepAxes::Instruction {
            variants,
            prefetch: vec![None],
            dcache: vec![None],
            approx: vec![ApproxSad::Exact],
            search: vec![None],
            substrate: vec![Substrate::Vliw4],
        }
    }

    /// A single-line-buffer loop-level sweep over `bandwidths × betas`
    /// with the paper's default line-buffer geometry and zero-penalty
    /// reconfiguration.
    #[must_use]
    pub fn loop_grid(bandwidths: Vec<RfuBandwidth>, betas: Vec<u64>) -> Self {
        SweepAxes::Loop {
            bandwidths,
            betas,
            two_line_buffers: vec![false],
            lbb_bank_lines: vec![None],
            reconfig: vec![ReconfigSpec::zero()],
            prefetch: vec![None],
            dcache: vec![None],
            approx: vec![ApproxSad::Exact],
            search: vec![None],
            substrate: vec![Substrate::Vliw4],
        }
    }

    /// A two-line-buffer sweep over `betas` (Table 7; bandwidth is forced
    /// to 1×32 by the scheme).
    #[must_use]
    pub fn loop_two_lb(betas: Vec<u64>) -> Self {
        SweepAxes::Loop {
            bandwidths: vec![RfuBandwidth::B1x32],
            betas,
            two_line_buffers: vec![true],
            lbb_bank_lines: vec![None],
            reconfig: vec![ReconfigSpec::zero()],
            prefetch: vec![None],
            dcache: vec![None],
            approx: vec![ApproxSad::Exact],
            search: vec![None],
            substrate: vec![Substrate::Vliw4],
        }
    }

    /// Replaces the SAD-approximation axis (either sweep kind).
    #[must_use]
    pub fn with_approx_axis(mut self, axis: Vec<ApproxSad>) -> Self {
        match &mut self {
            SweepAxes::Instruction { approx, .. } | SweepAxes::Loop { approx, .. } => {
                *approx = axis;
            }
        }
        self
    }

    /// Replaces the search-algorithm axis (either sweep kind).
    #[must_use]
    pub fn with_search_axis(mut self, axis: Vec<Option<SearchAlgorithm>>) -> Self {
        match &mut self {
            SweepAxes::Instruction { search, .. } | SweepAxes::Loop { search, .. } => {
                *search = axis;
            }
        }
        self
    }

    /// Replaces the substrate axis (either sweep kind).
    #[must_use]
    pub fn with_substrate_axis(mut self, axis: Vec<Substrate>) -> Self {
        match &mut self {
            SweepAxes::Instruction { substrate, .. } | SweepAxes::Loop { substrate, .. } => {
                *substrate = axis;
            }
        }
        self
    }

    /// Replaces the prefetch-depth axis (either sweep kind).
    #[must_use]
    pub fn with_prefetch_axis(mut self, axis: Vec<Option<usize>>) -> Self {
        match &mut self {
            SweepAxes::Instruction { prefetch, .. } | SweepAxes::Loop { prefetch, .. } => {
                *prefetch = axis;
            }
        }
        self
    }

    /// Replaces the data-cache geometry axis (either sweep kind).
    #[must_use]
    pub fn with_dcache_axis(mut self, axis: Vec<Option<DcacheSpec>>) -> Self {
        match &mut self {
            SweepAxes::Instruction { dcache, .. } | SweepAxes::Loop { dcache, .. } => {
                *dcache = axis;
            }
        }
        self
    }

    /// The number of scenarios this sweep expands to.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            SweepAxes::Instruction {
                variants,
                prefetch,
                dcache,
                approx,
                search,
                substrate,
            } => {
                variants.len()
                    * prefetch.len()
                    * dcache.len()
                    * approx.len()
                    * search.len()
                    * substrate.len()
            }
            SweepAxes::Loop {
                bandwidths,
                betas,
                two_line_buffers,
                lbb_bank_lines,
                reconfig,
                prefetch,
                dcache,
                approx,
                search,
                substrate,
            } => {
                bandwidths.len()
                    * betas.len()
                    * two_line_buffers.len()
                    * lbb_bank_lines.len()
                    * reconfig.len()
                    * prefetch.len()
                    * dcache.len()
                    * approx.len()
                    * search.len()
                    * substrate.len()
            }
        }
    }

    /// Whether the sweep expands to no scenarios.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the shared `approx`/`search`/`substrate` axes into `m`,
    /// omitting each when at its default (so paper-grid specs are
    /// unchanged).
    pub(crate) fn axes_to_json(
        m: &mut BTreeMap<String, Json>,
        approx: &[ApproxSad],
        search: &[Option<SearchAlgorithm>],
        substrate: &[Substrate],
    ) {
        if approx != [ApproxSad::Exact] {
            m.insert(
                "approx".to_owned(),
                Json::Arr(approx.iter().map(|&a| Json::Str(approx_token(a))).collect()),
            );
        }
        if search != [None] {
            m.insert(
                "search".to_owned(),
                Json::Arr(
                    search
                        .iter()
                        .map(|s| match s {
                            None => Json::Null,
                            Some(alg) => Json::Str(search_token(*alg)),
                        })
                        .collect(),
                ),
            );
        }
        if substrate != [Substrate::Vliw4] {
            m.insert(
                "substrate".to_owned(),
                Json::Arr(
                    substrate
                        .iter()
                        .map(|s| Json::Str(s.name().to_owned()))
                        .collect(),
                ),
            );
        }
    }

    /// Serializes the shared `prefetch`/`dcache` memory axes into `m`,
    /// omitting each when at its default (`[None]`), so pre-existing
    /// specs are unchanged.
    pub(crate) fn mem_axes_to_json(
        m: &mut BTreeMap<String, Json>,
        prefetch: &[Option<usize>],
        dcache: &[Option<DcacheSpec>],
    ) {
        if prefetch != [None] {
            m.insert(
                "prefetch".to_owned(),
                Json::Arr(
                    prefetch
                        .iter()
                        .map(|p| match p {
                            None => Json::Null,
                            Some(n) => Json::Num(n.to_string()),
                        })
                        .collect(),
                ),
            );
        }
        if dcache != [None] {
            m.insert(
                "dcache".to_owned(),
                Json::Arr(
                    dcache
                        .iter()
                        .map(|d| match d {
                            None => Json::Null,
                            Some(d) => Json::Str(d.token()),
                        })
                        .collect(),
                ),
            );
        }
    }

    pub(crate) fn prefetch_axis_from_json(
        m: &BTreeMap<String, Json>,
        path: &str,
    ) -> Result<Vec<Option<usize>>, SpecError> {
        match m.get("prefetch") {
            None => Ok(vec![None]),
            Some(v) => {
                let p = format!("{path}.prefetch");
                let arr = v
                    .as_array()
                    .ok_or_else(|| schema(&p, "expected an array of depths-or-null"))?;
                if arr.is_empty() {
                    return Err(schema(p, "must not be empty"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{p}[{i}]");
                        match v {
                            Json::Null => Ok(None),
                            other => {
                                let n = parse_usize(other, &p)?;
                                if n == 0 {
                                    return Err(schema(
                                        p,
                                        "prefetch depth must be at least 1 entry",
                                    ));
                                }
                                Ok(Some(n))
                            }
                        }
                    })
                    .collect()
            }
        }
    }

    pub(crate) fn dcache_axis_from_json(
        m: &BTreeMap<String, Json>,
        path: &str,
    ) -> Result<Vec<Option<DcacheSpec>>, SpecError> {
        match m.get("dcache") {
            None => Ok(vec![None]),
            Some(v) => {
                let p = format!("{path}.dcache");
                let arr = v
                    .as_array()
                    .ok_or_else(|| schema(&p, "expected an array of geometry tokens or nulls"))?;
                if arr.is_empty() {
                    return Err(schema(p, "must not be empty"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{p}[{i}]");
                        match v {
                            Json::Null => Ok(None),
                            other => {
                                let s = other
                                    .as_str()
                                    .ok_or_else(|| schema(&p, "expected a string or null"))?;
                                DcacheSpec::parse(s).map(Some).ok_or_else(|| {
                                    schema(
                                        p,
                                        format!(
                                            "bad dcache geometry `{s}` (want CAPk/WAYSw with \
                                             power-of-two capacity <= 4096k and ways <= 16, \
                                             e.g. 16k/2w)"
                                        ),
                                    )
                                })
                            }
                        }
                    })
                    .collect()
            }
        }
    }

    pub(crate) fn approx_axis_from_json(
        m: &BTreeMap<String, Json>,
        path: &str,
    ) -> Result<Vec<ApproxSad>, SpecError> {
        match m.get("approx") {
            None => Ok(vec![ApproxSad::Exact]),
            Some(v) => {
                let p = format!("{path}.approx");
                let arr = v
                    .as_array()
                    .ok_or_else(|| schema(&p, "expected an array of approx tokens"))?;
                if arr.is_empty() {
                    return Err(schema(p, "must not be empty"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{p}[{i}]");
                        let s = v.as_str().ok_or_else(|| schema(&p, "expected a string"))?;
                        parse_approx(s).ok_or_else(|| {
                            schema(
                                p,
                                format!(
                                    "unknown approximation `{s}` (want exact, rows/N, \
                                     bits/N or early/N)"
                                ),
                            )
                        })
                    })
                    .collect()
            }
        }
    }

    pub(crate) fn search_axis_from_json(
        m: &BTreeMap<String, Json>,
        path: &str,
    ) -> Result<Vec<Option<SearchAlgorithm>>, SpecError> {
        match m.get("search") {
            None => Ok(vec![None]),
            Some(v) => {
                let p = format!("{path}.search");
                let arr = v
                    .as_array()
                    .ok_or_else(|| schema(&p, "expected an array of search tokens or nulls"))?;
                if arr.is_empty() {
                    return Err(schema(p, "must not be empty"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{p}[{i}]");
                        match v {
                            Json::Null => Ok(None),
                            other => {
                                let s = other
                                    .as_str()
                                    .ok_or_else(|| schema(&p, "expected a string or null"))?;
                                parse_search(s).map(Some).ok_or_else(|| {
                                    schema(
                                        p,
                                        format!(
                                            "unknown search `{s}` (want diamond, three-step, \
                                             full/R or spiral/R/T)"
                                        ),
                                    )
                                })
                            }
                        }
                    })
                    .collect()
            }
        }
    }

    pub(crate) fn substrate_axis_from_json(
        m: &BTreeMap<String, Json>,
        path: &str,
    ) -> Result<Vec<Substrate>, SpecError> {
        match m.get("substrate") {
            None => Ok(vec![Substrate::Vliw4]),
            Some(v) => {
                let p = format!("{path}.substrate");
                let arr = v
                    .as_array()
                    .ok_or_else(|| schema(&p, "expected an array of substrate tokens"))?;
                if arr.is_empty() {
                    return Err(schema(p, "must not be empty"));
                }
                arr.iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{p}[{i}]");
                        let s = v.as_str().ok_or_else(|| schema(&p, "expected a string"))?;
                        s.parse::<Substrate>().map_err(|e| schema(p, e))
                    })
                    .collect()
            }
        }
    }

    fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        match self {
            SweepAxes::Instruction {
                variants,
                prefetch,
                dcache,
                approx,
                search,
                substrate,
            } => {
                m.insert("kind".to_owned(), Json::Str("instruction".to_owned()));
                m.insert(
                    "variants".to_owned(),
                    Json::Arr(
                        variants
                            .iter()
                            .map(|v| Json::Str(v.name().to_owned()))
                            .collect(),
                    ),
                );
                Self::mem_axes_to_json(&mut m, prefetch, dcache);
                Self::axes_to_json(&mut m, approx, search, substrate);
            }
            SweepAxes::Loop {
                bandwidths,
                betas,
                two_line_buffers,
                lbb_bank_lines,
                reconfig,
                prefetch,
                dcache,
                approx,
                search,
                substrate,
            } => {
                m.insert("kind".to_owned(), Json::Str("loop".to_owned()));
                m.insert(
                    "bandwidths".to_owned(),
                    Json::Arr(
                        bandwidths
                            .iter()
                            .map(|b| Json::Str(b.label().to_owned()))
                            .collect(),
                    ),
                );
                m.insert(
                    "betas".to_owned(),
                    Json::Arr(betas.iter().map(|b| Json::Num(b.to_string())).collect()),
                );
                if *two_line_buffers != [false] {
                    m.insert(
                        "two_line_buffers".to_owned(),
                        Json::Arr(two_line_buffers.iter().map(|&b| Json::Bool(b)).collect()),
                    );
                }
                if *lbb_bank_lines != [None] {
                    m.insert(
                        "lbb_bank_lines".to_owned(),
                        Json::Arr(
                            lbb_bank_lines
                                .iter()
                                .map(|l| match l {
                                    None => Json::Null,
                                    Some(n) => Json::Num(n.to_string()),
                                })
                                .collect(),
                        ),
                    );
                }
                if *reconfig != [ReconfigSpec::zero()] {
                    m.insert(
                        "reconfig".to_owned(),
                        Json::Arr(reconfig.iter().map(|r| r.to_json()).collect()),
                    );
                }
                Self::mem_axes_to_json(&mut m, prefetch, dcache);
                Self::axes_to_json(&mut m, approx, search, substrate);
            }
        }
        Json::Obj(m)
    }

    fn from_json(j: &Json, path: &str) -> Result<Self, SpecError> {
        let m = as_obj(j, path)?;
        let kind = req_str(m, "kind", path)?;
        match kind {
            "instruction" => {
                check_keys(
                    m,
                    &[
                        "kind",
                        "variants",
                        "prefetch",
                        "dcache",
                        "approx",
                        "search",
                        "substrate",
                    ],
                    path,
                )?;
                let arr = req_arr(m, "variants", path)?;
                if arr.is_empty() {
                    return Err(schema(format!("{path}.variants"), "must not be empty"));
                }
                let variants = arr
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{path}.variants[{i}]");
                        let s = v.as_str().ok_or_else(|| schema(&p, "expected a string"))?;
                        Variant::all()
                            .into_iter()
                            .find(|var| var.name() == s)
                            .ok_or_else(|| {
                                schema(p, format!("unknown variant `{s}` (want Orig, A1, A2, A3)"))
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(SweepAxes::Instruction {
                    variants,
                    prefetch: Self::prefetch_axis_from_json(m, path)?,
                    dcache: Self::dcache_axis_from_json(m, path)?,
                    approx: Self::approx_axis_from_json(m, path)?,
                    search: Self::search_axis_from_json(m, path)?,
                    substrate: Self::substrate_axis_from_json(m, path)?,
                })
            }
            "loop" => {
                check_keys(
                    m,
                    &[
                        "kind",
                        "bandwidths",
                        "betas",
                        "two_line_buffers",
                        "lbb_bank_lines",
                        "reconfig",
                        "prefetch",
                        "dcache",
                        "approx",
                        "search",
                        "substrate",
                    ],
                    path,
                )?;
                let bw_arr = req_arr(m, "bandwidths", path)?;
                if bw_arr.is_empty() {
                    return Err(schema(format!("{path}.bandwidths"), "must not be empty"));
                }
                let bandwidths = bw_arr
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{path}.bandwidths[{i}]");
                        let s = v.as_str().ok_or_else(|| schema(&p, "expected a string"))?;
                        RfuBandwidth::all()
                            .into_iter()
                            .find(|b| b.label() == s)
                            .ok_or_else(|| {
                                schema(
                                    p,
                                    format!("unknown bandwidth `{s}` (want 1x32, 1x64, 2x64)"),
                                )
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let beta_arr = req_arr(m, "betas", path)?;
                if beta_arr.is_empty() {
                    return Err(schema(format!("{path}.betas"), "must not be empty"));
                }
                let betas = beta_arr
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let p = format!("{path}.betas[{i}]");
                        let b = parse_u64(v, &p)?;
                        if b == 0 {
                            return Err(schema(p, "beta must be at least 1"));
                        }
                        Ok(b)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let two_line_buffers = match m.get("two_line_buffers") {
                    None => vec![false],
                    Some(v) => {
                        let p = format!("{path}.two_line_buffers");
                        let arr = v
                            .as_array()
                            .ok_or_else(|| schema(&p, "expected an array of booleans"))?;
                        if arr.is_empty() {
                            return Err(schema(p, "must not be empty"));
                        }
                        arr.iter()
                            .enumerate()
                            .map(|(i, v)| match v {
                                Json::Bool(b) => Ok(*b),
                                _ => Err(schema(format!("{p}[{i}]"), "expected a boolean")),
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    }
                };
                let lbb_bank_lines = match m.get("lbb_bank_lines") {
                    None => vec![None],
                    Some(v) => {
                        let p = format!("{path}.lbb_bank_lines");
                        let arr = v
                            .as_array()
                            .ok_or_else(|| schema(&p, "expected an array of lines-or-null"))?;
                        if arr.is_empty() {
                            return Err(schema(p, "must not be empty"));
                        }
                        arr.iter()
                            .enumerate()
                            .map(|(i, v)| {
                                let p = format!("{p}[{i}]");
                                match v {
                                    Json::Null => Ok(None),
                                    other => {
                                        let n = parse_usize(other, &p)?;
                                        if n == 0 {
                                            return Err(schema(
                                                p,
                                                "per-bank capacity must be at least 1 line",
                                            ));
                                        }
                                        Ok(Some(n))
                                    }
                                }
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    }
                };
                let reconfig = match m.get("reconfig") {
                    None => vec![ReconfigSpec::zero()],
                    Some(v) => {
                        let p = format!("{path}.reconfig");
                        let arr = v
                            .as_array()
                            .ok_or_else(|| schema(&p, "expected an array of reconfig objects"))?;
                        if arr.is_empty() {
                            return Err(schema(p, "must not be empty"));
                        }
                        arr.iter()
                            .enumerate()
                            .map(|(i, v)| ReconfigSpec::from_json(v, &format!("{p}[{i}]")))
                            .collect::<Result<Vec<_>, _>>()?
                    }
                };
                Ok(SweepAxes::Loop {
                    bandwidths,
                    betas,
                    two_line_buffers,
                    lbb_bank_lines,
                    reconfig,
                    prefetch: Self::prefetch_axis_from_json(m, path)?,
                    dcache: Self::dcache_axis_from_json(m, path)?,
                    approx: Self::approx_axis_from_json(m, path)?,
                    search: Self::search_axis_from_json(m, path)?,
                    substrate: Self::substrate_axis_from_json(m, path)?,
                })
            }
            other => Err(schema(
                format!("{path}.kind"),
                format!("unknown sweep kind `{other}` (want instruction or loop)"),
            )),
        }
    }
}

/// A declarative experiment: run-wide knobs plus a list of sweeps whose
/// expansions concatenate into one scenario list.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Spec name (reported in results).
    pub name: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// QCIF workload frames (the paper uses 25).
    pub frames: usize,
    /// Label of the baseline scenario speedups are computed against
    /// (usually `Orig`; `None` = no speedup column).
    pub baseline: Option<String>,
    /// Fault profile every scenario runs under (default: none).
    pub fault_profile: FaultProfile,
    /// Seed for the fault plan.
    pub fault_seed: u64,
    /// Per-scenario cycle budget override (`None` = the watchdog default).
    pub cycle_limit: Option<u64>,
    /// The sweeps, expanded in order.
    pub sweeps: Vec<SweepAxes>,
}

impl ExperimentSpec {
    /// An empty spec with the defaults: 25 frames, no baseline, no
    /// faults, no cycle-budget override.
    #[must_use]
    pub fn new(name: &str) -> Self {
        ExperimentSpec {
            name: name.to_owned(),
            title: None,
            frames: 25,
            baseline: None,
            fault_profile: FaultProfile::None,
            fault_seed: 0,
            cycle_limit: None,
            sweeps: Vec::new(),
        }
    }

    /// Sets the baseline scenario label.
    #[must_use]
    pub fn with_baseline(mut self, label: &str) -> Self {
        self.baseline = Some(label.to_owned());
        self
    }

    /// Appends a sweep.
    #[must_use]
    pub fn sweep(mut self, axes: SweepAxes) -> Self {
        self.sweeps.push(axes);
        self
    }

    /// The paper's full 12-scenario grid in presentation order: ORIG,
    /// A1–A3, the six single-line-buffer loop points (bandwidth × β ∈
    /// {1, 5}), the two two-line-buffer points. This is the grid
    /// [`CaseStudy::scenarios`](crate::CaseStudy::scenarios) expands, and
    /// the union of the seven checked-in `specs/table*.json` files.
    #[must_use]
    pub fn paper_grid() -> Self {
        ExperimentSpec::new("paper")
            .with_baseline("Orig")
            .sweep(SweepAxes::instruction(Variant::all().to_vec()))
            .sweep(SweepAxes::loop_grid(
                RfuBandwidth::all().to_vec(),
                vec![1, 5],
            ))
            .sweep(SweepAxes::loop_two_lb(vec![1, 5]))
    }

    /// The fault plan every expanded scenario runs under.
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan::from_profile(self.fault_profile, self.fault_seed)
    }

    /// Expands the sweeps into concrete scenarios, in order, with the
    /// run-wide fault plan and cycle budget applied and label-uniqueness
    /// enforced.
    ///
    /// # Errors
    ///
    /// [`SpecError::DuplicateLabel`] when two expanded points share a
    /// label (labels key fault substreams and snapshot cells).
    pub fn scenarios(&self) -> Result<Vec<Scenario>, SpecError> {
        let plan = self.fault_plan();
        let mut out: Vec<Scenario> = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut push = |mut sc: Scenario| -> Result<(), SpecError> {
            sc = sc.with_fault_plan(plan);
            if let Some(limit) = self.cycle_limit {
                sc = sc.with_cycle_limit(limit);
            }
            if !seen.insert(sc.label.clone()) {
                return Err(SpecError::DuplicateLabel { label: sc.label });
            }
            out.push(sc);
            Ok(())
        };
        // Applies one (prefetch, dcache) memory point to a scenario,
        // appending label suffixes for non-default values. Default points
        // leave the scenario and its label untouched, so paper-grid
        // labels (and cache keys) are unchanged.
        let mem_point = |mut sc: Scenario, pf: Option<usize>, dc: Option<DcacheSpec>| {
            if let Some(entries) = pf {
                sc.mem.prefetch_entries = entries;
                sc.label.push_str(&format!(" pf={entries}"));
            }
            if let Some(geom) = dc {
                sc.mem.dcache = geom.geometry();
                sc.label.push_str(&format!(" dc={}", geom.token()));
            }
            sc
        };
        // Applies one (approx, search, substrate) point to a scenario,
        // appending the label suffixes that keep expanded labels unique
        // per point. Default points leave the scenario and its label
        // untouched, so paper-grid labels are unchanged.
        let quality_point =
            |mut sc: Scenario, ap: ApproxSad, se: Option<SearchAlgorithm>, su: Substrate| {
                if !ap.is_exact() {
                    sc = sc.with_approx(ap);
                    sc.label.push_str(&format!(" ap={}", approx_token(ap)));
                }
                if let Some(alg) = se {
                    sc = sc.with_search(alg);
                    sc.label.push_str(&format!(" se={}", search_token(alg)));
                }
                if su != Substrate::Vliw4 {
                    sc = sc.with_substrate(su);
                    sc.label.push_str(&format!(" su={}", su.name()));
                }
                sc
            };
        for sweep in &self.sweeps {
            match sweep {
                SweepAxes::Instruction {
                    variants,
                    prefetch,
                    dcache,
                    approx,
                    search,
                    substrate,
                } => {
                    for &v in variants {
                        for &pf in prefetch {
                            for &dc in dcache {
                                for &ap in approx {
                                    for &se in search {
                                        for &su in substrate {
                                            let sc = mem_point(Scenario::instruction(v), pf, dc);
                                            push(quality_point(sc, ap, se, su))?;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                SweepAxes::Loop {
                    bandwidths,
                    betas,
                    two_line_buffers,
                    lbb_bank_lines,
                    reconfig,
                    prefetch,
                    dcache,
                    approx,
                    search,
                    substrate,
                } => {
                    for &bw in bandwidths {
                        for &beta in betas {
                            for &two_lb in two_line_buffers {
                                for &lbb in lbb_bank_lines {
                                    for &rc in reconfig {
                                        for &pf in prefetch {
                                            for &dc in dcache {
                                                for &ap in approx {
                                                    for &se in search {
                                                        for &su in substrate {
                                                            let mut sc = if two_lb {
                                                                Scenario::loop_two_lb(beta)
                                                            } else {
                                                                Scenario::loop_level(bw, beta)
                                                            };
                                                            if let Some(lines) = lbb {
                                                                sc = sc.with_lbb_bank_lines(lines);
                                                                sc.label.push_str(&format!(
                                                                    " lbb={lines}"
                                                                ));
                                                            }
                                                            sc = sc.with_reconfig(rc.model());
                                                            sc.label.push_str(&rc.label_suffix());
                                                            sc = mem_point(sc, pf, dc);
                                                            push(quality_point(sc, ap, se, su))?;
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError::Json`] on malformed JSON, [`SpecError::Schema`] on a
    /// schema violation. Never panics, whatever the input.
    pub fn from_json_str(text: &str) -> Result<Self, SpecError> {
        let json = Json::parse(text).map_err(SpecError::Json)?;
        Self::from_json(&json)
    }

    /// Parses a spec from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`SpecError::Schema`] on any schema violation (wrong type, unknown
    /// key, out-of-range value).
    pub fn from_json(json: &Json) -> Result<Self, SpecError> {
        let m = as_obj(json, "spec")?;
        check_keys(
            m,
            &[
                "name",
                "title",
                "frames",
                "baseline",
                "fault",
                "cycle_limit",
                "sweeps",
            ],
            "spec",
        )?;
        let name = req_str(m, "name", "spec")?.to_owned();
        if name.is_empty() {
            return Err(schema("spec.name", "must not be empty"));
        }
        let title = match m.get("title") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| schema("spec.title", "expected a string"))?
                    .to_owned(),
            ),
        };
        let frames = match m.get("frames") {
            None => 25,
            Some(v) => {
                let n = parse_usize(v, "spec.frames")?;
                if n == 0 {
                    return Err(schema("spec.frames", "must be at least 1"));
                }
                n
            }
        };
        let baseline = match m.get("baseline") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| schema("spec.baseline", "expected a string"))?
                    .to_owned(),
            ),
        };
        let (fault_profile, fault_seed) = match m.get("fault") {
            None => (FaultProfile::None, 0),
            Some(v) => {
                let fm = as_obj(v, "spec.fault")?;
                check_keys(fm, &["profile", "seed"], "spec.fault")?;
                let profile = match fm.get("profile") {
                    None => FaultProfile::None,
                    Some(p) => p
                        .as_str()
                        .ok_or_else(|| schema("spec.fault.profile", "expected a string"))?
                        .parse::<FaultProfile>()
                        .map_err(|e| schema("spec.fault.profile", e))?,
                };
                let seed = match fm.get("seed") {
                    None => 0,
                    Some(s) => parse_u64(s, "spec.fault.seed")?,
                };
                (profile, seed)
            }
        };
        let cycle_limit = match m.get("cycle_limit") {
            None | Some(Json::Null) => None,
            Some(v) => Some(parse_u64(v, "spec.cycle_limit")?),
        };
        let sweeps_arr = req_arr(m, "sweeps", "spec")?;
        if sweeps_arr.is_empty() {
            return Err(schema("spec.sweeps", "must not be empty"));
        }
        let sweeps = sweeps_arr
            .iter()
            .enumerate()
            .map(|(i, v)| SweepAxes::from_json(v, &format!("spec.sweeps[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ExperimentSpec {
            name,
            title,
            frames,
            baseline,
            fault_profile,
            fault_seed,
            cycle_limit,
            sweeps,
        })
    }

    /// The spec as a JSON value. Defaulted fields are omitted, so
    /// [`Self::from_json`] round-trips to an equal spec.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("name".to_owned(), Json::Str(self.name.clone()));
        if let Some(t) = &self.title {
            m.insert("title".to_owned(), Json::Str(t.clone()));
        }
        m.insert("frames".to_owned(), Json::Num(self.frames.to_string()));
        if let Some(b) = &self.baseline {
            m.insert("baseline".to_owned(), Json::Str(b.clone()));
        }
        if self.fault_profile != FaultProfile::None || self.fault_seed != 0 {
            let mut fm = BTreeMap::new();
            fm.insert(
                "profile".to_owned(),
                Json::Str(self.fault_profile.to_string()),
            );
            fm.insert("seed".to_owned(), Json::Num(self.fault_seed.to_string()));
            m.insert("fault".to_owned(), Json::Obj(fm));
        }
        if let Some(l) = self.cycle_limit {
            m.insert("cycle_limit".to_owned(), Json::Num(l.to_string()));
        }
        m.insert(
            "sweeps".to_owned(),
            Json::Arr(self.sweeps.iter().map(SweepAxes::to_json).collect()),
        );
        Json::Obj(m)
    }

    /// The spec as pretty-printed JSON text (the format of the checked-in
    /// `specs/*.json` files).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }
}

/// Pretty-prints `j` with two-space indentation (compact leaf arrays).
pub(crate) fn pretty(j: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match j {
        Json::Arr(v) if v.iter().any(|e| matches!(e, Json::Obj(_) | Json::Arr(_))) => {
            out.push_str("[\n");
            for (i, e) in v.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                pretty(e, indent + 1, out);
                if i + 1 < v.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(m) => {
            out.push_str("{\n");
            for (i, (k, v)) in m.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                out.push_str(&format!("\"{}\": ", rvliw_trace::json::escape_json(k)));
                pretty(v, indent + 1, out);
                if i + 1 < m.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

pub(crate) fn as_obj<'a>(j: &'a Json, path: &str) -> Result<&'a BTreeMap<String, Json>, SpecError> {
    match j {
        Json::Obj(m) => Ok(m),
        _ => Err(schema(path, "expected an object")),
    }
}

pub(crate) fn check_keys(
    m: &BTreeMap<String, Json>,
    allowed: &[&str],
    path: &str,
) -> Result<(), SpecError> {
    for k in m.keys() {
        if !allowed.contains(&k.as_str()) {
            return Err(schema(
                format!("{path}.{k}"),
                format!("unknown key (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

pub(crate) fn req_str<'a>(
    m: &'a BTreeMap<String, Json>,
    key: &str,
    path: &str,
) -> Result<&'a str, SpecError> {
    m.get(key)
        .ok_or_else(|| schema(format!("{path}.{key}"), "missing required key"))?
        .as_str()
        .ok_or_else(|| schema(format!("{path}.{key}"), "expected a string"))
}

pub(crate) fn req_arr<'a>(
    m: &'a BTreeMap<String, Json>,
    key: &str,
    path: &str,
) -> Result<&'a [Json], SpecError> {
    m.get(key)
        .ok_or_else(|| schema(format!("{path}.{key}"), "missing required key"))?
        .as_array()
        .ok_or_else(|| schema(format!("{path}.{key}"), "expected an array"))
}

pub(crate) fn parse_u64(j: &Json, path: &str) -> Result<u64, SpecError> {
    j.as_u64()
        .ok_or_else(|| schema(path, "expected a non-negative integer"))
}

pub(crate) fn parse_usize(j: &Json, path: &str) -> Result<usize, SpecError> {
    let n = parse_u64(j, path)?;
    usize::try_from(n).map_err(|_| schema(path, "integer too large"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_round_trips_through_json() {
        let spec = ExperimentSpec::paper_grid();
        let text = spec.to_json_string();
        let parsed = ExperimentSpec::from_json_str(&text).unwrap();
        assert_eq!(parsed, spec);
        // And the pretty text itself re-parses to the same value.
        let again = ExperimentSpec::from_json_str(&parsed.to_json_string()).unwrap();
        assert_eq!(again, spec);
    }

    #[test]
    fn paper_grid_expands_to_twelve_unique_labels() {
        let scenarios = ExperimentSpec::paper_grid().scenarios().unwrap();
        let labels: Vec<&str> = scenarios.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "Orig", "A1", "A2", "A3", "1x32 b=1", "1x32 b=5", "1x64 b=1", "1x64 b=5",
                "2x64 b=1", "2x64 b=5", "2LB b=1", "2LB b=5"
            ]
        );
    }

    #[test]
    fn duplicate_labels_yield_a_typed_error() {
        let spec = ExperimentSpec::new("dup")
            .sweep(SweepAxes::loop_grid(vec![RfuBandwidth::B1x32], vec![1]))
            .sweep(SweepAxes::loop_grid(vec![RfuBandwidth::B1x32], vec![1]));
        assert_eq!(
            spec.scenarios(),
            Err(SpecError::DuplicateLabel {
                label: "1x32 b=1".to_owned()
            })
        );
    }

    #[test]
    fn two_lb_with_multiple_bandwidths_is_a_duplicate() {
        // loop_two_lb forces 1x32, so extra bandwidths collapse onto the
        // same label — rejected, not silently aliased.
        let spec = ExperimentSpec::new("dup2").sweep(SweepAxes::Loop {
            bandwidths: vec![RfuBandwidth::B1x32, RfuBandwidth::B1x64],
            betas: vec![1],
            two_line_buffers: vec![true],
            lbb_bank_lines: vec![None],
            reconfig: vec![ReconfigSpec::zero()],
            prefetch: vec![None],
            dcache: vec![None],
            approx: vec![ApproxSad::Exact],
            search: vec![None],
            substrate: vec![Substrate::Vliw4],
        });
        assert!(matches!(
            spec.scenarios(),
            Err(SpecError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn off_default_axes_get_label_suffixes() {
        let spec = ExperimentSpec::new("ablate").sweep(SweepAxes::Loop {
            bandwidths: vec![RfuBandwidth::B1x32],
            betas: vec![1],
            two_line_buffers: vec![false],
            lbb_bank_lines: vec![None, Some(17)],
            reconfig: vec![
                ReconfigSpec::zero(),
                ReconfigSpec {
                    penalty: 100,
                    contexts: 2,
                    prefetch_hiding: true,
                },
            ],
            prefetch: vec![None],
            dcache: vec![None],
            approx: vec![ApproxSad::Exact],
            search: vec![None],
            substrate: vec![Substrate::Vliw4],
        });
        let labels: Vec<String> = spec
            .scenarios()
            .unwrap()
            .into_iter()
            .map(|s| s.label)
            .collect();
        assert_eq!(
            labels,
            [
                "1x32 b=1",
                "1x32 b=1 rc=100x2+pf",
                "1x32 b=1 lbb=17",
                "1x32 b=1 lbb=17 rc=100x2+pf"
            ]
        );
    }

    #[test]
    fn expansion_counts_are_the_cross_product() {
        let axes = SweepAxes::Loop {
            bandwidths: vec![RfuBandwidth::B1x32, RfuBandwidth::B2x64],
            betas: vec![1, 2, 3],
            two_line_buffers: vec![false],
            lbb_bank_lines: vec![None, Some(8)],
            reconfig: vec![ReconfigSpec::zero()],
            prefetch: vec![None],
            dcache: vec![None],
            approx: vec![ApproxSad::Exact],
            search: vec![None],
            substrate: vec![Substrate::Vliw4],
        };
        assert_eq!(axes.len(), 12);
        let spec = ExperimentSpec::new("count")
            .sweep(SweepAxes::instruction(vec![Variant::Orig, Variant::A3]))
            .sweep(axes);
        assert_eq!(spec.scenarios().unwrap().len(), 14);
    }

    #[test]
    fn approx_and_search_axes_expand_with_label_suffixes() {
        let spec = ExperimentSpec::new("approx").sweep(
            SweepAxes::instruction(vec![Variant::A3])
                .with_approx_axis(vec![
                    ApproxSad::Exact,
                    ApproxSad::SubsampledRows { step: 2 },
                    ApproxSad::EarlyExit { threshold: 4096 },
                ])
                .with_search_axis(vec![None, Some(SearchAlgorithm::Full { range: 8 })]),
        );
        let scenarios = spec.scenarios().unwrap();
        let labels: Vec<&str> = scenarios.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "A3",
                "A3 se=full/8",
                "A3 ap=rows/2",
                "A3 ap=rows/2 se=full/8",
                "A3 ap=early/4096",
                "A3 ap=early/4096 se=full/8",
            ]
        );
        assert_eq!(scenarios[0].approx, ApproxSad::Exact);
        assert_eq!(scenarios[2].approx, ApproxSad::SubsampledRows { step: 2 });
        assert_eq!(
            scenarios[3].search,
            Some(SearchAlgorithm::Full { range: 8 })
        );
        // And the whole thing round-trips through JSON.
        let parsed = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn substrate_axis_expands_with_label_suffixes_and_round_trips() {
        let spec = ExperimentSpec::new("substrates").sweep(
            SweepAxes::instruction(vec![Variant::A3])
                .with_substrate_axis(vec![Substrate::Vliw4, Substrate::ScalarInOrder]),
        );
        let scenarios = spec.scenarios().unwrap();
        let labels: Vec<&str> = scenarios.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, ["A3", "A3 su=scalar"]);
        assert_eq!(scenarios[0].substrate(), Substrate::Vliw4);
        assert_eq!(scenarios[1].substrate(), Substrate::ScalarInOrder);
        let parsed = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(parsed, spec);
        // The default axis is omitted from the JSON rendering entirely, so
        // pre-substrate spec files keep their byte-for-byte shape.
        let default_spec =
            ExperimentSpec::new("d").sweep(SweepAxes::instruction(vec![Variant::A3]));
        assert!(!default_spec.to_json_string().contains("substrate"));
        let bad = "{\"name\": \"x\", \"sweeps\": [{\"kind\": \"instruction\", \
                   \"variants\": [\"A3\"], \"substrate\": [\"mips\"]}]}";
        match ExperimentSpec::from_json_str(bad) {
            Err(SpecError::Schema { message, .. }) => {
                assert!(message.contains("unknown substrate"), "got `{message}`");
            }
            other => panic!("bad substrate token gave {other:?}"),
        }
    }

    #[test]
    fn approx_axes_parse_from_json_tokens() {
        let text = "{\"name\": \"x\", \"sweeps\": [{\"kind\": \"loop\", \
                    \"bandwidths\": [\"1x32\"], \"betas\": [1], \
                    \"approx\": [\"exact\", \"rows/2\", \"bits/3\", \"early/100\"], \
                    \"search\": [null, \"diamond\", \"spiral/8/256\"]}]}";
        let spec = ExperimentSpec::from_json_str(text).unwrap();
        assert_eq!(spec.sweeps[0].len(), 12);
        for (bad, needle) in [
            ("\"approx\": [\"rows/1\"]", "unknown approximation"),
            ("\"approx\": []", "must not be empty"),
            ("\"search\": [\"warp\"]", "unknown search"),
        ] {
            let text = format!(
                "{{\"name\": \"x\", \"sweeps\": [{{\"kind\": \"instruction\", \
                 \"variants\": [\"A3\"], {bad}}}]}}"
            );
            match ExperimentSpec::from_json_str(&text) {
                Err(SpecError::Schema { message, .. }) => {
                    assert!(message.contains(needle), "`{bad}` gave `{message}`");
                }
                other => panic!("`{bad}` gave {other:?}"),
            }
        }
    }

    #[test]
    fn schema_violations_are_typed_errors() {
        for (text, needle) in [
            ("[]", "expected an object"),
            ("{\"sweeps\": []}", "missing required key"),
            ("{\"name\": \"x\", \"sweeps\": []}", "must not be empty"),
            (
                "{\"name\": \"x\", \"bogus\": 1, \"sweeps\": [{\"kind\": \"loop\", \
                 \"bandwidths\": [\"1x32\"], \"betas\": [1]}]}",
                "unknown key",
            ),
            (
                "{\"name\": \"x\", \"sweeps\": [{\"kind\": \"warp\"}]}",
                "unknown sweep kind",
            ),
            (
                "{\"name\": \"x\", \"sweeps\": [{\"kind\": \"loop\", \
                 \"bandwidths\": [\"9x9\"], \"betas\": [1]}]}",
                "unknown bandwidth",
            ),
            (
                "{\"name\": \"x\", \"sweeps\": [{\"kind\": \"loop\", \
                 \"bandwidths\": [\"1x32\"], \"betas\": [0]}]}",
                "beta must be at least 1",
            ),
            (
                "{\"name\": \"x\", \"frames\": 0, \"sweeps\": [{\"kind\": \
                 \"instruction\", \"variants\": [\"Orig\"]}]}",
                "at least 1",
            ),
            (
                "{\"name\": \"x\", \"sweeps\": [{\"kind\": \"loop\", \
                 \"bandwidths\": [\"1x32\"], \"betas\": [1], \
                 \"reconfig\": [{\"penalty\": 5, \"contexts\": 0}]}]}",
                "resident context",
            ),
        ] {
            match ExperimentSpec::from_json_str(text) {
                Err(SpecError::Schema { message, path }) => assert!(
                    format!("{path}: {message}").contains(needle),
                    "`{text}` gave `{path}: {message}`, wanted `{needle}`"
                ),
                other => panic!("`{text}` gave {other:?}, wanted a Schema error"),
            }
        }
        assert!(matches!(
            ExperimentSpec::from_json_str("not json"),
            Err(SpecError::Json(_))
        ));
    }

    #[test]
    fn fault_and_cycle_limit_round_trip() {
        let mut spec =
            ExperimentSpec::new("faulty").sweep(SweepAxes::instruction(vec![Variant::Orig]));
        spec.fault_profile = FaultProfile::Chaos;
        spec.fault_seed = 7;
        spec.cycle_limit = Some(123_456);
        spec.frames = 2;
        let parsed = ExperimentSpec::from_json_str(&spec.to_json_string()).unwrap();
        assert_eq!(parsed, spec);
        let sc = &parsed.scenarios().unwrap()[0];
        assert_eq!(sc.cycle_limit, Some(123_456));
        assert!(!sc.fault.is_inert());
    }
}
