//! Tables 1–7 of the paper, regenerated from measurements.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rvliw_kernels::Variant;
use rvliw_rfu::RfuBandwidth;

use crate::app_model::AppModel;
use crate::runner::{run_me, MeResult};
use crate::scenario::Scenario;
use crate::workload::Workload;

/// The default worker-thread count for [`CaseStudy`]: the `RVLIW_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RVLIW_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// All measurements needed for every table, collected in one pass.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The workload that was replayed.
    pub stride: u32,
    /// `GetSad` calls replayed per scenario.
    pub calls: u64,
    /// ORIG baseline.
    pub orig: MeResult,
    /// Instruction-level results (A1, A2, A3).
    pub instr: Vec<(Variant, MeResult)>,
    /// Loop-level, single line buffer: (bandwidth, β, static Lat, result).
    pub loops: Vec<(RfuBandwidth, u64, u64, MeResult)>,
    /// Two line buffers: (β, static Lat, result).
    pub two_lb: Vec<(u64, u64, MeResult)>,
    /// Whole-application model calibrated on ORIG.
    pub app: AppModel,
}

impl CaseStudy {
    /// The paper's scenarios in presentation order: ORIG; A1–A3; the six
    /// single-line-buffer loop points (bandwidth × β); the two
    /// two-line-buffer points. Each scenario is independent — it owns its
    /// machine, memory hierarchy and RFU — which is what makes the fan-out
    /// in [`CaseStudy::run_with_threads`] trivially sound.
    #[must_use]
    pub fn scenarios() -> Vec<Scenario> {
        let mut v = vec![Scenario::orig()];
        for variant in [Variant::A1, Variant::A2, Variant::A3] {
            v.push(Scenario::instruction(variant));
        }
        for bw in RfuBandwidth::all() {
            for beta in [1u64, 5] {
                v.push(Scenario::loop_level(bw, beta));
            }
        }
        for beta in [1u64, 5] {
            v.push(Scenario::loop_two_lb(beta));
        }
        v
    }

    /// Runs every scenario of the paper over `workload`, dispatching them
    /// across [`default_threads`] worker threads. `progress` is called with
    /// a scenario label as each scenario starts (from worker threads when
    /// running parallel — labels may interleave, but every label appears
    /// exactly once).
    #[must_use]
    pub fn run_with_progress(workload: &Workload, progress: impl Fn(&str) + Sync) -> Self {
        Self::run_with_threads(workload, default_threads(), progress)
    }

    /// Runs every scenario on exactly `threads` worker threads (`<= 1`
    /// runs serially on the calling thread). Results are reassembled in
    /// the fixed scenario order, so the outcome — every table, bit for
    /// bit — is independent of the thread count: each scenario owns its
    /// own [`Machine`](rvliw_sim::Machine) and the simulation itself is
    /// deterministic.
    #[must_use]
    pub fn run_with_threads(
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
    ) -> Self {
        let scenarios = Self::scenarios();
        let n = scenarios.len();
        let results: Vec<MeResult> = if threads <= 1 {
            scenarios
                .iter()
                .map(|sc| {
                    progress(&sc.label);
                    run_me(sc, workload)
                })
                .collect()
        } else {
            // Work-stealing by atomic index: scenario costs are wildly
            // uneven (ORIG simulates ~10× the cycles of a loop-level
            // point), so a static partition would idle most workers.
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<MeResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|s| {
                for _ in 0..threads.min(n) {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(sc) = scenarios.get(i) else { break };
                        progress(&sc.label);
                        let r = run_me(sc, workload);
                        *slots[i].lock().expect("result slot poisoned") = Some(r);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot poisoned")
                        .expect("every scenario index was claimed")
                })
                .collect()
        };

        // Reassemble in the fixed order `scenarios()` produced.
        let mut results = results.into_iter();
        let orig = results.next().expect("ORIG ran");
        let instr = [Variant::A1, Variant::A2, Variant::A3]
            .into_iter()
            .map(|v| (v, results.next().expect("instruction scenario ran")))
            .collect();
        let mut loops = Vec::new();
        for bw in RfuBandwidth::all() {
            for beta in [1u64, 5] {
                let lat = Scenario::loop_level(bw, beta).static_latency(workload.stride);
                loops.push((bw, beta, lat, results.next().expect("loop scenario ran")));
            }
        }
        let mut two_lb = Vec::new();
        for beta in [1u64, 5] {
            let lat = Scenario::loop_two_lb(beta).static_latency(workload.stride);
            two_lb.push((beta, lat, results.next().expect("two-LB scenario ran")));
        }
        let app = AppModel::calibrated(orig.me_cycles);
        CaseStudy {
            stride: workload.stride,
            calls: orig.calls,
            orig,
            instr,
            loops,
            two_lb,
            app,
        }
    }

    /// Runs silently on the default thread count.
    #[must_use]
    pub fn run(workload: &Workload) -> Self {
        Self::run_with_progress(workload, |_| {})
    }

    fn loop_result(&self, bw: RfuBandwidth, beta: u64) -> &(RfuBandwidth, u64, u64, MeResult) {
        self.loops
            .iter()
            .find(|(b, be, _, _)| *b == bw && *be == beta)
            .expect("all loop scenarios were run")
    }

    /// Table 1: instruction-level optimization results.
    #[must_use]
    pub fn table1(&self) -> Table1 {
        let mut rows = vec![Table1Row {
            name: "Orig".into(),
            cycles: self.orig.me_cycles,
            speedup: 1.0,
            improvement: 0.0,
        }];
        for (v, r) in &self.instr {
            rows.push(Table1Row {
                name: v.name().into(),
                cycles: r.me_cycles,
                speedup: r.speedup_vs(&self.orig),
                improvement: r.improvement_vs(&self.orig),
            });
        }
        Table1 { rows }
    }

    /// Table 2: loop-level results per bandwidth and β.
    #[must_use]
    pub fn table2(&self) -> Table2 {
        let rows = RfuBandwidth::all()
            .into_iter()
            .map(|bw| {
                let (_, _, lat1, r1) = self.loop_result(bw, 1);
                let (_, _, lat5, r5) = self.loop_result(bw, 5);
                Table2Row {
                    bw,
                    lat_b1: *lat1,
                    cycles_b1: r1.me_cycles,
                    speedup_b1: r1.speedup_vs(&self.orig),
                    lat_b5: *lat5,
                    cycles_b5: r5.me_cycles,
                    speedup_b5: r5.speedup_vs(&self.orig),
                }
            })
            .collect();
        Table2 {
            orig_cycles: self.orig.me_cycles,
            rows,
        }
    }

    /// Table 3: latency increase vs speedup reduction under technology
    /// scaling.
    #[must_use]
    pub fn table3(&self) -> Table3 {
        let rows = RfuBandwidth::all()
            .into_iter()
            .map(|bw| {
                let (_, _, lat1, r1) = self.loop_result(bw, 1);
                let (_, _, lat5, r5) = self.loop_result(bw, 5);
                let s1 = r1.speedup_vs(&self.orig);
                let s5 = r5.speedup_vs(&self.orig);
                Table3Row {
                    bw,
                    lat_b1: *lat1,
                    lat_b5: *lat5,
                    pct_latency_increase: (*lat5 as f64 - *lat1 as f64) / *lat1 as f64,
                    pct_speedup_reduction: (s5 - s1) / s1,
                }
            })
            .collect();
        Table3 { rows }
    }

    /// Table 4: ME cache stalls with one line buffer.
    #[must_use]
    pub fn table4(&self) -> Table4 {
        let rows = RfuBandwidth::all()
            .into_iter()
            .map(|bw| {
                let (_, _, _, r1) = self.loop_result(bw, 1);
                let (_, _, _, r5) = self.loop_result(bw, 5);
                Table4Row {
                    bw,
                    stalls_b1: r1.stall_cycles,
                    reduction_b1: r1.stall_reduction_vs(&self.orig),
                    stalls_b5: r5.stall_cycles,
                    reduction_b5: r5.stall_reduction_vs(&self.orig),
                }
            })
            .collect();
        Table4 {
            orig_stalls: self.orig.stall_cycles,
            rows,
        }
    }

    /// Table 5: cache stalls as a share of ME execution time.
    #[must_use]
    pub fn table5(&self) -> Table5 {
        let rows = RfuBandwidth::all()
            .into_iter()
            .map(|bw| {
                let (_, _, _, r1) = self.loop_result(bw, 1);
                let (_, _, _, r5) = self.loop_result(bw, 5);
                Table5Row {
                    bw,
                    share_b1: r1.stall_share(),
                    share_b5: r5.stall_share(),
                }
            })
            .collect();
        Table5 {
            orig_share: self.orig.stall_share(),
            rows,
        }
    }

    /// Table 6: theoretical vs experimental speedups.
    #[must_use]
    pub fn table6(&self) -> Table6 {
        let mut rows = Vec::new();
        for beta in [1u64, 5] {
            for bw in RfuBandwidth::all() {
                let (_, _, lat, r) = self.loop_result(bw, beta);
                // The loop executes once per GetSad call.
                let static_cycles = lat * self.calls;
                let th = self.orig.me_cycles as f64 / static_cycles as f64;
                let sup = r.speedup_vs(&self.orig);
                rows.push(Table6Row {
                    bw,
                    beta,
                    static_cycles,
                    th_speedup: th,
                    speedup: sup,
                    ratio: sup / th,
                });
            }
        }
        Table6 { rows }
    }

    /// Table 7: the two-line-buffer scheme.
    #[must_use]
    pub fn table7(&self) -> Table7 {
        let rows = self
            .two_lb
            .iter()
            .map(|(beta, lat, r)| Table7Row {
                beta: *beta,
                lat: *lat,
                ex_cycles: r.me_cycles,
                speedup: r.speedup_vs(&self.orig),
                rel_share: self.app.me_share(r.me_cycles),
                stalls: r.stall_cycles,
                stall_reduction: r.stall_reduction_vs(&self.orig),
            })
            .collect();
        Table7 {
            orig_cycles: self.orig.me_cycles,
            orig_rel_share: self.app.me_share(self.orig.me_cycles),
            orig_stalls: self.orig.stall_cycles,
            rows,
        }
    }
}

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Scenario name.
    pub name: String,
    /// ME cycles.
    pub cycles: u64,
    /// Speedup vs ORIG.
    pub speedup: f64,
    /// `(orig − new) / orig`.
    pub improvement: f64,
}

/// Table 1: instruction-level optimizations.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in Orig/A1/A2/A3 order.
    pub rows: Vec<Table1Row>,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: instruction-level optimizations")?;
        writeln!(
            f,
            "{:>6} {:>12} {:>7} {:>9}",
            "", "CYCLES", "S.Up", "%Improv"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>12} {:>7.2} {:>8.1}%",
                r.name,
                r.cycles,
                r.speedup,
                r.improvement * 100.0
            )?;
        }
        Ok(())
    }
}

/// One Table 2 row (a bandwidth option across both β values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Static loop latency at β = 1.
    pub lat_b1: u64,
    /// ME cycles at β = 1.
    pub cycles_b1: u64,
    /// Speedup at β = 1.
    pub speedup_b1: f64,
    /// Static loop latency at β = 5.
    pub lat_b5: u64,
    /// ME cycles at β = 5.
    pub cycles_b5: u64,
    /// Speedup at β = 5.
    pub speedup_b5: f64,
}

/// Table 2: loop-level optimizations.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// The ORIG ME cycles the speedups are relative to.
    pub orig_cycles: u64,
    /// Rows in 1×32 / 1×64 / 2×64 order.
    pub rows: Vec<Table2Row>,
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: loop-level optimizations (ME kernel as one RFU instruction)"
        )?;
        writeln!(
            f,
            "{:>6} | {:>5} {:>12} {:>6} | {:>5} {:>12} {:>6}",
            "", "Lat", "Cycles", "S.Up", "Lat", "Cycles", "S.Up"
        )?;
        writeln!(f, "{:>6} | {:^26} | {:^26}", "", "b = 1", "b = 5")?;
        writeln!(
            f,
            "{:>6}   {:>5} {:>12} {:>6}",
            "Orig", "", self.orig_cycles, "1.00"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} | {:>5} {:>12} {:>6.2} | {:>5} {:>12} {:>6.2}",
                r.bw.label(),
                r.lat_b1,
                r.cycles_b1,
                r.speedup_b1,
                r.lat_b5,
                r.cycles_b5,
                r.speedup_b5
            )?;
        }
        Ok(())
    }
}

/// One Table 3 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Static latency at β = 1.
    pub lat_b1: u64,
    /// Static latency at β = 5.
    pub lat_b5: u64,
    /// Relative latency increase β = 1 → 5.
    pub pct_latency_increase: f64,
    /// Relative speedup change β = 1 → 5 (negative = reduction).
    pub pct_speedup_reduction: f64,
}

/// Table 3: technology-scaling effects.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Rows in bandwidth order.
    pub rows: Vec<Table3Row>,
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: static-latency increase and speedup reduction, b = 1 -> 5"
        )?;
        writeln!(
            f,
            "{:>6} {:>8} {:>8} {:>12} {:>14}",
            "", "Lat b=1", "Lat b=5", "%IncLatency", "%SUpReduction"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>8} {:>8} {:>11.1}% {:>13.1}%",
                r.bw.label(),
                r.lat_b1,
                r.lat_b5,
                r.pct_latency_increase * 100.0,
                r.pct_speedup_reduction * 100.0
            )?;
        }
        Ok(())
    }
}

/// One Table 4 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Stall cycles at β = 1.
    pub stalls_b1: u64,
    /// Reduction vs ORIG at β = 1.
    pub reduction_b1: f64,
    /// Stall cycles at β = 5.
    pub stalls_b5: u64,
    /// Reduction vs ORIG at β = 5.
    pub reduction_b5: f64,
}

/// Table 4: ME cache stalls with one line buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// ORIG stall cycles.
    pub orig_stalls: u64,
    /// Rows in bandwidth order.
    pub rows: Vec<Table4Row>,
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4: ME cache stalls (one line buffer)")?;
        writeln!(
            f,
            "{:>6} | {:>10} {:>7} | {:>10} {:>7}",
            "", "Cycles b=1", "%Red", "Cycles b=5", "%Red"
        )?;
        writeln!(f, "{:>6}   {:>10}", "Orig", self.orig_stalls)?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} | {:>10} {:>6.1}% | {:>10} {:>6.1}%",
                r.bw.label(),
                r.stalls_b1,
                r.reduction_b1 * 100.0,
                r.stalls_b5,
                r.reduction_b5 * 100.0
            )?;
        }
        Ok(())
    }
}

/// One Table 5 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Stall share of ME time at β = 1.
    pub share_b1: f64,
    /// Stall share of ME time at β = 5.
    pub share_b5: f64,
}

/// Table 5: stalls as a share of total ME execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// ORIG stall share.
    pub orig_share: f64,
    /// Rows in bandwidth order.
    pub rows: Vec<Table5Row>,
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 5: cache stalls as % of total ME execution time")?;
        writeln!(f, "{:>6} {:>12} {:>12}", "", "%ofTotal b=1", "%ofTotal b=5")?;
        writeln!(f, "{:>6} {:>11.2}%", "Orig", self.orig_share * 100.0)?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>11.2}% {:>11.2}%",
                r.bw.label(),
                r.share_b1 * 100.0,
                r.share_b5 * 100.0
            )?;
        }
        Ok(())
    }
}

/// One Table 6 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table6Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Technology-scaling factor.
    pub beta: u64,
    /// Static loop cycles (Lat × number of executions).
    pub static_cycles: u64,
    /// Theoretical speedup (no cache effects).
    pub th_speedup: f64,
    /// Measured speedup.
    pub speedup: f64,
    /// `S.Up / Th.S.Up`.
    pub ratio: f64,
}

/// Table 6: theoretical vs experimental loop speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Rows grouped by β, then bandwidth.
    pub rows: Vec<Table6Row>,
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 6: theoretical vs experimental speedups (one line buffer)"
        )?;
        writeln!(
            f,
            "{:>4} {:>6} {:>13} {:>9} {:>7} {:>7}",
            "b", "", "StaticCycles", "Th.S.Up", "S.Up", "Ratio"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>4} {:>6} {:>13} {:>9.2} {:>7.2} {:>6.1}%",
                r.beta,
                r.bw.label(),
                r.static_cycles,
                r.th_speedup,
                r.speedup,
                r.ratio * 100.0
            )?;
        }
        Ok(())
    }
}

/// One Table 7 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table7Row {
    /// Technology-scaling factor.
    pub beta: u64,
    /// Static loop latency.
    pub lat: u64,
    /// ME cycles.
    pub ex_cycles: u64,
    /// Speedup vs ORIG.
    pub speedup: f64,
    /// ME share of the whole application (`%Rel`).
    pub rel_share: f64,
    /// Stall cycles.
    pub stalls: u64,
    /// Stall reduction vs ORIG.
    pub stall_reduction: f64,
}

/// Table 7: two line buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7 {
    /// ORIG ME cycles.
    pub orig_cycles: u64,
    /// ORIG `%Rel` (the paper's 25.6 % initial profile).
    pub orig_rel_share: f64,
    /// ORIG stall cycles.
    pub orig_stalls: u64,
    /// Rows for β = 1 and β = 5.
    pub rows: Vec<Table7Row>,
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 7: ME results with two line buffers")?;
        writeln!(
            f,
            "{:>6} {:>5} {:>12} {:>6} {:>7} {:>10} {:>7}",
            "", "Lat", "ExCycles", "S.Up", "%Rel", "Stalls", "%Red"
        )?;
        writeln!(
            f,
            "{:>6} {:>5} {:>12} {:>6.2} {:>6.1}% {:>10}",
            "Orig",
            "",
            self.orig_cycles,
            1.0,
            self.orig_rel_share * 100.0,
            self.orig_stalls
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>5} {:>12} {:>6.2} {:>6.2}% {:>10} {:>6.1}%",
                format!("b={}", r.beta),
                r.lat,
                r.ex_cycles,
                r.speedup,
                r.rel_share * 100.0,
                r.stalls,
                r.stall_reduction * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end pass over the tiny workload exercising every table.
    #[test]
    fn case_study_tables_on_tiny_workload() {
        let w = Workload::tiny();
        let cs = CaseStudy::run(&w);

        let t1 = cs.table1();
        assert_eq!(t1.rows.len(), 4);
        assert!(t1.rows[3].speedup > 1.0, "A3 faster than ORIG");
        assert!(
            t1.rows[1].speedup <= t1.rows[3].speedup,
            "A1 <= A3 (paper ordering)"
        );

        let t2 = cs.table2();
        assert_eq!(t2.rows.len(), 3);
        // More bandwidth ⇒ shorter latency and at least as much speedup.
        assert!(t2.rows[0].lat_b1 > t2.rows[2].lat_b1);
        assert!(t2.rows[0].speedup_b1 > 1.0);
        // β = 5 never beats β = 1.
        for r in &t2.rows {
            assert!(r.speedup_b5 <= r.speedup_b1 + 1e-9);
            assert_eq!(r.lat_b5 - r.lat_b1, 12, "paper: fixed +12 cycles");
        }

        let t3 = cs.table3();
        // Relative latency increase grows with bandwidth.
        assert!(t3.rows[0].pct_latency_increase < t3.rows[2].pct_latency_increase);

        let t6 = cs.table6();
        for r in &t6.rows {
            assert!(r.ratio <= 1.0 + 1e-9, "measured <= theoretical");
        }

        let t7 = cs.table7();
        assert_eq!(t7.rows.len(), 2);
        assert!(t7.rows[0].speedup >= t2.rows[0].speedup_b1, "2 LB >= 1 LB");
        assert!(t7.rows[0].rel_share < t7.orig_rel_share);

        // Displays render without panicking and contain the headers.
        assert!(cs.table1().to_string().contains("Table 1"));
        assert!(cs.table4().to_string().contains("Table 4"));
        assert!(cs.table5().to_string().contains("Table 5"));
    }
}
