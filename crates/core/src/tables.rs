//! Tables 1–7 of the paper, regenerated from measurements.

use std::collections::BTreeMap;
use std::fmt;

use rvliw_fault::FaultPlan;
use rvliw_kernels::Variant;
use rvliw_rfu::RfuBandwidth;

use crate::app_model::AppModel;
use crate::cache::ScenarioCache;
use crate::runner::{MeResult, ScenarioError};
use crate::scenario::Scenario;
use crate::spec::{ExperimentSpec, SpecError};
use crate::supervisor::{run_scenario_list_supervised, HealthReport, SupervisorConfig};
use crate::sweep::run_scenario_list_cached;
use crate::threads::default_threads;
use crate::workload::Workload;

pub use crate::sweep::ScenarioResult;

/// All measurements needed for every table, collected in one pass.
///
/// Each scenario slot holds a [`ScenarioResult`]: a failing scenario (typed
/// simulator error, SAD divergence, or caught panic) is recorded in place
/// while every other scenario still runs and keeps its bit-exact
/// measurement. The table builders render partial tables, annotating what
/// failed.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// The workload that was replayed.
    pub stride: u32,
    /// `GetSad` calls replayed per scenario (0 when every scenario failed).
    pub calls: u64,
    /// ORIG baseline.
    pub orig: ScenarioResult,
    /// Instruction-level results (A1, A2, A3).
    pub instr: Vec<(Variant, ScenarioResult)>,
    /// Loop-level, single line buffer: (bandwidth, β, static Lat, result).
    pub loops: Vec<(RfuBandwidth, u64, u64, ScenarioResult)>,
    /// Two line buffers: (β, static Lat, result).
    pub two_lb: Vec<(u64, u64, ScenarioResult)>,
    /// Whole-application model calibrated on ORIG (degenerate when ORIG
    /// failed).
    pub app: AppModel,
}

impl CaseStudy {
    /// The paper's scenarios in presentation order: ORIG; A1–A3; the six
    /// single-line-buffer loop points (bandwidth × β); the two
    /// two-line-buffer points. Each scenario is independent — it owns its
    /// machine, memory hierarchy and RFU — which is what makes the fan-out
    /// in [`CaseStudy::run_with_threads`] trivially sound.
    ///
    /// The grid is declared once, as [`ExperimentSpec::paper_grid`], and
    /// expanded here; the checked-in `specs/table*.json` files union to
    /// exactly this list.
    #[must_use]
    pub fn scenarios() -> Vec<Scenario> {
        match ExperimentSpec::paper_grid().scenarios() {
            Ok(v) => v,
            // The paper grid is a compile-time constant with unique labels.
            Err(e) => unreachable!("paper grid failed to expand: {e}"),
        }
    }

    /// Runs every scenario of the paper over `workload`, dispatching them
    /// across [`default_threads`] worker threads. `progress` is called with
    /// a scenario label as each scenario starts (from worker threads when
    /// running parallel — labels may interleave, but every label appears
    /// exactly once).
    #[must_use]
    pub fn run_with_progress(workload: &Workload, progress: impl Fn(&str) + Sync) -> Self {
        Self::run_with_threads(workload, default_threads(), progress)
    }

    /// Runs every scenario on exactly `threads` worker threads (`<= 1`
    /// runs serially on the calling thread). Results are reassembled in
    /// the fixed scenario order, so the outcome — every table, bit for
    /// bit — is independent of the thread count: each scenario owns its
    /// own [`Machine`](rvliw_sim::Machine) and the simulation itself is
    /// deterministic.
    #[must_use]
    pub fn run_with_threads(
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
    ) -> Self {
        let scenarios = Self::scenarios();
        let results = Self::run_list(&scenarios, workload, threads, &progress, None);
        Self::assemble(workload, &scenarios, results)
    }

    /// Runs every scenario under `plan` across `threads` workers. Each
    /// scenario derives its fault substreams from its own label, so the
    /// same seed perturbs every scenario deterministically regardless of
    /// thread scheduling. An inert plan reproduces
    /// [`Self::run_with_threads`] bit for bit.
    #[must_use]
    pub fn run_with_fault_plan(
        workload: &Workload,
        plan: FaultPlan,
        threads: usize,
        progress: impl Fn(&str) + Sync,
    ) -> Self {
        let scenarios: Vec<Scenario> = Self::scenarios()
            .into_iter()
            .map(|sc| sc.with_fault_plan(plan))
            .collect();
        let results = Self::run_list(&scenarios, workload, threads, &progress, None);
        Self::assemble(workload, &scenarios, results)
    }

    /// Runs an explicit scenario list — [`Self::scenarios`], possibly with
    /// modified fault plans or cycle budgets — across `threads` workers.
    /// The list must keep the fixed presentation order (ORIG, A1–A3, the
    /// six loop points, the two two-line-buffer points); slots are
    /// reassembled positionally.
    #[must_use]
    pub fn run_scenarios(
        scenarios: &[Scenario],
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
    ) -> Self {
        Self::run_scenarios_cached(scenarios, workload, threads, progress, None)
    }

    /// [`Self::run_scenarios`] with an optional result cache consulted
    /// before each simulation. Every table is bit-identical with or
    /// without the cache; cache traffic is reported separately via
    /// [`ScenarioCache::counts`].
    #[must_use]
    pub fn run_scenarios_cached(
        scenarios: &[Scenario],
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
        cache: Option<&ScenarioCache>,
    ) -> Self {
        let results = Self::run_list(scenarios, workload, threads, &progress, cache);
        Self::assemble(workload, scenarios, results)
    }

    /// [`Self::run_scenarios_cached`] under a [`SupervisorConfig`]:
    /// journal, resume, retries and watchdog per the config, returning the
    /// case study plus the run's [`HealthReport`]. With the default config
    /// the tables are bit-identical to the plain cached run.
    #[must_use]
    pub fn run_scenarios_supervised(
        scenarios: &[Scenario],
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
        cache: Option<&ScenarioCache>,
        config: &SupervisorConfig,
    ) -> (Self, HealthReport) {
        let (results, health) =
            run_scenario_list_supervised(scenarios, workload, threads, &progress, cache, config);
        (Self::assemble(workload, scenarios, results), health)
    }

    /// Runs `scenarios` across `threads` workers on the shared sweep
    /// engine ([`run_scenario_list_cached`]), returning one
    /// [`ScenarioResult`] per scenario in input order.
    fn run_list(
        scenarios: &[Scenario],
        workload: &Workload,
        threads: usize,
        progress: &(impl Fn(&str) + Sync),
        cache: Option<&ScenarioCache>,
    ) -> Vec<ScenarioResult> {
        run_scenario_list_cached(scenarios, workload, threads, progress, cache)
    }

    /// Runs the case study from declarative specs — the `tables --spec`
    /// path. The specs' scenarios are unioned by label (identical
    /// duplicates collapse, e.g. every table spec carries the ORIG
    /// baseline) and must cover the paper grid exactly; the union then
    /// runs through [`Self::run_scenarios`] in canonical order, so the
    /// result is bit-identical to [`Self::run_with_threads`].
    ///
    /// # Errors
    ///
    /// [`SpecError::DuplicateLabel`] from a spec's own expansion, and
    /// [`SpecError::GridMismatch`] when two specs disagree about a label's
    /// configuration, a paper-grid scenario is missing, or a spec
    /// contributes an off-grid scenario (those run through `rvliw sweep`,
    /// not the tables pipeline).
    pub fn run_from_specs(
        specs: &[ExperimentSpec],
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
    ) -> Result<Self, SpecError> {
        Self::run_from_specs_cached(specs, workload, threads, progress, None)
    }

    /// [`Self::run_from_specs`] with an optional result cache — the warm
    /// fast path of `tables --spec --check`. Bit-identical to the cold
    /// path: hits return the full stored measurement.
    ///
    /// # Errors
    ///
    /// As for [`Self::run_from_specs`].
    pub fn run_from_specs_cached(
        specs: &[ExperimentSpec],
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
        cache: Option<&ScenarioCache>,
    ) -> Result<Self, SpecError> {
        let ordered = Self::specs_to_grid(specs)?;
        Ok(Self::run_scenarios_cached(
            &ordered, workload, threads, progress, cache,
        ))
    }

    /// [`Self::run_from_specs_cached`] under a [`SupervisorConfig`],
    /// returning the case study plus the run's [`HealthReport`].
    ///
    /// # Errors
    ///
    /// As for [`Self::run_from_specs`].
    pub fn run_from_specs_supervised(
        specs: &[ExperimentSpec],
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
        cache: Option<&ScenarioCache>,
        config: &SupervisorConfig,
    ) -> Result<(Self, HealthReport), SpecError> {
        let ordered = Self::specs_to_grid(specs)?;
        Ok(Self::run_scenarios_supervised(
            &ordered, workload, threads, progress, cache, config,
        ))
    }

    /// Unions the specs' scenarios by label and orders them onto the
    /// paper grid, rejecting disagreements, gaps and off-grid extras.
    fn specs_to_grid(specs: &[ExperimentSpec]) -> Result<Vec<Scenario>, SpecError> {
        let mut by_label: BTreeMap<String, Scenario> = BTreeMap::new();
        for spec in specs {
            for sc in spec.scenarios()? {
                match by_label.get(&sc.label) {
                    None => {
                        by_label.insert(sc.label.clone(), sc);
                    }
                    Some(existing) if *existing == sc => {}
                    Some(_) => {
                        return Err(SpecError::GridMismatch {
                            message: format!(
                                "specs disagree about scenario `{}` (same label, \
                                 different configuration)",
                                sc.label
                            ),
                        });
                    }
                }
            }
        }
        let mut ordered = Vec::new();
        for canonical in Self::scenarios() {
            match by_label.remove(&canonical.label) {
                Some(sc) => ordered.push(sc),
                None => {
                    return Err(SpecError::GridMismatch {
                        message: format!(
                            "paper-grid scenario `{}` is missing from the specs",
                            canonical.label
                        ),
                    });
                }
            }
        }
        if let Some(label) = by_label.into_keys().next() {
            return Err(SpecError::GridMismatch {
                message: format!(
                    "scenario `{label}` is not part of the paper grid \
                     (off-grid specs run through `rvliw sweep`)"
                ),
            });
        }
        Ok(ordered)
    }

    /// Reassembles per-scenario results (in the fixed order [`Self::scenarios`]
    /// produced) into the named slots of a `CaseStudy`.
    fn assemble(workload: &Workload, scenarios: &[Scenario], results: Vec<ScenarioResult>) -> Self {
        let calls = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.calls)
            .next()
            .unwrap_or(0);
        let orig_me = results
            .first()
            .and_then(|r| r.as_ref().ok())
            .map_or(0, |r| r.me_cycles);
        let mut it = results.into_iter();
        let mut idx = 0usize;
        let mut take = |slot: &mut usize| -> ScenarioResult {
            let label = scenarios
                .get(*slot)
                .map_or("?", |sc| sc.label.as_str())
                .to_owned();
            *slot += 1;
            it.next().unwrap_or_else(|| {
                Err(ScenarioError::Panic {
                    label,
                    message: "scenario result missing".to_owned(),
                    location: None,
                })
            })
        };
        let orig = take(&mut idx);
        let instr = [Variant::A1, Variant::A2, Variant::A3]
            .into_iter()
            .map(|v| (v, take(&mut idx)))
            .collect();
        let mut loops = Vec::new();
        for bw in RfuBandwidth::all() {
            for beta in [1u64, 5] {
                let lat = Scenario::loop_level(bw, beta).static_latency(workload.stride);
                loops.push((bw, beta, lat, take(&mut idx)));
            }
        }
        let mut two_lb = Vec::new();
        for beta in [1u64, 5] {
            let lat = Scenario::loop_two_lb(beta).static_latency(workload.stride);
            two_lb.push((beta, lat, take(&mut idx)));
        }
        let app = AppModel::calibrated(orig_me);
        CaseStudy {
            stride: workload.stride,
            calls,
            orig,
            instr,
            loops,
            two_lb,
            app,
        }
    }

    /// Runs silently on the default thread count.
    #[must_use]
    pub fn run(workload: &Workload) -> Self {
        Self::run_with_progress(workload, |_| {})
    }

    /// Every scenario slot in presentation order.
    pub fn results(&self) -> impl Iterator<Item = &ScenarioResult> {
        std::iter::once(&self.orig)
            .chain(self.instr.iter().map(|(_, r)| r))
            .chain(self.loops.iter().map(|(_, _, _, r)| r))
            .chain(self.two_lb.iter().map(|(_, _, r)| r))
    }

    /// The errors of every failed scenario, in presentation order.
    #[must_use]
    pub fn failures(&self) -> Vec<&ScenarioError> {
        self.results().filter_map(|r| r.as_ref().err()).collect()
    }

    /// Whether every scenario produced a measurement.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.results().all(Result::is_ok)
    }

    fn orig_ok(&self) -> Option<&MeResult> {
        self.orig.as_ref().ok()
    }

    /// ORIG, noting its failure in `failed` when it is unavailable.
    fn note_orig(&self, failed: &mut Vec<String>) -> Option<&MeResult> {
        match &self.orig {
            Ok(o) => Some(o),
            Err(e) => {
                failed.push(e.to_string());
                None
            }
        }
    }

    /// The (static latency, result) of a loop-level point, noting its
    /// failure in `failed` when it is unavailable.
    fn loop_ok(
        &self,
        bw: RfuBandwidth,
        beta: u64,
        failed: &mut Vec<String>,
    ) -> Option<(u64, &MeResult)> {
        let (_, _, lat, r) = self
            .loops
            .iter()
            .find(|(b, be, _, _)| *b == bw && *be == beta)?;
        match r {
            Ok(r) => Some((*lat, r)),
            Err(e) => {
                failed.push(e.to_string());
                None
            }
        }
    }

    fn speedup_of(&self, r: &MeResult) -> f64 {
        self.orig_ok().map_or(0.0, |o| r.speedup_vs(o))
    }

    /// Table 1: instruction-level optimization results. Failed scenarios
    /// lose their row and are listed in [`Table1::failed`].
    #[must_use]
    pub fn table1(&self) -> Table1 {
        let mut failed = Vec::new();
        let mut rows = Vec::new();
        if self.note_orig(&mut failed).is_some() {
            rows.push(Table1Row {
                name: "Orig".into(),
                cycles: self.orig_ok().map_or(0, |o| o.me_cycles),
                speedup: 1.0,
                improvement: 0.0,
            });
        }
        for (v, r) in &self.instr {
            match r {
                Ok(r) => rows.push(Table1Row {
                    name: v.name().into(),
                    cycles: r.me_cycles,
                    speedup: self.speedup_of(r),
                    improvement: self.orig_ok().map_or(0.0, |o| r.improvement_vs(o)),
                }),
                Err(e) => failed.push(e.to_string()),
            }
        }
        Table1 { rows, failed }
    }

    /// Table 2: loop-level results per bandwidth and β. A bandwidth row is
    /// rendered only when both of its β points succeeded.
    #[must_use]
    pub fn table2(&self) -> Table2 {
        let mut failed = Vec::new();
        let orig_cycles = self.note_orig(&mut failed).map_or(0, |o| o.me_cycles);
        let mut rows = Vec::new();
        for bw in RfuBandwidth::all() {
            let b1 = self.loop_ok(bw, 1, &mut failed);
            let b5 = self.loop_ok(bw, 5, &mut failed);
            if let (Some((lat1, r1)), Some((lat5, r5))) = (b1, b5) {
                rows.push(Table2Row {
                    bw,
                    lat_b1: lat1,
                    cycles_b1: r1.me_cycles,
                    speedup_b1: self.speedup_of(r1),
                    lat_b5: lat5,
                    cycles_b5: r5.me_cycles,
                    speedup_b5: self.speedup_of(r5),
                });
            }
        }
        Table2 {
            orig_cycles,
            rows,
            failed,
        }
    }

    /// Table 3: latency increase vs speedup reduction under technology
    /// scaling.
    #[must_use]
    pub fn table3(&self) -> Table3 {
        let mut failed = Vec::new();
        let mut rows = Vec::new();
        for bw in RfuBandwidth::all() {
            let b1 = self.loop_ok(bw, 1, &mut failed);
            let b5 = self.loop_ok(bw, 5, &mut failed);
            if let (Some((lat1, r1)), Some((lat5, r5))) = (b1, b5) {
                let s1 = self.speedup_of(r1);
                let s5 = self.speedup_of(r5);
                rows.push(Table3Row {
                    bw,
                    lat_b1: lat1,
                    lat_b5: lat5,
                    pct_latency_increase: (lat5 as f64 - lat1 as f64) / lat1 as f64,
                    pct_speedup_reduction: if s1 == 0.0 { 0.0 } else { (s5 - s1) / s1 },
                });
            }
        }
        Table3 { rows, failed }
    }

    /// Table 4: ME cache stalls with one line buffer.
    #[must_use]
    pub fn table4(&self) -> Table4 {
        let mut failed = Vec::new();
        let orig = self.note_orig(&mut failed);
        let orig_stalls = orig.map_or(0, |o| o.stall_cycles);
        let mut rows = Vec::new();
        for bw in RfuBandwidth::all() {
            let b1 = self.loop_ok(bw, 1, &mut failed);
            let b5 = self.loop_ok(bw, 5, &mut failed);
            if let (Some((_, r1)), Some((_, r5))) = (b1, b5) {
                rows.push(Table4Row {
                    bw,
                    stalls_b1: r1.stall_cycles,
                    reduction_b1: self.orig_ok().map_or(0.0, |o| r1.stall_reduction_vs(o)),
                    stalls_b5: r5.stall_cycles,
                    reduction_b5: self.orig_ok().map_or(0.0, |o| r5.stall_reduction_vs(o)),
                });
            }
        }
        Table4 {
            orig_stalls,
            rows,
            failed,
        }
    }

    /// Table 5: cache stalls as a share of ME execution time.
    #[must_use]
    pub fn table5(&self) -> Table5 {
        let mut failed = Vec::new();
        let orig_share = self
            .note_orig(&mut failed)
            .map_or(0.0, MeResult::stall_share);
        let mut rows = Vec::new();
        for bw in RfuBandwidth::all() {
            let b1 = self.loop_ok(bw, 1, &mut failed);
            let b5 = self.loop_ok(bw, 5, &mut failed);
            if let (Some((_, r1)), Some((_, r5))) = (b1, b5) {
                rows.push(Table5Row {
                    bw,
                    share_b1: r1.stall_share(),
                    share_b5: r5.stall_share(),
                });
            }
        }
        Table5 {
            orig_share,
            rows,
            failed,
        }
    }

    /// Table 6: theoretical vs experimental speedups.
    #[must_use]
    pub fn table6(&self) -> Table6 {
        let mut failed = Vec::new();
        let orig_me = self.note_orig(&mut failed).map_or(0, |o| o.me_cycles);
        let mut rows = Vec::new();
        for beta in [1u64, 5] {
            for bw in RfuBandwidth::all() {
                let Some((lat, r)) = self.loop_ok(bw, beta, &mut failed) else {
                    continue;
                };
                // The loop executes once per GetSad call.
                let static_cycles = lat * self.calls;
                let th = if static_cycles == 0 {
                    0.0
                } else {
                    orig_me as f64 / static_cycles as f64
                };
                let sup = self.speedup_of(r);
                rows.push(Table6Row {
                    bw,
                    beta,
                    static_cycles,
                    th_speedup: th,
                    speedup: sup,
                    ratio: if th == 0.0 { 0.0 } else { sup / th },
                });
            }
        }
        Table6 { rows, failed }
    }

    /// Table 7: the two-line-buffer scheme.
    #[must_use]
    pub fn table7(&self) -> Table7 {
        let mut failed = Vec::new();
        let orig = self.note_orig(&mut failed);
        let mut rows = Vec::new();
        for (beta, lat, r) in &self.two_lb {
            match r {
                Ok(r) => rows.push(Table7Row {
                    beta: *beta,
                    lat: *lat,
                    ex_cycles: r.me_cycles,
                    speedup: self.speedup_of(r),
                    rel_share: self.app.me_share(r.me_cycles),
                    stalls: r.stall_cycles,
                    stall_reduction: self.orig_ok().map_or(0.0, |o| r.stall_reduction_vs(o)),
                }),
                Err(e) => failed.push(e.to_string()),
            }
        }
        Table7 {
            orig_cycles: orig.map_or(0, |o| o.me_cycles),
            orig_rel_share: orig.map_or(0.0, |o| self.app.me_share(o.me_cycles)),
            orig_stalls: orig.map_or(0, |o| o.stall_cycles),
            rows,
            failed,
        }
    }
}

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Scenario name.
    pub name: String,
    /// ME cycles.
    pub cycles: u64,
    /// Speedup vs ORIG.
    pub speedup: f64,
    /// `(orig − new) / orig`.
    pub improvement: f64,
}

/// Table 1: instruction-level optimizations.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in Orig/A1/A2/A3 order.
    pub rows: Vec<Table1Row>,
    /// Failed scenarios whose cells are absent from this table
    /// (one rendered error per scenario).
    pub failed: Vec<String>,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: instruction-level optimizations")?;
        writeln!(
            f,
            "{:>6} {:>12} {:>7} {:>9}",
            "", "CYCLES", "S.Up", "%Improv"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>12} {:>7.2} {:>8.1}%",
                r.name,
                r.cycles,
                r.speedup,
                r.improvement * 100.0
            )?;
        }
        for e in &self.failed {
            writeln!(f, "  [failed] {e}")?;
        }
        Ok(())
    }
}

/// One Table 2 row (a bandwidth option across both β values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Static loop latency at β = 1.
    pub lat_b1: u64,
    /// ME cycles at β = 1.
    pub cycles_b1: u64,
    /// Speedup at β = 1.
    pub speedup_b1: f64,
    /// Static loop latency at β = 5.
    pub lat_b5: u64,
    /// ME cycles at β = 5.
    pub cycles_b5: u64,
    /// Speedup at β = 5.
    pub speedup_b5: f64,
}

/// Table 2: loop-level optimizations.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// The ORIG ME cycles the speedups are relative to.
    pub orig_cycles: u64,
    /// Rows in 1×32 / 1×64 / 2×64 order.
    pub rows: Vec<Table2Row>,
    /// Failed scenarios whose cells are absent from this table
    /// (one rendered error per scenario).
    pub failed: Vec<String>,
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: loop-level optimizations (ME kernel as one RFU instruction)"
        )?;
        writeln!(
            f,
            "{:>6} | {:>5} {:>12} {:>6} | {:>5} {:>12} {:>6}",
            "", "Lat", "Cycles", "S.Up", "Lat", "Cycles", "S.Up"
        )?;
        writeln!(f, "{:>6} | {:^26} | {:^26}", "", "b = 1", "b = 5")?;
        writeln!(
            f,
            "{:>6}   {:>5} {:>12} {:>6}",
            "Orig", "", self.orig_cycles, "1.00"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} | {:>5} {:>12} {:>6.2} | {:>5} {:>12} {:>6.2}",
                r.bw.label(),
                r.lat_b1,
                r.cycles_b1,
                r.speedup_b1,
                r.lat_b5,
                r.cycles_b5,
                r.speedup_b5
            )?;
        }
        for e in &self.failed {
            writeln!(f, "  [failed] {e}")?;
        }
        Ok(())
    }
}

/// One Table 3 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Static latency at β = 1.
    pub lat_b1: u64,
    /// Static latency at β = 5.
    pub lat_b5: u64,
    /// Relative latency increase β = 1 → 5.
    pub pct_latency_increase: f64,
    /// Relative speedup change β = 1 → 5 (negative = reduction).
    pub pct_speedup_reduction: f64,
}

/// Table 3: technology-scaling effects.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Rows in bandwidth order.
    pub rows: Vec<Table3Row>,
    /// Failed scenarios whose cells are absent from this table
    /// (one rendered error per scenario).
    pub failed: Vec<String>,
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: static-latency increase and speedup reduction, b = 1 -> 5"
        )?;
        writeln!(
            f,
            "{:>6} {:>8} {:>8} {:>12} {:>14}",
            "", "Lat b=1", "Lat b=5", "%IncLatency", "%SUpReduction"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>8} {:>8} {:>11.1}% {:>13.1}%",
                r.bw.label(),
                r.lat_b1,
                r.lat_b5,
                r.pct_latency_increase * 100.0,
                r.pct_speedup_reduction * 100.0
            )?;
        }
        for e in &self.failed {
            writeln!(f, "  [failed] {e}")?;
        }
        Ok(())
    }
}

/// One Table 4 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Stall cycles at β = 1.
    pub stalls_b1: u64,
    /// Reduction vs ORIG at β = 1.
    pub reduction_b1: f64,
    /// Stall cycles at β = 5.
    pub stalls_b5: u64,
    /// Reduction vs ORIG at β = 5.
    pub reduction_b5: f64,
}

/// Table 4: ME cache stalls with one line buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// ORIG stall cycles.
    pub orig_stalls: u64,
    /// Rows in bandwidth order.
    pub rows: Vec<Table4Row>,
    /// Failed scenarios whose cells are absent from this table
    /// (one rendered error per scenario).
    pub failed: Vec<String>,
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4: ME cache stalls (one line buffer)")?;
        writeln!(
            f,
            "{:>6} | {:>10} {:>7} | {:>10} {:>7}",
            "", "Cycles b=1", "%Red", "Cycles b=5", "%Red"
        )?;
        writeln!(f, "{:>6}   {:>10}", "Orig", self.orig_stalls)?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} | {:>10} {:>6.1}% | {:>10} {:>6.1}%",
                r.bw.label(),
                r.stalls_b1,
                r.reduction_b1 * 100.0,
                r.stalls_b5,
                r.reduction_b5 * 100.0
            )?;
        }
        for e in &self.failed {
            writeln!(f, "  [failed] {e}")?;
        }
        Ok(())
    }
}

/// One Table 5 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table5Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Stall share of ME time at β = 1.
    pub share_b1: f64,
    /// Stall share of ME time at β = 5.
    pub share_b5: f64,
}

/// Table 5: stalls as a share of total ME execution time.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// ORIG stall share.
    pub orig_share: f64,
    /// Rows in bandwidth order.
    pub rows: Vec<Table5Row>,
    /// Failed scenarios whose cells are absent from this table
    /// (one rendered error per scenario).
    pub failed: Vec<String>,
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 5: cache stalls as % of total ME execution time")?;
        writeln!(f, "{:>6} {:>12} {:>12}", "", "%ofTotal b=1", "%ofTotal b=5")?;
        writeln!(f, "{:>6} {:>11.2}%", "Orig", self.orig_share * 100.0)?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>11.2}% {:>11.2}%",
                r.bw.label(),
                r.share_b1 * 100.0,
                r.share_b5 * 100.0
            )?;
        }
        for e in &self.failed {
            writeln!(f, "  [failed] {e}")?;
        }
        Ok(())
    }
}

/// One Table 6 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table6Row {
    /// Bandwidth option.
    pub bw: RfuBandwidth,
    /// Technology-scaling factor.
    pub beta: u64,
    /// Static loop cycles (Lat × number of executions).
    pub static_cycles: u64,
    /// Theoretical speedup (no cache effects).
    pub th_speedup: f64,
    /// Measured speedup.
    pub speedup: f64,
    /// `S.Up / Th.S.Up`.
    pub ratio: f64,
}

/// Table 6: theoretical vs experimental loop speedups.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Rows grouped by β, then bandwidth.
    pub rows: Vec<Table6Row>,
    /// Failed scenarios whose cells are absent from this table
    /// (one rendered error per scenario).
    pub failed: Vec<String>,
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 6: theoretical vs experimental speedups (one line buffer)"
        )?;
        writeln!(
            f,
            "{:>4} {:>6} {:>13} {:>9} {:>7} {:>7}",
            "b", "", "StaticCycles", "Th.S.Up", "S.Up", "Ratio"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>4} {:>6} {:>13} {:>9.2} {:>7.2} {:>6.1}%",
                r.beta,
                r.bw.label(),
                r.static_cycles,
                r.th_speedup,
                r.speedup,
                r.ratio * 100.0
            )?;
        }
        for e in &self.failed {
            writeln!(f, "  [failed] {e}")?;
        }
        Ok(())
    }
}

/// One Table 7 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table7Row {
    /// Technology-scaling factor.
    pub beta: u64,
    /// Static loop latency.
    pub lat: u64,
    /// ME cycles.
    pub ex_cycles: u64,
    /// Speedup vs ORIG.
    pub speedup: f64,
    /// ME share of the whole application (`%Rel`).
    pub rel_share: f64,
    /// Stall cycles.
    pub stalls: u64,
    /// Stall reduction vs ORIG.
    pub stall_reduction: f64,
}

/// Table 7: two line buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7 {
    /// ORIG ME cycles.
    pub orig_cycles: u64,
    /// ORIG `%Rel` (the paper's 25.6 % initial profile).
    pub orig_rel_share: f64,
    /// ORIG stall cycles.
    pub orig_stalls: u64,
    /// Rows for β = 1 and β = 5.
    pub rows: Vec<Table7Row>,
    /// Failed scenarios whose cells are absent from this table
    /// (one rendered error per scenario).
    pub failed: Vec<String>,
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 7: ME results with two line buffers")?;
        writeln!(
            f,
            "{:>6} {:>5} {:>12} {:>6} {:>7} {:>10} {:>7}",
            "", "Lat", "ExCycles", "S.Up", "%Rel", "Stalls", "%Red"
        )?;
        writeln!(
            f,
            "{:>6} {:>5} {:>12} {:>6.2} {:>6.1}% {:>10}",
            "Orig",
            "",
            self.orig_cycles,
            1.0,
            self.orig_rel_share * 100.0,
            self.orig_stalls
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>5} {:>12} {:>6.2} {:>6.2}% {:>10} {:>6.1}%",
                format!("b={}", r.beta),
                r.lat,
                r.ex_cycles,
                r.speedup,
                r.rel_share * 100.0,
                r.stalls,
                r.stall_reduction * 100.0
            )?;
        }
        for e in &self.failed {
            writeln!(f, "  [failed] {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end pass over the tiny workload exercising every table.
    #[test]
    fn case_study_tables_on_tiny_workload() {
        let w = Workload::tiny();
        let cs = CaseStudy::run(&w);

        let t1 = cs.table1();
        assert_eq!(t1.rows.len(), 4);
        assert!(t1.rows[3].speedup > 1.0, "A3 faster than ORIG");
        assert!(
            t1.rows[1].speedup <= t1.rows[3].speedup,
            "A1 <= A3 (paper ordering)"
        );

        let t2 = cs.table2();
        assert_eq!(t2.rows.len(), 3);
        // More bandwidth ⇒ shorter latency and at least as much speedup.
        assert!(t2.rows[0].lat_b1 > t2.rows[2].lat_b1);
        assert!(t2.rows[0].speedup_b1 > 1.0);
        // β = 5 never beats β = 1.
        for r in &t2.rows {
            assert!(r.speedup_b5 <= r.speedup_b1 + 1e-9);
            assert_eq!(r.lat_b5 - r.lat_b1, 12, "paper: fixed +12 cycles");
        }

        let t3 = cs.table3();
        // Relative latency increase grows with bandwidth.
        assert!(t3.rows[0].pct_latency_increase < t3.rows[2].pct_latency_increase);

        let t6 = cs.table6();
        for r in &t6.rows {
            assert!(r.ratio <= 1.0 + 1e-9, "measured <= theoretical");
        }

        let t7 = cs.table7();
        assert_eq!(t7.rows.len(), 2);
        assert!(t7.rows[0].speedup >= t2.rows[0].speedup_b1, "2 LB >= 1 LB");
        assert!(t7.rows[0].rel_share < t7.orig_rel_share);

        // Displays render without panicking and contain the headers.
        assert!(cs.table1().to_string().contains("Table 1"));
        assert!(cs.table4().to_string().contains("Table 4"));
        assert!(cs.table5().to_string().contains("Table 5"));
    }
}
