//! Worker-thread configuration, shared by the case study and the sweep
//! engine.
//!
//! Both CLI front ends (`rvliw sweep` and the `tables` binary) parse
//! `--threads` and `RVLIW_THREADS` through [`parse_threads`], so the
//! convention is defined once: a positive integer is an explicit worker
//! count, and `0` means "auto" — the machine's available parallelism.

/// The machine's available parallelism (at least 1).
#[must_use]
pub fn auto_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The default worker-thread count: the `RVLIW_THREADS` environment
/// variable when set to a valid count (`0` means auto), otherwise the
/// machine's available parallelism. An invalid value produces a stderr
/// warning and falls back to auto-detection instead of being silently
/// ignored.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RVLIW_THREADS") {
        match parse_threads(&v) {
            Ok(n) => return n,
            Err(e) => eprintln!("warning: RVLIW_THREADS: {e}; using available parallelism"),
        }
    }
    auto_threads()
}

/// Parses a worker-thread count (the `--threads` flag, the
/// `RVLIW_THREADS` variable): a non-negative integer, where `0` resolves
/// to [`auto_threads`].
///
/// # Errors
///
/// A human-readable message when `s` is not a non-negative integer.
pub fn parse_threads(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(0) => Ok(auto_threads()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "invalid thread count `{s}` (want a non-negative integer; 0 means auto)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 16 "), Ok(16));
    }

    #[test]
    fn zero_means_auto_in_both_cli_entry_points() {
        // The shared contract for `rvliw sweep --threads 0` and
        // `tables --threads 0` (and RVLIW_THREADS=0): resolve to the
        // machine's available parallelism, never reject, never 0.
        let auto = auto_threads();
        assert!(auto >= 1);
        assert_eq!(parse_threads("0"), Ok(auto));
        assert_eq!(parse_threads(" 0 "), Ok(auto));
    }

    #[test]
    fn parse_threads_rejects_junk() {
        for bad in ["-3", "many", "1.5", ""] {
            assert!(parse_threads(bad).is_err(), "`{bad}` should be rejected");
        }
    }
}
