//! Worker-thread configuration, shared by the case study and the sweep
//! engine.

/// The default worker-thread count: the `RVLIW_THREADS` environment
/// variable when set to a positive integer, otherwise the machine's
/// available parallelism. An invalid value produces a stderr warning and
/// falls back to auto-detection instead of being silently ignored.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RVLIW_THREADS") {
        match parse_threads(&v) {
            Ok(n) => return n,
            Err(e) => eprintln!("warning: RVLIW_THREADS: {e}; using available parallelism"),
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses a worker-thread count (the `--threads` flag, the
/// `RVLIW_THREADS` variable): a positive integer.
///
/// # Errors
///
/// A human-readable message when `s` is not a positive integer.
pub fn parse_threads(s: &str) -> Result<usize, String> {
    match s.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid thread count `{s}` (want a positive integer)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 16 "), Ok(16));
    }

    #[test]
    fn parse_threads_rejects_junk() {
        for bad in ["0", "-3", "many", "1.5", ""] {
            assert!(parse_threads(bad).is_err(), "`{bad}` should be rejected");
        }
    }
}
