//! Content-addressed caching of scenario results.
//!
//! A scenario's measurement is a pure function of the scheduled kernel
//! programs, the machine/memory/RFU/fault configuration and the workload
//! trace. [`scenario_key`] hashes exactly those inputs (plus a schema
//! version) into a [`CacheKey`]; [`ScenarioCache`] stores each
//! [`MeResult`] under its key so repeated sweeps skip unchanged
//! scenarios. The runner consults the cache *before* simulating and
//! records *after* — a cached sweep is bit-identical to a cold one by
//! construction, because the stored value is the full measurement, not a
//! recomputation.
//!
//! Invalidation is by over-approximation: the canonicalized scenario is
//! its `Debug` rendering, which automatically covers every field (new
//! fields invalidate old keys — a safe failure mode: re-simulation, never
//! a wrong result). Program bytes are hashed from the scheduled bundles,
//! not from process-local code identities, so keys are stable across
//! processes. The scenario label participates in the key because fault
//! substreams are salted with it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use mpeg4_enc::sad::InterpKind;
use mpeg4_enc::types::Plane;
use mpeg4_enc::QualityMetrics;
use rvliw_asm::Code;
use rvliw_cache::{CacheCounts, CacheError, CacheKey, KeyBuilder, ResultCache};
use rvliw_fault::FaultPlan;
use rvliw_isa::{encode_op, Substrate};
use rvliw_kernels::{build_getsad_approx, build_mb_prep, build_me_loop_call, DriverKind, Variant};
use rvliw_mem::MemStats;
use rvliw_rfu::{RfuBandwidth, RfuStats};
use rvliw_sim::SimStats;
use rvliw_trace::Json;

use crate::runner::MeResult;
use crate::scenario::{
    approx_token, parse_approx, parse_search, sad_approx_to_rfu, search_token, Kind, Scenario,
};
use crate::sweep::run_scenario_list;
use crate::workload::Workload;

/// Version of the core result payload layout inside a cache entry. Bump
/// when [`MeResult`] serialization changes shape; old entries then stop
/// matching by key and are re-simulated.
pub const RESULT_SCHEMA: u64 = 1;

/// The cache directory implied by the environment: `RVLIW_CACHE_DIR` when
/// set and non-empty. Caching stays off when this returns `None` and no
/// `--cache-dir` was given.
#[must_use]
pub fn default_cache_dir() -> Option<PathBuf> {
    std::env::var_os("RVLIW_CACHE_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

fn interp_bits(kind: InterpKind) -> u32 {
    match kind {
        InterpKind::None => 0,
        InterpKind::H => 1,
        InterpKind::V => 2,
        InterpKind::Diag => 3,
    }
}

fn hash_plane(kb: &mut KeyBuilder, tag: &str, p: &Plane) {
    let mut bytes = Vec::with_capacity(p.width() * p.height());
    for y in 0..p.height() {
        bytes.extend_from_slice(p.row(y));
    }
    kb.field_u64(tag, p.width() as u64);
    kb.field_bytes(tag, &bytes);
}

/// Digest of everything the replay reads from a workload: the stride, the
/// source and reconstructed luma planes, and the full `GetSad` call trace
/// (coordinates, interpolation kinds and golden SADs).
#[must_use]
pub fn workload_digest(w: &Workload) -> CacheKey {
    let mut kb = KeyBuilder::new("workload", rvliw_cache::SCHEMA_VERSION);
    kb.field_u64("stride", u64::from(w.stride));
    kb.field_u64("frames", w.frames.len() as u64);
    for (i, frame) in w.frames.iter().enumerate() {
        hash_plane(&mut kb, &format!("frame.{i}.y"), &frame.y);
    }
    for (i, frame) in w.report.recon.iter().enumerate() {
        hash_plane(&mut kb, &format!("recon.{i}.y"), &frame.y);
    }
    let mut motion: Vec<u32> = Vec::new();
    for fr in &w.report.frames {
        motion.push(fr.motion.len() as u32);
        for mb in &fr.motion {
            motion.push(mb.mbx as u32);
            motion.push(mb.mby as u32);
            motion.push(mb.calls.len() as u32);
            for c in &mb.calls {
                motion.push(c.cx as u32);
                motion.push(c.cy as u32);
                motion.push(interp_bits(c.kind));
                motion.push(c.sad);
            }
        }
    }
    kb.field_words("motion", &motion);
    kb.finish()
}

/// Hashes a scheduled program: its name, the encoded operation words and
/// the bundle boundaries (two schedules of the same operations must not
/// alias).
fn hash_code(kb: &mut KeyBuilder, tag: &str, code: &Code) {
    kb.field_str(tag, code.name());
    let mut words: Vec<u32> = Vec::new();
    let mut bundle_sizes: Vec<u32> = Vec::new();
    for bundle in code.bundles() {
        let before = words.len();
        for op in bundle.ops() {
            encode_op(op, &mut words);
        }
        bundle_sizes.push((words.len() - before) as u32);
    }
    kb.field_words(tag, &words);
    kb.field_words(tag, &bundle_sizes);
}

/// Hashes the exact programs the runner would build for this scenario
/// (mirroring `run_me`'s program construction).
fn hash_programs(kb: &mut KeyBuilder, sc: &Scenario) {
    match &sc.kind {
        Kind::Instruction(variant) => {
            // Exact scenarios build byte-identical code to the historical
            // `build_getsad`, so pre-existing keys are untouched.
            hash_code(
                kb,
                "prog.instr",
                &build_getsad_approx(*variant, sad_approx_to_rfu(sc.approx), &sc.machine),
            );
        }
        Kind::Loop {
            two_line_buffers, ..
        } => {
            let kind = if *two_line_buffers {
                DriverKind::DoubleLineBuffer
            } else {
                DriverKind::SingleLineBuffer
            };
            hash_code(kb, "prog.prep", &build_mb_prep(kind, &sc.machine));
            hash_code(kb, "prog.call", &build_me_loop_call(kind, &sc.machine));
        }
    }
}

/// The content address of one scenario's measurement over one workload.
///
/// Covers the canonicalized scenario (every field of [`Scenario`],
/// including machine, memory, reconfiguration, line-buffer, fault-plan
/// parameters and the label — fault substreams are salted with it), the
/// scheduled kernel program bytes, the workload digest and the schema
/// versions. Any single-field perturbation changes the key.
#[must_use]
pub fn scenario_key(sc: &Scenario, workload: CacheKey) -> CacheKey {
    let mut kb = KeyBuilder::new("scenario-result", rvliw_cache::SCHEMA_VERSION);
    kb.field_u64("result-schema", RESULT_SCHEMA);
    kb.field_str("scenario", &format!("{sc:?}"));
    hash_programs(&mut kb, sc);
    kb.field_str("workload", &workload.hex());
    kb.finish()
}

fn num(v: u64) -> Json {
    Json::Num(v.to_string())
}

fn mem_to_json(m: &MemStats) -> Json {
    // Exhaustive destructuring: adding a MemStats field breaks this
    // function until the serialization (and RESULT_SCHEMA) is updated.
    let MemStats {
        loads,
        stores,
        d_hits,
        d_misses,
        d_late_covered,
        d_stall_cycles,
        writebacks,
        i_misses,
        i_stall_cycles,
        pf_issued,
        pf_dropped,
        pf_redundant,
        pf_useful,
        pf_late,
    } = *m;
    let mut o = BTreeMap::new();
    o.insert("loads".to_owned(), num(loads));
    o.insert("stores".to_owned(), num(stores));
    o.insert("d_hits".to_owned(), num(d_hits));
    o.insert("d_misses".to_owned(), num(d_misses));
    o.insert("d_late_covered".to_owned(), num(d_late_covered));
    o.insert("d_stall_cycles".to_owned(), num(d_stall_cycles));
    o.insert("writebacks".to_owned(), num(writebacks));
    o.insert("i_misses".to_owned(), num(i_misses));
    o.insert("i_stall_cycles".to_owned(), num(i_stall_cycles));
    o.insert("pf_issued".to_owned(), num(pf_issued));
    o.insert("pf_dropped".to_owned(), num(pf_dropped));
    o.insert("pf_redundant".to_owned(), num(pf_redundant));
    o.insert("pf_useful".to_owned(), num(pf_useful));
    o.insert("pf_late".to_owned(), num(pf_late));
    Json::Obj(o)
}

fn field(j: &Json, key: &str) -> Option<u64> {
    j.get(key).and_then(Json::as_u64)
}

fn mem_from_json(j: &Json) -> Option<MemStats> {
    Some(MemStats {
        loads: field(j, "loads")?,
        stores: field(j, "stores")?,
        d_hits: field(j, "d_hits")?,
        d_misses: field(j, "d_misses")?,
        d_late_covered: field(j, "d_late_covered")?,
        d_stall_cycles: field(j, "d_stall_cycles")?,
        writebacks: field(j, "writebacks")?,
        i_misses: field(j, "i_misses")?,
        i_stall_cycles: field(j, "i_stall_cycles")?,
        pf_issued: field(j, "pf_issued")?,
        pf_dropped: field(j, "pf_dropped")?,
        pf_redundant: field(j, "pf_redundant")?,
        pf_useful: field(j, "pf_useful")?,
        pf_late: field(j, "pf_late")?,
    })
}

fn core_to_json(s: &SimStats) -> Json {
    let SimStats {
        cycles,
        bundles,
        ops,
        interlock_stalls,
        rfu_busy_stalls,
        branches_taken,
        branch_stall_cycles,
        ifetch_stall_cycles,
        ops_by_class,
    } = *s;
    let mut o = BTreeMap::new();
    o.insert("cycles".to_owned(), num(cycles));
    o.insert("bundles".to_owned(), num(bundles));
    o.insert("ops".to_owned(), num(ops));
    o.insert("interlock_stalls".to_owned(), num(interlock_stalls));
    o.insert("rfu_busy_stalls".to_owned(), num(rfu_busy_stalls));
    o.insert("branches_taken".to_owned(), num(branches_taken));
    o.insert("branch_stall_cycles".to_owned(), num(branch_stall_cycles));
    o.insert("ifetch_stall_cycles".to_owned(), num(ifetch_stall_cycles));
    o.insert(
        "ops_by_class".to_owned(),
        Json::Arr(ops_by_class.iter().map(|&v| num(v)).collect()),
    );
    Json::Obj(o)
}

fn core_from_json(j: &Json) -> Option<SimStats> {
    let classes = j.get("ops_by_class")?.as_array()?;
    if classes.len() != 5 {
        return None;
    }
    let mut ops_by_class = [0u64; 5];
    for (slot, v) in ops_by_class.iter_mut().zip(classes) {
        *slot = v.as_u64()?;
    }
    Some(SimStats {
        cycles: field(j, "cycles")?,
        bundles: field(j, "bundles")?,
        ops: field(j, "ops")?,
        interlock_stalls: field(j, "interlock_stalls")?,
        rfu_busy_stalls: field(j, "rfu_busy_stalls")?,
        branches_taken: field(j, "branches_taken")?,
        branch_stall_cycles: field(j, "branch_stall_cycles")?,
        ifetch_stall_cycles: field(j, "ifetch_stall_cycles")?,
        ops_by_class,
    })
}

fn rfu_to_json(s: &RfuStats) -> Json {
    let RfuStats {
        inits,
        reconfigs,
        reconfig_penalty_cycles,
        sends,
        execs,
        loops,
        dct_loops,
        mb_prefetches,
        mb_prefetch_lines,
        lba_waits,
        lba_wait_cycles,
        lbb_hits,
        lbb_late,
        lbb_misses,
        loop_stall_cycles,
        loop_busy_cycles,
    } = *s;
    let mut o = BTreeMap::new();
    o.insert("inits".to_owned(), num(inits));
    o.insert("reconfigs".to_owned(), num(reconfigs));
    o.insert(
        "reconfig_penalty_cycles".to_owned(),
        num(reconfig_penalty_cycles),
    );
    o.insert("sends".to_owned(), num(sends));
    o.insert("execs".to_owned(), num(execs));
    o.insert("loops".to_owned(), num(loops));
    o.insert("dct_loops".to_owned(), num(dct_loops));
    o.insert("mb_prefetches".to_owned(), num(mb_prefetches));
    o.insert("mb_prefetch_lines".to_owned(), num(mb_prefetch_lines));
    o.insert("lba_waits".to_owned(), num(lba_waits));
    o.insert("lba_wait_cycles".to_owned(), num(lba_wait_cycles));
    o.insert("lbb_hits".to_owned(), num(lbb_hits));
    o.insert("lbb_late".to_owned(), num(lbb_late));
    o.insert("lbb_misses".to_owned(), num(lbb_misses));
    o.insert("loop_stall_cycles".to_owned(), num(loop_stall_cycles));
    o.insert("loop_busy_cycles".to_owned(), num(loop_busy_cycles));
    Json::Obj(o)
}

fn rfu_from_json(j: &Json) -> Option<RfuStats> {
    Some(RfuStats {
        inits: field(j, "inits")?,
        reconfigs: field(j, "reconfigs")?,
        reconfig_penalty_cycles: field(j, "reconfig_penalty_cycles")?,
        sends: field(j, "sends")?,
        execs: field(j, "execs")?,
        loops: field(j, "loops")?,
        dct_loops: field(j, "dct_loops")?,
        mb_prefetches: field(j, "mb_prefetches")?,
        mb_prefetch_lines: field(j, "mb_prefetch_lines")?,
        lba_waits: field(j, "lba_waits")?,
        lba_wait_cycles: field(j, "lba_wait_cycles")?,
        lbb_hits: field(j, "lbb_hits")?,
        lbb_late: field(j, "lbb_late")?,
        lbb_misses: field(j, "lbb_misses")?,
        loop_stall_cycles: field(j, "loop_stall_cycles")?,
        loop_busy_cycles: field(j, "loop_busy_cycles")?,
    })
}

/// Serializes a measurement for storage.
#[must_use]
pub fn me_result_to_json(r: &MeResult) -> Json {
    let MeResult {
        label,
        me_cycles,
        stall_cycles,
        calls,
        mem,
        core,
        rfu,
        quality,
    } = r;
    let mut o = BTreeMap::new();
    o.insert("label".to_owned(), Json::Str(label.clone()));
    o.insert("me_cycles".to_owned(), num(*me_cycles));
    o.insert("stall_cycles".to_owned(), num(*stall_cycles));
    o.insert("calls".to_owned(), num(*calls));
    o.insert("mem".to_owned(), mem_to_json(mem));
    o.insert("core".to_owned(), core_to_json(core));
    o.insert("rfu".to_owned(), rfu_to_json(rfu));
    if let Some(q) = quality {
        // Bit-exact float storage: the cache must round-trip the
        // measurement without decimal noise. Omitted entirely for
        // full-quality results so pre-existing payloads keep decoding.
        let mut qo = BTreeMap::new();
        qo.insert(
            "sad_inflation_bits".to_owned(),
            num(q.sad_inflation.to_bits()),
        );
        qo.insert(
            "psnr_delta_db_bits".to_owned(),
            num(q.psnr_delta_db.to_bits()),
        );
        o.insert("quality".to_owned(), Json::Obj(qo));
    }
    Json::Obj(o)
}

/// Deserializes a stored measurement (`None` when the payload does not
/// decode under this build — the caller treats that as a stale miss).
#[must_use]
pub fn me_result_from_json(j: &Json) -> Option<MeResult> {
    let quality = match j.get("quality") {
        None => None,
        Some(q) => Some(QualityMetrics {
            sad_inflation: f64::from_bits(field(q, "sad_inflation_bits")?),
            psnr_delta_db: f64::from_bits(field(q, "psnr_delta_db_bits")?),
        }),
    };
    Some(MeResult {
        label: j.get("label")?.as_str()?.to_owned(),
        me_cycles: field(j, "me_cycles")?,
        stall_cycles: field(j, "stall_cycles")?,
        calls: field(j, "calls")?,
        mem: mem_from_json(j.get("mem")?)?,
        core: core_from_json(j.get("core")?)?,
        rfu: rfu_from_json(j.get("rfu")?)?,
        quality,
    })
}

fn fault_to_json(p: &FaultPlan) -> Json {
    let FaultPlan {
        seed,
        mem_latency_ppm,
        mem_latency_max,
        flush_ppm,
        lb_delay_ppm,
        lb_delay_max,
        lb_stuck_ppm,
        bitflip_ppm,
    } = *p;
    let mut o = BTreeMap::new();
    o.insert("seed".to_owned(), num(seed));
    o.insert(
        "mem_latency_ppm".to_owned(),
        num(u64::from(mem_latency_ppm)),
    );
    o.insert("mem_latency_max".to_owned(), num(mem_latency_max));
    o.insert("flush_ppm".to_owned(), num(u64::from(flush_ppm)));
    o.insert("lb_delay_ppm".to_owned(), num(u64::from(lb_delay_ppm)));
    o.insert("lb_delay_max".to_owned(), num(lb_delay_max));
    o.insert("lb_stuck_ppm".to_owned(), num(u64::from(lb_stuck_ppm)));
    o.insert("bitflip_ppm".to_owned(), num(u64::from(bitflip_ppm)));
    Json::Obj(o)
}

fn ppm(j: &Json, key: &str) -> Option<u32> {
    field(j, key).and_then(|v| u32::try_from(v).ok())
}

fn fault_from_json(j: &Json) -> Option<FaultPlan> {
    Some(FaultPlan {
        seed: field(j, "seed")?,
        mem_latency_ppm: ppm(j, "mem_latency_ppm")?,
        mem_latency_max: field(j, "mem_latency_max")?,
        flush_ppm: ppm(j, "flush_ppm")?,
        lb_delay_ppm: ppm(j, "lb_delay_ppm")?,
        lb_delay_max: field(j, "lb_delay_max")?,
        lb_stuck_ppm: ppm(j, "lb_stuck_ppm")?,
        bitflip_ppm: ppm(j, "bitflip_ppm")?,
    })
}

/// A descriptor of the scenario, enough for `verify` to rebuild
/// preset-configured scenarios and re-simulate them. Scenarios with
/// custom machine/memory/reconfiguration settings rebuild to a different
/// key and are reported as unverifiable rather than mis-verified.
fn scenario_desc(sc: &Scenario) -> Json {
    let mut o = BTreeMap::new();
    match &sc.kind {
        Kind::Instruction(v) => {
            o.insert("kind".to_owned(), Json::Str("instruction".to_owned()));
            o.insert("variant".to_owned(), Json::Str(v.name().to_owned()));
        }
        Kind::Loop {
            bandwidth,
            beta,
            two_line_buffers,
        } => {
            o.insert("kind".to_owned(), Json::Str("loop".to_owned()));
            o.insert(
                "bandwidth".to_owned(),
                Json::Str(bandwidth.label().to_owned()),
            );
            o.insert("beta".to_owned(), num(*beta));
            o.insert("two_lb".to_owned(), Json::Bool(*two_line_buffers));
        }
    }
    o.insert(
        "lbb_bank_lines".to_owned(),
        match sc.lbb_bank_lines {
            Some(n) => num(n as u64),
            None => Json::Null,
        },
    );
    o.insert(
        "cycle_limit".to_owned(),
        match sc.cycle_limit {
            Some(n) => num(n),
            None => Json::Null,
        },
    );
    o.insert("fault".to_owned(), fault_to_json(&sc.fault));
    o.insert("label".to_owned(), Json::Str(sc.label.clone()));
    // Omitted when at their defaults, so descriptors of full-quality
    // scenarios are byte-identical to those written before the
    // approximation axis existed.
    if !sc.approx.is_exact() {
        o.insert("approx".to_owned(), Json::Str(approx_token(sc.approx)));
    }
    if let Some(search) = sc.search {
        o.insert("search".to_owned(), Json::Str(search_token(search)));
    }
    // Same discipline for the substrate axis: descriptors of VLIW
    // scenarios stay byte-identical to pre-substrate ones, and `verify`
    // can rebuild scalar entries from the stored token.
    if sc.substrate() != Substrate::Vliw4 {
        o.insert(
            "substrate".to_owned(),
            Json::Str(sc.substrate().name().to_owned()),
        );
    }
    Json::Obj(o)
}

fn scenario_from_desc(j: &Json) -> Option<Scenario> {
    let mut sc = match j.get("kind")?.as_str()? {
        "instruction" => {
            let name = j.get("variant")?.as_str()?;
            let variant = Variant::all().into_iter().find(|v| v.name() == name)?;
            Scenario::instruction(variant)
        }
        "loop" => {
            let label = j.get("bandwidth")?.as_str()?;
            let bandwidth = RfuBandwidth::all()
                .into_iter()
                .find(|b| b.label() == label)?;
            let beta = field(j, "beta")?;
            if j.get("two_lb")? == &Json::Bool(true) {
                if bandwidth != RfuBandwidth::B1x32 {
                    return None;
                }
                Scenario::loop_two_lb(beta)
            } else {
                Scenario::loop_level(bandwidth, beta)
            }
        }
        _ => return None,
    };
    match j.get("lbb_bank_lines")? {
        Json::Null => {}
        v => sc.lbb_bank_lines = Some(usize::try_from(v.as_u64()?).ok()?),
    }
    match j.get("cycle_limit")? {
        Json::Null => {}
        v => sc.cycle_limit = Some(v.as_u64()?),
    }
    sc.fault = fault_from_json(j.get("fault")?)?;
    sc.label = j.get("label")?.as_str()?.to_owned();
    if let Some(v) = j.get("approx") {
        sc.approx = parse_approx(v.as_str()?)?;
    }
    if let Some(v) = j.get("search") {
        sc.search = Some(parse_search(v.as_str()?)?);
    }
    if let Some(v) = j.get("substrate") {
        sc = sc.with_substrate(v.as_str()?.parse().ok()?);
    }
    Some(sc)
}

fn workload_desc(kind: &str, w: &Workload) -> Json {
    let mut o = BTreeMap::new();
    o.insert("kind".to_owned(), Json::Str(kind.to_owned()));
    o.insert("frames".to_owned(), num(w.frames.len() as u64));
    Json::Obj(o)
}

fn workload_from_desc(j: &Json) -> Option<Workload> {
    let frames = usize::try_from(field(j, "frames")?).ok()?;
    match j.get("kind")?.as_str()? {
        "paper" if frames == 25 => Some((*Workload::paper_shared()).clone()),
        "qcif" => Some(Workload::qcif_frames(frames)),
        "tiny" if frames == 3 => Some(Workload::tiny()),
        _ => None,
    }
}

/// A scenario result cache bound to one workload: the workload is
/// digested once at construction and folded into every key.
///
/// `Sync`: lookups and records happen from the parallel runner's worker
/// threads; the underlying store uses atomic counters and atomic
/// temp-file + rename writes.
#[derive(Debug)]
pub struct ScenarioCache {
    store: ResultCache,
    digest: CacheKey,
    workload: Json,
}

impl ScenarioCache {
    /// Opens a cache at `dir` for `workload`. `workload_kind` names how
    /// the workload was built (`"paper"`, `"qcif"`, `"tiny"`, or any
    /// other tag for custom workloads — those entries are still correct
    /// cache hits, but `verify` reports them as unverifiable).
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the directory cannot be created.
    pub fn open(
        dir: impl Into<PathBuf>,
        workload: &Workload,
        workload_kind: &str,
    ) -> Result<Self, CacheError> {
        Ok(ScenarioCache {
            store: ResultCache::open(dir)?,
            digest: workload_digest(workload),
            workload: workload_desc(workload_kind, workload),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// The content key of `sc` over this cache's workload.
    #[must_use]
    pub fn key_for(&self, sc: &Scenario) -> CacheKey {
        scenario_key(sc, self.digest)
    }

    /// Looks up the cached measurement for `sc`. Misses, corrupt entries
    /// and undecodable payloads all return `None` (and count as miss or
    /// stale); a hit whose stored label disagrees with the scenario is
    /// rejected as stale too.
    #[must_use]
    pub fn lookup(&self, sc: &Scenario) -> Option<MeResult> {
        let key = self.key_for(sc);
        self.store.lookup_map(&key, |payload| {
            let result = me_result_from_json(payload.get("result")?)?;
            if result.label != sc.label {
                return None;
            }
            Some(result)
        })
    }

    /// Records a successful measurement. Failed scenarios are never
    /// cached — they re-run (and re-report) on every sweep.
    pub fn record(&self, sc: &Scenario, result: &MeResult) {
        let key = self.key_for(sc);
        let mut o = BTreeMap::new();
        o.insert("result".to_owned(), me_result_to_json(result));
        o.insert("scenario".to_owned(), scenario_desc(sc));
        o.insert("workload".to_owned(), self.workload.clone());
        self.store.store(&key, &Json::Obj(o));
    }

    /// Lifetime hit/miss/stale/write counters for this handle.
    #[must_use]
    pub fn counts(&self) -> CacheCounts {
        self.store.counts()
    }

    /// Keys this handle moved into `quarantine/` (bad entries found at
    /// lookup), for the supervisor's health report.
    #[must_use]
    pub fn quarantined_keys(&self) -> Vec<String> {
        self.store.quarantined_keys()
    }
}

/// The outcome of [`verify_cache`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Entries re-simulated and compared.
    pub checked: usize,
    /// Entries whose scenario or workload could not be rebuilt from the
    /// stored descriptor (custom configurations) — skipped, not failed.
    pub unverifiable: usize,
    /// Entry files that did not read back as valid envelopes.
    pub unreadable: usize,
    /// Entries whose fresh re-simulation differed from the stored result.
    pub divergent: Vec<CacheError>,
    /// Bad entries (unreadable or divergent) moved into `quarantine/`.
    pub quarantined: usize,
}

impl VerifyReport {
    /// Whether no divergence was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cache verify: checked={} divergent={} unverifiable={} unreadable={} quarantined={}",
            self.checked,
            self.divergent.len(),
            self.unverifiable,
            self.unreadable,
            self.quarantined
        )
    }
}

/// Re-simulates up to `sample` cache entries (in key order, so the choice
/// is deterministic) across `threads` workers and compares the fresh
/// measurements with the stored ones. Entries from custom scenario or
/// workload configurations that cannot be rebuilt from their stored
/// descriptors — detected by recomputing the content key — are counted as
/// unverifiable and skipped.
///
/// # Errors
///
/// [`CacheError::Io`] when the cache directory cannot be read.
pub fn verify_cache(
    dir: impl Into<PathBuf>,
    sample: usize,
    threads: usize,
) -> Result<VerifyReport, CacheError> {
    let store = ResultCache::open(dir)?;
    let (entries, bad) = store.entries()?;
    let mut report = VerifyReport {
        unreadable: bad.len(),
        ..VerifyReport::default()
    };
    for e in &bad {
        eprintln!("warning: {e}");
        // Unreadable entry files are structurally bad: route them through
        // quarantine so the next sweep does not trip over them again.
        let path = match e {
            CacheError::Io { path, .. }
            | CacheError::Corrupt { path, .. }
            | CacheError::Schema { path, .. }
            | CacheError::KeyMismatch { path } => Some(path),
            CacheError::Divergence { .. } => None,
        };
        if let Some(path) = path {
            if !matches!(e, CacheError::Io { .. }) && store.quarantine_path(path, &e.to_string()) {
                report.quarantined += 1;
            }
        }
    }
    // Group verifiable entries by workload descriptor so each workload is
    // rebuilt (and each group fanned out) once.
    type Group = Vec<(Scenario, MeResult, CacheKey)>;
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for entry in entries.into_iter().take(sample) {
        let rebuilt = entry.payload.get("scenario").and_then(scenario_from_desc);
        let expected = entry.payload.get("result").and_then(me_result_from_json);
        let wl_desc = entry.payload.get("workload");
        match (rebuilt, expected, wl_desc) {
            (Some(sc), Some(exp), Some(wl)) => groups
                .entry(wl.to_string())
                .or_default()
                .push((sc, exp, entry.key)),
            _ => report.unverifiable += 1,
        }
    }
    for (wl_desc, group) in groups {
        let parsed = Json::parse(&wl_desc).ok();
        let Some(workload) = parsed.as_ref().and_then(workload_from_desc) else {
            report.unverifiable += group.len();
            continue;
        };
        let digest = workload_digest(&workload);
        // An entry whose recomputed key differs was written from a
        // configuration the descriptor cannot express — skip it instead
        // of reporting a spurious divergence.
        let (verifiable, skipped): (Group, Group) = group
            .into_iter()
            .partition(|(sc, _, key)| scenario_key(sc, digest) == *key);
        report.unverifiable += skipped.len();
        let scenarios: Vec<Scenario> = verifiable.iter().map(|(sc, _, _)| sc.clone()).collect();
        let fresh = run_scenario_list(&scenarios, &workload, threads, &|_| {});
        for ((sc, expected, key), fresh) in verifiable.into_iter().zip(fresh) {
            report.checked += 1;
            let detail = match fresh {
                Ok(got) if got == expected => continue,
                Ok(got) => format!(
                    "stored me_cycles={} stall_cycles={}, fresh me_cycles={} stall_cycles={}",
                    expected.me_cycles, expected.stall_cycles, got.me_cycles, got.stall_cycles
                ),
                Err(e) => format!("fresh run failed: {e}"),
            };
            if store.quarantine_key(&key, &detail) {
                report.quarantined += 1;
            }
            report.divergent.push(CacheError::Divergence {
                label: sc.label,
                key: key.hex(),
                detail,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_me;

    fn tmpdir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rvliw-core-cache-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn me_result_json_roundtrips() {
        let w = Workload::tiny();
        let r = run_me(&Scenario::a2(), &w).unwrap();
        let j = me_result_to_json(&r);
        assert!(j.get("quality").is_none(), "exact results omit quality");
        assert_eq!(me_result_from_json(&j), Some(r.clone()));
        // And through a textual round-trip (what the disk sees).
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(me_result_from_json(&back), Some(r));
    }

    #[test]
    fn me_result_json_roundtrips_quality_bit_exactly() {
        let w = Workload::tiny();
        let sc = Scenario::a2().with_approx(mpeg4_enc::ApproxSad::SubsampledRows { step: 2 });
        let r = run_me(&sc, &w).unwrap();
        assert!(r.quality.is_some());
        let j = me_result_to_json(&r);
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(me_result_from_json(&back), Some(r));
    }

    #[test]
    fn scenario_descriptors_rebuild_presets() {
        let w = Workload::tiny();
        let digest = workload_digest(&w);
        let scenarios = [
            Scenario::orig(),
            Scenario::a3(),
            Scenario::loop_level(RfuBandwidth::B2x64, 5),
            Scenario::loop_two_lb(1),
            Scenario::loop_level(RfuBandwidth::B1x32, 1)
                .with_fault_plan(FaultPlan::from_profile(rvliw_fault::FaultProfile::Chaos, 7))
                .with_cycle_limit(1_000_000),
            Scenario::a3().with_approx(mpeg4_enc::ApproxSad::EarlyExit { threshold: 4096 }),
            Scenario::loop_level(RfuBandwidth::B1x64, 1)
                .with_approx(mpeg4_enc::ApproxSad::SubsampledRows { step: 2 })
                .with_search(mpeg4_enc::me::SearchAlgorithm::Spiral {
                    range: 8,
                    threshold: 256,
                }),
            Scenario::a2().with_substrate(Substrate::ScalarInOrder),
            Scenario::loop_level(RfuBandwidth::B2x64, 1).with_substrate(Substrate::ScalarInOrder),
        ];
        for sc in scenarios {
            let desc = scenario_desc(&sc);
            let back = scenario_from_desc(&desc).unwrap();
            assert_eq!(back, sc, "descriptor must rebuild {}", sc.label);
            assert_eq!(scenario_key(&back, digest), scenario_key(&sc, digest));
        }
    }

    #[test]
    fn cache_round_trip_and_verify() {
        let dir = tmpdir("roundtrip");
        let w = Workload::tiny();
        let cache = ScenarioCache::open(&dir, &w, "tiny").unwrap();
        let sc = Scenario::a1();
        assert!(cache.lookup(&sc).is_none());
        let fresh = run_me(&sc, &w).unwrap();
        cache.record(&sc, &fresh);
        assert_eq!(cache.lookup(&sc), Some(fresh));
        let c = cache.counts();
        assert_eq!((c.hits, c.misses, c.writes), (1, 1, 1));

        let report = verify_cache(&dir, 10, 1).unwrap();
        assert!(report.is_clean(), "divergent: {:?}", report.divergent);
        assert_eq!(report.checked, 1);
        assert_eq!(report.unverifiable, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_a_tampered_entry() {
        let dir = tmpdir("tamper");
        let w = Workload::tiny();
        let cache = ScenarioCache::open(&dir, &w, "tiny").unwrap();
        let sc = Scenario::a2();
        let mut fresh = run_me(&sc, &w).unwrap();
        fresh.me_cycles += 1; // stored result lies about the measurement
        cache.record(&sc, &fresh);
        let report = verify_cache(&dir, 10, 1).unwrap();
        assert_eq!(report.checked, 1);
        assert_eq!(report.divergent.len(), 1);
        assert!(matches!(report.divergent[0], CacheError::Divergence { .. }));
        // The lying entry was quarantined, so a second verify is clean.
        assert_eq!(report.quarantined, 1);
        assert!(dir.join("quarantine").is_dir());
        let again = verify_cache(&dir, 10, 1).unwrap();
        assert_eq!(again.checked, 0);
        assert!(again.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn custom_configurations_are_unverifiable_not_divergent() {
        let dir = tmpdir("custom");
        let w = Workload::tiny();
        let cache = ScenarioCache::open(&dir, &w, "tiny").unwrap();
        // An ablation the descriptor cannot express: shrunken Line
        // Buffer B. The descriptor stores it, but wait — lbb_bank_lines
        // *is* expressible. Use a custom machine config knob instead.
        let mut sc = Scenario::loop_two_lb(1);
        sc.mem = rvliw_mem::MemConfig::st200(); // not the preset loop-level mem
        sc.label = "custom-mem".to_owned();
        let fresh = run_me(&sc, &w).unwrap();
        cache.record(&sc, &fresh);
        // The entry is a perfectly good hit for the same scenario…
        assert_eq!(cache.lookup(&sc), Some(fresh));
        // …but verify cannot rebuild it, and must say so rather than
        // report a divergence.
        let report = verify_cache(&dir, 10, 1).unwrap();
        assert_eq!(report.checked, 0);
        assert_eq!(report.unverifiable, 1);
        assert!(report.is_clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
