//! The Figure 1 block diagram: the modified ST200 1-cluster architecture
//! with the Reconfigurable Functional Unit.

use rvliw_isa::MachineConfig;
use rvliw_mem::MemConfig;

/// Renders the architecture block diagram (the paper's Figure 1) for a
/// configuration.
#[must_use]
pub fn describe(core: &MachineConfig, mem: &MemConfig) -> String {
    let d = &mem.dcache;
    let i = &mem.icache;
    format!(
        r"+----------------------------------------------------------------------+
|                 modified ST200 1-cluster + RFU (Figure 1)             |
|                                                                        |
|  IPU   I$ {ikb:>3} KB ({iways}-way, {iline} B lines)                                 |
|   |                                                                    |
|   v        +------------------+   +--------------------------------+  |
|  Decode -->| Reg. File        |   | Reconfigurable Functional Unit |  |
|            |  64 GPR (32b)    |   |  - RFUINIT/RFUSEND/RFUEXEC     |  |
|            |  BrRegFile 8x1b  |   |  - custom MB prefetch patterns |  |
|            +------------------+   |  - Line Buffer A (16x16+flags) |  |
|   issue width {iw}: {alu} ALU | {mul} x 16x32 MUL | {mem} LSU | {br} BR | 1 RFU       |
|                                   |  - Line Buffer B (4x17 lines)  |  |
|            Branch Unit            +--------------------------------+  |
|            Exception Control                                           |
|   |                                                                    |
|   v                                                                    |
|  D$ {dkb:>3} KB ({dways}-way set, {dline} B lines) + Prefetch Buffer ({pfe} entries)     |
+------------------------------------------------------------------------+",
        ikb = i.capacity / 1024,
        iways = i.ways,
        iline = i.line_size,
        iw = core.issue_width,
        alu = core.num_alus,
        mul = core.num_muls,
        mem = core.num_mem_units,
        br = core.num_branch_units,
        dkb = d.capacity / 1024,
        dways = d.ways,
        dline = d.line_size,
        pfe = mem.prefetch_entries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_mentions_the_key_blocks() {
        let s = describe(&MachineConfig::st200(), &MemConfig::st200());
        for needle in [
            "Reconfigurable Functional Unit",
            "64 GPR",
            "128 KB",
            " 32 KB",
            "Prefetch Buffer (8 entries)",
            "Line Buffer A",
            "Line Buffer B",
        ] {
            assert!(s.contains(needle), "missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn loop_level_shows_extended_buffer() {
        let s = describe(&MachineConfig::st200(), &MemConfig::st200_loop_level());
        assert!(s.contains("Prefetch Buffer (64 entries)"));
    }
}
