#![warn(missing_docs)]
//! # rvliw-core
//!
//! The experiment driver reproducing the DATE 2002 reconfigurable-VLIW case
//! study end to end: it composes the MPEG-4 workload (`mpeg4-enc`), the
//! `GetSad` kernels (`rvliw-kernels`) and the RFU-augmented machine
//! (`rvliw-sim`) into the scenarios the paper evaluates, and regenerates
//! every table.
//!
//! * [`Workload`] — a synthetic QCIF sequence encoded on the host; its
//!   per-macroblock `GetSad` traces are what the simulator replays.
//! * [`Scenario`] — one architecture point: ORIG / A1 / A2 / A3
//!   (instruction level) or a loop-level configuration (bandwidth ×
//!   technology scaling β × one or two line buffers).
//! * [`run_me`] — replays the whole trace against the simulated kernel of a
//!   scenario and measures cycles, stalls and prefetch behaviour.
//! * [`AppModel`] — folds measured ME cycles into whole-application cycles
//!   using the paper's initial profile (`GetSad` = 25.6 % of execution in
//!   ORIG), which the %Rel column of Table 7 is defined against.
//! * [`SimSession`] — the single builder assembling core, memory, RFU,
//!   reconfiguration, line-buffer, fault and cycle-budget configuration
//!   into a runnable machine.
//! * [`ExperimentSpec`] / [`Sweep`] — declarative, JSON-serializable
//!   descriptions of a scenario grid plus the engine that expands and runs
//!   them; the paper's tables are seven checked-in specs under `specs/`.
//! * [`tables`] — Tables 1–7 as typed, printable structures.
//! * [`arch`] — the Figure 1 block diagram of the modified ST200.

pub mod app_model;
pub mod arch;
pub mod breakdown;
pub mod cache;
pub mod explore;
pub mod metrics;
pub mod runner;
pub mod scenario;
pub mod session;
pub mod spec;
pub mod supervisor;
pub mod sweep;
pub mod tables;
pub mod threads;
pub mod workload;

pub use app_model::AppModel;
pub use breakdown::CycleBreakdown;
pub use cache::{
    default_cache_dir, scenario_key, verify_cache, workload_digest, ScenarioCache, VerifyReport,
};
pub use explore::{
    run_explore, EngineChoice, ExploreOutcome, ExploreSpace, ExploreSpec, ExploreStrategy,
    FrontierPoint, Objective, ParetoArchive,
};
pub use metrics::TablesSnapshot;
pub use runner::{run_me, run_me_with_tracer, MeResult, ScenarioError};
pub use rvliw_isa::Substrate;
pub use scenario::Scenario;
pub use session::SimSession;
pub use spec::{DcacheSpec, ExperimentSpec, ReconfigSpec, SpecError, SweepAxes};
pub use supervisor::{
    run_scenario_list_supervised, run_summary, HealthReport, Journal, SupervisorConfig,
};
pub use sweep::{
    run_scenario_list, run_scenario_list_cached, Pareto, ParetoPoint, ScenarioResult,
    SubstrateRatio, Sweep, SweepOutcome, SweepRow,
};
pub use tables::CaseStudy;
pub use threads::{auto_threads, default_threads, parse_threads};
pub use workload::Workload;

/// The paper's initial profile: share of total execution time spent in
/// `GetSad` with the ORIG code.
pub const GETSAD_SHARE_ORIG: f64 = 0.256;
