//! Architecture scenarios: the points of the paper's design space.

use rvliw_fault::FaultPlan;
use rvliw_isa::MachineConfig;
use rvliw_kernels::{DriverKind, Variant};
use rvliw_mem::MemConfig;
use rvliw_rfu::{MeLoopCfg, ReconfigModel, RfuBandwidth};

use crate::session::SimSession;

/// What runs on the machine for one experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// Instruction-level: a `GetSad` kernel variant runs on the core
    /// (Table 1).
    Instruction(Variant),
    /// Loop-level: the whole kernel loop is one RFU instruction
    /// (Tables 2–7).
    Loop {
        /// RFU data bandwidth.
        bandwidth: RfuBandwidth,
        /// Technology-scaling factor β.
        beta: u64,
        /// Two-line-buffer scheme (Table 7).
        two_line_buffers: bool,
    },
}

/// One architecture point: the kind plus machine/memory configuration and
/// the reconfiguration model.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario kind.
    pub kind: Kind,
    /// Core configuration.
    pub machine: MachineConfig,
    /// Memory configuration (loop-level scenarios extend the prefetch
    /// buffer to 64 entries, as in the paper).
    pub mem: MemConfig,
    /// Reconfiguration model (zero penalty unless an ablation overrides
    /// it).
    pub reconfig: ReconfigModel,
    /// Override of Line Buffer B's per-bank capacity (ablations; `None` =
    /// the paper's 34 lines).
    pub lbb_bank_lines: Option<usize>,
    /// Deterministic fault-injection plan. The default plan is inert: it
    /// never draws from its RNG, so fault-free runs are bit-identical to
    /// builds without the fault layer.
    pub fault: FaultPlan,
    /// Per-scenario cycle-budget override for each simulated kernel run
    /// (`None` = the machine's default watchdog limit).
    pub cycle_limit: Option<u64>,
    /// Human-readable label.
    pub label: String,
}

impl Scenario {
    /// Instruction-level scenario for a kernel variant.
    #[must_use]
    pub fn instruction(variant: Variant) -> Self {
        Scenario {
            kind: Kind::Instruction(variant),
            machine: MachineConfig::st200(),
            mem: MemConfig::st200(),
            reconfig: ReconfigModel::zero_penalty(),
            lbb_bank_lines: None,
            fault: FaultPlan::none(),
            cycle_limit: None,
            label: variant.name().to_owned(),
        }
    }

    /// The ORIG baseline.
    #[must_use]
    pub fn orig() -> Self {
        Scenario::instruction(Variant::Orig)
    }

    /// Scenario A1.
    #[must_use]
    pub fn a1() -> Self {
        Scenario::instruction(Variant::A1)
    }

    /// Scenario A2.
    #[must_use]
    pub fn a2() -> Self {
        Scenario::instruction(Variant::A2)
    }

    /// Scenario A3.
    #[must_use]
    pub fn a3() -> Self {
        Scenario::instruction(Variant::A3)
    }

    /// Loop-level scenario with one line buffer.
    #[must_use]
    pub fn loop_level(bandwidth: RfuBandwidth, beta: u64) -> Self {
        Scenario {
            kind: Kind::Loop {
                bandwidth,
                beta,
                two_line_buffers: false,
            },
            machine: MachineConfig::st200(),
            mem: MemConfig::st200_loop_level(),
            reconfig: ReconfigModel::zero_penalty(),
            lbb_bank_lines: None,
            fault: FaultPlan::none(),
            cycle_limit: None,
            label: format!("{} b={beta}", bandwidth.label()),
        }
    }

    /// Loop-level scenario with two line buffers (Table 7).
    #[must_use]
    pub fn loop_two_lb(beta: u64) -> Self {
        Scenario {
            kind: Kind::Loop {
                bandwidth: RfuBandwidth::B1x32,
                beta,
                two_line_buffers: true,
            },
            machine: MachineConfig::st200(),
            mem: MemConfig::st200_loop_level(),
            reconfig: ReconfigModel::zero_penalty(),
            lbb_bank_lines: None,
            fault: FaultPlan::none(),
            cycle_limit: None,
            label: format!("2LB b={beta}"),
        }
    }

    /// The ME-loop configuration of a loop-level scenario (for a given
    /// frame stride).
    ///
    /// # Panics
    ///
    /// Panics when called on an instruction-level scenario.
    #[must_use]
    pub fn me_loop_cfg(&self, stride: u32) -> MeLoopCfg {
        match self.kind {
            Kind::Loop {
                bandwidth,
                beta,
                two_line_buffers,
            } => {
                let cfg = MeLoopCfg::new(bandwidth, beta, stride);
                if two_line_buffers {
                    cfg.with_line_buffer_b()
                } else {
                    cfg
                }
            }
            Kind::Instruction(_) => panic!("not a loop-level scenario"),
        }
    }

    /// The loop-level driver kind, if applicable.
    #[must_use]
    pub fn driver_kind(&self) -> Option<DriverKind> {
        match self.kind {
            Kind::Loop {
                two_line_buffers, ..
            } => Some(if two_line_buffers {
                DriverKind::DoubleLineBuffer
            } else {
                DriverKind::SingleLineBuffer
            }),
            Kind::Instruction(_) => None,
        }
    }

    /// Overrides the reconfiguration model (ablations).
    #[must_use]
    pub fn with_reconfig(mut self, model: ReconfigModel) -> Self {
        self.reconfig = model;
        self
    }

    /// Overrides Line Buffer B's per-bank capacity (ablations).
    #[must_use]
    pub fn with_lbb_bank_lines(mut self, lines: usize) -> Self {
        self.lbb_bank_lines = Some(lines);
        self
    }

    /// Installs a fault-injection plan (robustness experiments). The
    /// injector substreams are salted with the scenario label, so the same
    /// plan perturbs each scenario independently but deterministically.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Caps every simulated kernel run at `limit` cycles; exceeding it
    /// fails the scenario with a cycle-limit error instead of hanging the
    /// case study.
    #[must_use]
    pub fn with_cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = Some(limit);
        self
    }

    /// The [`SimSession`] this scenario describes (for a given frame
    /// stride): core + memory configuration, the case-study RFU (with the
    /// scenario's ME-loop configuration for loop-level points, the shared
    /// instruction-level configurations otherwise), reconfiguration model,
    /// line-buffer geometry, fault plan (salted with the scenario label)
    /// and cycle budget. `session(stride).build()` is the one way a
    /// scenario becomes a machine.
    #[must_use]
    pub fn session(&self, stride: u32) -> SimSession {
        let me = match self.kind {
            // Instruction-level scenarios still carry the case-study RFU
            // (its instruction-level configurations); the ME-loop slot is
            // the 1x32 default and never invoked.
            Kind::Instruction(_) => MeLoopCfg::new(RfuBandwidth::B1x32, 1, stride),
            Kind::Loop { .. } => self.me_loop_cfg(stride),
        };
        let mut session = SimSession::with_configs(self.machine.clone(), self.mem.clone())
            .me_loop(me)
            .reconfig(self.reconfig.clone())
            .fault_plan(self.fault, &self.label);
        if let Some(lines) = self.lbb_bank_lines {
            session = session.lbb_bank_lines(lines);
        }
        if let Some(limit) = self.cycle_limit {
            session = session.cycle_limit(limit);
        }
        session
    }

    /// The static loop latency of a loop-level scenario (Table 2's `Lat`).
    ///
    /// # Panics
    ///
    /// Panics when called on an instruction-level scenario.
    #[must_use]
    pub fn static_latency(&self, stride: u32) -> u64 {
        self.me_loop_cfg(stride).static_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_scenarios_extend_prefetch_buffer() {
        assert_eq!(Scenario::orig().mem.prefetch_entries, 8);
        assert_eq!(
            Scenario::loop_level(RfuBandwidth::B1x32, 1)
                .mem
                .prefetch_entries,
            64
        );
    }

    #[test]
    fn static_latencies_ordered_by_bandwidth() {
        let s = 176;
        let l32 = Scenario::loop_level(RfuBandwidth::B1x32, 1).static_latency(s);
        let l64 = Scenario::loop_level(RfuBandwidth::B1x64, 1).static_latency(s);
        let l2x = Scenario::loop_level(RfuBandwidth::B2x64, 1).static_latency(s);
        let lb = Scenario::loop_two_lb(1).static_latency(s);
        assert!(l32 > l64 && l64 > l2x && l2x > lb);
    }

    #[test]
    #[should_panic(expected = "not a loop-level")]
    fn instruction_scenario_has_no_loop_cfg() {
        let _ = Scenario::orig().me_loop_cfg(176);
    }

    #[test]
    fn driver_kind_mapping() {
        assert_eq!(Scenario::orig().driver_kind(), None);
        assert_eq!(
            Scenario::loop_two_lb(1).driver_kind(),
            Some(DriverKind::DoubleLineBuffer)
        );
    }
}
