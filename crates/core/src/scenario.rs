//! Architecture scenarios: the points of the paper's design space.

use std::fmt;

use mpeg4_enc::me::SearchAlgorithm;
use mpeg4_enc::ApproxSad;
use rvliw_fault::FaultPlan;
use rvliw_isa::{MachineConfig, Substrate};
use rvliw_kernels::{DriverKind, Variant};
use rvliw_mem::MemConfig;
use rvliw_rfu::{MeLoopCfg, ReconfigModel, RfuBandwidth, SadApprox};

use crate::session::SimSession;

/// Maps the host encoder's SAD approximation onto the RFU's mirror enum
/// (the RFU crate cannot depend on the encoder crate).
#[must_use]
pub fn sad_approx_to_rfu(approx: ApproxSad) -> SadApprox {
    match approx {
        ApproxSad::Exact => SadApprox::Exact,
        ApproxSad::SubsampledRows { step } => SadApprox::SubsampledRows { step },
        ApproxSad::ReducedPrecision { bits } => SadApprox::ReducedPrecision { bits },
        ApproxSad::EarlyExit { threshold } => SadApprox::EarlyExit { threshold },
    }
}

/// Compact token for an approximation mode, used by spec axes and cache
/// descriptors: `exact`, `rows/2`, `bits/3`, `early/4096`.
#[must_use]
pub fn approx_token(approx: ApproxSad) -> String {
    match approx {
        ApproxSad::Exact => "exact".to_owned(),
        ApproxSad::SubsampledRows { step } => format!("rows/{step}"),
        ApproxSad::ReducedPrecision { bits } => format!("bits/{bits}"),
        ApproxSad::EarlyExit { threshold } => format!("early/{threshold}"),
    }
}

/// Parses an [`approx_token`] back; `None` for unknown shapes.
#[must_use]
pub fn parse_approx(s: &str) -> Option<ApproxSad> {
    if s == "exact" {
        return Some(ApproxSad::Exact);
    }
    let (name, arg) = s.split_once('/')?;
    match name {
        "rows" => {
            let step: u8 = arg.parse().ok()?;
            (step >= 2).then_some(ApproxSad::SubsampledRows { step })
        }
        "bits" => {
            let bits: u8 = arg.parse().ok()?;
            (1..=7)
                .contains(&bits)
                .then_some(ApproxSad::ReducedPrecision { bits })
        }
        "early" => Some(ApproxSad::EarlyExit {
            threshold: arg.parse().ok()?,
        }),
        _ => None,
    }
}

/// Compact token for a search algorithm: `diamond`, `three-step`,
/// `full/8`, `spiral/8/256`.
#[must_use]
pub fn search_token(search: SearchAlgorithm) -> String {
    match search {
        SearchAlgorithm::Diamond => "diamond".to_owned(),
        SearchAlgorithm::ThreeStep => "three-step".to_owned(),
        SearchAlgorithm::Full { range } => format!("full/{range}"),
        SearchAlgorithm::Spiral { range, threshold } => format!("spiral/{range}/{threshold}"),
    }
}

/// Parses a [`search_token`] back; `None` for unknown shapes.
#[must_use]
pub fn parse_search(s: &str) -> Option<SearchAlgorithm> {
    match s {
        "diamond" => return Some(SearchAlgorithm::Diamond),
        "three-step" => return Some(SearchAlgorithm::ThreeStep),
        _ => {}
    }
    let (name, rest) = s.split_once('/')?;
    match name {
        "full" => {
            let range: i16 = rest.parse().ok()?;
            (range > 0).then_some(SearchAlgorithm::Full { range })
        }
        "spiral" => {
            let (range, threshold) = rest.split_once('/')?;
            let range: i16 = range.parse().ok()?;
            (range > 0).then_some(SearchAlgorithm::Spiral {
                range,
                threshold: threshold.parse().ok()?,
            })
        }
        _ => None,
    }
}

/// What runs on the machine for one experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kind {
    /// Instruction-level: a `GetSad` kernel variant runs on the core
    /// (Table 1).
    Instruction(Variant),
    /// Loop-level: the whole kernel loop is one RFU instruction
    /// (Tables 2–7).
    Loop {
        /// RFU data bandwidth.
        bandwidth: RfuBandwidth,
        /// Technology-scaling factor β.
        beta: u64,
        /// Two-line-buffer scheme (Table 7).
        two_line_buffers: bool,
    },
}

/// One architecture point: the kind plus machine/memory configuration and
/// the reconfiguration model.
#[derive(Clone, PartialEq)]
pub struct Scenario {
    /// Scenario kind.
    pub kind: Kind,
    /// Core configuration.
    pub machine: MachineConfig,
    /// Memory configuration (loop-level scenarios extend the prefetch
    /// buffer to 64 entries, as in the paper).
    pub mem: MemConfig,
    /// Reconfiguration model (zero penalty unless an ablation overrides
    /// it).
    pub reconfig: ReconfigModel,
    /// Override of Line Buffer B's per-bank capacity (ablations; `None` =
    /// the paper's 34 lines).
    pub lbb_bank_lines: Option<usize>,
    /// Deterministic fault-injection plan. The default plan is inert: it
    /// never draws from its RNG, so fault-free runs are bit-identical to
    /// builds without the fault layer.
    pub fault: FaultPlan,
    /// Per-scenario cycle-budget override for each simulated kernel run
    /// (`None` = the machine's default watchdog limit).
    pub cycle_limit: Option<u64>,
    /// Human-readable label.
    pub label: String,
    /// SAD approximation applied end to end: the host encoder computes its
    /// motion trace with this approximation and the simulated kernel (or
    /// RFU loop) reproduces it bit-exactly.
    pub approx: ApproxSad,
    /// Motion-search algorithm override. `None` keeps the workload's own
    /// (full-quality) search; `Some` re-encodes the workload's frames with
    /// the given algorithm before replaying its trace.
    pub search: Option<SearchAlgorithm>,
}

// The cache canonicalizes a scenario by hashing its `Debug` string
// (`cache::scenario_key`). This manual impl renders exactly what the old
// `#[derive(Debug)]` rendered when the approximation axis is at its
// defaults, so every pre-existing cache key — and the golden-invariance
// fixtures built on them — stays byte-identical. The two new fields are
// appended only when they deviate from the defaults.
impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Exhaustive destructure: adding a Scenario field without deciding
        // how it feeds the cache key is a compile error here.
        let Scenario {
            kind,
            machine,
            mem,
            reconfig,
            lbb_bank_lines,
            fault,
            cycle_limit,
            label,
            approx,
            search,
        } = self;
        let mut d = f.debug_struct("Scenario");
        d.field("kind", kind)
            .field("machine", machine)
            .field("mem", mem)
            .field("reconfig", reconfig)
            .field("lbb_bank_lines", lbb_bank_lines)
            .field("fault", fault)
            .field("cycle_limit", cycle_limit)
            .field("label", label);
        if !approx.is_exact() {
            d.field("approx", approx);
        }
        if search.is_some() {
            d.field("search", search);
        }
        d.finish()
    }
}

impl Scenario {
    /// Instruction-level scenario for a kernel variant.
    #[must_use]
    pub fn instruction(variant: Variant) -> Self {
        Scenario {
            kind: Kind::Instruction(variant),
            machine: MachineConfig::st200(),
            mem: MemConfig::st200(),
            reconfig: ReconfigModel::zero_penalty(),
            lbb_bank_lines: None,
            fault: FaultPlan::none(),
            cycle_limit: None,
            label: variant.name().to_owned(),
            approx: ApproxSad::Exact,
            search: None,
        }
    }

    /// The ORIG baseline.
    #[must_use]
    pub fn orig() -> Self {
        Scenario::instruction(Variant::Orig)
    }

    /// Scenario A1.
    #[must_use]
    pub fn a1() -> Self {
        Scenario::instruction(Variant::A1)
    }

    /// Scenario A2.
    #[must_use]
    pub fn a2() -> Self {
        Scenario::instruction(Variant::A2)
    }

    /// Scenario A3.
    #[must_use]
    pub fn a3() -> Self {
        Scenario::instruction(Variant::A3)
    }

    /// Loop-level scenario with one line buffer.
    #[must_use]
    pub fn loop_level(bandwidth: RfuBandwidth, beta: u64) -> Self {
        Scenario {
            kind: Kind::Loop {
                bandwidth,
                beta,
                two_line_buffers: false,
            },
            machine: MachineConfig::st200(),
            mem: MemConfig::st200_loop_level(),
            reconfig: ReconfigModel::zero_penalty(),
            lbb_bank_lines: None,
            fault: FaultPlan::none(),
            cycle_limit: None,
            label: format!("{} b={beta}", bandwidth.label()),
            approx: ApproxSad::Exact,
            search: None,
        }
    }

    /// Loop-level scenario with two line buffers (Table 7).
    #[must_use]
    pub fn loop_two_lb(beta: u64) -> Self {
        Scenario {
            kind: Kind::Loop {
                bandwidth: RfuBandwidth::B1x32,
                beta,
                two_line_buffers: true,
            },
            machine: MachineConfig::st200(),
            mem: MemConfig::st200_loop_level(),
            reconfig: ReconfigModel::zero_penalty(),
            lbb_bank_lines: None,
            fault: FaultPlan::none(),
            cycle_limit: None,
            label: format!("2LB b={beta}"),
            approx: ApproxSad::Exact,
            search: None,
        }
    }

    /// The ME-loop configuration of a loop-level scenario (for a given
    /// frame stride).
    ///
    /// # Panics
    ///
    /// Panics when called on an instruction-level scenario.
    #[must_use]
    pub fn me_loop_cfg(&self, stride: u32) -> MeLoopCfg {
        match self.kind {
            Kind::Loop {
                bandwidth,
                beta,
                two_line_buffers,
            } => {
                let cfg = MeLoopCfg::new(bandwidth, beta, stride)
                    .with_approx(sad_approx_to_rfu(self.approx));
                if two_line_buffers {
                    cfg.with_line_buffer_b()
                } else {
                    cfg
                }
            }
            Kind::Instruction(_) => panic!("not a loop-level scenario"),
        }
    }

    /// The loop-level driver kind, if applicable.
    #[must_use]
    pub fn driver_kind(&self) -> Option<DriverKind> {
        match self.kind {
            Kind::Loop {
                two_line_buffers, ..
            } => Some(if two_line_buffers {
                DriverKind::DoubleLineBuffer
            } else {
                DriverKind::SingleLineBuffer
            }),
            Kind::Instruction(_) => None,
        }
    }

    /// Overrides the reconfiguration model (ablations).
    #[must_use]
    pub fn with_reconfig(mut self, model: ReconfigModel) -> Self {
        self.reconfig = model;
        self
    }

    /// Overrides Line Buffer B's per-bank capacity (ablations).
    #[must_use]
    pub fn with_lbb_bank_lines(mut self, lines: usize) -> Self {
        self.lbb_bank_lines = Some(lines);
        self
    }

    /// Installs a fault-injection plan (robustness experiments). The
    /// injector substreams are salted with the scenario label, so the same
    /// plan perturbs each scenario independently but deterministically.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Caps every simulated kernel run at `limit` cycles; exceeding it
    /// fails the scenario with a cycle-limit error instead of hanging the
    /// case study.
    #[must_use]
    pub fn with_cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = Some(limit);
        self
    }

    /// Selects the fetch/issue substrate the scenario's machine runs on
    /// (cross-substrate sweeps). The substrate lives in the machine
    /// configuration, so it reaches the cache key through the `machine`
    /// field and the built machine through [`Scenario::session`].
    #[must_use]
    pub fn with_substrate(mut self, substrate: Substrate) -> Self {
        self.machine.substrate = substrate;
        self
    }

    /// The fetch/issue substrate this scenario runs on.
    #[must_use]
    pub fn substrate(&self) -> Substrate {
        self.machine.substrate
    }

    /// Selects a SAD approximation for both the host encoder and the
    /// simulated kernel (speed-vs-quality sweeps).
    #[must_use]
    pub fn with_approx(mut self, approx: ApproxSad) -> Self {
        self.approx = approx;
        self
    }

    /// Overrides the motion-search algorithm the workload is encoded with
    /// (adaptive-search sweeps).
    #[must_use]
    pub fn with_search(mut self, search: SearchAlgorithm) -> Self {
        self.search = Some(search);
        self
    }

    /// Whether this scenario needs a derived workload: its trace must be
    /// re-encoded with a non-default approximation or search algorithm
    /// before replay.
    #[must_use]
    pub fn needs_derived_workload(&self) -> bool {
        !self.approx.is_exact() || self.search.is_some()
    }

    /// The [`SimSession`] this scenario describes (for a given frame
    /// stride): core + memory configuration, the case-study RFU (with the
    /// scenario's ME-loop configuration for loop-level points, the shared
    /// instruction-level configurations otherwise), reconfiguration model,
    /// line-buffer geometry, fault plan (salted with the scenario label)
    /// and cycle budget. `session(stride).build()` is the one way a
    /// scenario becomes a machine.
    #[must_use]
    pub fn session(&self, stride: u32) -> SimSession {
        let me = match self.kind {
            // Instruction-level scenarios still carry the case-study RFU
            // (its instruction-level configurations); the ME-loop slot is
            // the 1x32 default and never invoked.
            Kind::Instruction(_) => MeLoopCfg::new(RfuBandwidth::B1x32, 1, stride),
            Kind::Loop { .. } => self.me_loop_cfg(stride),
        };
        let mut session = SimSession::with_configs(self.machine.clone(), self.mem.clone())
            .me_loop(me)
            .reconfig(self.reconfig.clone())
            .fault_plan(self.fault, &self.label);
        if let Some(lines) = self.lbb_bank_lines {
            session = session.lbb_bank_lines(lines);
        }
        if let Some(limit) = self.cycle_limit {
            session = session.cycle_limit(limit);
        }
        session
    }

    /// The static loop latency of a loop-level scenario (Table 2's `Lat`).
    ///
    /// # Panics
    ///
    /// Panics when called on an instruction-level scenario.
    #[must_use]
    pub fn static_latency(&self, stride: u32) -> u64 {
        self.me_loop_cfg(stride).static_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_scenarios_extend_prefetch_buffer() {
        assert_eq!(Scenario::orig().mem.prefetch_entries, 8);
        assert_eq!(
            Scenario::loop_level(RfuBandwidth::B1x32, 1)
                .mem
                .prefetch_entries,
            64
        );
    }

    #[test]
    fn static_latencies_ordered_by_bandwidth() {
        let s = 176;
        let l32 = Scenario::loop_level(RfuBandwidth::B1x32, 1).static_latency(s);
        let l64 = Scenario::loop_level(RfuBandwidth::B1x64, 1).static_latency(s);
        let l2x = Scenario::loop_level(RfuBandwidth::B2x64, 1).static_latency(s);
        let lb = Scenario::loop_two_lb(1).static_latency(s);
        assert!(l32 > l64 && l64 > l2x && l2x > lb);
    }

    #[test]
    #[should_panic(expected = "not a loop-level")]
    fn instruction_scenario_has_no_loop_cfg() {
        let _ = Scenario::orig().me_loop_cfg(176);
    }

    #[test]
    fn approx_and_search_tokens_round_trip() {
        for approx in [
            ApproxSad::Exact,
            ApproxSad::SubsampledRows { step: 2 },
            ApproxSad::ReducedPrecision { bits: 3 },
            ApproxSad::EarlyExit { threshold: 4096 },
        ] {
            assert_eq!(parse_approx(&approx_token(approx)), Some(approx));
        }
        for search in [
            SearchAlgorithm::Diamond,
            SearchAlgorithm::ThreeStep,
            SearchAlgorithm::Full { range: 8 },
            SearchAlgorithm::Spiral {
                range: 8,
                threshold: 256,
            },
        ] {
            assert_eq!(parse_search(&search_token(search)), Some(search));
        }
        assert_eq!(parse_approx("rows/1"), None);
        assert_eq!(parse_approx("bits/8"), None);
        assert_eq!(parse_search("full/0"), None);
        assert_eq!(parse_search("mystery"), None);
    }

    #[test]
    fn debug_string_appends_approx_fields_only_when_set() {
        let base = format!("{:?}", Scenario::a3());
        assert!(
            !base.contains("approx") && !base.contains("search"),
            "{base}"
        );
        let ap = Scenario::a3().with_approx(ApproxSad::SubsampledRows { step: 2 });
        assert!(format!("{ap:?}").contains("approx"));
        let se = Scenario::a3().with_search(SearchAlgorithm::Diamond);
        assert!(format!("{se:?}").contains("search"));
    }

    #[test]
    fn substrate_reaches_the_debug_string_through_the_machine_field() {
        let base = format!("{:?}", Scenario::a3());
        assert!(!base.contains("substrate"), "{base}");
        let scalar = Scenario::a3().with_substrate(Substrate::ScalarInOrder);
        assert!(format!("{scalar:?}").contains("substrate: ScalarInOrder"));
        assert_eq!(scalar.substrate(), Substrate::ScalarInOrder);
        assert_eq!(Scenario::a3().substrate(), Substrate::Vliw4);
        // And into the built machine.
        let m = scalar.session(176).build();
        assert_eq!(m.config().substrate, Substrate::ScalarInOrder);
    }

    #[test]
    fn approx_scenarios_thread_the_loop_cfg() {
        let sc = Scenario::loop_level(RfuBandwidth::B1x32, 1)
            .with_approx(ApproxSad::SubsampledRows { step: 2 });
        assert_eq!(
            sc.me_loop_cfg(176).approx,
            SadApprox::SubsampledRows { step: 2 }
        );
        assert!(sc.needs_derived_workload());
        assert!(!Scenario::orig().needs_derived_workload());
    }

    #[test]
    fn driver_kind_mapping() {
        assert_eq!(Scenario::orig().driver_kind(), None);
        assert_eq!(
            Scenario::loop_two_lb(1).driver_kind(),
            Some(DriverKind::DoubleLineBuffer)
        );
    }
}
