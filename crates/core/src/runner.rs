//! Replays a workload's `GetSad` trace against a scenario's simulated
//! kernel and measures the motion-estimation stage.

use std::fmt;

use mpeg4_enc::sad::InterpKind;
use mpeg4_enc::types::Plane;
use mpeg4_enc::QualityMetrics;
use rvliw_asm::Code;
use rvliw_kernels::regs::{
    ARG_BASE, ARG_BEST, ARG_CAND, ARG_CX, ARG_CY, ARG_INTERP, ARG_NCX, ARG_NCY, ARG_REF,
    ARG_STRIDE, NO_CANDIDATE, RESULT,
};
use rvliw_kernels::{build_getsad_approx, build_mb_prep, build_me_loop_call, DriverKind};
use rvliw_mem::MemStats;
use rvliw_rfu::RfuStats;
use rvliw_sim::{Machine, SimError, SimStats};
use rvliw_trace::{NullTracer, Tracer};

use crate::scenario::{sad_approx_to_rfu, Kind, Scenario};
use crate::workload::Workload;

/// Why one scenario of the case study failed. Failures are isolated: one
/// failing scenario never affects the measurements of the others.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The simulator reported a typed error (memory violation, undecodable
    /// operation, cycle-budget overrun, line-buffer deadlock, …).
    Sim {
        /// Scenario label.
        label: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A simulated SAD disagreed with the host golden trace — a functional
    /// kernel divergence (e.g. an injected bit flip).
    SadMismatch {
        /// Scenario label.
        label: String,
        /// Frame index of the diverging call.
        frame: usize,
        /// Macroblock x coordinate.
        mbx: usize,
        /// Macroblock y coordinate.
        mby: usize,
        /// Host golden SAD.
        expected: u32,
        /// Simulated SAD.
        got: u32,
    },
    /// The scenario panicked; the panic was caught at the scenario
    /// boundary so the remaining scenarios still ran.
    Panic {
        /// Scenario label.
        label: String,
        /// The panic payload, when it was a string.
        message: String,
        /// Where the panic originated (`file:line:column`), captured by
        /// the panic hook when available — the health report's
        /// backtrace-adjacent context.
        location: Option<String>,
    },
    /// The scenario's simulation exceeded the supervisor's wall-clock
    /// deadline and was abandoned so the worker pool could keep draining.
    TimedOut {
        /// Scenario label.
        label: String,
        /// The deadline that was exceeded, in seconds.
        secs: u64,
    },
}

impl ScenarioError {
    /// The label of the scenario that failed.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            ScenarioError::Sim { label, .. }
            | ScenarioError::SadMismatch { label, .. }
            | ScenarioError::Panic { label, .. }
            | ScenarioError::TimedOut { label, .. } => label,
        }
    }

    /// Whether a supervised rerun could plausibly succeed, so a bounded
    /// retry is worth spending.
    ///
    /// Simulator errors delegate to [`SimError::is_transient`]
    /// (fault-injected latency, flushes and line-buffer trouble surface
    /// there); a wall-clock timeout is transient by construction (the
    /// host was slow, or an injected delay compounded). A SAD divergence
    /// is a functional verdict about this exact (plan, scenario) pair
    /// and a panic is a bug — both permanent.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            ScenarioError::Sim { source, .. } => source.is_transient(),
            ScenarioError::TimedOut { .. } => true,
            ScenarioError::SadMismatch { .. } | ScenarioError::Panic { .. } => false,
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Sim { label, source } => {
                write!(f, "scenario `{label}`: simulation failed: {source}")
            }
            ScenarioError::SadMismatch {
                label,
                frame,
                mbx,
                mby,
                expected,
                got,
            } => write!(
                f,
                "scenario `{label}`: SAD diverged at frame {frame} MB ({mbx},{mby}): \
                 expected {expected}, got {got}"
            ),
            ScenarioError::Panic {
                label,
                message,
                location,
            } => match location {
                Some(at) => write!(f, "scenario `{label}`: panicked at {at}: {message}"),
                None => write!(f, "scenario `{label}`: panicked: {message}"),
            },
            ScenarioError::TimedOut { label, secs } => {
                write!(
                    f,
                    "scenario `{label}`: exceeded the {secs}s wall-clock deadline"
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Measured motion-estimation stage of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MeResult {
    /// Scenario label.
    pub label: String,
    /// Total ME cycles (every `GetSad` call plus, for loop-level
    /// scenarios, the per-macroblock prefetch preparation).
    pub me_cycles: u64,
    /// Data-cache stall cycles within the ME stage.
    pub stall_cycles: u64,
    /// Number of `GetSad` calls replayed.
    pub calls: u64,
    /// Memory counters over the stage.
    pub mem: MemStats,
    /// Core counters over the stage.
    pub core: SimStats,
    /// RFU counters over the stage.
    pub rfu: RfuStats,
    /// Speed-vs-quality metrics of the replayed motion field against the
    /// golden full-search encode. `None` for exact full-quality scenarios
    /// (no derived workload, nothing to compare).
    pub quality: Option<QualityMetrics>,
}

impl MeResult {
    /// Speedup of this scenario relative to a baseline (the paper's `S.Up`,
    /// "always relative to the optimized C-code version").
    #[must_use]
    pub fn speedup_vs(&self, baseline: &MeResult) -> f64 {
        baseline.me_cycles as f64 / self.me_cycles as f64
    }

    /// `%Improvement` relative to a baseline: `(orig − new) / orig`.
    #[must_use]
    pub fn improvement_vs(&self, baseline: &MeResult) -> f64 {
        1.0 - self.me_cycles as f64 / baseline.me_cycles as f64
    }

    /// Stall-cycle reduction relative to a baseline (`%Red` of Table 4).
    #[must_use]
    pub fn stall_reduction_vs(&self, baseline: &MeResult) -> f64 {
        1.0 - self.stall_cycles as f64 / baseline.stall_cycles as f64
    }

    /// Stalls as a share of the ME execution time (Table 5).
    #[must_use]
    pub fn stall_share(&self) -> f64 {
        self.stall_cycles as f64 / self.me_cycles as f64
    }
}

fn interp_bits(kind: InterpKind) -> u32 {
    match kind {
        InterpKind::None => 0,
        InterpKind::H => 1,
        InterpKind::V => 2,
        InterpKind::Diag => 3,
    }
}

/// Argument registers for one simulated kernel invocation.
///
/// Every driver needs the reference-block address and the stride; the
/// kernel kind decides the rest (candidate address for the instruction
/// level, line-buffer base / coordinates / streaming lookahead for the
/// loop level). `apply` writes exactly the registers that were set, in one
/// place, instead of each call site carrying its own `set_gpr` block.
#[derive(Debug, Clone, Copy, Default)]
struct SadCallArgs {
    ref_addr: u32,
    stride: u32,
    cand: Option<u32>,
    base: Option<u32>,
    interp: Option<u32>,
    coords: Option<(u32, u32)>,
    next: Option<(u32, u32)>,
    best: Option<u32>,
}

impl SadCallArgs {
    fn new(ref_addr: u32, stride: u32) -> Self {
        SadCallArgs {
            ref_addr,
            stride,
            ..SadCallArgs::default()
        }
    }

    /// Candidate-block address (instruction-level kernels).
    fn cand(mut self, addr: u32) -> Self {
        self.cand = Some(addr);
        self
    }

    /// Previous-frame base address (loop-level drivers).
    fn base(mut self, addr: u32) -> Self {
        self.base = Some(addr);
        self
    }

    /// Half-sample interpolation mode.
    fn interp(mut self, kind: InterpKind) -> Self {
        self.interp = Some(interp_bits(kind));
        self
    }

    /// Candidate coordinates (loop-level drivers).
    fn coords(mut self, cx: u32, cy: u32) -> Self {
        self.coords = Some((cx, cy));
        self
    }

    /// Next-candidate coordinates for the streaming prefetch.
    fn next(mut self, ncx: u32, ncy: u32) -> Self {
        self.next = Some((ncx, ncy));
        self
    }

    /// Best SAD so far (early-termination threshold).
    fn best(mut self, best: u32) -> Self {
        self.best = Some(best);
        self
    }

    /// Writes the collected arguments into the machine's registers.
    fn apply(&self, m: &mut Machine) {
        m.set_gpr(ARG_REF, self.ref_addr);
        m.set_gpr(ARG_STRIDE, self.stride);
        if let Some(addr) = self.cand {
            m.set_gpr(ARG_CAND, addr);
        }
        if let Some(addr) = self.base {
            m.set_gpr(ARG_BASE, addr);
        }
        if let Some(bits) = self.interp {
            m.set_gpr(ARG_INTERP, bits);
        }
        if let Some((cx, cy)) = self.coords {
            m.set_gpr(ARG_CX, cx);
            m.set_gpr(ARG_CY, cy);
        }
        if let Some((ncx, ncy)) = self.next {
            m.set_gpr(ARG_NCX, ncx);
            m.set_gpr(ARG_NCY, ncy);
        }
        if let Some(best) = self.best {
            m.set_gpr(ARG_BEST, best);
        }
    }
}

/// Writes a plane's samples into simulator RAM at `base` (host-side, no
/// timing — stands in for the non-simulated encoder stages that produced
/// the data).
fn store_plane(m: &mut Machine, base: u32, p: &Plane) {
    for y in 0..p.height() {
        m.mem
            .ram
            .write_bytes(base + (y * p.width()) as u32, p.row(y));
    }
}

/// The scheduled programs one scenario kind replays. The enum (rather than
/// a tuple of `Option`s) makes "the program exists for this kind" a
/// structural fact instead of a runtime expectation.
enum Programs {
    Instr(Code),
    Loop { prep: Code, call: Code },
}

/// Replays the whole `GetSad` trace of `workload` under `scenario`.
///
/// Every simulated SAD is checked against the host golden value recorded in
/// the trace — a full-workload functional regression of the kernels.
///
/// # Errors
///
/// [`ScenarioError::Sim`] when the simulator reports a typed failure
/// (memory violation, cycle-budget overrun, line-buffer deadlock, …) and
/// [`ScenarioError::SadMismatch`] when a simulated SAD disagrees with the
/// golden trace. Either indicates a kernel/simulator bug or an injected
/// fault; the error never poisons other scenarios.
pub fn run_me(scenario: &Scenario, workload: &Workload) -> Result<MeResult, ScenarioError> {
    run_me_with_tracer(scenario, workload, &mut NullTracer)
}

/// [`run_me`], emitting structured trace events (bundle issues, stall
/// causes, cache and RFU activity) into `tracer` for the entire replay.
///
/// With a [`NullTracer`] this monomorphizes to exactly [`run_me`]; with a
/// [`CountingTracer`](rvliw_trace::CountingTracer) or
/// [`ChromeTracer`](rvliw_trace::ChromeTracer) it powers the `--metrics-out`
/// and `--trace` exports of the CLI tools.
///
/// # Errors
///
/// As for [`run_me`].
pub fn run_me_with_tracer<T: Tracer + ?Sized>(
    scenario: &Scenario,
    workload: &Workload,
    tracer: &mut T,
) -> Result<MeResult, ScenarioError> {
    let sim_err = |source: SimError| ScenarioError::Sim {
        label: scenario.label.clone(),
        source,
    };
    // Approximate or search-overridden scenarios replay a *derived*
    // workload: the same source frames re-encoded with the scenario's
    // approximation so the host trace and the simulated kernel agree
    // bit-exactly. The derivation also attaches the quality metrics.
    let derived;
    let workload = if scenario.needs_derived_workload() {
        derived = workload.derived(scenario.approx, scenario.search);
        &*derived
    } else {
        workload
    };
    let stride = workload.stride;
    // The scenario's SimSession assembles the machine — core + memory
    // configuration, RFU, reconfiguration model, line-buffer geometry,
    // fault injectors and cycle budget — in the one correct order.
    let mut m = scenario.session(stride).build();
    let height = workload.frames[0].height();
    // Fixed frame buffers, reused every frame as in the reference encoder.
    let cur_buf = m.mem.ram.alloc(stride * height as u32, 32);
    let prev_buf = m.mem.ram.alloc(stride * height as u32, 32);

    // Build the programs the replay drives.
    let programs = match &scenario.kind {
        Kind::Instruction(variant) => Programs::Instr(build_getsad_approx(
            *variant,
            sad_approx_to_rfu(scenario.approx),
            &scenario.machine,
        )),
        Kind::Loop {
            two_line_buffers, ..
        } => {
            let kind = if *two_line_buffers {
                DriverKind::DoubleLineBuffer
            } else {
                DriverKind::SingleLineBuffer
            };
            Programs::Loop {
                prep: build_mb_prep(kind, &scenario.machine),
                call: build_me_loop_call(kind, &scenario.machine),
            }
        }
    };

    let start = m.snapshot();
    let mut calls = 0u64;

    for (t, frame) in workload.frames.iter().enumerate().skip(1) {
        let prev_recon = &workload.report.recon[t - 1];
        store_plane(&mut m, cur_buf, &frame.y);
        store_plane(&mut m, prev_buf, &prev_recon.y);
        let traces = &workload.report.frames[t].motion;
        for trace in traces {
            let ref_addr = cur_buf + (trace.mby * 16) as u32 * stride + (trace.mbx * 16) as u32;
            let addr_of = |c: &mpeg4_enc::SadCall| prev_buf + c.cy as u32 * stride + c.cx as u32;
            let coords_of = |c: &mpeg4_enc::SadCall| (c.cx as u32, c.cy as u32);
            let check_sad = |m: &Machine, expected: u32| {
                let got = m.gpr(RESULT);
                if got == expected {
                    Ok(())
                } else {
                    Err(ScenarioError::SadMismatch {
                        label: scenario.label.clone(),
                        frame: t,
                        mbx: trace.mbx,
                        mby: trace.mby,
                        expected,
                        got,
                    })
                }
            };
            match &programs {
                Programs::Instr(code) => {
                    for c in &trace.calls {
                        SadCallArgs::new(ref_addr, stride)
                            .cand(addr_of(c))
                            .interp(c.kind)
                            .apply(&mut m);
                        m.run_with_tracer(code, tracer).map_err(sim_err)?;
                        check_sad(&m, c.sad)?;
                        calls += 1;
                    }
                }
                Programs::Loop { prep, call } => {
                    let (fx, fy) = trace
                        .calls
                        .first()
                        .map(&coords_of)
                        .unwrap_or((NO_CANDIDATE, NO_CANDIDATE));
                    SadCallArgs::new(ref_addr, stride)
                        .base(prev_buf)
                        .next(fx, fy)
                        .apply(&mut m);
                    m.run_with_tracer(prep, tracer).map_err(sim_err)?;
                    let mut best = u32::MAX;
                    for (i, c) in trace.calls.iter().enumerate() {
                        let (ncx, ncy) = trace
                            .calls
                            .get(i + 1)
                            .map(&coords_of)
                            .unwrap_or((NO_CANDIDATE, NO_CANDIDATE));
                        let (cx, cy) = coords_of(c);
                        SadCallArgs::new(ref_addr, stride)
                            .base(prev_buf)
                            .coords(cx, cy)
                            .interp(c.kind)
                            .next(ncx, ncy)
                            .best(best)
                            .apply(&mut m);
                        m.run_with_tracer(call, tracer).map_err(sim_err)?;
                        check_sad(&m, c.sad)?;
                        best = best.min(c.sad);
                        calls += 1;
                    }
                }
            }
        }
    }

    let region = m.snapshot().since(&start);
    Ok(MeResult {
        label: scenario.label.clone(),
        me_cycles: region.cycles,
        stall_cycles: region.mem.d_stall_cycles,
        calls,
        mem: region.mem,
        core: region.stats,
        rfu: region.rfu,
        quality: workload.quality,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_rfu::RfuBandwidth;

    #[test]
    fn tiny_workload_runs_all_scenario_kinds() {
        let w = Workload::tiny();
        let orig = run_me(&Scenario::orig(), &w).unwrap();
        assert!(orig.me_cycles > 0);
        assert_eq!(orig.calls as usize, w.num_calls());

        let a3 = run_me(&Scenario::a3(), &w).unwrap();
        assert!(a3.me_cycles < orig.me_cycles, "A3 beats ORIG");

        let lp = run_me(&Scenario::loop_level(RfuBandwidth::B1x32, 1), &w).unwrap();
        assert!(lp.me_cycles < a3.me_cycles, "loop-level beats A3");
        assert_eq!(lp.calls, orig.calls);

        let lb = run_me(&Scenario::loop_two_lb(1), &w).unwrap();
        assert!(lb.me_cycles < lp.me_cycles, "two line buffers beat one");
    }

    #[test]
    fn speedup_metrics_are_consistent() {
        let w = Workload::tiny();
        let orig = run_me(&Scenario::orig(), &w).unwrap();
        let a2 = run_me(&Scenario::a2(), &w).unwrap();
        let s = a2.speedup_vs(&orig);
        let imp = a2.improvement_vs(&orig);
        assert!(s > 1.0);
        assert!((imp - (1.0 - 1.0 / s)).abs() < 1e-12);
    }

    #[test]
    fn approximate_scenarios_replay_their_derived_trace() {
        let w = Workload::tiny();
        let approx = mpeg4_enc::ApproxSad::SubsampledRows { step: 2 };
        let a3 = run_me(&Scenario::a3().with_approx(approx), &w).unwrap();
        let q = a3.quality.expect("approx scenarios carry quality");
        assert!(q.sad_inflation >= 0.0);
        let lp = run_me(
            &Scenario::loop_level(RfuBandwidth::B1x32, 1).with_approx(approx),
            &w,
        )
        .unwrap();
        // Same derived workload, same quality, at both abstraction levels.
        assert_eq!(lp.quality, a3.quality);
        // A search override alone also derives (and scores) a workload.
        let se = run_me(
            &Scenario::a3().with_search(mpeg4_enc::me::SearchAlgorithm::ThreeStep),
            &w,
        )
        .unwrap();
        assert!(se.quality.is_some());
        // Exact full-quality scenarios replay the base workload: no quality.
        assert!(run_me(&Scenario::a3(), &w).unwrap().quality.is_none());
    }

    #[test]
    fn error_classification_partitions_transient_from_permanent() {
        let sim = |source: SimError| ScenarioError::Sim {
            label: "x".to_owned(),
            source,
        };
        // Transient: cycle-budget trips and RFU failures (injected
        // latency, line-buffer deadlocks) plus wall-clock timeouts.
        assert!(sim(SimError::CycleLimit { limit: 10 }).is_transient());
        assert!(sim(SimError::Rfu("line buffer deadlock".to_owned())).is_transient());
        assert!(ScenarioError::TimedOut {
            label: "x".to_owned(),
            secs: 1,
        }
        .is_transient());
        // Permanent: structural program failures, divergences, panics.
        assert!(!sim(SimError::FellOffEnd { pc: 3 }).is_transient());
        assert!(!sim(SimError::UnresolvedTarget { pc: 0 }).is_transient());
        assert!(!sim(SimError::Undecodable { what: "op" }).is_transient());
        assert!(!ScenarioError::SadMismatch {
            label: "x".to_owned(),
            frame: 1,
            mbx: 0,
            mby: 0,
            expected: 1,
            got: 2,
        }
        .is_transient());
        assert!(!ScenarioError::Panic {
            label: "x".to_owned(),
            message: "boom".to_owned(),
            location: None,
        }
        .is_transient());
    }

    #[test]
    fn panic_display_carries_the_location_when_captured() {
        let with = ScenarioError::Panic {
            label: "p".to_owned(),
            message: "boom".to_owned(),
            location: Some("src/lib.rs:1:2".to_owned()),
        };
        assert!(with.to_string().contains("panicked at src/lib.rs:1:2"));
        let without = ScenarioError::Panic {
            label: "p".to_owned(),
            message: "boom".to_owned(),
            location: None,
        };
        assert!(without.to_string().contains("panicked: boom"));
        let timeout = ScenarioError::TimedOut {
            label: "t".to_owned(),
            secs: 30,
        };
        assert!(timeout.to_string().contains("30s wall-clock deadline"));
        assert_eq!(timeout.label(), "t");
    }

    #[test]
    fn beta_scaling_slows_the_loop() {
        let w = Workload::tiny();
        let b1 = run_me(&Scenario::loop_level(RfuBandwidth::B1x32, 1), &w).unwrap();
        let b5 = run_me(&Scenario::loop_level(RfuBandwidth::B1x32, 5), &w).unwrap();
        assert!(b5.me_cycles > b1.me_cycles);
    }
}
