//! Whole-application cycle model.
//!
//! Only the motion-estimation stage runs on the simulated VLIW; the
//! remaining encoder stages (DCT, quantization, entropy coding,
//! reconstruction) execute as host-side golden code. Their cycle budget is
//! calibrated from the paper's initial profile — "a 25.6 % of the execution
//! time spent in the `GetSad()` hot spot" — so the `%Rel` column of
//! Table 7 (ME share of the accelerated application) is computed exactly
//! the way the paper defines it.

use crate::GETSAD_SHARE_ORIG;

/// Cycles of everything that is not `GetSad`, assumed invariant across
/// scenarios (the RFU only accelerates the ME kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppModel {
    /// Non-ME cycles of the application.
    pub other_cycles: u64,
}

impl AppModel {
    /// Calibrates from the measured ORIG ME cycles: with `GetSad` at
    /// 25.6 % of execution, the rest is `me · (1 − 0.256) / 0.256`.
    #[must_use]
    pub fn calibrated(orig_me_cycles: u64) -> Self {
        let other = (orig_me_cycles as f64 * (1.0 - GETSAD_SHARE_ORIG) / GETSAD_SHARE_ORIG).round();
        AppModel {
            other_cycles: other as u64,
        }
    }

    /// Total application cycles for a scenario's measured ME cycles.
    #[must_use]
    pub fn total_cycles(&self, me_cycles: u64) -> u64 {
        self.other_cycles + me_cycles
    }

    /// The ME stage's share of total application time (`%Rel`).
    #[must_use]
    pub fn me_share(&self, me_cycles: u64) -> f64 {
        me_cycles as f64 / self.total_cycles(me_cycles) as f64
    }

    /// Whole-application speedup for a given ME speedup (Amdahl).
    #[must_use]
    pub fn app_speedup(&self, orig_me: u64, new_me: u64) -> f64 {
        self.total_cycles(orig_me) as f64 / self.total_cycles(new_me) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_the_initial_profile() {
        let model = AppModel::calibrated(1_000_000);
        let share = model.me_share(1_000_000);
        assert!((share - GETSAD_SHARE_ORIG).abs() < 1e-6, "share {share}");
    }

    #[test]
    fn me_share_falls_as_me_accelerates() {
        // The paper: 25.6 % → 4.14 % at 8× and → 6.1 % at 5.4×.
        let model = AppModel::calibrated(1_000_000);
        let at_8x = model.me_share(125_000);
        let at_5_4x = model.me_share(185_185);
        assert!((at_8x - 0.0414).abs() < 0.002, "8x share {at_8x}");
        assert!((at_5_4x - 0.0599).abs() < 0.003, "5.4x share {at_5_4x}");
    }

    #[test]
    fn amdahl_app_speedup() {
        let model = AppModel::calibrated(1_000_000);
        // Infinite ME speedup caps the app speedup at 1/(1-0.256) ≈ 1.344.
        let cap = model.app_speedup(1_000_000, 0);
        assert!((cap - 1.0 / (1.0 - GETSAD_SHARE_ORIG)).abs() < 1e-6);
    }
}
