//! The sweep engine: expand an [`ExperimentSpec`] into scenarios, run them
//! on the deterministic parallel runner, and collect a result matrix.
//!
//! This is the execution seam both the tables pipeline and `rvliw sweep`
//! sit on: [`run_scenario_list`] fans scenarios out across worker threads
//! with per-scenario panic isolation, and results are reassembled in input
//! order so the outcome — every cell, bit for bit — is independent of the
//! thread count.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use rvliw_trace::Json;

use crate::cache::ScenarioCache;
use crate::runner::{run_me, MeResult, ScenarioError};
use crate::scenario::{Kind, Scenario};
use crate::spec::{pretty, ExperimentSpec, SpecError};
use crate::workload::Workload;

/// The per-scenario outcome slot of a sweep or case study.
pub type ScenarioResult = Result<MeResult, ScenarioError>;

/// Runs one scenario with a panic backstop: a panicking scenario becomes
/// [`ScenarioError::Panic`] instead of tearing down the whole sweep (or
/// poisoning a worker thread in the parallel path).
fn run_isolated(sc: &Scenario, workload: &Workload) -> ScenarioResult {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_me(sc, workload))).unwrap_or_else(
        |payload| {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            Err(ScenarioError::Panic {
                label: sc.label.clone(),
                message,
            })
        },
    )
}

/// Runs `scenarios` across `threads` workers (`<= 1` runs serially on the
/// calling thread), returning one [`ScenarioResult`] per scenario in input
/// order. A failing or panicking scenario occupies its own slot without
/// disturbing the others. `progress` is called with a scenario label as
/// each scenario starts (from worker threads when running parallel —
/// labels may interleave, but every label appears exactly once).
#[must_use]
pub fn run_scenario_list(
    scenarios: &[Scenario],
    workload: &Workload,
    threads: usize,
    progress: &(impl Fn(&str) + Sync),
) -> Vec<ScenarioResult> {
    run_scenario_list_cached(scenarios, workload, threads, progress, None)
}

/// Runs one scenario through the cache when one is attached: a valid
/// cached measurement is returned without simulating; a miss simulates
/// and records the fresh measurement. Failed scenarios are never cached.
fn run_through_cache(
    sc: &Scenario,
    workload: &Workload,
    cache: Option<&ScenarioCache>,
) -> ScenarioResult {
    if let Some(cache) = cache {
        if let Some(hit) = cache.lookup(sc) {
            return Ok(hit);
        }
    }
    let result = run_isolated(sc, workload);
    if let (Some(cache), Ok(res)) = (cache, &result) {
        cache.record(sc, res);
    }
    result
}

/// [`run_scenario_list`] with an optional lookup-before-simulate cache
/// layer. The result vector is bit-identical with or without the cache
/// (the cache stores full measurements, not recomputations) and for any
/// thread count.
#[must_use]
pub fn run_scenario_list_cached(
    scenarios: &[Scenario],
    workload: &Workload,
    threads: usize,
    progress: &(impl Fn(&str) + Sync),
    cache: Option<&ScenarioCache>,
) -> Vec<ScenarioResult> {
    let n = scenarios.len();
    if threads <= 1 {
        return scenarios
            .iter()
            .map(|sc| {
                progress(&sc.label);
                run_through_cache(sc, workload, cache)
            })
            .collect();
    }
    // Work-stealing by atomic index: scenario costs are wildly uneven
    // (ORIG simulates ~10× the cycles of a loop-level point), so a
    // static partition would idle most workers.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(sc) = scenarios.get(i) else { break };
                progress(&sc.label);
                let r = run_through_cache(sc, workload, cache);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(ScenarioError::Panic {
                        label: scenarios[i].label.clone(),
                        message: "scenario result missing (worker died)".to_owned(),
                    })
                })
        })
        .collect()
}

/// An expanded [`ExperimentSpec`]: the spec plus its concrete scenario
/// list, ready to run.
#[derive(Debug, Clone)]
pub struct Sweep {
    spec: ExperimentSpec,
    scenarios: Vec<Scenario>,
}

impl Sweep {
    /// Expands `spec` into its scenario list.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] from [`ExperimentSpec::scenarios`] (duplicate
    /// labels, chiefly).
    pub fn expand(spec: ExperimentSpec) -> Result<Self, SpecError> {
        let scenarios = spec.scenarios()?;
        Ok(Sweep { spec, scenarios })
    }

    /// The spec this sweep was expanded from.
    #[must_use]
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The expanded scenarios, in run order.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Runs every scenario over `workload` across `threads` workers and
    /// collects the result matrix. Bit-identical for any thread count.
    #[must_use]
    pub fn run(
        &self,
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
    ) -> SweepOutcome {
        self.run_cached(workload, threads, progress, None)
    }

    /// [`Sweep::run`] with an optional result cache. The outcome —
    /// including its JSON rendering — is bit-identical to an uncached
    /// run; cache traffic is reported separately (through
    /// [`ScenarioCache::counts`]), never embedded in the matrix.
    #[must_use]
    pub fn run_cached(
        &self,
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
        cache: Option<&ScenarioCache>,
    ) -> SweepOutcome {
        let results =
            run_scenario_list_cached(&self.scenarios, workload, threads, &progress, cache);
        let rows = self
            .scenarios
            .iter()
            .zip(results)
            .map(|(sc, result)| SweepRow {
                label: sc.label.clone(),
                static_latency: match sc.kind {
                    Kind::Instruction(_) => None,
                    Kind::Loop { .. } => Some(sc.static_latency(workload.stride)),
                },
                result,
            })
            .collect();
        SweepOutcome {
            name: self.spec.name.clone(),
            baseline: self.spec.baseline.clone(),
            rows,
        }
    }
}

/// One row of a [`SweepOutcome`]: a scenario's label, its static RFU
/// latency (loop-level scenarios only) and its measurement or error.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The scenario label.
    pub label: String,
    /// Static `GetSadLoop` latency in cycles (`None` for instruction-level
    /// scenarios, which have no loop engine).
    pub static_latency: Option<u64>,
    /// The measurement, or the typed error that replaced it.
    pub result: ScenarioResult,
}

/// The result matrix of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The spec name.
    pub name: String,
    /// Baseline label speedups are computed against, when the spec set one.
    pub baseline: Option<String>,
    /// One row per scenario, in run order.
    pub rows: Vec<SweepRow>,
}

impl SweepOutcome {
    /// The baseline row's measurement, when a baseline label was set and
    /// that row succeeded.
    #[must_use]
    pub fn baseline_result(&self) -> Option<&MeResult> {
        let label = self.baseline.as_deref()?;
        self.rows
            .iter()
            .find(|r| r.label == label)?
            .result
            .as_ref()
            .ok()
    }

    /// The errors of every failed row, in run order.
    pub fn failures(&self) -> impl Iterator<Item = &ScenarioError> {
        self.rows.iter().filter_map(|r| r.result.as_ref().err())
    }

    /// Whether every row succeeded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures().next().is_none()
    }

    /// The outcome as a JSON value (the `rvliw sweep --out` format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let base = self.baseline_result();
        let mut m = std::collections::BTreeMap::new();
        m.insert("sweep".to_owned(), Json::Str(self.name.clone()));
        m.insert(
            "baseline".to_owned(),
            match &self.baseline {
                Some(b) => Json::Str(b.clone()),
                None => Json::Null,
            },
        );
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut r = std::collections::BTreeMap::new();
                r.insert("label".to_owned(), Json::Str(row.label.clone()));
                r.insert(
                    "static_latency".to_owned(),
                    match row.static_latency {
                        Some(l) => Json::Num(l.to_string()),
                        None => Json::Null,
                    },
                );
                match &row.result {
                    Ok(res) => {
                        r.insert("me_cycles".to_owned(), Json::Num(res.me_cycles.to_string()));
                        r.insert(
                            "stall_cycles".to_owned(),
                            Json::Num(res.stall_cycles.to_string()),
                        );
                        r.insert("calls".to_owned(), Json::Num(res.calls.to_string()));
                        r.insert(
                            "speedup".to_owned(),
                            match base {
                                Some(b) => Json::Num(format!("{:.4}", res.speedup_vs(b))),
                                None => Json::Null,
                            },
                        );
                        r.insert("error".to_owned(), Json::Null);
                    }
                    Err(e) => {
                        r.insert("error".to_owned(), Json::Str(e.to_string()));
                    }
                }
                Json::Obj(r)
            })
            .collect();
        m.insert("rows".to_owned(), Json::Arr(rows));
        Json::Obj(m)
    }

    /// The outcome as pretty-printed JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }
}

impl fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Sweep `{}`:", self.name)?;
        let base = self.baseline_result();
        writeln!(
            f,
            "{:<24} {:>8} {:>12} {:>12} {:>8} {:>8}",
            "Scenario", "Lat", "MeCycles", "Stalls", "Calls", "S.Up"
        )?;
        for row in &self.rows {
            let lat = row
                .static_latency
                .map_or_else(|| "-".to_owned(), |l| l.to_string());
            match &row.result {
                Ok(res) => {
                    let speedup = base
                        .map_or_else(|| "-".to_owned(), |b| format!("{:.2}", res.speedup_vs(b)));
                    writeln!(
                        f,
                        "{:<24} {:>8} {:>12} {:>12} {:>8} {:>8}",
                        row.label, lat, res.me_cycles, res.stall_cycles, res.calls, speedup
                    )?;
                }
                Err(e) => {
                    writeln!(f, "{:<24} {:>8} [failed] {e}", row.label, lat)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_labels_fail_expansion() {
        use crate::spec::SweepAxes;
        use rvliw_kernels::Variant;
        let spec = ExperimentSpec::new("dup")
            .sweep(SweepAxes::instruction(vec![Variant::Orig]))
            .sweep(SweepAxes::instruction(vec![Variant::Orig]));
        assert!(matches!(
            Sweep::expand(spec),
            Err(SpecError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn sweep_runs_and_reports_speedups() {
        use crate::spec::SweepAxes;
        use rvliw_kernels::Variant;
        use rvliw_rfu::RfuBandwidth;
        let spec = ExperimentSpec::new("smoke")
            .with_baseline("Orig")
            .sweep(SweepAxes::instruction(vec![Variant::Orig]))
            .sweep(SweepAxes::loop_grid(vec![RfuBandwidth::B2x64], vec![5]));
        let sweep = Sweep::expand(spec).unwrap();
        let workload = Workload::tiny();
        let out = sweep.run(&workload, 1, |_| {});
        assert!(out.is_complete(), "failures: {:?}", out.failures().count());
        assert_eq!(out.rows.len(), 2);
        assert!(out.baseline_result().is_some());
        // The loop-level point must beat the software baseline.
        let base = out.baseline_result().unwrap().me_cycles;
        let fast = out.rows[1].result.as_ref().unwrap().me_cycles;
        assert!(fast < base);
        assert!(out.rows[1].static_latency.is_some());
        assert!(out.rows[0].static_latency.is_none());
        // JSON rendering round-trips through the parser.
        let json = Json::parse(&out.to_json_string()).unwrap();
        assert_eq!(json.get("sweep").and_then(Json::as_str), Some("smoke"));
        assert_eq!(
            json.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        // Text rendering mentions every label.
        let text = out.to_string();
        assert!(text.contains("Orig") && text.contains("2x64 b=5"));
    }
}
