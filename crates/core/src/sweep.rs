//! The sweep engine: expand an [`ExperimentSpec`] into scenarios, run them
//! on the deterministic parallel runner, and collect a result matrix.
//!
//! This is the execution seam both the tables pipeline and `rvliw sweep`
//! sit on: [`run_scenario_list`] fans scenarios out across worker threads
//! with per-scenario panic isolation, and results are reassembled in input
//! order so the outcome — every cell, bit for bit — is independent of the
//! thread count.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use mpeg4_enc::QualityMetrics;
use rvliw_trace::Json;

use crate::cache::ScenarioCache;
use crate::runner::{run_me, MeResult, ScenarioError};
use crate::scenario::{Kind, Scenario};
use crate::spec::{pretty, ExperimentSpec, SpecError};
use crate::supervisor::{run_scenario_list_supervised, HealthReport, SupervisorConfig};
use crate::workload::Workload;

/// The per-scenario outcome slot of a sweep or case study.
pub type ScenarioResult = Result<MeResult, ScenarioError>;

std::thread_local! {
    /// The `file:line:col` of the most recent panic on this thread, captured
    /// by the hook below so [`run_isolated`] can attach it to
    /// [`ScenarioError::Panic`] (the unwind payload itself carries only the
    /// message).
    static LAST_PANIC_LOCATION: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs (once, process-wide) a panic hook that records the panic
/// location into [`LAST_PANIC_LOCATION`] and then chains to the previous
/// hook, so default panic reporting elsewhere is unaffected.
fn install_location_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let loc = info
                .location()
                .map(|l| format!("{}:{}:{}", l.file(), l.line(), l.column()));
            LAST_PANIC_LOCATION.with(|slot| *slot.borrow_mut() = loc);
            prev(info);
        }));
    });
}

/// Runs one scenario with a panic backstop: a panicking scenario becomes
/// [`ScenarioError::Panic`] instead of tearing down the whole sweep (or
/// poisoning a worker thread in the parallel path).
pub(crate) fn run_isolated(sc: &Scenario, workload: &Workload) -> ScenarioResult {
    install_location_hook();
    LAST_PANIC_LOCATION.with(|slot| *slot.borrow_mut() = None);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_me(sc, workload))).unwrap_or_else(
        |payload| {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            let location = LAST_PANIC_LOCATION.with(|slot| slot.borrow_mut().take());
            Err(ScenarioError::Panic {
                label: sc.label.clone(),
                message,
                location,
            })
        },
    )
}

/// Runs `scenarios` across `threads` workers (`<= 1` runs serially on the
/// calling thread), returning one [`ScenarioResult`] per scenario in input
/// order. A failing or panicking scenario occupies its own slot without
/// disturbing the others. `progress` is called with a scenario label as
/// each scenario starts (from worker threads when running parallel —
/// labels may interleave, but every label appears exactly once).
#[must_use]
pub fn run_scenario_list(
    scenarios: &[Scenario],
    workload: &Workload,
    threads: usize,
    progress: &(impl Fn(&str) + Sync),
) -> Vec<ScenarioResult> {
    run_scenario_list_cached(scenarios, workload, threads, progress, None)
}

/// Runs one scenario through the cache when one is attached: a valid
/// cached measurement is returned without simulating; a miss simulates
/// and records the fresh measurement. Failed scenarios are never cached.
fn run_through_cache(
    sc: &Scenario,
    workload: &Workload,
    cache: Option<&ScenarioCache>,
) -> ScenarioResult {
    if let Some(cache) = cache {
        if let Some(hit) = cache.lookup(sc) {
            return Ok(hit);
        }
    }
    let result = run_isolated(sc, workload);
    if let (Some(cache), Ok(res)) = (cache, &result) {
        cache.record(sc, res);
    }
    result
}

/// [`run_scenario_list`] with an optional lookup-before-simulate cache
/// layer. The result vector is bit-identical with or without the cache
/// (the cache stores full measurements, not recomputations) and for any
/// thread count.
#[must_use]
pub fn run_scenario_list_cached(
    scenarios: &[Scenario],
    workload: &Workload,
    threads: usize,
    progress: &(impl Fn(&str) + Sync),
    cache: Option<&ScenarioCache>,
) -> Vec<ScenarioResult> {
    let n = scenarios.len();
    if threads <= 1 {
        return scenarios
            .iter()
            .map(|sc| {
                progress(&sc.label);
                run_through_cache(sc, workload, cache)
            })
            .collect();
    }
    // Work-stealing by atomic index: scenario costs are wildly uneven
    // (ORIG simulates ~10× the cycles of a loop-level point), so a
    // static partition would idle most workers.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(sc) = scenarios.get(i) else { break };
                progress(&sc.label);
                let r = run_through_cache(sc, workload, cache);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    Err(ScenarioError::Panic {
                        label: scenarios[i].label.clone(),
                        message: "scenario result missing (worker died)".to_owned(),
                        location: None,
                    })
                })
        })
        .collect()
}

/// An expanded [`ExperimentSpec`]: the spec plus its concrete scenario
/// list, ready to run.
#[derive(Debug, Clone)]
pub struct Sweep {
    spec: ExperimentSpec,
    scenarios: Vec<Scenario>,
}

impl Sweep {
    /// Expands `spec` into its scenario list.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] from [`ExperimentSpec::scenarios`] (duplicate
    /// labels, chiefly).
    pub fn expand(spec: ExperimentSpec) -> Result<Self, SpecError> {
        let scenarios = spec.scenarios()?;
        Ok(Sweep { spec, scenarios })
    }

    /// The spec this sweep was expanded from.
    #[must_use]
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The expanded scenarios, in run order.
    #[must_use]
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Runs every scenario over `workload` across `threads` workers and
    /// collects the result matrix. Bit-identical for any thread count.
    #[must_use]
    pub fn run(
        &self,
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
    ) -> SweepOutcome {
        self.run_cached(workload, threads, progress, None)
    }

    /// [`Sweep::run`] with an optional result cache. The outcome —
    /// including its JSON rendering — is bit-identical to an uncached
    /// run; cache traffic is reported separately (through
    /// [`ScenarioCache::counts`]), never embedded in the matrix.
    #[must_use]
    pub fn run_cached(
        &self,
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
        cache: Option<&ScenarioCache>,
    ) -> SweepOutcome {
        let results =
            run_scenario_list_cached(&self.scenarios, workload, threads, &progress, cache);
        self.assemble(workload, results)
    }

    /// [`Sweep::run_cached`] under a [`SupervisorConfig`]: journal every
    /// outcome, replay a resume map, retry transients and watchdog each
    /// attempt per the config, returning the matrix plus the run's
    /// [`HealthReport`]. With the default config the matrix is
    /// bit-identical to [`Sweep::run_cached`].
    #[must_use]
    pub fn run_supervised(
        &self,
        workload: &Workload,
        threads: usize,
        progress: impl Fn(&str) + Sync,
        cache: Option<&ScenarioCache>,
        config: &SupervisorConfig,
    ) -> (SweepOutcome, HealthReport) {
        let (results, health) = run_scenario_list_supervised(
            &self.scenarios,
            workload,
            threads,
            &progress,
            cache,
            config,
        );
        (self.assemble(workload, results), health)
    }

    /// Zips per-scenario results back into the labeled row matrix.
    fn assemble(&self, workload: &Workload, results: Vec<ScenarioResult>) -> SweepOutcome {
        let rows = self
            .scenarios
            .iter()
            .zip(results)
            .map(|(sc, result)| SweepRow {
                label: sc.label.clone(),
                static_latency: match sc.kind {
                    Kind::Instruction(_) => None,
                    Kind::Loop { .. } => Some(sc.static_latency(workload.stride)),
                },
                result,
            })
            .collect();
        SweepOutcome {
            name: self.spec.name.clone(),
            baseline: self.spec.baseline.clone(),
            rows,
        }
    }
}

/// One row of a [`SweepOutcome`]: a scenario's label, its static RFU
/// latency (loop-level scenarios only) and its measurement or error.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The scenario label.
    pub label: String,
    /// Static `GetSadLoop` latency in cycles (`None` for instruction-level
    /// scenarios, which have no loop engine).
    pub static_latency: Option<u64>,
    /// The measurement, or the typed error that replaced it.
    pub result: ScenarioResult,
}

/// The result matrix of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The spec name.
    pub name: String,
    /// Baseline label speedups are computed against, when the spec set one.
    pub baseline: Option<String>,
    /// One row per scenario, in run order.
    pub rows: Vec<SweepRow>,
}

/// A cross-substrate pairing: two successful rows of the same sweep whose
/// labels differ only by the ` su=` suffix, compared on ME cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstrateRatio {
    /// The base scenario label (the default-substrate row).
    pub label: String,
    /// The alternate substrate token (the ` su=` suffix value, e.g.
    /// `scalar`).
    pub substrate: String,
    /// ME cycles of the default (VLIW) row.
    pub vliw_cycles: u64,
    /// ME cycles of the alternate-substrate row.
    pub substrate_cycles: u64,
}

impl SubstrateRatio {
    /// Cycle ratio of the alternate substrate over the VLIW row
    /// (`> 1` means the alternate substrate is slower).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.substrate_cycles as f64 / self.vliw_cycles as f64
    }
}

/// Renders a quality block as the compact speed-vs-quality cell used by
/// the text matrix: `+1.23%/+0.05dB` (SAD inflation, PSNR delta). Rows
/// with no quality block (exact full-quality scenarios) render `-`.
fn quality_cell(q: Option<&QualityMetrics>) -> String {
    match q {
        None => "-".to_owned(),
        Some(q) => format!("{:+.2}%/{:+.2}dB", q.sad_inflation * 100.0, q.psnr_delta_db),
    }
}

/// A finite float as a JSON number; non-finite values (infinite SAD
/// inflation against a zero-cost golden field) degrade to `null` rather
/// than emitting invalid JSON.
pub(crate) fn fnum(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(format!("{v:.6}"))
    } else {
        Json::Null
    }
}

impl SweepOutcome {
    /// The baseline row's measurement, when a baseline label was set and
    /// that row succeeded.
    #[must_use]
    pub fn baseline_result(&self) -> Option<&MeResult> {
        let label = self.baseline.as_deref()?;
        self.rows
            .iter()
            .find(|r| r.label == label)?
            .result
            .as_ref()
            .ok()
    }

    /// The errors of every failed row, in run order.
    pub fn failures(&self) -> impl Iterator<Item = &ScenarioError> {
        self.rows.iter().filter_map(|r| r.result.as_ref().err())
    }

    /// Whether every row succeeded.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Every cross-substrate pairing in this outcome, in run order of the
    /// alternate-substrate rows.
    ///
    /// A row whose label carries a ` su=` suffix (the substrate sweep
    /// axis) is paired with the row whose label is the same minus that
    /// suffix — the default-substrate run of the same scenario point.
    /// Pairs where either side failed, or where the base row is absent,
    /// are skipped.
    #[must_use]
    pub fn substrate_ratios(&self) -> Vec<SubstrateRatio> {
        let mut out = Vec::new();
        for row in &self.rows {
            // ` su=` is always the last label suffix the expander appends,
            // so splitting from the right recovers the base label exactly.
            let Some((base, su)) = row.label.rsplit_once(" su=") else {
                continue;
            };
            let Ok(res) = &row.result else { continue };
            let Some(base_res) = self
                .rows
                .iter()
                .find(|r| r.label == base)
                .and_then(|r| r.result.as_ref().ok())
            else {
                continue;
            };
            out.push(SubstrateRatio {
                label: base.to_owned(),
                substrate: su.to_owned(),
                vliw_cycles: base_res.me_cycles,
                substrate_cycles: res.me_cycles,
            });
        }
        out
    }

    /// The outcome as a JSON value (the `rvliw sweep --out` format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let base = self.baseline_result();
        let mut m = std::collections::BTreeMap::new();
        m.insert("sweep".to_owned(), Json::Str(self.name.clone()));
        m.insert(
            "baseline".to_owned(),
            match &self.baseline {
                Some(b) => Json::Str(b.clone()),
                None => Json::Null,
            },
        );
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut r = std::collections::BTreeMap::new();
                r.insert("label".to_owned(), Json::Str(row.label.clone()));
                r.insert(
                    "static_latency".to_owned(),
                    match row.static_latency {
                        Some(l) => Json::Num(l.to_string()),
                        None => Json::Null,
                    },
                );
                match &row.result {
                    Ok(res) => {
                        r.insert("me_cycles".to_owned(), Json::Num(res.me_cycles.to_string()));
                        r.insert(
                            "stall_cycles".to_owned(),
                            Json::Num(res.stall_cycles.to_string()),
                        );
                        r.insert("calls".to_owned(), Json::Num(res.calls.to_string()));
                        r.insert(
                            "speedup".to_owned(),
                            match base {
                                Some(b) => Json::Num(format!("{:.4}", res.speedup_vs(b))),
                                None => Json::Null,
                            },
                        );
                        r.insert(
                            "quality".to_owned(),
                            match &res.quality {
                                Some(q) => {
                                    let mut qm = std::collections::BTreeMap::new();
                                    qm.insert("sad_inflation".to_owned(), fnum(q.sad_inflation));
                                    qm.insert("psnr_delta_db".to_owned(), fnum(q.psnr_delta_db));
                                    Json::Obj(qm)
                                }
                                None => Json::Null,
                            },
                        );
                        r.insert("error".to_owned(), Json::Null);
                    }
                    Err(e) => {
                        r.insert("error".to_owned(), Json::Str(e.to_string()));
                    }
                }
                Json::Obj(r)
            })
            .collect();
        m.insert("rows".to_owned(), Json::Arr(rows));
        // Cross-substrate pairings are emitted only when the sweep has
        // any, so single-substrate sweep output keeps its exact shape.
        let ratios = self.substrate_ratios();
        if !ratios.is_empty() {
            m.insert(
                "substrate_ratios".to_owned(),
                Json::Arr(
                    ratios
                        .iter()
                        .map(|r| {
                            let mut j = std::collections::BTreeMap::new();
                            j.insert("label".to_owned(), Json::Str(r.label.clone()));
                            j.insert("substrate".to_owned(), Json::Str(r.substrate.clone()));
                            j.insert(
                                "vliw_cycles".to_owned(),
                                Json::Num(r.vliw_cycles.to_string()),
                            );
                            j.insert(
                                "substrate_cycles".to_owned(),
                                Json::Num(r.substrate_cycles.to_string()),
                            );
                            j.insert("ratio".to_owned(), fnum(r.ratio()));
                            Json::Obj(j)
                        })
                        .collect(),
                ),
            );
        }
        Json::Obj(m)
    }

    /// The outcome as pretty-printed JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }

    /// The cycles-vs-quality Pareto partition of this outcome.
    ///
    /// Only successful rows carrying a quality block participate — exact
    /// full-quality rows have no quality number to trade against and are
    /// skipped, as are failed rows and rows whose inflation is NaN (a NaN
    /// coordinate would compare incomparable to everything and pollute the
    /// frontier). A point is *dominated* when some other
    /// point is no worse on both axes (ME cycles, SAD inflation) and
    /// strictly better on at least one; the frontier is every point no
    /// other point dominates. Coincident points dominate neither way and
    /// share the frontier.
    #[must_use]
    pub fn pareto(&self) -> Pareto {
        let mut points: Vec<ParetoPoint> = self
            .rows
            .iter()
            .filter_map(|row| {
                let res = row.result.as_ref().ok()?;
                let q = res.quality?;
                if q.sad_inflation.is_nan() {
                    return None;
                }
                Some(ParetoPoint {
                    label: row.label.clone(),
                    me_cycles: res.me_cycles,
                    sad_inflation: q.sad_inflation,
                    psnr_delta_db: q.psnr_delta_db,
                })
            })
            .collect();
        // Deterministic order for both partitions: cheapest first, then
        // best quality, then label as the final tie-break.
        points.sort_by(|a, b| {
            a.me_cycles
                .cmp(&b.me_cycles)
                .then(a.sad_inflation.total_cmp(&b.sad_inflation))
                .then_with(|| a.label.cmp(&b.label))
        });
        let all = points.clone();
        let (mut frontier, mut dominated) = (Vec::new(), Vec::new());
        for p in points {
            if all.iter().any(|o| o.dominates(&p)) {
                dominated.push(p);
            } else {
                frontier.push(p);
            }
        }
        Pareto {
            name: self.name.clone(),
            frontier,
            dominated,
        }
    }
}

/// One scenario's position in the cycles-vs-quality plane.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The scenario label.
    pub label: String,
    /// ME cycles (the speed axis — lower is better).
    pub me_cycles: u64,
    /// Exact-SAD inflation vs the golden encode (the quality axis —
    /// lower is better).
    pub sad_inflation: f64,
    /// PSNR delta vs the golden encode, carried along for reporting (not
    /// a dominance axis).
    pub psnr_delta_db: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: no worse on both axes, strictly
    /// better on at least one. Irreflexive — a point never dominates
    /// itself or a coincident twin.
    #[must_use]
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.me_cycles <= other.me_cycles
            && self.sad_inflation <= other.sad_inflation
            && (self.me_cycles < other.me_cycles || self.sad_inflation < other.sad_inflation)
    }

    fn to_json(&self) -> Json {
        let mut m = std::collections::BTreeMap::new();
        m.insert("label".to_owned(), Json::Str(self.label.clone()));
        m.insert(
            "me_cycles".to_owned(),
            Json::Num(self.me_cycles.to_string()),
        );
        m.insert("sad_inflation".to_owned(), fnum(self.sad_inflation));
        m.insert("psnr_delta_db".to_owned(), fnum(self.psnr_delta_db));
        Json::Obj(m)
    }
}

/// The Pareto partition of a sweep: the cycles-vs-quality frontier plus
/// every dominated point, both sorted by ascending ME cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Pareto {
    /// The sweep name the partition was computed from.
    pub name: String,
    /// Non-dominated points, cheapest first.
    pub frontier: Vec<ParetoPoint>,
    /// Dominated points, cheapest first.
    pub dominated: Vec<ParetoPoint>,
}

impl Pareto {
    /// The partition as a JSON value (the `rvliw sweep --pareto` format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = std::collections::BTreeMap::new();
        m.insert("sweep".to_owned(), Json::Str(self.name.clone()));
        m.insert(
            "frontier".to_owned(),
            Json::Arr(self.frontier.iter().map(ParetoPoint::to_json).collect()),
        );
        m.insert(
            "dominated".to_owned(),
            Json::Arr(self.dominated.iter().map(ParetoPoint::to_json).collect()),
        );
        Json::Obj(m)
    }

    /// The partition as pretty-printed JSON text.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }
}

impl fmt::Display for SweepOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Sweep `{}`:", self.name)?;
        let base = self.baseline_result();
        writeln!(
            f,
            "{:<24} {:>8} {:>12} {:>12} {:>8} {:>8} {:>16}",
            "Scenario", "Lat", "MeCycles", "Stalls", "Calls", "S.Up", "Quality"
        )?;
        for row in &self.rows {
            let lat = row
                .static_latency
                .map_or_else(|| "-".to_owned(), |l| l.to_string());
            match &row.result {
                Ok(res) => {
                    let speedup = base
                        .map_or_else(|| "-".to_owned(), |b| format!("{:.2}", res.speedup_vs(b)));
                    writeln!(
                        f,
                        "{:<24} {:>8} {:>12} {:>12} {:>8} {:>8} {:>16}",
                        row.label,
                        lat,
                        res.me_cycles,
                        res.stall_cycles,
                        res.calls,
                        speedup,
                        quality_cell(res.quality.as_ref())
                    )?;
                }
                Err(e) => {
                    writeln!(f, "{:<24} {:>8} [failed] {e}", row.label, lat)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_labels_fail_expansion() {
        use crate::spec::SweepAxes;
        use rvliw_kernels::Variant;
        let spec = ExperimentSpec::new("dup")
            .sweep(SweepAxes::instruction(vec![Variant::Orig]))
            .sweep(SweepAxes::instruction(vec![Variant::Orig]));
        assert!(matches!(
            Sweep::expand(spec),
            Err(SpecError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn sweep_runs_and_reports_speedups() {
        use crate::spec::SweepAxes;
        use rvliw_kernels::Variant;
        use rvliw_rfu::RfuBandwidth;
        let spec = ExperimentSpec::new("smoke")
            .with_baseline("Orig")
            .sweep(SweepAxes::instruction(vec![Variant::Orig]))
            .sweep(SweepAxes::loop_grid(vec![RfuBandwidth::B2x64], vec![5]));
        let sweep = Sweep::expand(spec).unwrap();
        let workload = Workload::tiny();
        let out = sweep.run(&workload, 1, |_| {});
        assert!(out.is_complete(), "failures: {:?}", out.failures().count());
        assert_eq!(out.rows.len(), 2);
        assert!(out.baseline_result().is_some());
        // The loop-level point must beat the software baseline.
        let base = out.baseline_result().unwrap().me_cycles;
        let fast = out.rows[1].result.as_ref().unwrap().me_cycles;
        assert!(fast < base);
        assert!(out.rows[1].static_latency.is_some());
        assert!(out.rows[0].static_latency.is_none());
        // JSON rendering round-trips through the parser.
        let json = Json::parse(&out.to_json_string()).unwrap();
        assert_eq!(json.get("sweep").and_then(Json::as_str), Some("smoke"));
        assert_eq!(
            json.get("rows").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        // Text rendering mentions every label.
        let text = out.to_string();
        assert!(text.contains("Orig") && text.contains("2x64 b=5"));
        // Exact scenarios have no quality block: the column shows `-` and
        // the JSON rows carry an explicit null.
        assert!(text.contains("Quality"));
        let rows = json.get("rows").and_then(Json::as_array).unwrap();
        assert!(rows
            .iter()
            .all(|r| matches!(r.get("quality"), Some(Json::Null))));
    }

    /// A synthetic successful row with the given cost and quality block.
    fn row(label: &str, me_cycles: u64, quality: Option<QualityMetrics>) -> SweepRow {
        SweepRow {
            label: label.to_owned(),
            static_latency: None,
            result: Ok(MeResult {
                label: label.to_owned(),
                me_cycles,
                stall_cycles: 0,
                calls: 1,
                mem: Default::default(),
                core: Default::default(),
                rfu: Default::default(),
                quality,
            }),
        }
    }

    fn q(sad_inflation: f64, psnr_delta_db: f64) -> Option<QualityMetrics> {
        Some(QualityMetrics {
            sad_inflation,
            psnr_delta_db,
        })
    }

    #[test]
    fn quality_cell_renders_metrics_or_dash() {
        assert_eq!(quality_cell(None), "-");
        let m = QualityMetrics {
            sad_inflation: 0.0123,
            psnr_delta_db: -0.05,
        };
        assert_eq!(quality_cell(Some(&m)), "+1.23%/-0.05dB");
    }

    #[test]
    fn quality_rows_serialize_finite_floats_and_null_infinities() {
        let out = SweepOutcome {
            name: "q".to_owned(),
            baseline: None,
            rows: vec![
                row("ap", 10, q(0.5, 1.25)),
                row("inf", 20, q(f64::INFINITY, 0.0)),
            ],
        };
        let json = Json::parse(&out.to_json_string()).unwrap();
        let rows = json.get("rows").and_then(Json::as_array).unwrap();
        let quality = rows[0].get("quality").unwrap();
        assert_eq!(
            quality.get("sad_inflation").map(ToString::to_string),
            Some("0.500000".to_owned())
        );
        assert_eq!(
            quality.get("psnr_delta_db").map(ToString::to_string),
            Some("1.250000".to_owned())
        );
        // Infinite inflation (zero-cost golden field) degrades to null
        // instead of emitting invalid JSON.
        assert!(matches!(
            rows[1]
                .get("quality")
                .and_then(|qj| qj.get("sad_inflation")),
            Some(Json::Null)
        ));
    }

    #[test]
    fn pareto_partition_is_sorted_and_dominance_free() {
        let out = SweepOutcome {
            name: "pareto".to_owned(),
            baseline: None,
            rows: vec![
                row("exact", 200, None), // no quality block: not a point
                row("a", 100, q(0.00, 0.0)),
                row("c", 120, q(0.005, 0.1)), // dominated by `a`
                row("b", 80, q(0.01, 0.2)),
                row("d", 90, q(0.02, 0.3)), // dominated by `b`
                SweepRow {
                    label: "boom".to_owned(),
                    static_latency: None,
                    result: Err(ScenarioError::Panic {
                        label: "boom".to_owned(),
                        message: "x".to_owned(),
                        location: None,
                    }),
                },
            ],
        };
        let p = out.pareto();
        let labels: Vec<&str> = p.frontier.iter().map(|pt| pt.label.as_str()).collect();
        assert_eq!(labels, ["b", "a"]);
        // Both partitions are sorted by ascending ME cycles.
        for part in [&p.frontier, &p.dominated] {
            assert!(part.windows(2).all(|w| w[0].me_cycles <= w[1].me_cycles));
        }
        // The frontier is dominance-free...
        for x in &p.frontier {
            for y in &p.frontier {
                assert!(!x.dominates(y), "{} dominates {}", x.label, y.label);
            }
        }
        // ...and every dominated point has a frontier witness.
        assert_eq!(p.dominated.len(), 2);
        for d in &p.dominated {
            assert!(
                p.frontier.iter().any(|f| f.dominates(d)),
                "{} dominated without witness",
                d.label
            );
        }
        // JSON rendering parses and keeps the partition sizes.
        let json = Json::parse(&p.to_json_string()).unwrap();
        assert_eq!(json.get("sweep").and_then(Json::as_str), Some("pareto"));
        assert_eq!(
            json.get("frontier")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(
            json.get("dominated")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn pareto_single_point_and_empty_inputs() {
        // A single quality-bearing point is its own frontier.
        let out = SweepOutcome {
            name: "one".to_owned(),
            baseline: None,
            rows: vec![row("solo", 100, q(0.01, 0.1))],
        };
        let p = out.pareto();
        assert_eq!(p.frontier.len(), 1);
        assert!(p.dominated.is_empty());
        // No quality-bearing rows at all: both partitions empty, no panic.
        let out = SweepOutcome {
            name: "none".to_owned(),
            baseline: None,
            rows: vec![row("exact", 100, None)],
        };
        let p = out.pareto();
        assert!(p.frontier.is_empty() && p.dominated.is_empty());
        let out = SweepOutcome {
            name: "zero".to_owned(),
            baseline: None,
            rows: vec![],
        };
        let p = out.pareto();
        assert!(p.frontier.is_empty() && p.dominated.is_empty());
    }

    #[test]
    fn pareto_duplicate_points_share_the_frontier() {
        // Coincident points dominate neither way: both stay on the
        // frontier (dominance is irreflexive and strict).
        let out = SweepOutcome {
            name: "dup".to_owned(),
            baseline: None,
            rows: vec![
                row("twin-b", 100, q(0.01, 0.1)),
                row("twin-a", 100, q(0.01, 0.1)),
                row("worse", 200, q(0.02, 0.2)),
            ],
        };
        let p = out.pareto();
        let labels: Vec<&str> = p.frontier.iter().map(|pt| pt.label.as_str()).collect();
        // Label is the final tie-break, so coincident twins sort by name.
        assert_eq!(labels, ["twin-a", "twin-b"]);
        assert_eq!(p.dominated.len(), 1);
    }

    #[test]
    fn pareto_all_dominated_but_one() {
        // A strictly better point on both axes dominates everything else.
        let out = SweepOutcome {
            name: "alldom".to_owned(),
            baseline: None,
            rows: vec![
                row("best", 10, q(0.0, 0.0)),
                row("d1", 20, q(0.01, 0.1)),
                row("d2", 30, q(0.02, 0.2)),
                row("d3", 40, q(0.03, 0.3)),
            ],
        };
        let p = out.pareto();
        assert_eq!(p.frontier.len(), 1);
        assert_eq!(p.frontier[0].label, "best");
        assert_eq!(p.dominated.len(), 3);
    }

    #[test]
    fn pareto_skips_nan_inflation_rows() {
        // A NaN inflation coordinate is incomparable to everything: it
        // would neither dominate nor be dominated and pollute the
        // frontier. Such rows are excluded from the partition entirely.
        let out = SweepOutcome {
            name: "nan".to_owned(),
            baseline: None,
            rows: vec![
                row("good", 100, q(0.01, 0.1)),
                row("nan", 10, q(f64::NAN, 0.0)),
            ],
        };
        let p = out.pareto();
        let labels: Vec<&str> = p.frontier.iter().map(|pt| pt.label.as_str()).collect();
        assert_eq!(labels, ["good"]);
        assert!(p.dominated.is_empty());
    }

    #[test]
    fn substrate_ratios_pair_rows_by_label_suffix() {
        let out = SweepOutcome {
            name: "xsub".to_owned(),
            baseline: None,
            rows: vec![
                row("A3", 100, None),
                row("A3 su=scalar", 250, None),
                row("Orig", 400, None),
                // No base row: skipped.
                row("1x32 b=1 su=scalar", 70, None),
                // Failed alternate row: skipped.
                SweepRow {
                    label: "Orig su=scalar".to_owned(),
                    static_latency: None,
                    result: Err(ScenarioError::Panic {
                        label: "Orig su=scalar".to_owned(),
                        message: "x".to_owned(),
                        location: None,
                    }),
                },
            ],
        };
        let ratios = out.substrate_ratios();
        assert_eq!(
            ratios,
            [SubstrateRatio {
                label: "A3".to_owned(),
                substrate: "scalar".to_owned(),
                vliw_cycles: 100,
                substrate_cycles: 250,
            }]
        );
        assert!((ratios[0].ratio() - 2.5).abs() < 1e-12);
        // The JSON gains a `substrate_ratios` array...
        let json = Json::parse(&out.to_json_string()).unwrap();
        let jr = json.get("substrate_ratios").and_then(Json::as_array);
        assert_eq!(jr.map(<[Json]>::len), Some(1));
        assert_eq!(
            jr.unwrap()[0].get("ratio").map(ToString::to_string),
            Some("2.500000".to_owned())
        );
        // ...but only when pairings exist: single-substrate output keeps
        // its exact shape.
        let plain = SweepOutcome {
            name: "plain".to_owned(),
            baseline: None,
            rows: vec![row("A3", 100, None)],
        };
        assert!(plain.substrate_ratios().is_empty());
        assert!(!plain.to_json_string().contains("substrate_ratios"));
    }

    #[test]
    fn coincident_points_share_the_frontier() {
        let out = SweepOutcome {
            name: "tie".to_owned(),
            baseline: None,
            rows: vec![row("x", 50, q(0.01, 0.0)), row("y", 50, q(0.01, 0.0))],
        };
        let p = out.pareto();
        assert_eq!(p.frontier.len(), 2);
        assert!(p.dominated.is_empty());
    }
}
