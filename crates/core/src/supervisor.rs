//! Supervised sweep execution: run journal + resume, bounded retries with
//! deterministic backoff, wall-clock watchdogs, and a per-run health
//! report.
//!
//! The paper's tables come from multi-scenario simulation campaigns; this
//! module makes those campaigns survivable. Every scenario outcome is
//! appended to a [`Journal`] (one JSON envelope per line, atomic line
//! appends) as it lands, so an interrupted sweep restarted with
//! `--resume` replays the completed prefix (journal ∪ cache) and only
//! simulates the remainder — producing matrices bit-identical to an
//! uninterrupted run. Transient failures (fault-injected latency or
//! flushes, cycle-budget trips under a chaos profile, timeouts) are
//! retried up to a bound with per-(scenario, attempt) substream-seeded
//! fault plans, so reruns are reproducible; permanent failures
//! (mismatches, panics) fail fast. An optional wall-clock watchdog marks
//! a hung scenario [`ScenarioError::TimedOut`] and lets the worker pool
//! keep draining. Everything that happened is summarized in a
//! [`HealthReport`].
//!
//! With [`SupervisorConfig::default`] the supervised runner degrades to
//! exactly the plain cached runner: no journal, no resume, no retries,
//! no watchdog threads — the golden paths stay bit-identical.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use rvliw_cache::{CacheCounts, CacheKey};
use rvliw_trace::Json;

use crate::cache::{
    me_result_from_json, me_result_to_json, scenario_key, workload_digest, ScenarioCache,
};
use crate::runner::{MeResult, ScenarioError};
use crate::scenario::Scenario;
use crate::sweep::{run_isolated, ScenarioResult};
use crate::workload::Workload;

/// Version of the journal line envelope. Bump when the line layout
/// changes; old journals then replay nothing (safe: re-simulation).
pub const JOURNAL_SCHEMA: u64 = 1;

/// An append-only JSONL run journal.
///
/// One JSON envelope per line:
///
/// ```json
/// {"schema":1,"kind":"scenario","key":"<32 hex>","label":"...","outcome":"ok","attempts":1,"wall_ms":12,"me_cycles":34,"result":{...}}
/// {"schema":1,"kind":"scenario","key":"<32 hex>","label":"...","outcome":"err","attempts":3,"wall_ms":40,"error":"..."}
/// ```
///
/// Lines are written with a single `write_all` on an append-mode file
/// under a mutex, so concurrent workers never interleave partial lines;
/// a crash can only truncate the final line, which [`Journal::load`]
/// skips.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<fs::File>,
}

impl Journal {
    /// Opens `path` for appending, creating it (and its parent
    /// directories) when absent.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or opening the file.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)?;
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one scenario outcome. Write failures are warned on stderr,
    /// never fatal — the journal is a safety net, not a dependency.
    pub fn record(&self, key: &CacheKey, result: &ScenarioResult, attempts: u64, wall_ms: u64) {
        let mut o = BTreeMap::new();
        o.insert("schema".to_owned(), Json::Num(JOURNAL_SCHEMA.to_string()));
        o.insert("kind".to_owned(), Json::Str("scenario".to_owned()));
        o.insert("key".to_owned(), Json::Str(key.hex()));
        o.insert("attempts".to_owned(), Json::Num(attempts.to_string()));
        o.insert("wall_ms".to_owned(), Json::Num(wall_ms.to_string()));
        match result {
            Ok(r) => {
                o.insert("label".to_owned(), Json::Str(r.label.clone()));
                o.insert("outcome".to_owned(), Json::Str("ok".to_owned()));
                o.insert("me_cycles".to_owned(), Json::Num(r.me_cycles.to_string()));
                o.insert("result".to_owned(), me_result_to_json(r));
            }
            Err(e) => {
                o.insert("label".to_owned(), Json::Str(e.label().to_owned()));
                o.insert("outcome".to_owned(), Json::Str("err".to_owned()));
                o.insert("error".to_owned(), Json::Str(e.to_string()));
            }
        }
        let line = format!("{}\n", Json::Obj(o));
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = file.write_all(line.as_bytes()).and_then(|()| file.flush()) {
            eprintln!(
                "warning: journal append failed for {}: {e}",
                self.path.display()
            );
        }
    }

    /// Loads the replayable outcomes of a journal file: the map from
    /// content key (hex) to the successful measurement recorded under it.
    ///
    /// Tolerant by construction: a truncated final line, a corrupt line,
    /// an unknown schema or a failed (`"err"`) outcome is skipped — those
    /// scenarios simply re-simulate. Later lines win when a key repeats.
    ///
    /// # Errors
    ///
    /// Any I/O error reading the file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<BTreeMap<String, MeResult>> {
        let text = fs::read_to_string(path)?;
        let mut replay = BTreeMap::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(env) = Json::parse(line) else { continue };
            if env.get("schema").and_then(Json::as_u64) != Some(JOURNAL_SCHEMA)
                || env.get("kind").and_then(Json::as_str) != Some("scenario")
                || env.get("outcome").and_then(Json::as_str) != Some("ok")
            {
                continue;
            }
            let key = env.get("key").and_then(Json::as_str);
            let result = env.get("result").and_then(me_result_from_json);
            let label = env.get("label").and_then(Json::as_str);
            if let (Some(key), Some(result), Some(label)) = (key, result, label) {
                if CacheKey::from_hex(key).is_some() && result.label == label {
                    replay.insert(key.to_owned(), result);
                }
            }
        }
        Ok(replay)
    }
}

/// Policy knobs for one supervised run. [`Default`] is "no supervision":
/// the supervised runner then behaves exactly like the plain cached
/// runner.
#[derive(Debug, Default)]
pub struct SupervisorConfig {
    /// Retry a transient failure up to this many extra attempts.
    pub max_retries: u32,
    /// Wall-clock deadline per attempt. `None` disables the watchdog (no
    /// extra threads are spawned).
    pub timeout: Option<Duration>,
    /// Journal to append every outcome to.
    pub journal: Option<Journal>,
    /// Completed outcomes from a previous run's journal, replayed instead
    /// of re-simulated.
    pub resume: BTreeMap<String, MeResult>,
}

impl SupervisorConfig {
    /// Whether any knob deviates from the plain runner.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.max_retries > 0
            || self.timeout.is_some()
            || self.journal.is_some()
            || !self.resume.is_empty()
    }

    /// Whether per-scenario content keys are needed (journal or resume).
    fn needs_keys(&self) -> bool {
        self.journal.is_some() || !self.resume.is_empty()
    }
}

/// What happened during one supervised run, for the stderr summary and
/// `--metrics-out`.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Scenarios in the run.
    pub scenarios: usize,
    /// Scenarios that ended with a measurement.
    pub completed: usize,
    /// Scenarios that ended with an error.
    pub failed: usize,
    /// Scenarios replayed from the resume journal without simulating.
    pub replayed: usize,
    /// Simulation attempts, including retries.
    pub attempts: u64,
    /// Retries of transient failures.
    pub retries: u64,
    /// Attempts killed by the wall-clock watchdog.
    pub timeouts: u64,
    /// Cache keys quarantined during the run (bad entries hit at lookup).
    pub quarantined: Vec<String>,
    /// The slowest scenarios, as `(label, wall_ms)`, slowest first.
    pub slowest: Vec<(String, u64)>,
}

impl HealthReport {
    /// The machine-greppable one-line summary
    /// (`health: scenarios=N completed=C failed=F replayed=R retries=T timeouts=X quarantined=Q`).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "health: scenarios={} completed={} failed={} replayed={} retries={} timeouts={} quarantined={}",
            self.scenarios,
            self.completed,
            self.failed,
            self.replayed,
            self.retries,
            self.timeouts,
            self.quarantined.len()
        )
    }

    /// The report as a JSON object (for `--metrics-out`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert(
            "scenarios".to_owned(),
            Json::Num(self.scenarios.to_string()),
        );
        m.insert(
            "completed".to_owned(),
            Json::Num(self.completed.to_string()),
        );
        m.insert("failed".to_owned(), Json::Num(self.failed.to_string()));
        m.insert("replayed".to_owned(), Json::Num(self.replayed.to_string()));
        m.insert("attempts".to_owned(), Json::Num(self.attempts.to_string()));
        m.insert("retries".to_owned(), Json::Num(self.retries.to_string()));
        m.insert("timeouts".to_owned(), Json::Num(self.timeouts.to_string()));
        m.insert(
            "quarantined".to_owned(),
            Json::Arr(
                self.quarantined
                    .iter()
                    .map(|k| Json::Str(k.clone()))
                    .collect(),
            ),
        );
        m.insert(
            "slowest".to_owned(),
            Json::Arr(
                self.slowest
                    .iter()
                    .map(|(label, wall_ms)| {
                        let mut s = BTreeMap::new();
                        s.insert("label".to_owned(), Json::Str(label.clone()));
                        s.insert("wall_ms".to_owned(), Json::Num(wall_ms.to_string()));
                        Json::Obj(s)
                    })
                    .collect(),
            ),
        );
        Json::Obj(m)
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary_line())
    }
}

/// The shared stderr summary both `rvliw sweep` and `tables` print after
/// a run: the cache counters line and, when supervision was active, the
/// health line. Empty when there is nothing to report.
#[must_use]
pub fn run_summary(cache: Option<&CacheCounts>, health: Option<&HealthReport>) -> String {
    let mut lines = Vec::new();
    if let Some(counts) = cache {
        lines.push(counts.summary_line());
    }
    if let Some(health) = health {
        lines.push(health.summary_line());
    }
    lines.join("\n")
}

/// How many scenarios the health report keeps in its slowest-first list.
const SLOWEST_KEPT: usize = 5;

/// Thread-safe accumulators the workers update while a supervised run is
/// in flight.
#[derive(Debug, Default)]
struct RunMetrics {
    replayed: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    wall: Mutex<Vec<(String, u64)>>,
}

/// Runs one attempt of `sc`, optionally under a wall-clock watchdog.
///
/// The watchdog spawns the simulation on a detached thread and waits on a
/// channel with a deadline; on expiry the scenario becomes
/// [`ScenarioError::TimedOut`] and the worker moves on. The hung thread is
/// deliberately leaked — aborting a thread is unsound, and a handful of
/// leaked simulations is cheaper than a stalled sweep.
fn run_attempt(
    sc: &Scenario,
    workload: &Workload,
    arc: Option<&Arc<Workload>>,
    timeout: Option<Duration>,
) -> ScenarioResult {
    match (timeout, arc) {
        (Some(deadline), Some(arc)) => {
            let (tx, rx) = mpsc::channel();
            let sc_owned = sc.clone();
            let wl = Arc::clone(arc);
            let label = sc.label.clone();
            std::thread::spawn(move || {
                let _ = tx.send(run_isolated(&sc_owned, &wl));
            });
            match rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(_) => Err(ScenarioError::TimedOut {
                    label,
                    secs: deadline.as_secs(),
                }),
            }
        }
        _ => run_isolated(sc, workload),
    }
}

/// Supervises one scenario: resume replay, cache lookup, then simulate
/// with bounded retries (reseeded fault substreams per attempt) under the
/// optional watchdog, journaling whatever lands.
fn supervise_one(
    sc: &Scenario,
    workload: &Workload,
    arc: Option<&Arc<Workload>>,
    cache: Option<&ScenarioCache>,
    config: &SupervisorConfig,
    key: Option<CacheKey>,
    metrics: &RunMetrics,
) -> ScenarioResult {
    let started = Instant::now();
    // 1. Replay from the previous run's journal. Label must agree (a key
    // collision across labels is implausible but cheap to rule out), and
    // replays are not re-journaled: appending to the same journal file
    // already preserves them for the next resume.
    if let Some(key) = &key {
        if let Some(prev) = config.resume.get(&key.hex()) {
            if prev.label == sc.label {
                metrics.replayed.fetch_add(1, Ordering::Relaxed);
                return Ok(prev.clone());
            }
        }
    }
    // 2. The content-addressed cache (a hit is journaled with attempts=0
    // so a later resume can replay it without the cache).
    if let Some(hit) = cache.and_then(|c| c.lookup(sc)) {
        if let (Some(journal), Some(key)) = (&config.journal, &key) {
            journal.record(key, &Ok(hit.clone()), 0, wall_ms_since(started));
        }
        return Ok(hit);
    }
    // 3. Simulate, retrying transients with per-(scenario, attempt)
    // reseeded fault substreams and a deterministic bounded backoff.
    let mut attempt: u32 = 0;
    let result = loop {
        let run_sc = if attempt == 0 {
            sc.clone()
        } else {
            let mut reseeded = sc.clone();
            reseeded.fault = sc.fault.reseed_for_attempt(attempt);
            reseeded
        };
        let result = run_attempt(&run_sc, workload, arc, config.timeout);
        metrics.attempts.fetch_add(1, Ordering::Relaxed);
        match &result {
            Err(e) if e.is_transient() && attempt < config.max_retries => {
                if matches!(e, ScenarioError::TimedOut { .. }) {
                    metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                metrics.retries.fetch_add(1, Ordering::Relaxed);
                backoff(sc, attempt);
                attempt += 1;
            }
            _ => {
                if matches!(&result, Err(ScenarioError::TimedOut { .. })) {
                    metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                break result;
            }
        }
    };
    // First-attempt successes are cached under the scenario's own key; a
    // retried success ran a reseeded fault plan (a different content
    // address), so it goes to the journal only — under the original key,
    // which is what resume looks up.
    if let (Some(cache), Ok(res), 0) = (cache, &result, attempt) {
        cache.record(sc, res);
    }
    if let (Some(journal), Some(key)) = (&config.journal, &key) {
        journal.record(key, &result, u64::from(attempt) + 1, wall_ms_since(started));
    }
    result
}

fn wall_ms_since(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Deterministic bounded backoff before retry `attempt + 1` of `sc`:
/// 1–16 ms of jitter drawn from a fault-style substream over
/// (seed, label, attempt), so two runs with the same seed sleep the same
/// schedule. Short on purpose — scenarios are compute-bound, the jitter
/// only de-synchronizes workers hammering a shared cache directory.
fn backoff(sc: &Scenario, attempt: u32) {
    let mut rng = sc
        .fault
        .reseed_for_attempt(attempt)
        .injector("backoff", &sc.label);
    let ms = 1 + rng.uniform(15);
    std::thread::sleep(Duration::from_millis(ms));
}

/// [`crate::sweep::run_scenario_list_cached`] with supervision: journal,
/// resume, retries and watchdog per `config`, plus a [`HealthReport`] of
/// what happened. With `SupervisorConfig::default()` the result vector is
/// bit-identical to the plain runner's, for any thread count.
#[must_use]
pub fn run_scenario_list_supervised(
    scenarios: &[Scenario],
    workload: &Workload,
    threads: usize,
    progress: &(impl Fn(&str) + Sync),
    cache: Option<&ScenarioCache>,
    config: &SupervisorConfig,
) -> (Vec<ScenarioResult>, HealthReport) {
    let n = scenarios.len();
    let metrics = RunMetrics::default();
    // The watchdog hands each attempt to a 'static thread, which needs an
    // owning handle on the workload; one clone up front covers the run.
    let arc = config.timeout.map(|_| Arc::new(workload.clone()));
    // Content keys are only needed when a journal or resume map is in
    // play; the digest is computed once, not per scenario.
    let digest = if config.needs_keys() && cache.is_none() {
        Some(workload_digest(workload))
    } else {
        None
    };
    let key_of = |sc: &Scenario| -> Option<CacheKey> {
        if !config.needs_keys() {
            return None;
        }
        match (cache, digest) {
            (Some(c), _) => Some(c.key_for(sc)),
            (None, Some(d)) => Some(scenario_key(sc, d)),
            (None, None) => None,
        }
    };
    let run_one = |sc: &Scenario| -> ScenarioResult {
        let started = Instant::now();
        let result = supervise_one(
            sc,
            workload,
            arc.as_ref(),
            cache,
            config,
            key_of(sc),
            &metrics,
        );
        metrics
            .wall
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((sc.label.clone(), wall_ms_since(started)));
        result
    };
    let results: Vec<ScenarioResult> = if threads <= 1 {
        scenarios
            .iter()
            .map(|sc| {
                progress(&sc.label);
                run_one(sc)
            })
            .collect()
    } else {
        // Work-stealing by atomic index, mirroring the plain runner:
        // scenario costs are wildly uneven, a static partition would idle
        // most workers.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(sc) = scenarios.get(i) else { break };
                    progress(&sc.label);
                    let r = run_one(sc);
                    *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        Err(ScenarioError::Panic {
                            label: scenarios[i].label.clone(),
                            message: "scenario result missing (worker died)".to_owned(),
                            location: None,
                        })
                    })
            })
            .collect()
    };
    let mut report = HealthReport {
        scenarios: n,
        completed: results.iter().filter(|r| r.is_ok()).count(),
        failed: results.iter().filter(|r| r.is_err()).count(),
        replayed: usize::try_from(metrics.replayed.load(Ordering::Relaxed)).unwrap_or(usize::MAX),
        attempts: metrics.attempts.load(Ordering::Relaxed),
        retries: metrics.retries.load(Ordering::Relaxed),
        timeouts: metrics.timeouts.load(Ordering::Relaxed),
        quarantined: cache
            .map(ScenarioCache::quarantined_keys)
            .unwrap_or_default(),
        slowest: Vec::new(),
    };
    let mut wall = metrics
        .wall
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    // Sort by descending wall time, label as the tiebreak so the report
    // is stable when timings collide at millisecond resolution.
    wall.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    wall.truncate(SLOWEST_KEPT);
    report.slowest = wall;
    (results, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_me;

    fn tmp(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "rvliw-supervisor-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn ok_result(r: &ScenarioResult) -> &MeResult {
        match r {
            Ok(v) => v,
            Err(e) => panic!("expected success, got {e}"),
        }
    }

    #[test]
    fn default_config_matches_plain_runner() {
        let w = Workload::tiny();
        let scenarios = vec![Scenario::orig(), Scenario::a2()];
        let plain = crate::sweep::run_scenario_list(&scenarios, &w, 1, &|_| {});
        let (supervised, health) = run_scenario_list_supervised(
            &scenarios,
            &w,
            1,
            &|_| {},
            None,
            &SupervisorConfig::default(),
        );
        for (a, b) in plain.iter().zip(&supervised) {
            assert_eq!(ok_result(a), ok_result(b));
        }
        assert_eq!(health.scenarios, 2);
        assert_eq!(health.completed, 2);
        assert_eq!(health.attempts, 2);
        assert_eq!(health.retries, 0);
        assert_eq!(health.replayed, 0);
    }

    #[test]
    fn journal_roundtrips_and_resume_replays_without_simulating() {
        let w = Workload::tiny();
        let scenarios = vec![Scenario::orig(), Scenario::a2()];
        let journal_path = tmp("journal").join("run.jsonl");
        let config = SupervisorConfig {
            journal: match Journal::open(&journal_path) {
                Ok(j) => Some(j),
                Err(e) => panic!("journal open failed: {e}"),
            },
            ..SupervisorConfig::default()
        };
        let (first, health) =
            run_scenario_list_supervised(&scenarios, &w, 1, &|_| {}, None, &config);
        assert_eq!(health.completed, 2);
        let replay = match Journal::load(&journal_path) {
            Ok(r) => r,
            Err(e) => panic!("journal load failed: {e}"),
        };
        assert_eq!(replay.len(), 2);
        // Resume: everything replays, nothing simulates.
        let resumed_config = SupervisorConfig {
            resume: replay,
            ..SupervisorConfig::default()
        };
        let (second, health2) =
            run_scenario_list_supervised(&scenarios, &w, 1, &|_| {}, None, &resumed_config);
        assert_eq!(health2.replayed, 2);
        assert_eq!(health2.attempts, 0);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(ok_result(a), ok_result(b));
        }
        let _ = fs::remove_dir_all(journal_path.parent().unwrap_or(Path::new(".")));
    }

    #[test]
    fn journal_skips_err_lines_and_garbage() {
        let dir = tmp("load");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join("mixed.jsonl");
        let w = Workload::tiny();
        let sc = Scenario::a1();
        let good = match run_me(&sc, &w) {
            Ok(r) => r,
            Err(e) => panic!("a1 failed: {e}"),
        };
        let key = scenario_key(&sc, workload_digest(&w));
        let journal = match Journal::open(&path) {
            Ok(j) => j,
            Err(e) => panic!("open failed: {e}"),
        };
        journal.record(&key, &Ok(good.clone()), 1, 7);
        journal.record(
            &key,
            &Err(ScenarioError::TimedOut {
                label: "a1".to_owned(),
                secs: 1,
            }),
            2,
            9,
        );
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => panic!("read failed: {e}"),
        };
        let with_garbage = format!("not json at all\n{text}{{\"schema\":1,\"kind\":\"sce");
        let _ = fs::write(&path, with_garbage);
        let replay = match Journal::load(&path) {
            Ok(r) => r,
            Err(e) => panic!("load failed: {e}"),
        };
        // The ok line survives; the err line, the garbage line and the
        // truncated tail are all skipped.
        assert_eq!(replay.len(), 1);
        assert_eq!(replay.get(&key.hex()).map(|r| r.label.as_str()), Some("A1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_summary_unifies_cache_and_health_lines() {
        assert_eq!(run_summary(None, None), "");
        let counts = CacheCounts {
            hits: 1,
            ..CacheCounts::default()
        };
        let health = HealthReport {
            scenarios: 3,
            completed: 3,
            ..HealthReport::default()
        };
        let both = run_summary(Some(&counts), Some(&health));
        assert!(both.starts_with("cache: hits=1"));
        assert!(both.contains("\nhealth: scenarios=3"));
        let j = health.to_json();
        assert_eq!(j.get("completed").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn watchdog_times_out_a_scenario_that_cannot_finish() {
        let w = Workload::tiny();
        // ORIG on the tiny workload takes well over a millisecond of
        // wall clock; a 0-second deadline must trip the watchdog.
        let scenarios = vec![Scenario::orig()];
        let config = SupervisorConfig {
            timeout: Some(Duration::from_millis(0)),
            ..SupervisorConfig::default()
        };
        let (results, health) =
            run_scenario_list_supervised(&scenarios, &w, 1, &|_| {}, None, &config);
        assert!(matches!(results[0], Err(ScenarioError::TimedOut { .. })));
        assert_eq!(health.timeouts, 1);
        assert_eq!(health.failed, 1);
    }

    #[test]
    fn transient_failures_retry_up_to_the_bound() {
        let w = Workload::tiny();
        // A cycle limit of 1 trips on every attempt: transient, but
        // deterministic — so the supervisor retries the full budget and
        // then reports the failure.
        let scenarios = vec![Scenario::orig().with_cycle_limit(1)];
        let config = SupervisorConfig {
            max_retries: 2,
            ..SupervisorConfig::default()
        };
        let (results, health) =
            run_scenario_list_supervised(&scenarios, &w, 1, &|_| {}, None, &config);
        assert!(results[0].is_err());
        assert_eq!(health.attempts, 3);
        assert_eq!(health.retries, 2);
        assert_eq!(health.failed, 1);
    }
}
