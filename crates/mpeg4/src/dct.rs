//! 8×8 forward and inverse DCT (type-II / type-III), double-precision
//! reference implementation with rounding to integer coefficients.

use std::f64::consts::PI;

/// Block edge.
pub const N: usize = 8;

/// Cosine basis, computed once.
fn basis() -> [[f64; N]; N] {
    let mut c = [[0.0; N]; N];
    for (u, row) in c.iter_mut().enumerate() {
        for (x, v) in row.iter_mut().enumerate() {
            *v = ((2.0 * x as f64 + 1.0) * u as f64 * PI / 16.0).cos();
        }
    }
    c
}

fn alpha(u: usize) -> f64 {
    if u == 0 {
        (1.0f64 / 8.0).sqrt()
    } else {
        (2.0f64 / 8.0).sqrt()
    }
}

/// Forward 8×8 DCT of a residual block (values typically in −255..=255).
/// Coefficients are rounded to the nearest integer.
#[must_use]
pub fn fdct(block: &[i32; 64]) -> [i32; 64] {
    let c = basis();
    let mut out = [0i32; 64];
    for v in 0..N {
        for u in 0..N {
            let mut s = 0.0;
            for y in 0..N {
                for x in 0..N {
                    s += f64::from(block[y * N + x]) * c[u][x] * c[v][y];
                }
            }
            out[v * N + u] = (alpha(u) * alpha(v) * s).round() as i32;
        }
    }
    out
}

/// Inverse 8×8 DCT, rounded to the nearest integer.
#[must_use]
pub fn idct(coefs: &[i32; 64]) -> [i32; 64] {
    let c = basis();
    let mut out = [0i32; 64];
    for y in 0..N {
        for x in 0..N {
            let mut s = 0.0;
            for v in 0..N {
                for u in 0..N {
                    s += alpha(u) * alpha(v) * f64::from(coefs[v * N + u]) * c[u][x] * c[v][y];
                }
            }
            out[y * N + x] = s.round() as i32;
        }
    }
    out
}

/// Fixed-point DCT constants: `round(α(u) · cos((2x+1)uπ/16) · 2^11)`.
///
/// This is the table an integer implementation (e.g. the VLIW kernel in
/// `rvliw-kernels`) uses with 16×32 multiplies; [`fdct_fixed`] is the exact
/// bit-true reference for it.
#[must_use]
pub fn fixed_coeffs() -> [[i32; N]; N] {
    let c = basis();
    let mut out = [[0i32; N]; N];
    for u in 0..N {
        for x in 0..N {
            out[u][x] = (alpha(u) * c[u][x] * 2048.0).round() as i32;
        }
    }
    out
}

/// One fixed-point 1-D pass: `out[u] = (Σ_x coeff[u][x]·input[x] + 2^10) >> 11`.
fn fixed_pass(input: &[i32; N], coeffs: &[[i32; N]; N]) -> [i32; N] {
    let mut out = [0i32; N];
    for (u, o) in out.iter_mut().enumerate() {
        let mut s = 0i32;
        for x in 0..N {
            s += coeffs[u][x] * input[x];
        }
        *o = (s + 1024) >> 11;
    }
    out
}

/// Bit-true fixed-point forward DCT (row pass then column pass, 11-bit
/// scaled constants, round-to-nearest rescale after each pass).
///
/// Differs from the double-precision [`fdct`] by at most a couple of units
/// per coefficient; it exists as the exact semantics the VLIW/RFU DCT
/// kernels implement, so they can be verified bit-for-bit.
#[must_use]
pub fn fdct_fixed(block: &[i32; 64]) -> [i32; 64] {
    let coeffs = fixed_coeffs();
    let mut mid = [0i32; 64];
    // Row pass.
    for y in 0..N {
        let mut row = [0i32; N];
        row.copy_from_slice(&block[y * N..(y + 1) * N]);
        let t = fixed_pass(&row, &coeffs);
        mid[y * N..(y + 1) * N].copy_from_slice(&t);
    }
    // Column pass.
    let mut out = [0i32; 64];
    for u in 0..N {
        let mut col = [0i32; N];
        for y in 0..N {
            col[y] = mid[y * N + u];
        }
        let t = fixed_pass(&col, &coeffs);
        for v in 0..N {
            out[v * N + u] = t[v];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: i32) -> [i32; 64] {
        let mut b = [0i32; 64];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as i32 * 37 + seed * 11) % 255) - 127;
        }
        b
    }

    #[test]
    fn dc_of_flat_block() {
        let block = [96i32; 64];
        let coefs = fdct(&block);
        // DC = 8 * mean = 8 * 96.
        assert_eq!(coefs[0], 8 * 96);
        assert!(coefs[1..].iter().all(|&c| c == 0), "AC of a flat block");
    }

    #[test]
    fn roundtrip_within_rounding_error() {
        for seed in 0..5 {
            let block = sample_block(seed);
            let rec = idct(&fdct(&block));
            for i in 0..64 {
                assert!(
                    (rec[i] - block[i]).abs() <= 1,
                    "seed {seed} idx {i}: {} vs {}",
                    rec[i],
                    block[i]
                );
            }
        }
    }

    #[test]
    fn linearity_of_fdct() {
        let a = sample_block(1);
        let b = sample_block(2);
        let mut sum = [0i32; 64];
        for i in 0..64 {
            sum[i] = a[i] + b[i];
        }
        let ca = fdct(&a);
        let cb = fdct(&b);
        let cs = fdct(&sum);
        for i in 0..64 {
            assert!(
                (cs[i] - ca[i] - cb[i]).abs() <= 2,
                "idx {i}: {} vs {}",
                cs[i],
                ca[i] + cb[i]
            );
        }
    }

    #[test]
    fn fixed_dct_tracks_the_float_reference() {
        for seed in 0..6 {
            let block = sample_block(seed);
            let float = fdct(&block);
            let fixed = fdct_fixed(&block);
            for i in 0..64 {
                assert!(
                    (float[i] - fixed[i]).abs() <= 3,
                    "seed {seed} idx {i}: float {} fixed {}",
                    float[i],
                    fixed[i]
                );
            }
        }
    }

    #[test]
    fn fixed_dct_dc_of_flat_block() {
        let block = [100i32; 64];
        let out = fdct_fixed(&block);
        assert!((out[0] - 800).abs() <= 2, "DC {}", out[0]);
    }

    #[test]
    fn fixed_coeffs_are_11_bit_scaled() {
        let c = fixed_coeffs();
        // α(0)·cos(0)·2048 = 2048/√8 ≈ 724.
        assert_eq!(c[0][0], 724);
        for row in &c {
            for &v in row {
                assert!(v.abs() <= 1024, "coefficient {v} exceeds 2^10 magnitude");
            }
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let block = sample_block(3);
        let coefs = fdct(&block);
        let es: i64 = block.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        let ec: i64 = coefs.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        let ratio = ec as f64 / es as f64;
        assert!((ratio - 1.0).abs() < 0.01, "energy ratio {ratio}");
    }
}
