//! The 8×8 zig-zag scan.

/// The classic zig-zag scan order: `SCAN[k]` is the raster index of the
/// k-th scanned coefficient.
pub const SCAN: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scans a raster-order block into zig-zag order.
#[must_use]
pub fn scan(block: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (k, &idx) in SCAN.iter().enumerate() {
        out[k] = block[idx];
    }
    out
}

/// Inverse: places zig-zag-ordered values back into raster order.
#[must_use]
pub fn unscan(zz: &[i32; 64]) -> [i32; 64] {
    let mut out = [0i32; 64];
    for (k, &idx) in SCAN.iter().enumerate() {
        out[idx] = zz[k];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scan_is_a_permutation() {
        let set: HashSet<usize> = SCAN.iter().copied().collect();
        assert_eq!(set.len(), 64);
        assert!(SCAN.iter().all(|&i| i < 64));
    }

    #[test]
    fn scan_unscan_roundtrip() {
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = i as i32 * 3 - 50;
        }
        assert_eq!(unscan(&scan(&block)), block);
    }

    #[test]
    fn first_entries_follow_the_diagonal() {
        assert_eq!(&SCAN[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(SCAN[63], 63);
    }

    #[test]
    fn scan_orders_low_frequencies_first() {
        // A block with energy only in the top-left 2×2 must have all its
        // nonzeros within the first 5 scanned positions.
        let mut block = [0i32; 64];
        block[0] = 5;
        block[1] = 4;
        block[8] = 3;
        block[9] = 2;
        let zz = scan(&block);
        assert!(zz[..5].iter().filter(|&&v| v != 0).count() == 4);
        assert!(zz[5..].iter().all(|&v| v == 0));
    }
}
