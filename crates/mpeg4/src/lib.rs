#![warn(missing_docs)]
//! # mpeg4-enc
//!
//! MPEG-4 simple-profile encoder substrate for the reconfigurable-VLIW case
//! study.
//!
//! The paper benchmarks the motion-estimation stage of an MPEG-4 video
//! encoder (the MoMuSys reference code) on a 25-frame QCIF *Foreman*
//! sequence with fixed quantizer Q = 10. Neither the reference C code nor
//! the Foreman sequence can be redistributed here, so this crate implements
//! the encoder from the ISO/IEC 14496-2 algorithm descriptions and generates
//! a **deterministic synthetic QCIF sequence** with comparable motion
//! statistics (global pan + local object motion + texture), tuned so that
//! the diagonal half-sample interpolation is selected in ≈18 % of `GetSad`
//! calls — the property the paper reports for its test sequence.
//!
//! Everything needed by a simple-profile encoder is here and runs as
//! host-side "golden" code:
//!
//! * [`types`] — planes, frames, macroblocks, half-sample motion vectors;
//! * [`synth`] — the synthetic sequence generator (Foreman substitute);
//! * [`sad`] — SAD and exact half-sample interpolation (the `GetSad` golden
//!   model the VLIW kernels are verified against);
//! * [`me`] — motion-estimation search algorithms (full search, three-step,
//!   diamond, spiral) with half-sample refinement, each producing the exact
//!   trace of `GetSad` calls that drives the simulator;
//! * [`dct`] / [`quant`] / [`zigzag`] / [`rlc`] / [`bitstream`] — texture
//!   coding: 8×8 DCT, H.263-style quantization, zig-zag scan, run-level
//!   coding and an exp-Golomb entropy layer;
//! * [`mc`] — half-sample motion compensation and reconstruction;
//! * [`encoder`] — the I/P encoding loop with in-loop reconstruction
//!   (candidates are searched in the *reconstructed* previous frame, as in
//!   the reference encoder);
//! * [`footprint`] — the Figure 2 rendering of a predictor macroblock's
//!   packed-word data set.

pub mod bitstream;
pub mod dct;
pub mod decoder;
pub mod encoder;
pub mod footprint;
pub mod huffman;
pub mod mc;
pub mod me;
pub mod psnr;
pub mod quality;
pub mod quant;
pub mod rlc;
pub mod sad;
pub mod synth;
pub mod types;
pub mod zigzag;

pub use decoder::{decode, DecoderConfig};
pub use encoder::{EncodeReport, Encoder, EncoderConfig, FrameReport};
pub use me::{MotionSearch, SadCall, SearchAlgorithm};
pub use quality::QualityMetrics;
pub use sad::{get_sad_approx, interp_mode_of, ApproxSad, InterpKind};
pub use synth::SyntheticSequence;
pub use types::{Frame, Mv, Plane};

/// Macroblock edge in pixels.
pub const MB: usize = 16;
/// QCIF luma width.
pub const QCIF_W: usize = 176;
/// QCIF luma height.
pub const QCIF_H: usize = 144;
