//! Half-sample motion compensation and block reconstruction.

use crate::sad::{interp_mode_of, pred_pixel};
use crate::types::{Mv, Plane};
use crate::MB;

/// Builds the 16×16 luma prediction for macroblock `(mbx, mby)` from the
/// reference plane and motion vector `mv` (half-sample units).
///
/// # Panics
///
/// Panics when the motion-compensated block leaves the reference plane.
#[must_use]
pub fn predict_mb(prev: &Plane, mbx: usize, mby: usize, mv: Mv) -> [u8; MB * MB] {
    let kind = interp_mode_of(mv);
    let (ix, iy) = mv.int_part();
    let cx = (mbx * MB) as isize + isize::from(ix);
    let cy = (mby * MB) as isize + isize::from(iy);
    assert!(
        crate::sad::candidate_fits(prev, cx, cy, kind),
        "MC block ({cx},{cy}) leaves the reference plane"
    );
    let (cx, cy) = (cx as usize, cy as usize);
    let mut out = [0u8; MB * MB];
    for y in 0..MB {
        for x in 0..MB {
            out[y * MB + x] = pred_pixel(prev, cx + x, cy + y, kind);
        }
    }
    out
}

/// Chroma motion compensation: the luma vector divided by two with MPEG-4
/// rounding (towards the nearest half-sample position).
#[must_use]
pub fn chroma_mv(luma: Mv) -> Mv {
    // MPEG-4: chroma MV components are luma/2, rounded so that half-sample
    // positions are preferred (1/4 and 3/4 both map to 1/2).
    let round = |v: i16| -> i16 {
        let q = v.div_euclid(2);
        let r = v.rem_euclid(2);
        if r == 0 {
            q
        } else {
            // v/2 ends in .5 ⇒ keep the half-sample.
            if q % 2 == 0 {
                q + 1
            } else {
                q
            }
        }
    };
    Mv::new(round(luma.x), round(luma.y))
}

/// Adds a residual to a prediction, clamping to 0..=255, and writes the
/// result into `plane` at macroblock `(mbx, mby)`.
pub fn reconstruct_mb(
    plane: &mut Plane,
    mbx: usize,
    mby: usize,
    pred: &[u8; MB * MB],
    residual: &[i32; MB * MB],
) {
    for y in 0..MB {
        for x in 0..MB {
            let v = i32::from(pred[y * MB + x]) + residual[y * MB + x];
            plane.set(mbx * MB + x, mby * MB + y, v.clamp(0, 255) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, ((x * 5 + y * 11) % 256) as u8);
            }
        }
        p
    }

    #[test]
    fn zero_mv_prediction_copies_block() {
        let prev = ramp(64, 64);
        let pred = predict_mb(&prev, 1, 1, Mv::default());
        for y in 0..MB {
            for x in 0..MB {
                assert_eq!(pred[y * MB + x], prev.at(16 + x, 16 + y));
            }
        }
    }

    #[test]
    fn integer_mv_prediction_shifts() {
        let prev = ramp(64, 64);
        let pred = predict_mb(&prev, 1, 1, Mv::from_int(3, -2));
        assert_eq!(pred[0], prev.at(19, 14));
    }

    #[test]
    fn half_mv_prediction_interpolates() {
        let prev = ramp(64, 64);
        let pred = predict_mb(&prev, 1, 1, Mv::new(1, 0));
        let expect = (u16::from(prev.at(16, 16)) + u16::from(prev.at(17, 16)) + 1) >> 1;
        assert_eq!(u16::from(pred[0]), expect);
    }

    #[test]
    fn reconstruct_clamps_to_byte_range() {
        let mut plane = Plane::new(32, 32);
        let pred = [250u8; MB * MB];
        let mut residual = [20i32; MB * MB];
        residual[0] = -300;
        reconstruct_mb(&mut plane, 0, 0, &pred, &residual);
        assert_eq!(plane.at(0, 0), 0);
        assert_eq!(plane.at(1, 0), 255);
    }

    #[test]
    fn chroma_mv_halving_rule() {
        assert_eq!(chroma_mv(Mv::new(4, -4)), Mv::new(2, -2)); // 2.0 px -> 1.0
        assert_eq!(chroma_mv(Mv::new(2, 6)), Mv::new(1, 3)); // 1.0 -> 0.5
        assert_eq!(chroma_mv(Mv::new(3, 0)), Mv::new(1, 0)); // 1.5 -> 0.75 -> 0.5
        assert_eq!(chroma_mv(Mv::new(1, 1)), Mv::new(1, 1)); // 0.5 -> 0.25 -> 0.5
    }
}
