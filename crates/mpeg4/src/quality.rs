//! Quality metrics for approximate motion estimation.
//!
//! An approximate SAD (or a cheaper search) picks motion vectors that an
//! exact full search might not. The two numbers reported here quantify
//! that gap against a *golden* encode of the same source frames — the
//! exhaustive full-search, exact-SAD encoder:
//!
//! * **SAD inflation** — the ratio of the exact SADs of the chosen motion
//!   field to the golden encode's, minus one. `0.0` means the approximate
//!   encoder picked an equally good motion field; `0.02` means its
//!   residuals carry 2 % more absolute error into the DCT stage.
//! * **PSNR delta** — golden mean luma PSNR minus the approximate
//!   encode's, in dB. Positive values are quality lost to approximation.
//!
//! Both encodes run over the *same* source frames; each motion field is
//! re-scored with the **exact** SAD against that encode's own
//! reconstructed reference frames, so the approximation error in the
//! metric itself is zero.

use crate::encoder::EncodeReport;
use crate::sad::{get_sad, interp_mode_of};
use crate::types::Frame;
use crate::MB;

/// Speed-vs-quality numbers for one approximate encode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    /// Exact-SAD cost of the chosen motion field relative to the golden
    /// full-search encode: `cost / golden_cost - 1`. Exactly `0.0` when
    /// the motion fields cost the same.
    pub sad_inflation: f64,
    /// Golden mean luma PSNR minus this encode's, in dB (positive =
    /// quality lost).
    pub psnr_delta_db: f64,
}

impl QualityMetrics {
    /// Compares an (possibly approximate) encode of `frames` against the
    /// golden full-search encode of the same frames.
    #[must_use]
    pub fn compare(frames: &[Frame], approx: &EncodeReport, golden: &EncodeReport) -> Self {
        let cost = motion_field_cost(frames, approx);
        let golden_cost = motion_field_cost(frames, golden);
        let sad_inflation = if cost == golden_cost {
            0.0 // identical cost is exactly zero inflation, no float noise
        } else if golden_cost == 0 {
            f64::INFINITY
        } else {
            cost as f64 / golden_cost as f64 - 1.0
        };
        QualityMetrics {
            sad_inflation,
            psnr_delta_db: golden.mean_psnr_y() - approx.mean_psnr_y(),
        }
    }
}

/// Sums the **exact** SAD of every chosen motion vector in `report`,
/// scored against the encode's own reconstructed reference frames (the
/// same references the encoder predicted from).
///
/// The mapping from a motion vector to a `GetSad` candidate mirrors the
/// search's own bookkeeping: the interpolation kind comes from the
/// half-sample flags and the candidate origin from the integer part.
#[must_use]
pub fn motion_field_cost(frames: &[Frame], report: &EncodeReport) -> u64 {
    let mut total = 0u64;
    for (t, fr) in report.frames.iter().enumerate() {
        if fr.motion.is_empty() {
            continue; // intra frame: no motion field
        }
        let (Some(cur), Some(prev)) = (frames.get(t), report.recon.get(t.wrapping_sub(1))) else {
            continue;
        };
        for mb in &fr.motion {
            let kind = interp_mode_of(mb.mv);
            let (ix, iy) = mb.mv.int_part();
            let cx = (mb.mbx * MB).wrapping_add_signed(isize::from(ix));
            let cy = (mb.mby * MB).wrapping_add_signed(isize::from(iy));
            total += u64::from(get_sad(
                &cur.y,
                mb.mbx * MB,
                mb.mby * MB,
                &prev.y,
                cx,
                cy,
                kind,
            ));
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig};
    use crate::me::{MotionSearch, SearchAlgorithm};
    use crate::sad::ApproxSad;
    use crate::synth::SyntheticSequence;

    fn encode_with(
        frames: &[Frame],
        algorithm: SearchAlgorithm,
        approx: ApproxSad,
    ) -> EncodeReport {
        Encoder::new(EncoderConfig {
            q: 10,
            search: MotionSearch {
                algorithm,
                half_sample: true,
                approx,
            },
        })
        .encode(frames)
    }

    fn golden(frames: &[Frame]) -> EncodeReport {
        encode_with(frames, SearchAlgorithm::Full { range: 8 }, ApproxSad::Exact)
    }

    #[test]
    fn exact_full_search_has_zero_inflation_and_zero_delta() {
        let frames = SyntheticSequence::new(64, 48, 3, 7).generate();
        let g = golden(&frames);
        let again = golden(&frames);
        let q = QualityMetrics::compare(&frames, &again, &g);
        assert_eq!(q.sad_inflation, 0.0);
        assert_eq!(q.psnr_delta_db, 0.0);
    }

    #[test]
    fn approx_modes_have_non_negative_inflation() {
        let frames = SyntheticSequence::new(64, 48, 3, 7).generate();
        let g = golden(&frames);
        for approx in [
            ApproxSad::SubsampledRows { step: 2 },
            ApproxSad::SubsampledRows { step: 4 },
            ApproxSad::ReducedPrecision { bits: 2 },
            ApproxSad::EarlyExit { threshold: 1024 },
        ] {
            let r = encode_with(&frames, SearchAlgorithm::Full { range: 8 }, approx);
            let q = QualityMetrics::compare(&frames, &r, &g);
            assert!(
                q.sad_inflation >= 0.0,
                "{approx:?}: inflation {}",
                q.sad_inflation
            );
        }
    }

    #[test]
    fn cheaper_searches_have_non_negative_inflation() {
        let frames = SyntheticSequence::new(64, 48, 3, 7).generate();
        let g = golden(&frames);
        for algorithm in [
            SearchAlgorithm::Diamond,
            SearchAlgorithm::ThreeStep,
            SearchAlgorithm::Spiral {
                range: 8,
                threshold: 256,
            },
        ] {
            let r = encode_with(&frames, algorithm, ApproxSad::Exact);
            let q = QualityMetrics::compare(&frames, &r, &g);
            assert!(
                q.sad_inflation >= 0.0,
                "{algorithm:?}: inflation {}",
                q.sad_inflation
            );
        }
    }
}
