//! Deterministic synthetic QCIF sequence — the Foreman substitute.
//!
//! The generator composes, per frame:
//!
//! * a smooth textured background (sum of low-frequency sinusoids plus a
//!   fixed-pattern texture) that **pans globally** with a slowly varying
//!   sub-pixel velocity — this is what makes half-sample (including
//!   diagonal) predictors win for a realistic share of macroblocks;
//! * a few textured **foreground objects** moving with their own sub-pixel
//!   velocities (head-and-shoulders-like local motion);
//! * mild deterministic per-pixel noise (sensor grain), so SADs are never
//!   degenerate zeros.
//!
//! Everything is seeded and reproducible; two calls with the same
//! parameters yield identical sequences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{Frame, Plane};
use crate::{QCIF_H, QCIF_W};

/// A deterministic synthetic video source.
#[derive(Debug, Clone)]
pub struct SyntheticSequence {
    width: usize,
    height: usize,
    frames: usize,
    seed: u64,
}

impl SyntheticSequence {
    /// The case-study default: 25 QCIF frames, the paper's sequence length.
    #[must_use]
    pub fn qcif_25() -> Self {
        SyntheticSequence::new(QCIF_W, QCIF_H, 25, 0x4652_4d4e) // "FRMN"
    }

    /// A custom source.
    ///
    /// # Panics
    ///
    /// Panics unless dimensions are multiples of 16.
    #[must_use]
    pub fn new(width: usize, height: usize, frames: usize, seed: u64) -> Self {
        assert!(
            width.is_multiple_of(16) && height.is_multiple_of(16),
            "whole macroblocks"
        );
        SyntheticSequence {
            width,
            height,
            frames,
            seed,
        }
    }

    /// Number of frames this source generates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames
    }

    /// Whether the source is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Generates all frames.
    #[must_use]
    pub fn generate(&self) -> Vec<Frame> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Object parameters: position, velocity (sub-pixel), size, texture
        // phase. Velocities are fractional so interpolated predictors win.
        let mut objects: Vec<ObjectState> = (0..3)
            .map(|i| ObjectState {
                x: rng.gen_range(0.1..0.7) * self.width as f64,
                y: rng.gen_range(0.1..0.7) * self.height as f64,
                vx: rng.gen_range(-1.4..1.4),
                vy: rng.gen_range(-1.1..1.1),
                w: rng.gen_range(24.0..56.0),
                h: rng.gen_range(24.0..56.0),
                phase: f64::from(i as u8) * 1.7 + rng.gen_range(0.0..1.0),
            })
            .collect();
        // Global pan velocity drifts slowly; amplitudes chosen so that both
        // integer and half-sample displacements occur between frames.
        let mut pan_x = 0.0f64;
        let mut pan_y = 0.0f64;
        let mut pan_vx = rng.gen_range(0.4..1.2);
        let mut pan_vy = rng.gen_range(-0.6..0.2);

        let mut frames = Vec::with_capacity(self.frames);
        for t in 0..self.frames {
            let frame = self.render(t, pan_x, pan_y, &objects, self.seed);
            frames.push(frame);
            // Advance motion state.
            pan_x += pan_vx;
            pan_y += pan_vy;
            pan_vx += rng.gen_range(-0.15..0.15);
            pan_vy += rng.gen_range(-0.15..0.15);
            pan_vx = pan_vx.clamp(-1.6, 1.6);
            pan_vy = pan_vy.clamp(-1.2, 1.2);
            for o in &mut objects {
                o.x += o.vx;
                o.y += o.vy;
                // Bounce softly off the frame edges.
                if o.x < -o.w * 0.5 || o.x > self.width as f64 - o.w * 0.5 {
                    o.vx = -o.vx;
                }
                if o.y < -o.h * 0.5 || o.y > self.height as f64 - o.h * 0.5 {
                    o.vy = -o.vy;
                }
            }
        }
        frames
    }

    /// Renders one frame at the given global pan offset.
    fn render(
        &self,
        t: usize,
        pan_x: f64,
        pan_y: f64,
        objects: &[ObjectState],
        seed: u64,
    ) -> Frame {
        let mut frame = Frame::new(self.width, self.height);
        let mut luma = Plane::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let wx = x as f64 + pan_x;
                let wy = y as f64 + pan_y;
                let mut v = background(wx, wy);
                for o in objects {
                    if (wx - o.x - pan_x).abs() < o.w * 0.5 && (wy - o.y - pan_y).abs() < o.h * 0.5
                    {
                        // The object's own texture, anchored to the object
                        // so it moves with it.
                        let ox = wx - o.x - pan_x;
                        let oy = wy - o.y - pan_y;
                        v = object_texture(ox, oy, o.phase);
                    }
                }
                // Deterministic grain: a cheap hash of (x, y, t, seed).
                let g = grain(x as u64, y as u64, t as u64, seed);
                let v = (v + g).clamp(0.0, 255.0);
                luma.set(x, y, v as u8);
            }
        }
        frame.y = luma;
        // Chroma: smooth gradients that follow the pan (little detail, as
        // in natural video).
        for y in 0..self.height / 2 {
            for x in 0..self.width / 2 {
                let wx = x as f64 * 2.0 + pan_x;
                let wy = y as f64 * 2.0 + pan_y;
                let u = 128.0 + 24.0 * ((wx * 0.011).sin() + (wy * 0.017).cos());
                let v = 128.0 + 24.0 * ((wx * 0.013).cos() - (wy * 0.009).sin());
                frame.u.set(x, y, u.clamp(0.0, 255.0) as u8);
                frame.v.set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        frame
    }
}

#[derive(Debug, Clone)]
struct ObjectState {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    w: f64,
    h: f64,
    phase: f64,
}

/// Smooth, pan-anchored background luminance.
fn background(x: f64, y: f64) -> f64 {
    120.0
        + 40.0 * (x * 0.041).sin() * (y * 0.035).cos()
        + 22.0 * (x * 0.013 + y * 0.022).sin()
        + 12.0 * ((x * 0.31).sin() * (y * 0.27).sin())
}

/// Foreground object texture (higher spatial frequency than background).
fn object_texture(ox: f64, oy: f64, phase: f64) -> f64 {
    140.0
        + 50.0 * ((ox * 0.23 + phase).sin() * (oy * 0.19 - phase).cos())
        + 18.0 * (ox * 0.07 + oy * 0.11).sin()
}

/// Deterministic grain in [-3, +3].
fn grain(x: u64, y: u64, t: u64, seed: u64) -> f64 {
    let mut h = x
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(y.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(t.wrapping_mul(0x94d0_49bb_1331_11eb))
        .wrapping_add(seed);
    h ^= h >> 31;
    h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
    h ^= h >> 29;
    ((h % 7) as f64) - 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = SyntheticSequence::new(64, 48, 3, 42).generate();
        let b = SyntheticSequence::new(64, 48, 3, 42).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSequence::new(64, 48, 2, 1).generate();
        let b = SyntheticSequence::new(64, 48, 2, 2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn qcif_defaults() {
        let s = SyntheticSequence::qcif_25();
        assert_eq!(s.len(), 25);
        let frames = s.generate();
        assert_eq!(frames.len(), 25);
        assert_eq!(frames[0].width(), 176);
        assert_eq!(frames[0].height(), 144);
    }

    #[test]
    fn frames_actually_move() {
        let frames = SyntheticSequence::new(64, 48, 2, 7).generate();
        let diff: u64 = frames[0]
            .y
            .data()
            .iter()
            .zip(frames[1].y.data())
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum();
        // Motion plus grain: the frames must differ substantially.
        assert!(diff > 1000, "inter-frame difference {diff}");
    }

    #[test]
    fn luma_covers_a_wide_range() {
        let frames = SyntheticSequence::new(64, 48, 1, 3).generate();
        let min = frames[0].y.data().iter().copied().min().unwrap();
        let max = frames[0].y.data().iter().copied().max().unwrap();
        assert!(max - min > 60, "dynamic range {min}..{max}");
    }
}
