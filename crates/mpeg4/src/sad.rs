//! `GetSad`: sum of absolute differences with exact half-sample
//! interpolation — the golden model every VLIW kernel is verified against.

use crate::types::{Mv, Plane};
use crate::MB;

/// Half-sample interpolation kind of a candidate predictor (the paper's
/// "no / horizontal / vertical / diagonal interpolation" cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpKind {
    /// Integer-sample candidate.
    #[default]
    None,
    /// Horizontal half-sample.
    H,
    /// Vertical half-sample.
    V,
    /// Diagonal half-sample (both components odd).
    Diag,
}

impl InterpKind {
    /// Columns of predictor pixels needed (16 or 17).
    #[must_use]
    pub fn cols(self) -> usize {
        MB + usize::from(matches!(self, InterpKind::H | InterpKind::Diag))
    }

    /// Rows of predictor pixels needed (16 or 17).
    #[must_use]
    pub fn rows(self) -> usize {
        MB + usize::from(matches!(self, InterpKind::V | InterpKind::Diag))
    }
}

/// The interpolation kind selected by a motion vector's half-sample flags.
#[must_use]
pub fn interp_mode_of(mv: Mv) -> InterpKind {
    match mv.half_flags() {
        (false, false) => InterpKind::None,
        (true, false) => InterpKind::H,
        (false, true) => InterpKind::V,
        (true, true) => InterpKind::Diag,
    }
}

/// One interpolated predictor pixel at integer position `(x, y)` of the
/// reference plane (rounding control 0, as in the case study).
///
/// # Panics
///
/// Panics when the required neighborhood leaves the plane.
#[must_use]
pub fn pred_pixel(plane: &Plane, x: usize, y: usize, kind: InterpKind) -> u8 {
    let p = |dx: usize, dy: usize| u16::from(plane.at(x + dx, y + dy));
    (match kind {
        InterpKind::None => p(0, 0),
        InterpKind::H => (p(0, 0) + p(1, 0) + 1) >> 1,
        InterpKind::V => (p(0, 0) + p(0, 1) + 1) >> 1,
        InterpKind::Diag => (p(0, 0) + p(1, 0) + p(0, 1) + p(1, 1) + 2) >> 2,
    }) as u8
}

/// `GetSad`: SAD between the 16×16 reference block at `(rx, ry)` of `cur`
/// and the (possibly interpolated) candidate at integer position `(cx, cy)`
/// of `prev`.
///
/// # Panics
///
/// Panics when either block (including the interpolation border) leaves its
/// plane.
#[must_use]
pub fn get_sad(
    cur: &Plane,
    rx: usize,
    ry: usize,
    prev: &Plane,
    cx: usize,
    cy: usize,
    kind: InterpKind,
) -> u32 {
    let mut sad = 0u32;
    for y in 0..MB {
        for x in 0..MB {
            let r = cur.at(rx + x, ry + y);
            let p = pred_pixel(prev, cx + x, cy + y, kind);
            sad += u32::from(r.abs_diff(p));
        }
    }
    sad
}

/// An approximate-SAD mode: trade SAD fidelity for kernel cycles. The
/// scalar semantics here are the golden model; the VLIW kernels and the
/// RFU loop implement exactly the same arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ApproxSad {
    /// The exact SAD (the paper's baseline).
    #[default]
    Exact,
    /// Sum only rows `0, step, 2·step, …` of the block.
    SubsampledRows {
        /// Row step; a power of two in `{2, 4}`.
        step: u8,
    },
    /// Mask the `bits` low bits of every reference and (interpolated)
    /// predictor pixel before the absolute difference.
    ReducedPrecision {
        /// Low bits dropped per pixel (`1..=4`).
        bits: u8,
    },
    /// Accumulate full rows in order and stop as soon as the running SAD
    /// exceeds `threshold` (the partial sum is returned).
    EarlyExit {
        /// The abort threshold.
        threshold: u32,
    },
}

impl ApproxSad {
    /// Whether this is the exact mode.
    #[must_use]
    pub fn is_exact(self) -> bool {
        self == ApproxSad::Exact
    }

    /// The per-pixel byte mask (`0xFF` except for
    /// [`ApproxSad::ReducedPrecision`]).
    #[must_use]
    pub fn pixel_mask(self) -> u8 {
        match self {
            ApproxSad::ReducedPrecision { bits } => !((1u8 << bits.min(7)) - 1),
            _ => 0xFF,
        }
    }

    /// The row step (1 except for [`ApproxSad::SubsampledRows`]).
    #[must_use]
    pub fn row_step(self) -> usize {
        match self {
            ApproxSad::SubsampledRows { step } => usize::from(step.max(1)),
            _ => 1,
        }
    }
}

/// [`get_sad`] under an approximation mode. `ApproxSad::Exact` is
/// bit-identical to [`get_sad`].
///
/// # Panics
///
/// As for [`get_sad`].
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors `get_sad` plus the mode
pub fn get_sad_approx(
    cur: &Plane,
    rx: usize,
    ry: usize,
    prev: &Plane,
    cx: usize,
    cy: usize,
    kind: InterpKind,
    approx: ApproxSad,
) -> u32 {
    let mask = approx.pixel_mask();
    let mut sad = 0u32;
    let mut y = 0;
    while y < MB {
        for x in 0..MB {
            let r = cur.at(rx + x, ry + y) & mask;
            let p = pred_pixel(prev, cx + x, cy + y, kind) & mask;
            sad += u32::from(r.abs_diff(p));
        }
        if let ApproxSad::EarlyExit { threshold } = approx {
            if sad > threshold {
                return sad;
            }
        }
        y += approx.row_step();
    }
    sad
}

/// Whether a candidate at integer position `(cx, cy)` with interpolation
/// `kind` fits inside `plane`.
#[must_use]
pub fn candidate_fits(plane: &Plane, cx: isize, cy: isize, kind: InterpKind) -> bool {
    cx >= 0
        && cy >= 0
        && (cx as usize) + kind.cols() <= plane.width()
        && (cy as usize) + kind.rows() <= plane.height()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, ((x * 3 + y * 7) % 251) as u8);
            }
        }
        p
    }

    #[test]
    fn sad_of_identical_blocks_is_zero() {
        let p = ramp(64, 64);
        assert_eq!(get_sad(&p, 8, 8, &p, 8, 8, InterpKind::None), 0);
    }

    #[test]
    fn sad_positive_for_shifted_block() {
        let p = ramp(64, 64);
        assert!(get_sad(&p, 8, 8, &p, 9, 8, InterpKind::None) > 0);
    }

    #[test]
    fn interp_mode_from_mv_flags() {
        assert_eq!(interp_mode_of(Mv::new(2, 4)), InterpKind::None);
        assert_eq!(interp_mode_of(Mv::new(3, 4)), InterpKind::H);
        assert_eq!(interp_mode_of(Mv::new(2, 5)), InterpKind::V);
        assert_eq!(interp_mode_of(Mv::new(-1, 1)), InterpKind::Diag);
    }

    #[test]
    fn pred_pixel_rounding_matches_mpeg4() {
        let mut p = Plane::new(4, 4);
        p.set(0, 0, 10);
        p.set(1, 0, 11);
        p.set(0, 1, 20);
        p.set(1, 1, 21);
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::None), 10);
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::H), 11); // (21+1)>>1
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::V), 15); // (30+1)>>1
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::Diag), 16); // (62+2)>>2
    }

    #[test]
    fn footprint_dimensions_per_kind() {
        assert_eq!((InterpKind::None.cols(), InterpKind::None.rows()), (16, 16));
        assert_eq!((InterpKind::H.cols(), InterpKind::H.rows()), (17, 16));
        assert_eq!((InterpKind::V.cols(), InterpKind::V.rows()), (16, 17));
        assert_eq!((InterpKind::Diag.cols(), InterpKind::Diag.rows()), (17, 17));
    }

    #[test]
    fn candidate_fits_respects_interpolation_border() {
        let p = Plane::new(32, 32);
        assert!(candidate_fits(&p, 16, 16, InterpKind::None));
        assert!(!candidate_fits(&p, 16, 16, InterpKind::Diag));
        assert!(candidate_fits(&p, 15, 15, InterpKind::Diag));
        assert!(!candidate_fits(&p, -1, 0, InterpKind::None));
    }

    #[test]
    fn exact_approx_mode_matches_get_sad() {
        let p = ramp(64, 64);
        for kind in [
            InterpKind::None,
            InterpKind::H,
            InterpKind::V,
            InterpKind::Diag,
        ] {
            assert_eq!(
                get_sad_approx(&p, 8, 8, &p, 9, 10, kind, ApproxSad::Exact),
                get_sad(&p, 8, 8, &p, 9, 10, kind),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn approx_modes_never_exceed_the_exact_sad() {
        let p = ramp(64, 64);
        for kind in [
            InterpKind::None,
            InterpKind::H,
            InterpKind::V,
            InterpKind::Diag,
        ] {
            let exact = get_sad(&p, 8, 8, &p, 11, 9, kind);
            for approx in [
                ApproxSad::SubsampledRows { step: 2 },
                ApproxSad::SubsampledRows { step: 4 },
                ApproxSad::EarlyExit { threshold: 100 },
                ApproxSad::EarlyExit { threshold: 0 },
            ] {
                let a = get_sad_approx(&p, 8, 8, &p, 11, 9, kind, approx);
                assert!(a <= exact, "{kind:?} {approx:?}: {a} > {exact}");
            }
        }
    }

    #[test]
    fn early_exit_is_exact_or_above_threshold() {
        let p = ramp(64, 64);
        for threshold in [0u32, 50, 500, 5000, u32::MAX] {
            let exact = get_sad(&p, 8, 8, &p, 12, 13, InterpKind::None);
            let a = get_sad_approx(
                &p,
                8,
                8,
                &p,
                12,
                13,
                InterpKind::None,
                ApproxSad::EarlyExit { threshold },
            );
            assert!(a == exact || a > threshold, "t={threshold}: {a} vs {exact}");
        }
    }

    #[test]
    fn reduced_precision_masks_both_operands() {
        let mut cur = Plane::new(32, 32);
        let mut prev = Plane::new(32, 32);
        // Differences live entirely in the low 2 bits: masking them away
        // must null the SAD.
        for y in 0..32 {
            for x in 0..32 {
                cur.set(x, y, 0x40 | ((x as u8) & 3));
                prev.set(x, y, 0x40 | ((y as u8) & 3));
            }
        }
        assert_eq!(
            get_sad_approx(
                &cur,
                0,
                0,
                &prev,
                0,
                0,
                InterpKind::None,
                ApproxSad::ReducedPrecision { bits: 2 }
            ),
            0
        );
        assert!(get_sad(&cur, 0, 0, &prev, 0, 0, InterpKind::None) > 0);
    }

    #[test]
    fn subsampled_rows_sum_only_sampled_rows() {
        let p = ramp(64, 64);
        let mut manual = 0u32;
        for y in (0..MB).step_by(4) {
            for x in 0..MB {
                let r = p.at(8 + x, 8 + y);
                let q = pred_pixel(&p, 9 + x, 10 + y, InterpKind::Diag);
                manual += u32::from(r.abs_diff(q));
            }
        }
        assert_eq!(
            get_sad_approx(
                &p,
                8,
                8,
                &p,
                9,
                10,
                InterpKind::Diag,
                ApproxSad::SubsampledRows { step: 4 }
            ),
            manual
        );
    }

    #[test]
    fn diag_sad_uses_all_four_neighbours() {
        let mut prev = Plane::new(40, 40);
        let mut cur = Plane::new(40, 40);
        for y in 0..40 {
            for x in 0..40 {
                prev.set(x, y, ((x + y) % 256) as u8);
            }
        }
        // Build cur as the exact diagonal interpolation of prev at (4, 4):
        // the SAD must then be exactly zero.
        for y in 0..16 {
            for x in 0..16 {
                cur.set(
                    x + 8,
                    y + 8,
                    pred_pixel(&prev, x + 4, y + 4, InterpKind::Diag),
                );
            }
        }
        assert_eq!(get_sad(&cur, 8, 8, &prev, 4, 4, InterpKind::Diag), 0);
    }
}
