//! `GetSad`: sum of absolute differences with exact half-sample
//! interpolation — the golden model every VLIW kernel is verified against.

use crate::types::{Mv, Plane};
use crate::MB;

/// Half-sample interpolation kind of a candidate predictor (the paper's
/// "no / horizontal / vertical / diagonal interpolation" cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpKind {
    /// Integer-sample candidate.
    #[default]
    None,
    /// Horizontal half-sample.
    H,
    /// Vertical half-sample.
    V,
    /// Diagonal half-sample (both components odd).
    Diag,
}

impl InterpKind {
    /// Columns of predictor pixels needed (16 or 17).
    #[must_use]
    pub fn cols(self) -> usize {
        MB + usize::from(matches!(self, InterpKind::H | InterpKind::Diag))
    }

    /// Rows of predictor pixels needed (16 or 17).
    #[must_use]
    pub fn rows(self) -> usize {
        MB + usize::from(matches!(self, InterpKind::V | InterpKind::Diag))
    }
}

/// The interpolation kind selected by a motion vector's half-sample flags.
#[must_use]
pub fn interp_mode_of(mv: Mv) -> InterpKind {
    match mv.half_flags() {
        (false, false) => InterpKind::None,
        (true, false) => InterpKind::H,
        (false, true) => InterpKind::V,
        (true, true) => InterpKind::Diag,
    }
}

/// One interpolated predictor pixel at integer position `(x, y)` of the
/// reference plane (rounding control 0, as in the case study).
///
/// # Panics
///
/// Panics when the required neighborhood leaves the plane.
#[must_use]
pub fn pred_pixel(plane: &Plane, x: usize, y: usize, kind: InterpKind) -> u8 {
    let p = |dx: usize, dy: usize| u16::from(plane.at(x + dx, y + dy));
    (match kind {
        InterpKind::None => p(0, 0),
        InterpKind::H => (p(0, 0) + p(1, 0) + 1) >> 1,
        InterpKind::V => (p(0, 0) + p(0, 1) + 1) >> 1,
        InterpKind::Diag => (p(0, 0) + p(1, 0) + p(0, 1) + p(1, 1) + 2) >> 2,
    }) as u8
}

/// `GetSad`: SAD between the 16×16 reference block at `(rx, ry)` of `cur`
/// and the (possibly interpolated) candidate at integer position `(cx, cy)`
/// of `prev`.
///
/// # Panics
///
/// Panics when either block (including the interpolation border) leaves its
/// plane.
#[must_use]
pub fn get_sad(
    cur: &Plane,
    rx: usize,
    ry: usize,
    prev: &Plane,
    cx: usize,
    cy: usize,
    kind: InterpKind,
) -> u32 {
    let mut sad = 0u32;
    for y in 0..MB {
        for x in 0..MB {
            let r = cur.at(rx + x, ry + y);
            let p = pred_pixel(prev, cx + x, cy + y, kind);
            sad += u32::from(r.abs_diff(p));
        }
    }
    sad
}

/// Whether a candidate at integer position `(cx, cy)` with interpolation
/// `kind` fits inside `plane`.
#[must_use]
pub fn candidate_fits(plane: &Plane, cx: isize, cy: isize, kind: InterpKind) -> bool {
    cx >= 0
        && cy >= 0
        && (cx as usize) + kind.cols() <= plane.width()
        && (cy as usize) + kind.rows() <= plane.height()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.set(x, y, ((x * 3 + y * 7) % 251) as u8);
            }
        }
        p
    }

    #[test]
    fn sad_of_identical_blocks_is_zero() {
        let p = ramp(64, 64);
        assert_eq!(get_sad(&p, 8, 8, &p, 8, 8, InterpKind::None), 0);
    }

    #[test]
    fn sad_positive_for_shifted_block() {
        let p = ramp(64, 64);
        assert!(get_sad(&p, 8, 8, &p, 9, 8, InterpKind::None) > 0);
    }

    #[test]
    fn interp_mode_from_mv_flags() {
        assert_eq!(interp_mode_of(Mv::new(2, 4)), InterpKind::None);
        assert_eq!(interp_mode_of(Mv::new(3, 4)), InterpKind::H);
        assert_eq!(interp_mode_of(Mv::new(2, 5)), InterpKind::V);
        assert_eq!(interp_mode_of(Mv::new(-1, 1)), InterpKind::Diag);
    }

    #[test]
    fn pred_pixel_rounding_matches_mpeg4() {
        let mut p = Plane::new(4, 4);
        p.set(0, 0, 10);
        p.set(1, 0, 11);
        p.set(0, 1, 20);
        p.set(1, 1, 21);
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::None), 10);
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::H), 11); // (21+1)>>1
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::V), 15); // (30+1)>>1
        assert_eq!(pred_pixel(&p, 0, 0, InterpKind::Diag), 16); // (62+2)>>2
    }

    #[test]
    fn footprint_dimensions_per_kind() {
        assert_eq!((InterpKind::None.cols(), InterpKind::None.rows()), (16, 16));
        assert_eq!((InterpKind::H.cols(), InterpKind::H.rows()), (17, 16));
        assert_eq!((InterpKind::V.cols(), InterpKind::V.rows()), (16, 17));
        assert_eq!((InterpKind::Diag.cols(), InterpKind::Diag.rows()), (17, 17));
    }

    #[test]
    fn candidate_fits_respects_interpolation_border() {
        let p = Plane::new(32, 32);
        assert!(candidate_fits(&p, 16, 16, InterpKind::None));
        assert!(!candidate_fits(&p, 16, 16, InterpKind::Diag));
        assert!(candidate_fits(&p, 15, 15, InterpKind::Diag));
        assert!(!candidate_fits(&p, -1, 0, InterpKind::None));
    }

    #[test]
    fn diag_sad_uses_all_four_neighbours() {
        let mut prev = Plane::new(40, 40);
        let mut cur = Plane::new(40, 40);
        for y in 0..40 {
            for x in 0..40 {
                prev.set(x, y, ((x + y) % 256) as u8);
            }
        }
        // Build cur as the exact diagonal interpolation of prev at (4, 4):
        // the SAD must then be exactly zero.
        for y in 0..16 {
            for x in 0..16 {
                cur.set(
                    x + 8,
                    y + 8,
                    pred_pixel(&prev, x + 4, y + 4, InterpKind::Diag),
                );
            }
        }
        assert_eq!(get_sad(&cur, 8, 8, &prev, 4, 4, InterpKind::Diag), 0);
    }
}
