//! The I/P encoding loop with in-loop reconstruction.
//!
//! First frame intra, the rest inter (simple profile, no B-frames), fixed
//! quantizer. Motion is searched in the *reconstructed* previous frame —
//! exactly what the reference encoder does, and what makes the `GetSad`
//! trace (and hence the simulated workload) faithful.

use crate::bitstream::BitWriter;
use crate::dct::{fdct, idct};
use crate::mc::{chroma_mv, predict_mb, reconstruct_mb};
use crate::me::{MbMotion, MotionSearch, SadCall};
use crate::psnr::psnr;
use crate::quant::{dequant_inter, dequant_intra, quant_inter, quant_intra};
use crate::rlc::write_block;
use crate::sad::InterpKind;
use crate::types::{Frame, Mv, Plane};
use crate::zigzag::{scan, unscan};
use crate::MB;

/// Encoder parameters (the case study: Q = 10, diamond + half-sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Fixed quantization parameter.
    pub q: i32,
    /// The motion search.
    pub search: MotionSearch,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            q: 10,
            search: MotionSearch::default(),
        }
    }
}

/// Frame coding type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra coded.
    I,
    /// Predicted from the previous reconstructed frame.
    P,
}

/// The motion-estimation trace of one macroblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbTrace {
    /// Macroblock x index.
    pub mbx: usize,
    /// Macroblock y index.
    pub mby: usize,
    /// The chosen vector.
    pub mv: Mv,
    /// Every `GetSad` call the search made.
    pub calls: Vec<SadCall>,
}

/// Per-frame encoding result.
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// I or P.
    pub frame_type: FrameType,
    /// Bits produced for this frame.
    pub bits: usize,
    /// Luma PSNR of the reconstruction against the source.
    pub psnr_y: f64,
    /// Motion traces (empty for I frames).
    pub motion: Vec<MbTrace>,
}

/// Whole-sequence encoding result.
#[derive(Debug, Clone)]
pub struct EncodeReport {
    /// Per-frame reports.
    pub frames: Vec<FrameReport>,
    /// Reconstructed frames (the decoder-side pictures).
    pub recon: Vec<Frame>,
    /// Total bitstream bits.
    pub total_bits: usize,
}

impl EncodeReport {
    /// Mean luma PSNR over all frames.
    #[must_use]
    pub fn mean_psnr_y(&self) -> f64 {
        let finite: Vec<f64> = self
            .frames
            .iter()
            .map(|f| f.psnr_y)
            .filter(|p| p.is_finite())
            .collect();
        if finite.is_empty() {
            return f64::INFINITY;
        }
        finite.iter().sum::<f64>() / finite.len() as f64
    }

    /// All `GetSad` calls of the whole sequence, in encoding order.
    pub fn all_sad_calls(&self) -> impl Iterator<Item = (&MbTrace, &SadCall)> {
        self.frames
            .iter()
            .flat_map(|f| f.motion.iter())
            .flat_map(|t| t.calls.iter().map(move |c| (t, c)))
    }

    /// Total number of `GetSad` calls.
    #[must_use]
    pub fn num_sad_calls(&self) -> usize {
        self.all_sad_calls().count()
    }

    /// Fraction of `GetSad` calls per interpolation kind
    /// `(none, h, v, diag)`.
    #[must_use]
    pub fn interp_shares(&self) -> (f64, f64, f64, f64) {
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for (_, c) in self.all_sad_calls() {
            total += 1;
            counts[match c.kind {
                InterpKind::None => 0,
                InterpKind::H => 1,
                InterpKind::V => 2,
                InterpKind::Diag => 3,
            }] += 1;
        }
        if total == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let f = |i: usize| counts[i] as f64 / total as f64;
        (f(0), f(1), f(2), f(3))
    }
}

/// The encoder.
///
/// ```
/// use mpeg4_enc::{Encoder, SyntheticSequence};
///
/// let frames = SyntheticSequence::new(64, 48, 2, 7).generate();
/// let report = Encoder::default().encode(&frames);
/// assert!(report.mean_psnr_y() > 30.0);
/// assert!(report.num_sad_calls() > 0); // the motion-estimation trace
/// ```
#[derive(Debug, Clone, Default)]
pub struct Encoder {
    /// Its configuration.
    pub config: EncoderConfig,
}

impl Encoder {
    /// An encoder with the given configuration.
    #[must_use]
    pub fn new(config: EncoderConfig) -> Self {
        Encoder { config }
    }

    /// Encodes a sequence: first frame intra, the rest P.
    ///
    /// # Panics
    ///
    /// Panics on an empty input.
    #[must_use]
    pub fn encode(&self, frames: &[Frame]) -> EncodeReport {
        self.encode_with_streams(frames).0
    }

    /// Encodes a sequence and also returns the per-frame byte streams
    /// (each zero-padded to a byte boundary), for the decoder round trip.
    ///
    /// # Panics
    ///
    /// Panics on an empty input.
    #[must_use]
    pub fn encode_with_streams(&self, frames: &[Frame]) -> (EncodeReport, Vec<Vec<u8>>) {
        assert!(!frames.is_empty(), "cannot encode an empty sequence");
        let mut reports = Vec::with_capacity(frames.len());
        let mut recon: Vec<Frame> = Vec::with_capacity(frames.len());
        let mut streams = Vec::with_capacity(frames.len());
        for (t, frame) in frames.iter().enumerate() {
            let (report_frame, bytes) = if t == 0 {
                let (rec, rep, bytes) = self.encode_intra(frame);
                recon.push(rec);
                (rep, bytes)
            } else {
                let prev = &recon[t - 1];
                let (rec, rep, bytes) = self.encode_inter(frame, prev);
                recon.push(rec);
                (rep, bytes)
            };
            reports.push(report_frame);
            streams.push(bytes);
        }
        let total_bits = reports.iter().map(|r| r.bits).sum();
        (
            EncodeReport {
                frames: reports,
                recon,
                total_bits,
            },
            streams,
        )
    }

    fn encode_intra(&self, frame: &Frame) -> (Frame, FrameReport, Vec<u8>) {
        let q = self.config.q;
        let mut rec = Frame::new(frame.width(), frame.height());
        let mut w = BitWriter::new();
        for (src, dst) in [
            (&frame.y, &mut rec.y),
            (&frame.u, &mut rec.u),
            (&frame.v, &mut rec.v),
        ] {
            for by in 0..src.height() / 8 {
                for bx in 0..src.width() / 8 {
                    let block = get_block8(src, bx * 8, by * 8);
                    let levels = quant_intra(&fdct(&block), q);
                    write_block(&mut w, &scan(&levels));
                    let rec_block = idct(&dequant_intra(&unscan(&scan(&levels)), q));
                    put_block8(dst, bx * 8, by * 8, &rec_block);
                }
            }
        }
        let bits = w.bit_len();
        let psnr_y = psnr(&frame.y, &rec.y);
        (
            rec,
            FrameReport {
                frame_type: FrameType::I,
                bits,
                psnr_y,
                motion: Vec::new(),
            },
            w.into_bytes(),
        )
    }

    fn encode_inter(&self, frame: &Frame, prev: &Frame) -> (Frame, FrameReport, Vec<u8>) {
        let q = self.config.q;
        let mbs_x = frame.y.mbs_x();
        let mbs_y = frame.y.mbs_y();
        let mut rec = Frame::new(frame.width(), frame.height());
        let mut w = BitWriter::new();
        let mut motion = Vec::with_capacity(mbs_x * mbs_y);
        let mut mvs: Vec<Mv> = vec![Mv::default(); mbs_x * mbs_y];
        for mby in 0..mbs_y {
            for mbx in 0..mbs_x {
                let pred_mv = median_predictor(&mvs, mbs_x, mbx, mby);
                let m: MbMotion = self
                    .config
                    .search
                    .search_mb(&frame.y, &prev.y, mbx, mby, pred_mv);
                mvs[mby * mbs_x + mbx] = m.mv;
                // Differential MV coding against the median predictor.
                w.put_se(i32::from(m.mv.x) - i32::from(pred_mv.x));
                w.put_se(i32::from(m.mv.y) - i32::from(pred_mv.y));
                // Luma prediction + residual coding.
                let pred = predict_mb(&prev.y, mbx, mby, m.mv);
                let mut residual16 = [0i32; MB * MB];
                for y in 0..MB {
                    for x in 0..MB {
                        residual16[y * MB + x] = i32::from(frame.y.at(mbx * MB + x, mby * MB + y))
                            - i32::from(pred[y * MB + x]);
                    }
                }
                let mut rec_res16 = [0i32; MB * MB];
                for sub in 0..4 {
                    let (ox, oy) = ((sub % 2) * 8, (sub / 2) * 8);
                    let mut block = [0i32; 64];
                    for y in 0..8 {
                        for x in 0..8 {
                            block[y * 8 + x] = residual16[(oy + y) * MB + ox + x];
                        }
                    }
                    let levels = quant_inter(&fdct(&block), q);
                    write_block(&mut w, &scan(&levels));
                    let rec_block = idct(&dequant_inter(&levels, q));
                    for y in 0..8 {
                        for x in 0..8 {
                            rec_res16[(oy + y) * MB + ox + x] = rec_block[y * 8 + x];
                        }
                    }
                }
                reconstruct_mb(&mut rec.y, mbx, mby, &pred, &rec_res16);
                // Chroma: one 8×8 block per component.
                let cmv = chroma_mv(m.mv);
                for (src, prev_p, dst) in [
                    (&frame.u, &prev.u, &mut rec.u),
                    (&frame.v, &prev.v, &mut rec.v),
                ] {
                    code_chroma_block(&mut w, src, prev_p, dst, mbx, mby, cmv, q);
                }
                motion.push(MbTrace {
                    mbx,
                    mby,
                    mv: m.mv,
                    calls: m.calls,
                });
            }
        }
        let bits = w.bit_len();
        let psnr_y = psnr(&frame.y, &rec.y);
        (
            rec,
            FrameReport {
                frame_type: FrameType::P,
                bits,
                psnr_y,
                motion,
            },
            w.into_bytes(),
        )
    }
}

/// Median MV predictor over the left, top and top-right neighbours.
pub(crate) fn median_predictor(mvs: &[Mv], mbs_x: usize, mbx: usize, mby: usize) -> Mv {
    let get = |dx: isize, dy: isize| -> Mv {
        let x = mbx as isize + dx;
        let y = mby as isize + dy;
        if x < 0 || y < 0 || x >= mbs_x as isize {
            Mv::default()
        } else {
            let idx = y as usize * mbs_x + x as usize;
            // Only already-encoded macroblocks (raster order).
            if y as usize == mby && x as usize >= mbx {
                Mv::default()
            } else {
                mvs[idx]
            }
        }
    };
    let (a, b, c) = (get(-1, 0), get(0, -1), get(1, -1));
    let med = |p: i16, q: i16, r: i16| -> i16 { p.max(q.min(r)).min(q.max(r)) };
    Mv::new(med(a.x, b.x, c.x), med(a.y, b.y, c.y))
}

/// Extracts an 8×8 block as i32.
fn get_block8(p: &Plane, x: usize, y: usize) -> [i32; 64] {
    let mut b = [0i32; 64];
    for j in 0..8 {
        for i in 0..8 {
            b[j * 8 + i] = i32::from(p.at(x + i, y + j));
        }
    }
    b
}

/// Writes an 8×8 reconstruction (clamped) into a plane.
fn put_block8(p: &mut Plane, x: usize, y: usize, b: &[i32; 64]) {
    for j in 0..8 {
        for i in 0..8 {
            p.set(x + i, y + j, b[j * 8 + i].clamp(0, 255) as u8);
        }
    }
}

/// Codes one chroma 8×8 block of macroblock `(mbx, mby)`.
#[allow(clippy::too_many_arguments)]
fn code_chroma_block(
    w: &mut BitWriter,
    src: &Plane,
    prev: &Plane,
    dst: &mut Plane,
    mbx: usize,
    mby: usize,
    cmv: Mv,
    q: i32,
) {
    let bx = mbx * 8;
    let by = mby * 8;
    let kind = crate::sad::interp_mode_of(cmv);
    let (ix, iy) = cmv.int_part();
    // Clamp the chroma MC block into the plane (border macroblocks with
    // outward vectors).
    let max_x = (src.width() - kind.cols().min(src.width())) as isize;
    let max_y = (src.height() - kind.rows().min(src.height())) as isize;
    let _ = (max_x, max_y);
    let cx = (bx as isize + isize::from(ix))
        .clamp(0, (prev.width() - kind.cols().min(prev.width())) as isize) as usize;
    let cy = (by as isize + isize::from(iy))
        .clamp(0, (prev.height() - kind.rows().min(prev.height())) as isize) as usize;
    let mut pred = [0u8; 64];
    for y in 0..8 {
        for x in 0..8 {
            pred[y * 8 + x] = crate::sad::pred_pixel(prev, cx + x, cy + y, kind);
        }
    }
    let mut residual = [0i32; 64];
    for y in 0..8 {
        for x in 0..8 {
            residual[y * 8 + x] = i32::from(src.at(bx + x, by + y)) - i32::from(pred[y * 8 + x]);
        }
    }
    let levels = quant_inter(&fdct(&residual), q);
    write_block(w, &scan(&levels));
    let rec_block = idct(&dequant_inter(&levels, q));
    for y in 0..8 {
        for x in 0..8 {
            let v = i32::from(pred[y * 8 + x]) + rec_block[y * 8 + x];
            dst.set(bx + x, by + y, v.clamp(0, 255) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticSequence;

    fn small_seq(frames: usize) -> Vec<Frame> {
        SyntheticSequence::new(64, 48, frames, 11).generate()
    }

    #[test]
    fn first_frame_is_intra_rest_p() {
        let rep = Encoder::default().encode(&small_seq(3));
        assert_eq!(rep.frames[0].frame_type, FrameType::I);
        assert_eq!(rep.frames[1].frame_type, FrameType::P);
        assert_eq!(rep.frames[2].frame_type, FrameType::P);
        assert!(rep.frames[0].motion.is_empty());
        assert_eq!(rep.frames[1].motion.len(), 4 * 3);
    }

    #[test]
    fn reconstruction_quality_is_reasonable() {
        let rep = Encoder::default().encode(&small_seq(3));
        for (i, f) in rep.frames.iter().enumerate() {
            assert!(f.psnr_y > 28.0, "frame {i}: PSNR {:.2} dB", f.psnr_y);
        }
    }

    #[test]
    fn bits_are_produced_and_summed() {
        let rep = Encoder::default().encode(&small_seq(2));
        assert!(rep.frames[0].bits > 0);
        assert!(rep.frames[1].bits > 0);
        assert_eq!(rep.total_bits, rep.frames[0].bits + rep.frames[1].bits);
        // Intra frames cost more than predicted frames on this content.
        assert!(rep.frames[0].bits > rep.frames[1].bits);
    }

    #[test]
    fn sad_calls_are_collected() {
        let rep = Encoder::default().encode(&small_seq(3));
        assert!(rep.num_sad_calls() > 0);
        let (n, h, v, d) = rep.interp_shares();
        assert!((n + h + v + d - 1.0).abs() < 1e-9);
        assert!(n > 0.5, "integer candidates dominate: {n}");
    }

    #[test]
    fn encoding_is_deterministic() {
        let seq = small_seq(2);
        let a = Encoder::default().encode(&seq);
        let b = Encoder::default().encode(&seq);
        assert_eq!(a.total_bits, b.total_bits);
        assert_eq!(a.recon[1], b.recon[1]);
    }

    #[test]
    fn better_search_does_not_hurt_psnr_much() {
        let seq = small_seq(3);
        let diamond = Encoder::default().encode(&seq);
        let full = Encoder::new(EncoderConfig {
            q: 10,
            search: MotionSearch {
                algorithm: crate::me::SearchAlgorithm::Full { range: 8 },
                half_sample: true,
                approx: crate::sad::ApproxSad::Exact,
            },
        })
        .encode(&seq);
        // Full search finds at-least-as-good predictors; diamond must stay
        // within 3 dB on this easy content.
        assert!(full.frames[1].psnr_y + 3.0 > diamond.frames[1].psnr_y);
        // And full search costs far more GetSad calls.
        assert!(full.num_sad_calls() > 3 * diamond.num_sad_calls());
    }
}
