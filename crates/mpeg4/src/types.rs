//! Image planes, frames and motion vectors.

use std::fmt;

use crate::MB;

/// One 8-bit image plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// A zero-filled plane.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Builds a plane from existing samples.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height`.
    #[must_use]
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "sample count mismatch");
        Plane {
            width,
            height,
            data,
        }
    }

    /// Plane width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw samples, row major.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "({x},{y}) out of plane");
        self.data[y * self.width + x]
    }

    /// Sample at `(x, y)` with edge clamping (used by the synthesizer).
    #[must_use]
    pub fn at_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Writes sample `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        assert!(x < self.width && y < self.height, "({x},{y}) out of plane");
        self.data[y * self.width + x] = v;
    }

    /// One pixel row.
    #[must_use]
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Number of 16×16 macroblocks horizontally.
    #[must_use]
    pub fn mbs_x(&self) -> usize {
        self.width / MB
    }

    /// Number of 16×16 macroblocks vertically.
    #[must_use]
    pub fn mbs_y(&self) -> usize {
        self.height / MB
    }
}

/// A YUV 4:2:0 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Luma plane.
    pub y: Plane,
    /// Blue-difference chroma plane (half resolution).
    pub u: Plane,
    /// Red-difference chroma plane (half resolution).
    pub v: Plane,
}

impl Frame {
    /// A black frame of the given luma size.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are multiples of 16 (whole
    /// macroblocks).
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width.is_multiple_of(MB) && height.is_multiple_of(MB),
            "frame dimensions must be whole macroblocks"
        );
        Frame {
            y: Plane::new(width, height),
            u: Plane::new(width / 2, height / 2),
            v: Plane::new(width / 2, height / 2),
        }
    }

    /// Luma width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.y.width()
    }

    /// Luma height.
    #[must_use]
    pub fn height(&self) -> usize {
        self.y.height()
    }
}

/// A motion vector in **half-sample units** (so `Mv { x: 3, y: -2 }` means
/// +1.5 px right, −1 px up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mv {
    /// Horizontal component, half-sample units.
    pub x: i16,
    /// Vertical component, half-sample units.
    pub y: i16,
}

impl Mv {
    /// A vector from half-sample components.
    #[must_use]
    pub fn new(x: i16, y: i16) -> Self {
        Mv { x, y }
    }

    /// A vector from integer-sample components.
    #[must_use]
    pub fn from_int(x: i16, y: i16) -> Self {
        Mv { x: x * 2, y: y * 2 }
    }

    /// Whether both components are integer-sample.
    #[must_use]
    pub fn is_integer(self) -> bool {
        self.x % 2 == 0 && self.y % 2 == 0
    }

    /// The integer (floor) parts, in whole samples.
    #[must_use]
    pub fn int_part(self) -> (i16, i16) {
        (self.x.div_euclid(2), self.y.div_euclid(2))
    }

    /// The half-sample flags `(x odd, y odd)`.
    #[must_use]
    pub fn half_flags(self) -> (bool, bool) {
        (self.x.rem_euclid(2) == 1, self.y.rem_euclid(2) == 1)
    }
}

impl fmt::Display for Mv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.1},{:.1})",
            f64::from(self.x) / 2.0,
            f64::from(self.y) / 2.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_roundtrip() {
        let mut p = Plane::new(16, 16);
        p.set(3, 5, 200);
        assert_eq!(p.at(3, 5), 200);
        assert_eq!(p.row(5)[3], 200);
    }

    #[test]
    fn clamped_access_at_edges() {
        let mut p = Plane::new(4, 4);
        p.set(0, 0, 9);
        p.set(3, 3, 7);
        assert_eq!(p.at_clamped(-5, -5), 9);
        assert_eq!(p.at_clamped(100, 100), 7);
    }

    #[test]
    fn frame_chroma_is_half_size() {
        let f = Frame::new(176, 144);
        assert_eq!((f.u.width(), f.u.height()), (88, 72));
        assert_eq!(f.y.mbs_x(), 11);
        assert_eq!(f.y.mbs_y(), 9);
    }

    #[test]
    #[should_panic(expected = "whole macroblocks")]
    fn frame_requires_mb_multiple() {
        let _ = Frame::new(100, 100);
    }

    #[test]
    fn mv_half_sample_decomposition() {
        let mv = Mv::new(3, -1);
        assert_eq!(mv.int_part(), (1, -1));
        assert_eq!(mv.half_flags(), (true, true));
        assert!(!mv.is_integer());
        assert!(Mv::from_int(2, -3).is_integer());
        assert_eq!(Mv::new(-3, 0).int_part(), (-2, 0));
        assert_eq!(Mv::new(-3, 0).half_flags(), (true, false));
    }

    #[test]
    fn mv_display_in_pixels() {
        assert_eq!(Mv::new(3, -2).to_string(), "(1.5,-1.0)");
    }
}
