//! PSNR quality metric.

use crate::types::Plane;

/// Mean squared error between two planes.
///
/// # Panics
///
/// Panics when the planes have different shapes.
#[must_use]
pub fn mse(a: &Plane, b: &Plane) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "plane shape mismatch"
    );
    let sum: u64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        })
        .sum();
    sum as f64 / (a.width() * a.height()) as f64
}

/// Peak signal-to-noise ratio in dB; `f64::INFINITY` for identical planes.
#[must_use]
pub fn psnr(a: &Plane, b: &Plane) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / m).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_planes_have_infinite_psnr() {
        let p = Plane::new(16, 16);
        assert_eq!(psnr(&p, &p), f64::INFINITY);
    }

    #[test]
    fn known_mse() {
        let a = Plane::new(8, 8);
        let mut b = Plane::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                b.set(x, y, 2);
            }
        }
        assert!((mse(&a, &b) - 4.0).abs() < 1e-12);
        // PSNR for MSE 4 = 10 log10(65025/4) ≈ 42.11 dB
        assert!((psnr(&a, &b) - 42.110_202_970_909_52).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_planes_panic() {
        let _ = mse(&Plane::new(8, 8), &Plane::new(16, 16));
    }
}
