//! The Figure 2 rendering: packed-word data set of a predictor macroblock.
//!
//! Each 8-bit pixel is accessed through the 32-bit word it is packed into,
//! so a predictor row of 17 pixels at byte alignment `a` touches five
//! packed words (`W0`–`W4`); the diagonal interpolation additionally needs
//! the 17th row. This module renders that footprint as ASCII art, matching
//! the paper's Figure 2 (shaded = needed for alignment, black = needed for
//! the diagonal interpolation).

use crate::sad::InterpKind;
use crate::MB;

/// Renders the data set of a predictor macroblock with the given byte
/// `alignment` (0–3) and interpolation kind.
///
/// Legend: each cell is one packed 32-bit word of four pixels; `####` =
/// fully used, `::::` = partially used because of the alignment, `XXXX` =
/// used only by the interpolation (the extra column/row), `....` = fetched
/// but unused.
///
/// # Panics
///
/// Panics when `alignment > 3`.
#[must_use]
pub fn render(alignment: u32, kind: InterpKind) -> String {
    assert!(alignment < 4, "alignment is a byte offset within a word");
    let cols_px = kind.cols(); // 16 or 17
    let rows = kind.rows(); // 16 or 17
    let words = 5; // the paper's W0..W4
    let mut out = String::new();
    out.push_str(&format!(
        "Predictor macroblock data set: alignment {alignment}, {kind:?} interpolation\n"
    ));
    out.push_str("      ");
    for w in 0..words {
        out.push_str(&format!("  W{w}  "));
    }
    out.push('\n');
    for row in 0..rows {
        let extra_row = row == MB; // the 17th row, interpolation only
        out.push_str(&format!("  r{row:2} "));
        for w in 0..words {
            // Pixels covered by word w: bytes [w*4, w*4+4) of the packed
            // row; needed pixels: [alignment, alignment + cols_px).
            let lo = (w * 4) as u32;
            let hi = lo + 4;
            let need_lo = alignment;
            let need_hi = alignment + cols_px as u32;
            let covered = hi.min(need_hi).saturating_sub(lo.max(need_lo));
            let cell = if covered == 0 {
                " ...."
            } else if extra_row {
                " XXXX"
            } else if covered == 4 {
                " ####"
            } else if lo + 4 > alignment + MB as u32 && kind.cols() == 17 {
                // Only the interpolation column lands in this word.
                " XXXX"
            } else {
                " ::::"
            };
            out.push_str(cell);
        }
        out.push('\n');
    }
    out.push_str(
        "legend: #### full word  :::: alignment partial  XXXX interpolation only  .... unused\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_no_interp_uses_four_words() {
        let s = render(0, InterpKind::None);
        let first_row = s.lines().nth(2).unwrap();
        assert!(first_row.contains("####"));
        // W4 unused when aligned without interpolation.
        assert!(first_row.ends_with("...."));
    }

    #[test]
    fn alignment_3_diag_matches_figure_2() {
        // The paper's example: alignment 3 with diagonal interpolation
        // touches all five words and a 17th row.
        let s = render(3, InterpKind::Diag);
        let rows: Vec<&str> = s.lines().collect();
        // Header + 17 pixel rows + legend.
        assert_eq!(rows.len(), 2 + 17 + 1);
        let r0 = rows[2];
        assert!(r0.contains("::::"), "partial first word: {r0}");
        assert!(!r0.contains("...."), "all five words touched: {r0}");
        let r16 = rows[2 + 16];
        assert!(r16.contains("XXXX"), "extra interpolation row: {r16}");
    }

    #[test]
    #[should_panic(expected = "byte offset")]
    fn alignment_bounds_checked() {
        let _ = render(4, InterpKind::None);
    }

    #[test]
    fn vertical_interp_adds_row_not_column() {
        let s = render(0, InterpKind::V);
        let rows: Vec<&str> = s.lines().collect();
        assert_eq!(rows.len(), 2 + 17 + 1);
        // 16-pixel columns: W4 unused on ordinary rows.
        assert!(rows[2].ends_with("...."));
    }
}
