//! Run-level coding of zig-zag-scanned coefficient blocks.

use crate::bitstream::{BitReader, BitWriter};

/// One `(last, run, level)` event of the MPEG-4 texture layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLevel {
    /// Zero coefficients skipped before this one.
    pub run: u8,
    /// The nonzero coefficient value.
    pub level: i32,
    /// Whether this is the last nonzero coefficient of the block.
    pub last: bool,
}

/// Converts a zig-zag-ordered block to its run-level events.
#[must_use]
pub fn encode_events(zz: &[i32; 64]) -> Vec<RunLevel> {
    let mut events = Vec::new();
    let mut run = 0u8;
    for &c in zz.iter() {
        if c == 0 {
            run += 1;
        } else {
            events.push(RunLevel {
                run,
                level: c,
                last: false,
            });
            run = 0;
        }
    }
    if let Some(last) = events.last_mut() {
        last.last = true;
    }
    events
}

/// Rebuilds the zig-zag block from its events.
///
/// # Panics
///
/// Panics if the events overflow the 64-coefficient block.
#[must_use]
pub fn decode_events(events: &[RunLevel]) -> [i32; 64] {
    let mut zz = [0i32; 64];
    let mut pos = 0usize;
    for e in events {
        pos += usize::from(e.run);
        assert!(pos < 64, "run-level events overflow the block");
        zz[pos] = e.level;
        pos += 1;
    }
    zz
}

/// Writes a block's events to the bitstream: a coded-block flag, then
/// `ue(run)` + `se(level)` + a `last` bit per event.
pub fn write_block(w: &mut BitWriter, zz: &[i32; 64]) {
    let events = encode_events(zz);
    w.put_bit(!events.is_empty());
    for e in &events {
        w.put_ue(u32::from(e.run));
        w.put_se(e.level);
        w.put_bit(e.last);
    }
}

/// Reads a block written by [`write_block`].
pub fn read_block(r: &mut BitReader<'_>) -> Option<[i32; 64]> {
    let coded = r.get_bit()?;
    let mut events = Vec::new();
    if coded {
        loop {
            let run = r.get_ue()?;
            let level = r.get_se()?;
            let last = r.get_bit()?;
            events.push(RunLevel {
                run: run.try_into().ok()?,
                level,
                last,
            });
            if last {
                break;
            }
        }
    }
    Some(decode_events(&events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_of_empty_block() {
        assert!(encode_events(&[0i32; 64]).is_empty());
    }

    #[test]
    fn events_track_runs_and_last() {
        let mut zz = [0i32; 64];
        zz[0] = 5;
        zz[3] = -2;
        zz[10] = 1;
        let ev = encode_events(&zz);
        assert_eq!(
            ev,
            vec![
                RunLevel {
                    run: 0,
                    level: 5,
                    last: false
                },
                RunLevel {
                    run: 2,
                    level: -2,
                    last: false
                },
                RunLevel {
                    run: 6,
                    level: 1,
                    last: true
                },
            ]
        );
        assert_eq!(decode_events(&ev), zz);
    }

    #[test]
    fn bitstream_roundtrip() {
        let mut zz = [0i32; 64];
        zz[1] = -7;
        zz[2] = 3;
        zz[63] = 1;
        let mut w = BitWriter::new();
        write_block(&mut w, &zz);
        write_block(&mut w, &[0i32; 64]);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_block(&mut r), Some(zz));
        assert_eq!(read_block(&mut r), Some([0i32; 64]));
    }

    #[test]
    fn uncoded_block_costs_one_bit() {
        let mut w = BitWriter::new();
        write_block(&mut w, &[0i32; 64]);
        assert_eq!(w.bit_len(), 1);
    }
}
