//! H.263-style quantization (MPEG-4 simple profile, second quantization
//! method), with the case study's fixed quantizer Q = 10.

/// Quantizes an intra block: DC by 8, AC by `2·q` (plain division).
///
/// # Panics
///
/// Panics if `q == 0`.
#[must_use]
pub fn quant_intra(coefs: &[i32; 64], q: i32) -> [i32; 64] {
    assert!(q > 0, "quantizer must be positive");
    let mut out = [0i32; 64];
    out[0] = (coefs[0] + 4).div_euclid(8); // DC, rounded
    for i in 1..64 {
        out[i] = coefs[i] / (2 * q);
    }
    out
}

/// Dequantizes an intra block.
///
/// # Panics
///
/// Panics if `q == 0`.
#[must_use]
pub fn dequant_intra(levels: &[i32; 64], q: i32) -> [i32; 64] {
    assert!(q > 0, "quantizer must be positive");
    let mut out = [0i32; 64];
    out[0] = levels[0] * 8;
    for i in 1..64 {
        let l = levels[i];
        out[i] = if l == 0 {
            0
        } else if q % 2 == 1 {
            q * (2 * l.abs() + 1) * l.signum()
        } else {
            (q * (2 * l.abs() + 1) - 1) * l.signum()
        };
    }
    out
}

/// Quantizes an inter (residual) block with the H.263 dead zone:
/// `level = (|c| − q/2) / (2q)`, signed.
///
/// # Panics
///
/// Panics if `q == 0`.
#[must_use]
pub fn quant_inter(coefs: &[i32; 64], q: i32) -> [i32; 64] {
    assert!(q > 0, "quantizer must be positive");
    let mut out = [0i32; 64];
    for i in 0..64 {
        let c = coefs[i];
        out[i] = ((c.abs() - q / 2) / (2 * q)) * c.signum();
    }
    out
}

/// Dequantizes an inter block (same reconstruction rule as intra AC).
///
/// # Panics
///
/// Panics if `q == 0`.
#[must_use]
pub fn dequant_inter(levels: &[i32; 64], q: i32) -> [i32; 64] {
    assert!(q > 0, "quantizer must be positive");
    let mut out = [0i32; 64];
    for i in 0..64 {
        let l = levels[i];
        out[i] = if l == 0 {
            0
        } else if q % 2 == 1 {
            q * (2 * l.abs() + 1) * l.signum()
        } else {
            (q * (2 * l.abs() + 1) - 1) * l.signum()
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stays_zero() {
        let z = [0i32; 64];
        assert_eq!(quant_inter(&z, 10), z);
        assert_eq!(dequant_inter(&z, 10), z);
    }

    #[test]
    fn small_residuals_die_in_the_dead_zone() {
        let mut c = [0i32; 64];
        c[5] = 9; // |9| - 5 = 4, / 20 = 0
        c[6] = -9;
        assert_eq!(quant_inter(&c, 10), [0i32; 64]);
    }

    #[test]
    fn reconstruction_error_bounded_by_quantizer() {
        let q = 10;
        for &val in &[-400, -123, -21, 25, 150, 380] {
            let mut c = [0i32; 64];
            c[3] = val;
            let rec = dequant_inter(&quant_inter(&c, q), q);
            let err = (rec[3] - val).abs();
            assert!(err <= 2 * q + q / 2, "val {val}: err {err}");
        }
    }

    #[test]
    fn intra_dc_reconstruction() {
        let mut c = [0i32; 64];
        c[0] = 8 * 96; // flat-96 block DC
        let levels = quant_intra(&c, 10);
        assert_eq!(levels[0], 96);
        let rec = dequant_intra(&levels, 10);
        assert_eq!(rec[0], 8 * 96);
    }

    #[test]
    fn sign_symmetry() {
        let q = 10;
        let mut c = [0i32; 64];
        c[7] = 300;
        let mut cn = [0i32; 64];
        cn[7] = -300;
        assert_eq!(quant_inter(&c, q)[7], -quant_inter(&cn, q)[7]);
        let r = dequant_inter(&quant_inter(&c, q), q)[7];
        let rn = dequant_inter(&quant_inter(&cn, q), q)[7];
        assert_eq!(r, -rn);
    }

    #[test]
    fn even_quantizer_reconstruction_is_odd() {
        // H.263: reconstruction magnitudes are odd multiples of q (odd q)
        // or one less (even q) — checks the parity rule.
        let mut c = [0i32; 64];
        c[2] = 100;
        let r_odd = dequant_inter(&quant_inter(&c, 9), 9)[2];
        assert_eq!(r_odd % 2, (9 * (2 * (100 / 18) + 1)) % 2);
        let r_even = dequant_inter(&quant_inter(&c, 10), 10)[2];
        assert_eq!(r_even % 2, 1); // 10*(2l+1)-1 is odd
    }
}
