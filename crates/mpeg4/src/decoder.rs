//! Bitstream decoder: the inverse of [`Encoder`](crate::Encoder).
//!
//! Decodes the I/P stream produced by this crate's encoder and rebuilds the
//! exact reconstructed frames the encoder used as references — the
//! round-trip property `decode(encode(x)) == encoder reconstructions` is
//! what guards the whole texture-coding path (DCT, quantization, zig-zag,
//! run-level, exp-Golomb, motion compensation).

use std::fmt;

use crate::bitstream::BitReader;
use crate::dct::idct;
use crate::mc::{chroma_mv, predict_mb, reconstruct_mb};
use crate::quant::{dequant_inter, dequant_intra};
use crate::rlc::read_block;
use crate::types::{Frame, Mv, Plane};
use crate::zigzag::unscan;
use crate::MB;

/// Decoding failure: the stream ended or was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Frame index at which decoding failed.
    pub frame: usize,
    /// What was being decoded.
    pub context: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truncated stream in frame {} ({})",
            self.frame, self.context
        )
    }
}

impl std::error::Error for DecodeError {}

/// Decoder configuration: must match the encoder's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderConfig {
    /// Fixed quantization parameter.
    pub q: i32,
    /// Luma width in pixels.
    pub width: usize,
    /// Luma height in pixels.
    pub height: usize,
    /// Number of frames in the stream (the toy stream has no headers; the
    /// caller carries the sequence parameters, as with out-of-band config).
    pub frames: usize,
}

/// Decodes a stream produced by [`Encoder::encode`]
/// (frame sizes are given out of band via `bits_per_frame` — the encoder's
/// per-frame bit counts — because the toy stream has no start codes).
///
/// # Errors
///
/// Returns [`DecodeError`] when the stream is truncated or malformed.
///
/// [`Encoder::encode`]: crate::Encoder::encode
pub fn decode(
    bytes: &[u8],
    bits_per_frame: &[usize],
    config: &DecoderConfig,
) -> Result<Vec<Frame>, DecodeError> {
    assert_eq!(
        bits_per_frame.len(),
        config.frames,
        "one bit count per frame"
    );
    let mut r = BitReader::new(bytes);
    let mut out: Vec<Frame> = Vec::with_capacity(config.frames);
    for (t, &frame_bits) in bits_per_frame.iter().enumerate() {
        let start_bits = r.bit_pos();
        let frame = match out.last() {
            None => decode_intra(&mut r, config, t)?,
            Some(prev) => decode_inter(&mut r, prev, config, t)?,
        };
        let consumed = r.bit_pos() - start_bits;
        if consumed > frame_bits {
            return Err(DecodeError {
                frame: t,
                context: "frame overran its bit budget",
            });
        }
        // Skip the zero padding up to the frame's byte boundary.
        let mut pad = frame_bits - consumed;
        while pad > 0 {
            let chunk = pad.min(32) as u8;
            r.get_bits(chunk).ok_or(DecodeError {
                frame: t,
                context: "frame padding",
            })?;
            pad -= usize::from(chunk);
        }
        out.push(frame);
    }
    Ok(out)
}

fn decode_intra(
    r: &mut BitReader<'_>,
    config: &DecoderConfig,
    t: usize,
) -> Result<Frame, DecodeError> {
    let mut frame = Frame::new(config.width, config.height);
    for plane_idx in 0..3 {
        let plane = match plane_idx {
            0 => &mut frame.y,
            1 => &mut frame.u,
            _ => &mut frame.v,
        };
        for by in 0..plane.height() / 8 {
            for bx in 0..plane.width() / 8 {
                let zz = read_block(r).ok_or(DecodeError {
                    frame: t,
                    context: "intra block",
                })?;
                let rec = idct(&dequant_intra(&unscan(&zz), config.q));
                for y in 0..8 {
                    for x in 0..8 {
                        plane.set(bx * 8 + x, by * 8 + y, rec[y * 8 + x].clamp(0, 255) as u8);
                    }
                }
            }
        }
    }
    Ok(frame)
}

fn decode_inter(
    r: &mut BitReader<'_>,
    prev: &Frame,
    config: &DecoderConfig,
    t: usize,
) -> Result<Frame, DecodeError> {
    let mbs_x = config.width / MB;
    let mbs_y = config.height / MB;
    let mut frame = Frame::new(config.width, config.height);
    let mut mvs: Vec<Mv> = vec![Mv::default(); mbs_x * mbs_y];
    for mby in 0..mbs_y {
        for mbx in 0..mbs_x {
            let pred_mv = crate::encoder::median_predictor(&mvs, mbs_x, mbx, mby);
            let dx = r.get_se().ok_or(DecodeError {
                frame: t,
                context: "mv dx",
            })?;
            let dy = r.get_se().ok_or(DecodeError {
                frame: t,
                context: "mv dy",
            })?;
            let mv = Mv::new(
                (i32::from(pred_mv.x) + dx) as i16,
                (i32::from(pred_mv.y) + dy) as i16,
            );
            mvs[mby * mbs_x + mbx] = mv;
            // Luma.
            let pred = predict_mb(&prev.y, mbx, mby, mv);
            let mut rec_res16 = [0i32; MB * MB];
            for sub in 0..4 {
                let (ox, oy) = ((sub % 2) * 8, (sub / 2) * 8);
                let zz = read_block(r).ok_or(DecodeError {
                    frame: t,
                    context: "luma block",
                })?;
                let rec = idct(&dequant_inter(&unscan(&zz), config.q));
                for y in 0..8 {
                    for x in 0..8 {
                        rec_res16[(oy + y) * MB + ox + x] = rec[y * 8 + x];
                    }
                }
            }
            reconstruct_mb(&mut frame.y, mbx, mby, &pred, &rec_res16);
            // Chroma.
            let cmv = chroma_mv(mv);
            for c in 0..2 {
                let (src_prev, dst): (&Plane, &mut Plane) = if c == 0 {
                    (&prev.u, &mut frame.u)
                } else {
                    (&prev.v, &mut frame.v)
                };
                decode_chroma_block(r, src_prev, dst, mbx, mby, cmv, config.q).ok_or(
                    DecodeError {
                        frame: t,
                        context: "chroma block",
                    },
                )?;
            }
        }
    }
    Ok(frame)
}

fn decode_chroma_block(
    r: &mut BitReader<'_>,
    prev: &Plane,
    dst: &mut Plane,
    mbx: usize,
    mby: usize,
    cmv: Mv,
    q: i32,
) -> Option<()> {
    let bx = mbx * 8;
    let by = mby * 8;
    let kind = crate::sad::interp_mode_of(cmv);
    let (ix, iy) = cmv.int_part();
    let cx = (bx as isize + isize::from(ix))
        .clamp(0, (prev.width() - kind.cols().min(prev.width())) as isize) as usize;
    let cy = (by as isize + isize::from(iy))
        .clamp(0, (prev.height() - kind.rows().min(prev.height())) as isize) as usize;
    let zz = read_block(r)?;
    let rec = idct(&dequant_inter(&unscan(&zz), q));
    for y in 0..8 {
        for x in 0..8 {
            let p = i32::from(crate::sad::pred_pixel(prev, cx + x, cy + y, kind));
            dst.set(bx + x, by + y, (p + rec[y * 8 + x]).clamp(0, 255) as u8);
        }
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use crate::synth::SyntheticSequence;

    /// `decode(encode(x))` reproduces the encoder's reconstructions
    /// exactly — the whole texture path is lossless around the quantizer.
    #[test]
    fn decode_reproduces_encoder_reconstructions() {
        let frames = SyntheticSequence::new(64, 48, 3, 9).generate();
        let enc = Encoder::default();
        let (report, streams) = enc.encode_with_streams(&frames);
        let mut all = Vec::new();
        for s in &streams {
            all.extend_from_slice(s);
        }
        let padded_bits: Vec<usize> = streams.iter().map(|s| s.len() * 8).collect();
        let decoded = decode(
            &all,
            &padded_bits,
            &DecoderConfig {
                q: 10,
                width: 64,
                height: 48,
                frames: 3,
            },
        )
        .unwrap_or_else(|e| panic!("decode failed: {e}"));
        assert_eq!(decoded.len(), 3);
        for (t, (d, r)) in decoded.iter().zip(&report.recon).enumerate() {
            assert_eq!(d, r, "frame {t} reconstruction mismatch");
        }
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let frames = SyntheticSequence::new(64, 48, 2, 9).generate();
        let enc = Encoder::default();
        let (_, streams) = enc.encode_with_streams(&frames);
        let mut all = Vec::new();
        for s in &streams {
            all.extend_from_slice(s);
        }
        let padded_bits: Vec<usize> = streams.iter().map(|s| s.len() * 8).collect();
        let cut = &all[..all.len() / 2];
        let err = decode(
            cut,
            &padded_bits,
            &DecoderConfig {
                q: 10,
                width: 64,
                height: 48,
                frames: 2,
            },
        )
        .unwrap_err();
        assert!(err.frame < 2);
    }
}
