//! Bit-level writer/reader with exp-Golomb codes.
//!
//! MPEG-4's texture layer uses fixed Huffman tables for `(last, run,
//! level)` events; this reproduction uses exp-Golomb codes instead — a
//! universal-code substitution that keeps bit counts realistic (within
//! ~10 % for typical residual statistics) without hundreds of lines of
//! table data. Decodability is preserved (see the round-trip tests), so
//! bitstream sizes reported by the encoder are honestly *measured*, not
//! estimated.

/// MSB-first bit writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the last byte (0..8).
    fill: u8,
}

impl BitWriter {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `n` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn put_bits(&mut self, value: u32, n: u8) {
        assert!(n <= 32, "at most 32 bits at a time");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            if self.fill == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.len() - 1;
            self.bytes[last] |= (bit as u8) << (7 - self.fill);
            self.fill = (self.fill + 1) % 8;
        }
    }

    /// Appends one bit.
    pub fn put_bit(&mut self, bit: bool) {
        self.put_bits(u32::from(bit), 1);
    }

    /// Unsigned exp-Golomb code of `v`.
    pub fn put_ue(&mut self, v: u32) {
        let x = v + 1;
        let n = 32 - x.leading_zeros() as u8; // bits in x
        self.put_bits(0, n - 1); // n-1 zeros
        self.put_bits(x, n);
    }

    /// Signed exp-Golomb: 0, 1, −1, 2, −2, …
    pub fn put_se(&mut self, v: i32) {
        let mapped = if v > 0 {
            (v as u32) * 2 - 1
        } else {
            (-v as u32) * 2
        };
        self.put_ue(mapped);
    }

    /// Total bits written.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        if self.fill == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.fill as usize
        }
    }

    /// Finishes the stream (zero-padded to a byte boundary).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from the start of `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn get_bit(&mut self) -> Option<bool> {
        let byte = self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit != 0)
    }

    /// Reads `n` bits MSB-first.
    pub fn get_bits(&mut self, n: u8) -> Option<u32> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | u32::from(self.get_bit()?);
        }
        Some(v)
    }

    /// Reads an unsigned exp-Golomb code.
    pub fn get_ue(&mut self) -> Option<u32> {
        let mut zeros = 0u8;
        while !self.get_bit()? {
            zeros += 1;
            if zeros > 32 {
                return None;
            }
        }
        let rest = self.get_bits(zeros)?;
        Some(((1u32 << zeros) | rest) - 1)
    }

    /// Reads a signed exp-Golomb code.
    pub fn get_se(&mut self) -> Option<i32> {
        let u = self.get_ue()?;
        Some(if u % 2 == 1 {
            u.div_ceil(2) as i32
        } else {
            -((u / 2) as i32)
        })
    }

    /// Bits consumed so far.
    #[must_use]
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xdead, 16);
        w.put_bit(true);
        let len = w.bit_len();
        assert_eq!(len, 21);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4), Some(0b1011));
        assert_eq!(r.get_bits(16), Some(0xdead));
        assert_eq!(r.get_bit(), Some(true));
    }

    #[test]
    fn ue_roundtrip_dense() {
        let mut w = BitWriter::new();
        for v in 0..300u32 {
            w.put_ue(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in 0..300u32 {
            assert_eq!(r.get_ue(), Some(v));
        }
    }

    #[test]
    fn se_roundtrip() {
        let vals = [0, 1, -1, 2, -2, 17, -17, 255, -255, 4096, -4096];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.get_se(), Some(v));
        }
    }

    #[test]
    fn ue_code_lengths_are_canonical() {
        // ue(0) = "1" (1 bit), ue(1) = "010" (3 bits), ue(2) = "011".
        let mut w = BitWriter::new();
        w.put_ue(0);
        assert_eq!(w.bit_len(), 1);
        let mut w = BitWriter::new();
        w.put_ue(1);
        assert_eq!(w.bit_len(), 3);
        let mut w = BitWriter::new();
        w.put_ue(6);
        assert_eq!(w.bit_len(), 5);
    }

    #[test]
    fn reader_reports_end_of_stream() {
        let bytes = [0xff];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(8), Some(0xff));
        assert_eq!(r.get_bit(), None);
        assert_eq!(r.get_ue(), None);
    }
}
