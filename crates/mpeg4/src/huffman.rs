//! Canonical Huffman coding.
//!
//! MPEG-4's texture layer uses fixed Huffman tables for `(last, run,
//! level)` events. The shipped encoder uses exp-Golomb codes (a universal
//! substitution, see [`bitstream`](crate::bitstream)); this module provides
//! the table-driven alternative: build an optimal prefix code from symbol
//! frequencies (as a two-pass encoder would), emit it canonically, and
//! encode/decode symbol streams against it.

use crate::bitstream::{BitReader, BitWriter};

/// A canonical Huffman code over symbols `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalCode {
    /// Code length per symbol (0 = symbol never occurs and has no code).
    lengths: Vec<u8>,
    /// Codeword per symbol, MSB-aligned to its length.
    codes: Vec<u32>,
}

/// Maximum codeword length this implementation emits.
pub const MAX_CODE_LEN: u8 = 32;

impl CanonicalCode {
    /// Builds an optimal prefix code for the given symbol frequencies
    /// (Huffman's algorithm, then canonical reassignment). Symbols with
    /// zero frequency get no code.
    ///
    /// # Panics
    ///
    /// Panics when no symbol has a nonzero frequency.
    #[must_use]
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let active: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        assert!(!active.is_empty(), "at least one symbol must occur");
        let mut lengths = vec![0u8; freqs.len()];
        if active.len() == 1 {
            // Degenerate alphabet: one symbol, one-bit code.
            lengths[active[0]] = 1;
        } else {
            // Huffman tree via two-queue merge over sorted leaves.
            #[derive(Clone)]
            struct Node {
                weight: u64,
                symbols: Vec<usize>, // leaves under this node
            }
            let mut heap: Vec<Node> = active
                .iter()
                .map(|&i| Node {
                    weight: freqs[i],
                    symbols: vec![i],
                })
                .collect();
            while heap.len() > 1 {
                // Extract the two lightest nodes (linear scan: alphabets
                // here are small).
                heap.sort_by_key(|n| std::cmp::Reverse(n.weight));
                let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
                    break; // unreachable: the loop guard holds ≥ 2 nodes
                };
                for &s in a.symbols.iter().chain(&b.symbols) {
                    lengths[s] += 1;
                }
                let mut symbols = a.symbols;
                symbols.extend(b.symbols);
                heap.push(Node {
                    weight: a.weight + b.weight,
                    symbols,
                });
            }
        }
        Self::from_lengths(lengths)
    }

    /// Builds the canonical code from per-symbol lengths (shorter codes
    /// first; ties broken by symbol index — the canonical convention).
    fn from_lengths(lengths: Vec<u8>) -> Self {
        let mut order: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
        order.sort_by_key(|&i| (lengths[i], i));
        let mut codes = vec![0u32; lengths.len()];
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for &i in &order {
            code <<= lengths[i] - prev_len;
            codes[i] = code;
            code += 1;
            prev_len = lengths[i];
        }
        CanonicalCode { lengths, codes }
    }

    /// The code length of `symbol` in bits (0 when the symbol has no code).
    #[must_use]
    pub fn length(&self, symbol: usize) -> u8 {
        self.lengths[symbol]
    }

    /// Appends `symbol`'s codeword to the stream.
    ///
    /// # Panics
    ///
    /// Panics when the symbol has no code (zero training frequency).
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lengths[symbol];
        assert!(len > 0, "symbol {symbol} has no code");
        w.put_bits(self.codes[symbol], len);
    }

    /// Decodes one symbol; `None` at end of stream or on an invalid prefix.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<usize> {
        let mut code = 0u32;
        for len in 1..=MAX_CODE_LEN {
            code = (code << 1) | u32::from(r.get_bit()?);
            // Canonical property: at each length, valid codes form a
            // contiguous range.
            for (i, (&l, &c)) in self.lengths.iter().zip(&self.codes).enumerate() {
                if l == len && c == code {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Expected bits per symbol under the training distribution.
    #[must_use]
    pub fn expected_length(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return 0.0;
        }
        freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| f as f64 * f64::from(self.lengths[i]))
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> Vec<u64> {
        vec![100, 50, 25, 12, 6, 3, 2, 1]
    }

    #[test]
    fn roundtrip_symbol_stream() {
        let code = CanonicalCode::from_frequencies(&skewed());
        let symbols = [0usize, 1, 0, 7, 3, 0, 2, 6, 0, 0, 5, 4];
        let mut w = BitWriter::new();
        for &s in &symbols {
            code.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(code.decode(&mut r), Some(s));
        }
    }

    #[test]
    fn frequent_symbols_get_shorter_codes() {
        let code = CanonicalCode::from_frequencies(&skewed());
        assert!(code.length(0) <= code.length(3));
        assert!(code.length(3) <= code.length(7));
        assert_eq!(code.length(0), 1, "the dominant symbol gets one bit");
    }

    #[test]
    fn kraft_inequality_holds_with_equality() {
        // A complete Huffman code satisfies Σ 2^-len = 1.
        let code = CanonicalCode::from_frequencies(&skewed());
        let kraft: f64 = (0..8).map(|i| 2f64.powi(-i32::from(code.length(i)))).sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft {kraft}");
    }

    #[test]
    fn beats_fixed_width_on_skewed_data() {
        let freqs = skewed();
        let code = CanonicalCode::from_frequencies(&freqs);
        // 8 symbols would need 3 fixed bits; Huffman must do better here.
        assert!(code.expected_length(&freqs) < 3.0);
        // And can never beat the entropy.
        let total: u64 = freqs.iter().sum();
        let entropy: f64 = freqs
            .iter()
            .map(|&f| {
                let p = f as f64 / total as f64;
                -p * p.log2()
            })
            .sum();
        assert!(code.expected_length(&freqs) >= entropy - 1e-9);
    }

    #[test]
    fn zero_frequency_symbols_get_no_code() {
        let code = CanonicalCode::from_frequencies(&[10, 0, 5]);
        assert_eq!(code.length(1), 0);
        assert!(code.length(0) > 0 && code.length(2) > 0);
    }

    #[test]
    fn degenerate_single_symbol_alphabet() {
        let code = CanonicalCode::from_frequencies(&[0, 42, 0]);
        assert_eq!(code.length(1), 1);
        let mut w = BitWriter::new();
        code.encode(&mut w, 1);
        code.encode(&mut w, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(code.decode(&mut r), Some(1));
        assert_eq!(code.decode(&mut r), Some(1));
    }

    #[test]
    #[should_panic(expected = "no code")]
    fn encoding_untrained_symbol_panics() {
        let code = CanonicalCode::from_frequencies(&[10, 0]);
        let mut w = BitWriter::new();
        code.encode(&mut w, 1);
    }

    #[test]
    fn decode_detects_truncation() {
        let code = CanonicalCode::from_frequencies(&skewed());
        let mut w = BitWriter::new();
        code.encode(&mut w, 7); // longest code
        let bytes = w.into_bytes();
        // Cut the stream to a single bit: no valid symbol completes.
        let mut r = BitReader::new(&bytes[..0]);
        assert_eq!(code.decode(&mut r), None);
    }
}
