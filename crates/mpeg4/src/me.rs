//! Motion-estimation search algorithms.
//!
//! Each algorithm returns, besides the chosen motion vector, the **exact
//! trace of `GetSad` calls** it made (candidate position + interpolation
//! kind + SAD). The trace is what drives the VLIW simulator: the
//! experiment harness replays every call against the simulated `GetSad`
//! kernels, so the simulated instruction mix matches the host-side search
//! decision for decision.
//!
//! The default algorithm is the diamond search with half-sample refinement,
//! which yields a diagonal-interpolation share of `GetSad` calls close to
//! the 18 % the paper reports for its sequence. A full search is provided
//! as the exhaustive golden baseline (and shows why it would dilute the
//! diagonal share to a few percent), along with three-step and spiral
//! searches for the ablation benches.

use std::collections::HashSet;

use crate::sad::{candidate_fits, get_sad_approx, interp_mode_of, ApproxSad, InterpKind};
use crate::types::{Mv, Plane};
use crate::MB;

/// One recorded `GetSad` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SadCall {
    /// Candidate top-left x (integer samples, in the reference frame).
    pub cx: usize,
    /// Candidate top-left y.
    pub cy: usize,
    /// Interpolation kind.
    pub kind: InterpKind,
    /// The SAD this call returned.
    pub sad: u32,
}

/// Result of searching one macroblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MbMotion {
    /// Best motion vector, half-sample units.
    pub mv: Mv,
    /// Its SAD.
    pub best_sad: u32,
    /// Every `GetSad` call made, in order.
    pub calls: Vec<SadCall>,
}

/// The search strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchAlgorithm {
    /// Exhaustive integer search of `(2·range+1)²` candidates.
    Full {
        /// Search range in integer samples.
        range: i16,
    },
    /// Classic three-step search (steps 4, 2, 1).
    ThreeStep,
    /// Diamond search (LDSP/SDSP), the default.
    Diamond,
    /// Spiral scan outward from the prediction with early termination.
    Spiral {
        /// Search range in integer samples.
        range: i16,
        /// Stop as soon as a SAD at or below this is found.
        threshold: u32,
    },
}

/// A configured motion search.
///
/// ```
/// use mpeg4_enc::me::MotionSearch;
/// use mpeg4_enc::types::{Mv, Plane};
///
/// let prev = Plane::new(64, 48);
/// let cur = prev.clone();
/// let m = MotionSearch::default().search_mb(&cur, &prev, 1, 1, Mv::default());
/// assert_eq!(m.best_sad, 0); // identical frames: the zero vector wins
/// assert!(!m.calls.is_empty()); // and the GetSad trace is recorded
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionSearch {
    /// Integer-sample search strategy.
    pub algorithm: SearchAlgorithm,
    /// Whether to refine to half-sample precision (the case study's
    /// sub-pixel motion vectors).
    pub half_sample: bool,
    /// The SAD approximation every candidate is evaluated with. The
    /// recorded trace carries the *approximate* SADs, so the simulator
    /// replays exactly what the search decided on.
    pub approx: ApproxSad,
}

impl Default for MotionSearch {
    fn default() -> Self {
        MotionSearch {
            algorithm: SearchAlgorithm::Diamond,
            half_sample: true,
            approx: ApproxSad::Exact,
        }
    }
}

/// Search bookkeeping: dedupes candidates and records the trace.
struct SearchCtx<'a> {
    cur: &'a Plane,
    prev: &'a Plane,
    rx: usize,
    ry: usize,
    approx: ApproxSad,
    visited: HashSet<(i32, i32)>,
    calls: Vec<SadCall>,
    best: (Mv, u32),
}

impl<'a> SearchCtx<'a> {
    fn new(cur: &'a Plane, prev: &'a Plane, mbx: usize, mby: usize, approx: ApproxSad) -> Self {
        SearchCtx {
            cur,
            prev,
            rx: mbx * MB,
            ry: mby * MB,
            approx,
            visited: HashSet::new(),
            calls: Vec::new(),
            best: (Mv::default(), u32::MAX),
        }
    }

    /// Evaluates the candidate at motion vector `mv` (half-sample units);
    /// returns its SAD, or `None` when out of frame or already visited.
    fn try_mv(&mut self, mv: Mv) -> Option<u32> {
        let key = (i32::from(mv.x), i32::from(mv.y));
        if !self.visited.insert(key) {
            return None;
        }
        let kind = interp_mode_of(mv);
        let (ix, iy) = mv.int_part();
        let cx = self.rx as isize + isize::from(ix);
        let cy = self.ry as isize + isize::from(iy);
        if !candidate_fits(self.prev, cx, cy, kind) {
            return None;
        }
        let (cx, cy) = (cx as usize, cy as usize);
        let sad = get_sad_approx(
            self.cur,
            self.rx,
            self.ry,
            self.prev,
            cx,
            cy,
            kind,
            self.approx,
        );
        self.calls.push(SadCall { cx, cy, kind, sad });
        if sad < self.best.1 {
            self.best = (mv, sad);
        }
        Some(sad)
    }
}

impl MotionSearch {
    /// Searches macroblock `(mbx, mby)` of `cur` in the reconstructed
    /// previous frame `prev`, starting from the prediction `pred`
    /// (half-sample units; typically the median of neighbouring MVs).
    ///
    /// # Panics
    ///
    /// Panics if the macroblock coordinates leave the plane.
    #[must_use]
    pub fn search_mb(
        &self,
        cur: &Plane,
        prev: &Plane,
        mbx: usize,
        mby: usize,
        pred: Mv,
    ) -> MbMotion {
        assert!(mbx < cur.mbs_x() && mby < cur.mbs_y(), "MB out of frame");
        let mut ctx = SearchCtx::new(cur, prev, mbx, mby, self.approx);
        // Every strategy evaluates the zero vector and the prediction.
        let _ = ctx.try_mv(Mv::default());
        let (px, py) = pred.int_part();
        let start = Mv::from_int(px, py);
        let _ = ctx.try_mv(start);
        let center = if ctx.best.0 == start {
            start
        } else {
            Mv::default()
        };
        match self.algorithm {
            SearchAlgorithm::Full { range } => self.full(&mut ctx, range),
            SearchAlgorithm::ThreeStep => self.three_step(&mut ctx, center),
            SearchAlgorithm::Diamond => self.diamond(&mut ctx, center),
            SearchAlgorithm::Spiral { range, threshold } => {
                self.spiral(&mut ctx, center, range, threshold);
            }
        }
        if self.half_sample {
            self.refine_half(&mut ctx);
        }
        let (mv, best_sad) = ctx.best;
        MbMotion {
            mv,
            best_sad,
            calls: ctx.calls,
        }
    }

    fn full(&self, ctx: &mut SearchCtx<'_>, range: i16) {
        for dy in -range..=range {
            for dx in -range..=range {
                let _ = ctx.try_mv(Mv::from_int(dx, dy));
            }
        }
    }

    fn three_step(&self, ctx: &mut SearchCtx<'_>, start: Mv) {
        let mut center = start;
        for step in [4i16, 2, 1] {
            let mut best = center;
            for dy in [-step, 0, step] {
                for dx in [-step, 0, step] {
                    let mv = Mv::new(center.x + dx * 2, center.y + dy * 2);
                    if ctx.try_mv(mv).is_some() && ctx.best.0 == mv {
                        best = mv;
                    }
                }
            }
            center = best;
        }
    }

    fn diamond(&self, ctx: &mut SearchCtx<'_>, start: Mv) {
        // Large diamond search pattern until the center is best, then one
        // small diamond pass.
        const LDSP: [(i16, i16); 8] = [
            (0, -2),
            (1, -1),
            (2, 0),
            (1, 1),
            (0, 2),
            (-1, 1),
            (-2, 0),
            (-1, -1),
        ];
        const SDSP: [(i16, i16); 4] = [(0, -1), (1, 0), (0, 1), (-1, 0)];
        let mut center = start;
        let _ = ctx.try_mv(center);
        for _round in 0..32 {
            for (dx, dy) in LDSP {
                let _ = ctx.try_mv(Mv::new(center.x + dx * 2, center.y + dy * 2));
            }
            let best = ctx.best.0;
            // Only integer positions participate; best is integer here.
            if best == center {
                break;
            }
            center = best;
        }
        for (dx, dy) in SDSP {
            let _ = ctx.try_mv(Mv::new(center.x + dx * 2, center.y + dy * 2));
        }
    }

    fn spiral(&self, ctx: &mut SearchCtx<'_>, start: Mv, range: i16, threshold: u32) {
        'outer: for radius in 0..=range {
            for dy in -radius..=radius {
                for dx in -radius..=radius {
                    if dx.abs() != radius && dy.abs() != radius {
                        continue; // only the ring at this radius
                    }
                    let _ = ctx.try_mv(Mv::new(start.x + dx * 2, start.y + dy * 2));
                    if ctx.best.1 <= threshold {
                        break 'outer;
                    }
                }
            }
        }
    }

    fn refine_half(&self, ctx: &mut SearchCtx<'_>) {
        let center = ctx.best.0;
        for dy in -1i16..=1 {
            for dx in -1i16..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let _ = ctx.try_mv(Mv::new(center.x + dx, center.y + dy));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textured plane shifted by an exact integer offset between frames.
    fn shifted_pair(dx: isize, dy: isize) -> (Plane, Plane) {
        let w = 96;
        let h = 80;
        let mut prev = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = ((x * 7) ^ (y * 13)) % 251;
                prev.set(x, y, v as u8);
            }
        }
        let mut cur = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                cur.set(x, y, prev.at_clamped(x as isize + dx, y as isize + dy));
            }
        }
        (cur, prev)
    }

    #[test]
    fn full_search_finds_exact_shift() {
        let (cur, prev) = shifted_pair(3, -2);
        let ms = MotionSearch {
            algorithm: SearchAlgorithm::Full { range: 8 },
            half_sample: true,
            approx: ApproxSad::Exact,
        };
        let m = ms.search_mb(&cur, &prev, 2, 2, Mv::default());
        assert_eq!(m.mv, Mv::from_int(3, -2));
        assert_eq!(m.best_sad, 0);
    }

    #[test]
    fn diamond_finds_exact_shift() {
        let (cur, prev) = shifted_pair(4, 1);
        let ms = MotionSearch::default();
        let m = ms.search_mb(&cur, &prev, 2, 2, Mv::default());
        assert_eq!(m.mv, Mv::from_int(4, 1));
        assert_eq!(m.best_sad, 0);
    }

    #[test]
    fn three_step_finds_exact_shift() {
        let (cur, prev) = shifted_pair(-3, 2);
        let ms = MotionSearch {
            algorithm: SearchAlgorithm::ThreeStep,
            half_sample: false,
            approx: ApproxSad::Exact,
        };
        let m = ms.search_mb(&cur, &prev, 2, 2, Mv::default());
        assert_eq!(m.mv, Mv::from_int(-3, 2));
    }

    #[test]
    fn spiral_terminates_early_on_match() {
        let (cur, prev) = shifted_pair(0, 0);
        let ms = MotionSearch {
            algorithm: SearchAlgorithm::Spiral {
                range: 8,
                threshold: 0,
            },
            half_sample: false,
            approx: ApproxSad::Exact,
        };
        let m = ms.search_mb(&cur, &prev, 1, 1, Mv::default());
        assert_eq!(m.best_sad, 0);
        // Early exit: far fewer calls than the full 17² candidates.
        assert!(m.calls.len() < 10, "{} calls", m.calls.len());
    }

    #[test]
    fn diamond_visits_fewer_candidates_than_full_search() {
        // Flat-motion synthetic sequence: a uniform (2, 1) shift.
        let (cur, prev) = shifted_pair(2, 1);
        let full = MotionSearch {
            algorithm: SearchAlgorithm::Full { range: 8 },
            half_sample: true,
            approx: ApproxSad::Exact,
        };
        let diamond = MotionSearch::default();
        let f = full.search_mb(&cur, &prev, 2, 2, Mv::default());
        let d = diamond.search_mb(&cur, &prev, 2, 2, Mv::default());
        assert_eq!(d.mv, f.mv, "diamond must find the same motion vector");
        assert_eq!(d.best_sad, f.best_sad);
        assert!(
            d.calls.len() < f.calls.len(),
            "diamond visited {} candidates, full search {}",
            d.calls.len(),
            f.calls.len()
        );
    }

    #[test]
    fn spiral_visits_fewer_candidates_than_full_search() {
        let (cur, prev) = shifted_pair(2, 1);
        let full = MotionSearch {
            algorithm: SearchAlgorithm::Full { range: 8 },
            half_sample: true,
            approx: ApproxSad::Exact,
        };
        let spiral = MotionSearch {
            algorithm: SearchAlgorithm::Spiral {
                range: 8,
                threshold: 0,
            },
            half_sample: true,
            approx: ApproxSad::Exact,
        };
        let f = full.search_mb(&cur, &prev, 2, 2, Mv::default());
        let s = spiral.search_mb(&cur, &prev, 2, 2, Mv::default());
        assert_eq!(s.mv, f.mv, "spiral must find the same motion vector");
        assert_eq!(s.best_sad, f.best_sad);
        assert!(
            s.calls.len() < f.calls.len(),
            "spiral visited {} candidates, full search {}",
            s.calls.len(),
            f.calls.len()
        );
    }

    #[test]
    fn approximate_trace_carries_approximate_sads() {
        let (cur, prev) = shifted_pair(1, 1);
        let approx = ApproxSad::SubsampledRows { step: 2 };
        let ms = MotionSearch {
            approx,
            ..MotionSearch::default()
        };
        let m = ms.search_mb(&cur, &prev, 1, 1, Mv::default());
        for c in &m.calls {
            assert_eq!(
                c.sad,
                crate::sad::get_sad_approx(&cur, 16, 16, &prev, c.cx, c.cy, c.kind, approx),
                "{c:?}"
            );
        }
    }

    #[test]
    fn trace_has_no_duplicate_candidates() {
        let (cur, prev) = shifted_pair(2, 2);
        let ms = MotionSearch::default();
        let m = ms.search_mb(&cur, &prev, 1, 1, Mv::default());
        let mut seen = HashSet::new();
        for c in &m.calls {
            assert!(seen.insert((c.cx, c.cy, c.kind)), "duplicate {c:?}");
        }
    }

    #[test]
    fn trace_sads_match_golden() {
        let (cur, prev) = shifted_pair(1, 1);
        let ms = MotionSearch::default();
        let m = ms.search_mb(&cur, &prev, 1, 1, Mv::default());
        for c in &m.calls {
            assert_eq!(
                c.sad,
                crate::sad::get_sad(&cur, 16, 16, &prev, c.cx, c.cy, c.kind),
                "{c:?}"
            );
        }
    }

    #[test]
    fn half_sample_refinement_evaluates_diagonals() {
        let (cur, prev) = shifted_pair(2, 0);
        let ms = MotionSearch::default();
        let m = ms.search_mb(&cur, &prev, 2, 2, Mv::default());
        let diag = m
            .calls
            .iter()
            .filter(|c| c.kind == InterpKind::Diag)
            .count();
        assert!(diag >= 2, "diagonal candidates evaluated: {diag}");
    }

    #[test]
    fn prediction_seeds_the_search() {
        let (cur, prev) = shifted_pair(6, 3);
        let ms = MotionSearch::default();
        let seeded = ms.search_mb(&cur, &prev, 2, 2, Mv::from_int(6, 3));
        assert_eq!(seeded.mv, Mv::from_int(6, 3));
        // With a perfect prediction the search converges in few calls.
        assert!(seeded.calls.len() <= 30, "{} calls", seeded.calls.len());
    }

    #[test]
    fn candidates_never_leave_the_frame() {
        let (cur, prev) = shifted_pair(0, 0);
        let ms = MotionSearch {
            algorithm: SearchAlgorithm::Full { range: 20 },
            half_sample: true,
            approx: ApproxSad::Exact,
        };
        // Corner macroblock: large range would leave the plane.
        let m = ms.search_mb(&cur, &prev, 0, 0, Mv::default());
        for c in &m.calls {
            assert!(c.cx + c.kind.cols() <= prev.width());
            assert!(c.cy + c.kind.rows() <= prev.height());
        }
    }
}
