//! RFU configurations: the paper's `#x` contexts.

/// Data bandwidth available to the RFU for autonomous memory access in the
/// loop-level experiments (Table 2): "one 32-bit, one 64-bit or two 64-bit
/// data accesses per cycle".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RfuBandwidth {
    /// One 32-bit access per cycle (`1x32`).
    #[default]
    B1x32,
    /// One 64-bit access per cycle (`1x64`).
    B1x64,
    /// Two 64-bit accesses per cycle (`2x64`).
    B2x64,
}

impl RfuBandwidth {
    /// Cycles of the load stage consumed per predictor macroblock row
    /// (5 words = 20 bytes): the loop initiation interval under this
    /// bandwidth.
    #[must_use]
    pub fn cycles_per_row(self) -> u64 {
        match self {
            // 5 words, one per cycle.
            RfuBandwidth::B1x32 => 5,
            // 3 double-word accesses, one per cycle.
            RfuBandwidth::B1x64 => 3,
            // 3 double-word accesses, two per cycle.
            RfuBandwidth::B2x64 => 2,
        }
    }

    /// The paper's label for this option.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RfuBandwidth::B1x32 => "1x32",
            RfuBandwidth::B1x64 => "1x64",
            RfuBandwidth::B2x64 => "2x64",
        }
    }

    /// All bandwidth options in Table 2's row order.
    #[must_use]
    pub fn all() -> [RfuBandwidth; 3] {
        [
            RfuBandwidth::B1x32,
            RfuBandwidth::B1x64,
            RfuBandwidth::B2x64,
        ]
    }
}

/// SAD approximation realized by the RFU hardware (both the instruction
/// kernels and the kernel-loop instruction).
///
/// This mirrors the encoder-side `ApproxSad` knob bit for bit — the host
/// search records approximate SADs in its trace and the simulator replays
/// them against these hardware semantics, so the two must agree exactly.
/// The RFU crate cannot depend on the encoder crate, hence the mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SadApprox {
    /// Bit-exact SAD over all 256 pixels.
    #[default]
    Exact,
    /// Only rows `0, step, 2·step, …` contribute; the hardware skips the
    /// load and compute stages of the other rows entirely.
    SubsampledRows {
        /// Row subsampling step (2 or 4).
        step: u8,
    },
    /// The low `bits` bits of every predictor and reference pixel are
    /// forced to zero before the absolute difference (narrower adders).
    ReducedPrecision {
        /// Number of low bits dropped (1–4).
        bits: u8,
    },
    /// Rows accumulate in order; once the partial SAD exceeds the
    /// threshold the remaining rows no longer change the result. The loop
    /// latency stays fixed — only the datapath gates off.
    EarlyExit {
        /// Partial-SAD threshold that stops further accumulation.
        threshold: u32,
    },
}

impl SadApprox {
    /// Whether this is the exact mode.
    #[must_use]
    pub fn is_exact(self) -> bool {
        matches!(self, SadApprox::Exact)
    }

    /// The AND-mask applied to every pixel before differencing.
    #[must_use]
    pub fn pixel_mask(self) -> u8 {
        match self {
            SadApprox::ReducedPrecision { bits } => !((1u8 << bits.min(7)) - 1),
            _ => 0xFF,
        }
    }

    /// Row stride of the accumulation (1 except for row subsampling).
    #[must_use]
    pub fn row_step(self) -> u32 {
        match self {
            SadApprox::SubsampledRows { step } => u32::from(step.max(1)),
            _ => 1,
        }
    }
}

/// Parameters of the long-latency ME kernel-loop instruction.
///
/// The static loop latency is pipelined over load, computation and write
/// stages; the technology-scaling factor β multiplies *only* the compute
/// stages ("the read/write stages are constrained by the external
/// architecture and therefore they are unchanged").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeLoopCfg {
    /// Data bandwidth of the RFU load port.
    pub bandwidth: RfuBandwidth,
    /// Technology-scaling factor β (1 = same speed as the core's standard
    /// cells; 5 = the paper's FPGA-like worst case).
    pub beta: u64,
    /// Compute pipeline depth at β = 1 (interpolate, absolute-difference,
    /// accumulate).
    pub compute_depth: u64,
    /// Pipeline prologue (address setup, first-row latency).
    pub prologue: u64,
    /// Pipeline epilogue (final accumulation, result write).
    pub epilogue: u64,
    /// Frame row stride in bytes (the encoded image width).
    pub stride: u32,
    /// Whether candidate predictor rows are served from Line Buffer B
    /// (the two-line-buffer scheme of Table 7; memory is then accessed at
    /// 1×32 only on misses).
    pub use_line_buffer_b: bool,
    /// The SAD approximation the loop datapath implements.
    pub approx: SadApprox,
}

impl MeLoopCfg {
    /// A configuration with the paper's pipeline shape and the given
    /// bandwidth/β.
    #[must_use]
    pub fn new(bandwidth: RfuBandwidth, beta: u64, stride: u32) -> Self {
        MeLoopCfg {
            bandwidth,
            beta,
            compute_depth: 3,
            // Software-pipeline fill through the data cache: address setup
            // plus a cache round trip before the first row retires.
            prologue: 16,
            epilogue: 4,
            stride,
            use_line_buffer_b: false,
            approx: SadApprox::Exact,
        }
    }

    /// The same loop with an approximate SAD datapath.
    #[must_use]
    pub fn with_approx(mut self, approx: SadApprox) -> Self {
        self.approx = approx;
        self
    }

    /// The two-line-buffer variant (Table 7): rows stream from Line Buffer
    /// B at one row per cycle; cache is accessed (1×32) only on misses.
    /// The pipeline fills from the local buffer, so the prologue shrinks.
    #[must_use]
    pub fn with_line_buffer_b(mut self) -> Self {
        self.use_line_buffer_b = true;
        self.bandwidth = RfuBandwidth::B1x32;
        self.prologue = 6;
        self
    }

    /// Cycles per predictor row in the load stage.
    #[must_use]
    pub fn initiation_interval(&self) -> u64 {
        if self.use_line_buffer_b {
            // One line-buffer row access per cycle (2-cycle latency,
            // throughput 1).
            1
        } else {
            self.bandwidth.cycles_per_row()
        }
    }

    /// The compiler-visible static loop latency `Lat` (Table 2's `Lat`
    /// column): prologue + 17 rows × II + β·depth + epilogue, plus the
    /// Line Buffer B access pipe. The line buffer lives *inside* the RFU
    /// fabric, so its 2-cycle access scales with β — unlike the read/write
    /// stages, which are constrained by the external architecture and stay
    /// fixed (the paper's technology-scaling rule).
    #[must_use]
    pub fn static_latency(&self) -> u64 {
        let lb_pipe = if self.use_line_buffer_b {
            crate::LineBufferB::ACCESS_LATENCY * self.beta
        } else {
            0
        };
        self.prologue
            + self.loop_rows() * self.initiation_interval()
            + self.beta * self.compute_depth
            + self.epilogue
            + lb_pipe
    }

    /// Rows the pipelined loop statically iterates. Row subsampling
    /// shortens the schedule: each sampled row needs itself plus (worst
    /// case, for vertical/diagonal interpolation) the row below, so the
    /// compiler sees `2·(16/step)` rows regardless of interpolation mode.
    /// Early exit and reduced precision keep the full 17-row schedule —
    /// they are datapath changes, not schedule changes.
    #[must_use]
    pub fn loop_rows(&self) -> u64 {
        match self.approx {
            SadApprox::SubsampledRows { step } if step > 1 => {
                2 * (crate::MB_SIZE as u64 / u64::from(step))
            }
            _ => crate::PRED_ROWS as u64,
        }
    }
}

/// Semantics of a short (1-cycle) `RFUEXEC` custom instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortOp {
    /// Scenario A2: diagonal half-pel interpolation over 4 pixels. The four
    /// previously sent words are two adjacent words of predictor row *y*
    /// and two of row *y+1*; the explicit operand carries the byte
    /// alignment (0–3). The result packs the four interpolated pixels.
    Diag4,
    /// Scenario A3: diagonal interpolation over a 16-pixel macroblock row.
    /// Ten previously sent words are the 5-word footprints of rows *y* and
    /// *y+1*; the explicit operand is the alignment. The result is word 0;
    /// words 1–3 are fetched with [`ShortOp::ReadOut`].
    Diag16,
    /// Reads result word `1..=3` left by a previous [`ShortOp::Diag16`].
    ReadOut(u8),
}

/// Prefetch pattern hard-wired in a custom prefetch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchPattern {
    /// Prefetch the 16 rows of the *reference* macroblock and gather them
    /// into Line Buffer A as each access completes (setting `Done` flags).
    ReferenceMb {
        /// Frame row stride in bytes.
        stride: u32,
    },
    /// Prefetch the 17 rows of a *candidate predictor* macroblock (one
    /// cache-line request per row plus the crossing line when the row
    /// straddles a line).
    CandidateMb {
        /// Frame row stride in bytes.
        stride: u32,
    },
    /// As [`PrefetchPattern::CandidateMb`], but also allocate the rows in
    /// Line Buffer B (double-buffered bank switch per macroblock; fully
    /// associative dedup against already-pending lines).
    CandidateMbToLbB {
        /// Frame row stride in bytes.
        stride: u32,
    },
}

/// One RFU configuration (`#x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfuConfig {
    /// A short 1-cycle custom instruction.
    Short(ShortOp),
    /// The long-latency ME kernel loop.
    MeLoop(MeLoopCfg),
    /// The long-latency 8×8 forward-DCT instruction (future-work
    /// extension).
    DctLoop(crate::DctLoopCfg),
    /// A custom prefetch pattern.
    Prefetch(PrefetchPattern),
}

/// Well-known configuration ids used by the kernels and experiments.
pub mod cfgs {
    /// A2 diagonal interpolation over 4 pixels.
    pub const DIAG4: u16 = 1;
    /// A3 diagonal interpolation over 16 pixels (compute + word 0).
    pub const DIAG16: u16 = 2;
    /// A3 result word 1.
    pub const DIAG16_R1: u16 = 3;
    /// A3 result word 2.
    pub const DIAG16_R2: u16 = 4;
    /// A3 result word 3.
    pub const DIAG16_R3: u16 = 5;
    /// The ME kernel-loop instruction.
    pub const ME_LOOP: u16 = 8;
    /// The 8×8 forward-DCT instruction (future-work extension).
    pub const DCT_LOOP: u16 = 9;
    /// Reference-macroblock prefetch (gather into Line Buffer A).
    pub const PREF_REF: u16 = 16;
    /// Candidate-macroblock prefetch.
    pub const PREF_CAND: u16 = 17;
    /// Candidate-macroblock prefetch into Line Buffer B.
    pub const PREF_CAND_LBB: u16 = 18;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_per_row_match_paper_bandwidths() {
        assert_eq!(RfuBandwidth::B1x32.cycles_per_row(), 5);
        assert_eq!(RfuBandwidth::B1x64.cycles_per_row(), 3);
        assert_eq!(RfuBandwidth::B2x64.cycles_per_row(), 2);
    }

    #[test]
    fn static_latency_shape() {
        let stride = 176;
        let l32 = MeLoopCfg::new(RfuBandwidth::B1x32, 1, stride).static_latency();
        let l64 = MeLoopCfg::new(RfuBandwidth::B1x64, 1, stride).static_latency();
        let l2x64 = MeLoopCfg::new(RfuBandwidth::B2x64, 1, stride).static_latency();
        assert!(l32 > l64 && l64 > l2x64, "more bandwidth ⇒ shorter loop");
        assert_eq!(l32, 16 + 17 * 5 + 3 + 4);
    }

    #[test]
    fn beta_adds_fixed_latency_across_bandwidths() {
        // The paper: "the loop latency increase is fixed among the three
        // cases (it is 12 cycles)".
        for bw in RfuBandwidth::all() {
            let l1 = MeLoopCfg::new(bw, 1, 176).static_latency();
            let l5 = MeLoopCfg::new(bw, 5, 176).static_latency();
            assert_eq!(l5 - l1, 12, "{}", bw.label());
        }
    }

    #[test]
    fn subsampling_shortens_the_loop_schedule() {
        let base = MeLoopCfg::new(RfuBandwidth::B1x32, 1, 176);
        let s2 = base.with_approx(SadApprox::SubsampledRows { step: 2 });
        let s4 = base.with_approx(SadApprox::SubsampledRows { step: 4 });
        assert_eq!(base.loop_rows(), 17);
        assert_eq!(s2.loop_rows(), 16);
        assert_eq!(s4.loop_rows(), 8);
        assert!(s4.static_latency() < s2.static_latency());
        assert!(s2.static_latency() < base.static_latency());
    }

    #[test]
    fn datapath_approximations_keep_the_schedule() {
        let base = MeLoopCfg::new(RfuBandwidth::B1x64, 5, 176);
        for approx in [
            SadApprox::ReducedPrecision { bits: 2 },
            SadApprox::EarlyExit { threshold: 4096 },
        ] {
            assert_eq!(
                base.with_approx(approx).static_latency(),
                base.static_latency(),
                "{approx:?}"
            );
        }
    }

    #[test]
    fn line_buffer_b_shortens_the_loop() {
        let base = MeLoopCfg::new(RfuBandwidth::B1x32, 1, 176);
        let two_lb = base.with_line_buffer_b();
        assert!(two_lb.static_latency() < base.static_latency());
        assert_eq!(two_lb.initiation_interval(), 1);
    }
}
