//! The Reconfigurable Functional Unit itself: configuration store, input
//! registers, execution dispatch.

use std::collections::HashMap;
use std::fmt;

use rvliw_fault::{FaultInjector, LbRowFault};
use rvliw_mem::{MemError, MemorySystem};
use rvliw_trace::{FaultEvent, NullTracer, RfuEvent, Tracer};

use crate::config::{cfgs, MeLoopCfg, PrefetchPattern, RfuConfig, ShortOp};
use crate::line_buffer::{LineBufferA, LineBufferB};
use crate::meloop::{run_me_loop, InterpMode};
use crate::reconfig::ReconfigModel;
use crate::stats::RfuStats;
use crate::{MB_SIZE, PRED_ROWS, PRED_ROW_BYTES};

/// Result of dispatching an RFU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The destination-register value.
    pub value: u32,
    /// Cycles the RFU is busy (the instruction's static latency).
    pub busy: u64,
    /// Machine-stall cycles inflicted (cache misses, line-buffer waits,
    /// reconfiguration penalties).
    pub stall: u64,
}

/// Errors raised by RFU dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RfuError {
    /// No configuration registered under this id.
    UnknownConfig(u16),
    /// The configuration cannot be used with this operation (e.g. `RFUPREF`
    /// on a compute configuration).
    WrongKind {
        /// The configuration id.
        cfg: u16,
        /// What the operation required.
        expected: &'static str,
    },
    /// Not enough operands were `RFUSEND`-loaded before `RFUEXEC`.
    MissingOperands {
        /// The configuration id.
        cfg: u16,
        /// Operands required.
        needed: usize,
        /// Operands present.
        got: usize,
    },
    /// A memory access on behalf of the RFU was rejected.
    Mem(MemError),
    /// A kernel loop waited on a line-buffer row whose `Done` flag can
    /// never arrive (deadlock watchdog; see
    /// [`LB_DEADLOCK_LIMIT`](crate::LB_DEADLOCK_LIMIT)).
    LineBufferDeadlock {
        /// The row index waited on.
        row: u32,
        /// Cycles the loop would have waited.
        waited: u64,
    },
}

impl fmt::Display for RfuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfuError::UnknownConfig(c) => write!(f, "unknown RFU configuration #{c}"),
            RfuError::WrongKind { cfg, expected } => {
                write!(f, "RFU configuration #{cfg} is not a {expected}")
            }
            RfuError::MissingOperands { cfg, needed, got } => write!(
                f,
                "RFU configuration #{cfg} needs {needed} sent operands, got {got}"
            ),
            RfuError::Mem(e) => write!(f, "RFU memory access rejected: {e}"),
            RfuError::LineBufferDeadlock { row, waited } => write!(
                f,
                "deadlock: line-buffer row {row} will never complete (wait of {waited} cycles)"
            ),
        }
    }
}

impl std::error::Error for RfuError {}

impl From<MemError> for RfuError {
    fn from(e: MemError) -> Self {
        RfuError::Mem(e)
    }
}

/// Exact diagonal half-sample interpolation over 4 pixels (scenario A2).
///
/// `words` are two adjacent packed words of predictor row *y* followed by
/// two of row *y+1*; `align` (0–3) selects the 5-byte window. Returns the
/// four interpolated pixels packed little-endian.
#[must_use]
pub fn diag4(words: [u32; 4], align: u32) -> u32 {
    let row = |w0: u32, w1: u32| {
        let mut b = [0u8; 8];
        b[..4].copy_from_slice(&w0.to_le_bytes());
        b[4..].copy_from_slice(&w1.to_le_bytes());
        b
    };
    let y = row(words[0], words[1]);
    let y1 = row(words[2], words[3]);
    let a = align as usize;
    let mut out = [0u8; 4];
    for (i, o) in out.iter_mut().enumerate() {
        let s = u16::from(y[a + i])
            + u16::from(y[a + i + 1])
            + u16::from(y1[a + i])
            + u16::from(y1[a + i + 1]);
        *o = ((s + 2) >> 2) as u8;
    }
    u32::from_le_bytes(out)
}

/// Exact diagonal interpolation over a 16-pixel macroblock row (scenario
/// A3): `row_y`/`row_y1` are the 5-word packed footprints, `align` the byte
/// alignment. Returns the 16 interpolated pixels as four packed words.
#[must_use]
pub fn diag16(row_y: [u32; 5], row_y1: [u32; 5], align: u32) -> [u32; 4] {
    let unpack = |w: [u32; 5]| {
        let mut b = [0u8; 20];
        for (i, word) in w.iter().enumerate() {
            b[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        b
    };
    let y = unpack(row_y);
    let y1 = unpack(row_y1);
    let a = align as usize;
    let mut out = [0u32; 4];
    for (g, word) in out.iter_mut().enumerate() {
        let mut bytes = [0u8; 4];
        for (i, byte) in bytes.iter_mut().enumerate() {
            let p = a + g * 4 + i;
            let s = u16::from(y[p]) + u16::from(y[p + 1]) + u16::from(y1[p]) + u16::from(y1[p + 1]);
            *byte = ((s + 2) >> 2) as u8;
        }
        *word = u32::from_le_bytes(bytes);
    }
    out
}

/// The Reconfigurable Functional Unit.
///
/// Owns the configuration store, the input operand registers filled by
/// `RFUSEND`, both line buffers and the reconfiguration model. All timing
/// interaction with the memory hierarchy goes through the
/// [`MemorySystem`] handed to each dispatch, so RFU-induced stalls appear in
/// the same cache statistics the paper reports.
///
/// ```
/// use rvliw_rfu::{cfgs, MeLoopCfg, Rfu, RfuBandwidth};
/// use rvliw_mem::{MemConfig, MemorySystem};
///
/// let mut rfu = Rfu::with_case_study_configs(MeLoopCfg::new(RfuBandwidth::B1x32, 1, 176));
/// let mut mem = MemorySystem::new(MemConfig::st200_loop_level());
/// // A2's 4-pixel diagonal interpolation: send two word pairs, execute.
/// rfu.init(cfgs::DIAG4, 0)?;
/// rfu.send(cfgs::DIAG4, &[0x0202_0202, 0x0202_0202])?;
/// rfu.send(cfgs::DIAG4, &[0x0404_0404, 0x0404_0404])?;
/// let out = rfu.exec(cfgs::DIAG4, &[0], &mut mem, 0)?;
/// assert_eq!(out.value, 0x0303_0303); // (2+2+4+4+2)>>2 per pixel
/// # Ok::<(), rvliw_rfu::RfuError>(())
/// ```
#[derive(Debug)]
pub struct Rfu {
    configs: HashMap<u16, RfuConfig>,
    current: Option<u16>,
    inputs: Vec<u32>,
    out_words: [u32; 4],
    /// Line Buffer A: the gathered reference macroblock.
    pub lb_a: LineBufferA,
    /// Line Buffer B: candidate predictor lines (Table 7 scheme).
    pub lb_b: LineBufferB,
    reconfig: ReconfigModel,
    /// Activity counters.
    pub stats: RfuStats,
    fault: FaultInjector,
}

impl Default for Rfu {
    fn default() -> Self {
        Self::new()
    }
}

impl Rfu {
    /// An RFU with no configurations and the paper's zero-penalty
    /// reconfiguration assumption.
    #[must_use]
    pub fn new() -> Self {
        Rfu {
            configs: HashMap::new(),
            current: None,
            inputs: Vec::new(),
            out_words: [0; 4],
            lb_a: LineBufferA::new(),
            lb_b: LineBufferB::new(),
            reconfig: ReconfigModel::zero_penalty(),
            stats: RfuStats::default(),
            fault: FaultInjector::inert(),
        }
    }

    /// Installs a fault injector; the default is the inert injector,
    /// under which gathers and loops behave exactly as without the
    /// fault layer.
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.fault = fault;
    }

    /// An RFU preloaded with the case study's standard configurations
    /// (`cfgs::*`) for a frame of row stride `stride`, with the ME loop in
    /// the given configuration.
    #[must_use]
    pub fn with_case_study_configs(me_loop: MeLoopCfg) -> Self {
        let stride = me_loop.stride;
        let mut rfu = Rfu::new();
        rfu.define(cfgs::DIAG4, RfuConfig::Short(ShortOp::Diag4));
        rfu.define(cfgs::DIAG16, RfuConfig::Short(ShortOp::Diag16));
        rfu.define(cfgs::DIAG16_R1, RfuConfig::Short(ShortOp::ReadOut(1)));
        rfu.define(cfgs::DIAG16_R2, RfuConfig::Short(ShortOp::ReadOut(2)));
        rfu.define(cfgs::DIAG16_R3, RfuConfig::Short(ShortOp::ReadOut(3)));
        rfu.define(cfgs::ME_LOOP, RfuConfig::MeLoop(me_loop));
        rfu.define(
            cfgs::DCT_LOOP,
            RfuConfig::DctLoop(crate::DctLoopCfg::new(me_loop.beta)),
        );
        rfu.define(
            cfgs::PREF_REF,
            RfuConfig::Prefetch(PrefetchPattern::ReferenceMb { stride }),
        );
        rfu.define(
            cfgs::PREF_CAND,
            RfuConfig::Prefetch(PrefetchPattern::CandidateMb { stride }),
        );
        rfu.define(
            cfgs::PREF_CAND_LBB,
            RfuConfig::Prefetch(PrefetchPattern::CandidateMbToLbB { stride }),
        );
        rfu
    }

    /// Registers (or replaces) configuration `id`.
    pub fn define(&mut self, id: u16, config: RfuConfig) {
        self.configs.insert(id, config);
    }

    /// Installs a reconfiguration-overhead model (ablations; the default is
    /// the paper's zero-penalty assumption).
    pub fn set_reconfig_model(&mut self, model: ReconfigModel) {
        self.reconfig = model;
    }

    fn lookup(&self, id: u16) -> Result<RfuConfig, RfuError> {
        self.configs
            .get(&id)
            .copied()
            .ok_or(RfuError::UnknownConfig(id))
    }

    /// `RFUINIT(#id)` at machine cycle `now`: makes `id` current. Returns
    /// the stall cycles paid to the reconfiguration model (0 under the
    /// paper's assumption).
    ///
    /// # Errors
    ///
    /// [`RfuError::UnknownConfig`] when `id` is not registered.
    pub fn init(&mut self, id: u16, now: u64) -> Result<u64, RfuError> {
        self.init_traced(id, now, &mut NullTracer)
    }

    /// [`Rfu::init`], emitting an [`RfuEvent::Init`] into `tracer`.
    ///
    /// # Errors
    ///
    /// [`RfuError::UnknownConfig`] when `id` is not registered.
    pub fn init_traced<T: Tracer + ?Sized>(
        &mut self,
        id: u16,
        now: u64,
        tracer: &mut T,
    ) -> Result<u64, RfuError> {
        let _ = self.lookup(id)?;
        self.stats.inits += 1;
        let penalty = self.reconfig.activate(id, now);
        if penalty > 0 {
            self.stats.reconfigs += 1;
            self.stats.reconfig_penalty_cycles += penalty;
        }
        self.current = Some(id);
        self.inputs.clear();
        tracer.rfu(now, RfuEvent::Init { cfg: id, penalty });
        Ok(penalty)
    }

    /// `RFUSEND(#id, …)`: appends explicit operands to the configuration's
    /// input registers.
    ///
    /// # Errors
    ///
    /// [`RfuError::UnknownConfig`] when `id` is not registered.
    pub fn send(&mut self, id: u16, values: &[u32]) -> Result<(), RfuError> {
        self.send_traced(id, values, 0, &mut NullTracer)
    }

    /// [`Rfu::send`], emitting an [`RfuEvent::Send`] at cycle `now` into
    /// `tracer`.
    ///
    /// # Errors
    ///
    /// [`RfuError::UnknownConfig`] when `id` is not registered.
    pub fn send_traced<T: Tracer + ?Sized>(
        &mut self,
        id: u16,
        values: &[u32],
        now: u64,
        tracer: &mut T,
    ) -> Result<(), RfuError> {
        let _ = self.lookup(id)?;
        if self.current != Some(id) {
            // Implicit re-activation, free under zero penalty.
            self.current = Some(id);
            self.inputs.clear();
        }
        self.stats.sends += 1;
        self.inputs.extend_from_slice(values);
        tracer.rfu(now, RfuEvent::Send { cfg: id });
        Ok(())
    }

    /// `RFUEXEC(#id, …)`: executes the configuration over the sent
    /// (implicit) and explicit operands.
    ///
    /// # Errors
    ///
    /// [`RfuError`] when the configuration is unknown, of the wrong kind, or
    /// under-supplied with operands.
    pub fn exec(
        &mut self,
        id: u16,
        srcs: &[u32],
        mem: &mut MemorySystem,
        now: u64,
    ) -> Result<ExecOutcome, RfuError> {
        self.exec_traced(id, srcs, mem, now, &mut NullTracer)
    }

    /// [`Rfu::exec`], emitting RFU pipeline and cache events into `tracer`.
    ///
    /// # Errors
    ///
    /// [`RfuError`] when the configuration is unknown, of the wrong kind, or
    /// under-supplied with operands.
    pub fn exec_traced<T: Tracer + ?Sized>(
        &mut self,
        id: u16,
        srcs: &[u32],
        mem: &mut MemorySystem,
        now: u64,
        tracer: &mut T,
    ) -> Result<ExecOutcome, RfuError> {
        let config = self.lookup(id)?;
        match config {
            RfuConfig::Short(op) => {
                self.stats.execs += 1;
                let value = self.exec_short(id, op, srcs)?;
                tracer.rfu(now, RfuEvent::ShortExec { cfg: id });
                Ok(ExecOutcome {
                    value,
                    busy: 1,
                    stall: 0,
                })
            }
            RfuConfig::MeLoop(cfg) => {
                let (&cand_addr, rest) = srcs.split_first().ok_or(RfuError::MissingOperands {
                    cfg: id,
                    needed: 3,
                    got: srcs.len(),
                })?;
                let (interp_bits, ref_addr) = match rest {
                    [i, r, ..] => (*i, *r),
                    _ => {
                        return Err(RfuError::MissingOperands {
                            cfg: id,
                            needed: 3,
                            got: srcs.len(),
                        })
                    }
                };
                let mode = InterpMode::from_bits(interp_bits);
                let run = run_me_loop(
                    &cfg,
                    cand_addr,
                    ref_addr,
                    mode,
                    &self.lb_a,
                    &mut self.lb_b,
                    mem,
                    now,
                    &mut self.stats,
                    tracer,
                )?;
                tracer.rfu(
                    now,
                    RfuEvent::LoopDone {
                        cfg: id,
                        busy: run.busy,
                        stall: run.stall,
                    },
                );
                Ok(ExecOutcome {
                    value: run.sad,
                    busy: run.busy,
                    stall: run.stall,
                })
            }
            RfuConfig::DctLoop(cfg) => {
                let (&src, rest) = srcs.split_first().ok_or(RfuError::MissingOperands {
                    cfg: id,
                    needed: 2,
                    got: srcs.len(),
                })?;
                let &dst = rest.first().ok_or(RfuError::MissingOperands {
                    cfg: id,
                    needed: 2,
                    got: srcs.len(),
                })?;
                let out = self.exec_dct_loop(&cfg, src, dst, mem, now, tracer)?;
                tracer.rfu(
                    now,
                    RfuEvent::LoopDone {
                        cfg: id,
                        busy: out.busy,
                        stall: out.stall,
                    },
                );
                Ok(out)
            }
            RfuConfig::Prefetch(_) => Err(RfuError::WrongKind {
                cfg: id,
                expected: "compute configuration",
            }),
        }
    }

    /// The long-latency DCT instruction: timed row reads, bit-true
    /// fixed-point transform, timed write-back. Blocks are 64 × i16 with a
    /// 16-byte row stride.
    fn exec_dct_loop<T: Tracer + ?Sized>(
        &mut self,
        cfg: &crate::DctLoopCfg,
        src: u32,
        dst: u32,
        mem: &mut MemorySystem,
        now: u64,
        tracer: &mut T,
    ) -> Result<ExecOutcome, RfuError> {
        // The block is 8 rows at a 16-byte stride; validate the whole
        // footprint up front so the direct `ram` loads below cannot panic
        // on CLI-supplied addresses.
        for base in [src, dst] {
            if u64::from(base) + 8 * 16 > u64::from(mem.ram.size()) {
                return Err(RfuError::Mem(MemError::OutOfRange {
                    addr: base,
                    size: 8 * 16,
                }));
            }
        }
        let mut stall = 0u64;
        let mut block = [0i32; 64];
        for r in 0..8u32 {
            let eff = now + cfg.prologue + u64::from(r) + stall;
            let acc = mem.read_traced(src + r * 16, 4, eff, tracer)?;
            stall += acc.stall;
            for x in 0..8u32 {
                block[(r * 8 + x) as usize] = mem.ram.load16(src + r * 16 + x * 2) as i16 as i32;
            }
        }
        let out = crate::dct::fdct_fixed_rfu(&block);
        let write_base = cfg.prologue + 8 + cfg.beta * cfg.compute_depth;
        for r in 0..8u32 {
            let eff = now + write_base + u64::from(r) + stall;
            for w in 0..4u32 {
                let lo = out[(r * 8 + w * 2) as usize] as u16;
                let hi = out[(r * 8 + w * 2 + 1) as usize] as u16;
                let word = u32::from(lo) | (u32::from(hi) << 16);
                let acc = mem.write_traced(dst + r * 16 + w * 4, 4, word, eff, tracer)?;
                stall += acc.stall;
            }
        }
        let busy = cfg.static_latency();
        self.stats.dct_loops += 1;
        self.stats.loop_busy_cycles += busy;
        self.stats.loop_stall_cycles += stall;
        Ok(ExecOutcome {
            value: dst,
            busy,
            stall,
        })
    }

    fn exec_short(&mut self, id: u16, op: ShortOp, srcs: &[u32]) -> Result<u32, RfuError> {
        match op {
            ShortOp::Diag4 => {
                if self.inputs.len() < 4 {
                    return Err(RfuError::MissingOperands {
                        cfg: id,
                        needed: 4,
                        got: self.inputs.len(),
                    });
                }
                let w = &self.inputs[self.inputs.len() - 4..];
                let align = srcs.first().copied().unwrap_or(0);
                let value = diag4([w[0], w[1], w[2], w[3]], align & 3);
                self.inputs.clear();
                Ok(value)
            }
            ShortOp::Diag16 => {
                if self.inputs.len() < 10 {
                    return Err(RfuError::MissingOperands {
                        cfg: id,
                        needed: 10,
                        got: self.inputs.len(),
                    });
                }
                let w = &self.inputs[self.inputs.len() - 10..];
                let align = srcs.first().copied().unwrap_or(0);
                let mut y = [0u32; 5];
                let mut y1 = [0u32; 5];
                y.copy_from_slice(&w[..5]);
                y1.copy_from_slice(&w[5..10]);
                self.out_words = diag16(y, y1, align & 3);
                self.inputs.clear();
                Ok(self.out_words[0])
            }
            ShortOp::ReadOut(k) => Ok(self.out_words[usize::from(k.min(3))]),
        }
    }

    /// `RFUPREF(#id, addr)`: launches a macroblock-pattern prefetch. The
    /// instruction is non-blocking ("continues as a separate thread"); it
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// [`RfuError`] when `id` is unknown or not a prefetch configuration.
    pub fn pref(
        &mut self,
        id: u16,
        addr: u32,
        mem: &mut MemorySystem,
        now: u64,
    ) -> Result<(), RfuError> {
        self.pref_traced(id, addr, mem, now, &mut NullTracer)
    }

    /// [`Rfu::pref`], emitting prefetch and line-buffer events into `tracer`.
    ///
    /// # Errors
    ///
    /// [`RfuError`] when `id` is unknown or not a prefetch configuration.
    pub fn pref_traced<T: Tracer + ?Sized>(
        &mut self,
        id: u16,
        addr: u32,
        mem: &mut MemorySystem,
        now: u64,
        tracer: &mut T,
    ) -> Result<(), RfuError> {
        let config = self.lookup(id)?;
        let RfuConfig::Prefetch(pattern) = config else {
            return Err(RfuError::WrongKind {
                cfg: id,
                expected: "prefetch configuration",
            });
        };
        self.stats.mb_prefetches += 1;
        tracer.rfu(now, RfuEvent::MbPrefetch { cfg: id, addr });
        match pattern {
            PrefetchPattern::ReferenceMb { stride } => {
                self.lb_a.begin_gather(addr);
                for r in 0..MB_SIZE as u32 {
                    let row_addr = addr.checked_add(r * stride).ok_or(RfuError::Mem(
                        MemError::OutOfRange {
                            addr,
                            size: MB_SIZE as u32,
                        },
                    ))?;
                    if u64::from(row_addr) + MB_SIZE as u64 > u64::from(mem.ram.size()) {
                        return Err(RfuError::Mem(MemError::OutOfRange {
                            addr: row_addr,
                            size: MB_SIZE as u32,
                        }));
                    }
                    let mut ready = Self::line_ready(mem, row_addr, now, tracer);
                    self.stats.mb_prefetch_lines += 1;
                    // Gather: the row's pixels land in Line Buffer A when
                    // the access completes.
                    let mut data = [0u8; MB_SIZE];
                    data.copy_from_slice(mem.ram.read_bytes(row_addr, MB_SIZE as u32));
                    if !self.fault.is_inert() {
                        match self.fault.lb_row_fault() {
                            LbRowFault::None => {}
                            LbRowFault::Delay(extra) => {
                                if ready != u64::MAX {
                                    ready = ready.saturating_add(extra).min(crate::LB_STUCK_READY);
                                    tracer.fault(now, FaultEvent::LbRowDelay { row: r, extra });
                                }
                            }
                            LbRowFault::Stuck => {
                                ready = crate::LB_STUCK_READY;
                                tracer.fault(now, FaultEvent::LbRowStuck { row: r });
                            }
                        }
                        if let Some((byte, mask)) = self.fault.bit_flip(&mut data) {
                            tracer.fault(
                                now,
                                FaultEvent::BitFlip {
                                    row: r,
                                    byte: byte as u32,
                                    mask,
                                },
                            );
                        }
                    }
                    self.lb_a.fill_row(r as usize, data, ready);
                    tracer.rfu(
                        now,
                        RfuEvent::LbaRowDone {
                            row: r,
                            ready_at: ready,
                        },
                    );
                }
            }
            PrefetchPattern::CandidateMb { stride } => {
                for line in Self::candidate_lines(mem, addr, stride) {
                    self.stats.mb_prefetch_lines += 1;
                    let _ = mem.prefetch_traced(line, now, tracer);
                }
            }
            PrefetchPattern::CandidateMbToLbB { stride } => {
                self.lb_b.swap_banks();
                for (i, line) in Self::candidate_lines(mem, addr, stride)
                    .into_iter()
                    .enumerate()
                {
                    self.stats.mb_prefetch_lines += 1;
                    if self.lb_b.probe(line).is_some() {
                        // Fully associative dedup: inherit the pending or
                        // completed status; no new cache request.
                        let _ = self.lb_b.allocate(line, 0);
                        continue;
                    }
                    let mut ready = Self::line_ready(mem, line, now, tracer);
                    if !self.fault.is_inert() && ready != u64::MAX {
                        match self.fault.lb_row_fault() {
                            LbRowFault::None => {}
                            LbRowFault::Delay(extra) => {
                                ready = ready.saturating_add(extra).min(crate::LB_STUCK_READY);
                                tracer.fault(
                                    now,
                                    FaultEvent::LbRowDelay {
                                        row: i as u32,
                                        extra,
                                    },
                                );
                            }
                            LbRowFault::Stuck => {
                                ready = crate::LB_STUCK_READY;
                                tracer.fault(now, FaultEvent::LbRowStuck { row: i as u32 });
                            }
                        }
                    }
                    if ready != u64::MAX {
                        let _ = self.lb_b.allocate(line, ready);
                    }
                }
            }
        }
        Ok(())
    }

    /// Issues a prefetch for the line containing `addr`, returning the cycle
    /// it will be ready: `now` when already cached, the in-flight arrival
    /// for pending lines, `u64::MAX` when dropped.
    fn line_ready<T: Tracer + ?Sized>(
        mem: &mut MemorySystem,
        addr: u32,
        now: u64,
        tracer: &mut T,
    ) -> u64 {
        if let Some(ready) = mem.prefetch_traced(addr, now, tracer) {
            return ready;
        }
        let line = mem.dcache.line_of(addr);
        if mem.dcache.probe(line) {
            now
        } else {
            // In flight from an earlier request, or dropped (buffer full).
            mem.pfq.pending_ready_at(line).unwrap_or(u64::MAX)
        }
    }

    /// The distinct cache lines of a candidate predictor macroblock: one
    /// per row, plus the crossing line when the row footprint straddles a
    /// line boundary.
    fn candidate_lines(mem: &MemorySystem, addr: u32, stride: u32) -> Vec<u32> {
        let mut lines = Vec::with_capacity(2 * PRED_ROWS);
        for r in 0..PRED_ROWS as u32 {
            let row = addr + r * stride;
            let first = mem.dcache.line_of(row);
            let last = mem.dcache.line_of(row + PRED_ROW_BYTES - 1);
            lines.push(first);
            if last != first {
                lines.push(last);
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RfuBandwidth;
    use rvliw_mem::MemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemConfig::st200_loop_level())
    }

    fn rfu(stride: u32) -> Rfu {
        Rfu::with_case_study_configs(MeLoopCfg::new(RfuBandwidth::B1x32, 1, stride))
    }

    #[test]
    fn diag4_matches_scalar_reference() {
        // Row y: bytes 10,20,30,40,50,60,70,80; row y+1: all 100.
        let wy0 = u32::from_le_bytes([10, 20, 30, 40]);
        let wy1 = u32::from_le_bytes([50, 60, 70, 80]);
        let w10 = u32::from_le_bytes([100, 100, 100, 100]);
        let w11 = u32::from_le_bytes([100, 100, 100, 100]);
        let out = diag4([wy0, wy1, w10, w11], 1).to_le_bytes();
        // pixel 0 at align 1: (20+30+100+100+2)>>2 = 63
        assert_eq!(out[0], 63);
        // pixel 3: (50+60+100+100+2)>>2 = 78
        assert_eq!(out[3], 78);
    }

    #[test]
    fn diag16_consistent_with_diag4() {
        let y: [u32; 5] = [
            0x0403_0201,
            0x0807_0605,
            0x0c0b_0a09,
            0x100f_0e0d,
            0x1413_1211,
        ];
        let y1: [u32; 5] = [
            0x1817_1615,
            0x1c1b_1a19,
            0x201f_1e1d,
            0x2423_2221,
            0x2827_2625,
        ];
        for align in 0..4u32 {
            let full = diag16(y, y1, align);
            let first = diag4([y[0], y[1], y1[0], y1[1]], align);
            assert_eq!(full[0], first, "align {align}");
        }
    }

    #[test]
    fn exec_requires_sent_operands() {
        let mut r = rfu(176);
        let mut m = mem();
        let err = r.exec(cfgs::DIAG4, &[0], &mut m, 0).unwrap_err();
        assert!(matches!(err, RfuError::MissingOperands { .. }));
    }

    #[test]
    fn send_then_exec_diag4() {
        let mut r = rfu(176);
        let mut m = mem();
        r.init(cfgs::DIAG4, 0).unwrap();
        r.send(cfgs::DIAG4, &[0x0202_0202, 0x0202_0202]).unwrap();
        r.send(cfgs::DIAG4, &[0x0404_0404, 0x0404_0404]).unwrap();
        let out = r.exec(cfgs::DIAG4, &[0], &mut m, 0).unwrap();
        // (2+2+4+4+2)>>2 = 3 per byte
        assert_eq!(out.value, 0x0303_0303);
        assert_eq!(out.busy, 1);
    }

    #[test]
    fn diag16_readout_words() {
        let mut r = rfu(176);
        let mut m = mem();
        r.init(cfgs::DIAG16, 0).unwrap();
        for _ in 0..5 {
            r.send(cfgs::DIAG16, &[0x0808_0808, 0x0808_0808]).unwrap();
        }
        // 10 words sent: rows y and y1 all 8 ⇒ every output byte is
        // (8*4+2)>>2 = 8.
        let w0 = r.exec(cfgs::DIAG16, &[0], &mut m, 0).unwrap().value;
        assert_eq!(w0, 0x0808_0808);
        for id in [cfgs::DIAG16_R1, cfgs::DIAG16_R2, cfgs::DIAG16_R3] {
            assert_eq!(r.exec(id, &[], &mut m, 0).unwrap().value, 0x0808_0808);
        }
    }

    #[test]
    fn unknown_config_is_an_error() {
        let mut r = Rfu::new();
        assert_eq!(r.init(42, 0).unwrap_err(), RfuError::UnknownConfig(42));
    }

    #[test]
    fn prefetch_reference_gathers_lb_a() {
        let stride = 176u32;
        let mut m = mem();
        let frame = m.ram.alloc(stride * 160, 32);
        for i in 0..stride * 32 {
            m.ram.store8(frame + i, (i % 256) as u8);
        }
        let mut r = rfu(stride);
        r.pref(cfgs::PREF_REF, frame, &mut m, 0).unwrap();
        assert_eq!(r.lb_a.base(), Some(frame));
        // All 16 rows scheduled; none done at cycle 0 (cold), all done
        // eventually.
        let latest = (0..16).map(|i| r.lb_a.row_ready_at(i)).max().unwrap();
        assert!(latest > 0 && latest != u64::MAX);
        assert!(r.lb_a.row_done(0, latest));
        // Row data gathered functionally.
        assert_eq!(r.lb_a.row(0)[3], m.ram.load8(frame + 3));
    }

    #[test]
    fn candidate_prefetch_covers_crossing_lines() {
        let stride = 176u32;
        let mut m = mem();
        let frame = m.ram.alloc(stride * 160, 32);
        // Address 30 bytes into a line: every 20-byte row footprint crosses.
        let addr = frame + 30;
        let mut r = rfu(stride);
        r.pref(cfgs::PREF_CAND, addr, &mut m, 0).unwrap();
        assert_eq!(r.stats.mb_prefetch_lines as usize, 2 * PRED_ROWS);
    }

    #[test]
    fn me_loop_returns_golden_sad() {
        let stride = 176u32;
        let mut m = mem();
        let frame = m.ram.alloc(stride * 160, 32);
        for i in 0..stride * 40 {
            m.ram.store8(frame + i, (i * 13 % 251) as u8);
        }
        let ref_addr = frame + 2 * stride + 16;
        let cand_addr = frame + 5 * stride + 33;
        let mut r = rfu(stride);
        r.pref(cfgs::PREF_REF, ref_addr, &mut m, 0).unwrap();
        let out = r
            .exec(
                cfgs::ME_LOOP,
                &[cand_addr, InterpMode::Diag.to_bits(), ref_addr],
                &mut m,
                100,
            )
            .unwrap();
        let golden =
            crate::meloop::golden_sad(&m.ram, ref_addr, cand_addr, stride, InterpMode::Diag);
        assert_eq!(out.value, golden);
        assert_eq!(out.busy, 16 + 17 * 5 + 3 + 4);
        assert_eq!(r.stats.loops, 1);
    }

    #[test]
    fn me_loop_with_lbb_stalls_less_when_prefetched_early() {
        let stride = 176u32;
        let mk = || {
            let mut m = mem();
            let frame = m.ram.alloc(stride * 160, 32);
            for i in 0..stride * 40 {
                m.ram.store8(frame + i, (i * 7 % 251) as u8);
            }
            (m, frame)
        };
        let cfg = MeLoopCfg::new(RfuBandwidth::B1x32, 1, stride).with_line_buffer_b();

        // Early prefetch: run the loop long after the prefetch completed.
        let (mut m1, f1) = mk();
        let mut r1 = Rfu::with_case_study_configs(cfg);
        r1.pref(cfgs::PREF_REF, f1, &mut m1, 0).unwrap();
        r1.pref(cfgs::PREF_CAND_LBB, f1 + 3 * stride + 7, &mut m1, 0)
            .unwrap();
        let early = r1
            .exec(
                cfgs::ME_LOOP,
                &[f1 + 3 * stride + 7, 0, f1],
                &mut m1,
                10_000,
            )
            .unwrap();

        // No prefetch at all: every row misses.
        let (mut m2, f2) = mk();
        let mut r2 = Rfu::with_case_study_configs(cfg);
        r2.pref(cfgs::PREF_REF, f2, &mut m2, 0).unwrap();
        let cold = r2
            .exec(
                cfgs::ME_LOOP,
                &[f2 + 3 * stride + 7, 0, f2],
                &mut m2,
                10_000,
            )
            .unwrap();

        assert_eq!(early.value, cold.value);
        assert!(early.stall < cold.stall);
        assert_eq!(early.stall, 0);
    }
}
