#![warn(missing_docs)]
//! # rvliw-rfu
//!
//! Functional model of the run-time **Reconfigurable Functional Unit (RFU)**
//! coupled to the ST200-like VLIW core — the primary contribution of the
//! reproduced paper.
//!
//! Following the paper, the RFU is modelled *at functional level*: it is
//! characterized by its functionality, throughput and latency, not by a
//! specific fabric. The model covers everything the case study exercises:
//!
//! * **Configurations** ([`RfuConfig`]) — the paper's `#x` contexts, each
//!   describing one custom instruction: short 1-cycle `RFUEXEC` semantics
//!   (scenarios A2/A3), macroblock prefetch patterns, or the long-latency
//!   ME kernel-loop instruction (Tables 2–7).
//! * **The three-step protocol** `RFUINIT` → `RFUSEND` → `RFUEXEC`
//!   ([`Rfu::init`], [`Rfu::send`], [`Rfu::exec`]) with explicit and
//!   implicit operands.
//! * **Line Buffer A** ([`LineBufferA`]) — 16×16-pixel level-0 storage for
//!   the reference macroblock with per-row `Done` flags (Figure 3).
//! * **Line Buffer B** ([`LineBufferB`]) — fully associative, double
//!   buffered storage of 4×17 cache lines for candidate predictor
//!   macroblocks (Figure 4).
//! * **Custom prefetch patterns** — the non-blocking macroblock prefetch
//!   instructions that issue one cache-line request per macroblock row
//!   (plus crossings) to the cache controller.
//! * **The pipelined kernel-loop latency model** ([`MeLoopCfg`]) — load /
//!   compute / write stages, the initiation interval set by the configured
//!   data bandwidth (1×32, 1×64, 2×64), and the technology-scaling factor β
//!   applied to the compute stages only.
//! * **Reconfiguration management** ([`reconfig`]) — the paper assumes zero
//!   reconfiguration penalty; a penalty + multi-context configuration-cache
//!   model is provided for the ablation studies the paper lists as future
//!   work.

pub mod config;
pub mod dct;
pub mod line_buffer;
pub mod meloop;
pub mod reconfig;
pub mod stats;
pub mod unit;

pub use config::{cfgs, MeLoopCfg, PrefetchPattern, RfuBandwidth, RfuConfig, SadApprox, ShortOp};
pub use dct::DctLoopCfg;
pub use line_buffer::{LineBufferA, LineBufferB};
pub use meloop::{golden_sad_approx, InterpMode};
pub use reconfig::ReconfigModel;
pub use stats::RfuStats;
pub use unit::{ExecOutcome, Rfu, RfuError};

/// Wait threshold (in cycles) beyond which the kernel loop declares a
/// line-buffer row deadlocked ([`RfuError::LineBufferDeadlock`]): a `Done`
/// flag that far in the future can only come from a hardware fault, never
/// from a legitimate in-flight memory access.
pub const LB_DEADLOCK_LIMIT: u64 = 1_000_000;

/// Ready-time sentinel installed by the fault injector for a line-buffer
/// row whose `Done` flag never arrives. Distinct from `u64::MAX`, which
/// marks a *dropped* gather that legitimately falls back to plain cache
/// accesses.
pub const LB_STUCK_READY: u64 = u64::MAX - 1;

/// Macroblock edge in pixels.
pub const MB_SIZE: usize = 16;
/// Predictor rows touched by a (possibly interpolated) candidate macroblock.
pub const PRED_ROWS: usize = 17;
/// Bytes of one predictor row's packed-word footprint (5 × 32-bit words
/// covering 17 pixels at any alignment).
pub const PRED_ROW_BYTES: u32 = 20;
