//! The RFU's local storage: Line Buffer A and Line Buffer B.
//!
//! The paper motivates a small amount of local memory ("a form of level-0
//! cache") to decouple the reference macroblock from the data cache and to
//! exploit the overlap between consecutive candidate predictor macroblocks.

use std::fmt;

use crate::MB_SIZE;

/// Line Buffer A (Figure 3): stores one 16×16-pixel reference macroblock as
/// 16 rows of 16 bytes, each guarded by a `Done` flag set when the gathering
/// prefetch for that row completes.
///
/// Size: 16×16 = 256 bytes plus 2 bytes of flags; accessed as a register
/// file of 16 row-registers with 2-cycle latency, throughput 1.
#[derive(Debug, Clone)]
pub struct LineBufferA {
    rows: [[u8; MB_SIZE]; MB_SIZE],
    /// Cycle at which each row's data is available (`u64::MAX` = not
    /// loaded; the row's `Done` flag is 0).
    ready_at: [u64; MB_SIZE],
    /// Base address of the stored reference macroblock, kept in RFU local
    /// registers after the prefetch.
    base: Option<u32>,
}

impl Default for LineBufferA {
    fn default() -> Self {
        Self::new()
    }
}

impl LineBufferA {
    /// An empty buffer (all `Done` flags clear).
    #[must_use]
    pub fn new() -> Self {
        LineBufferA {
            rows: [[0; MB_SIZE]; MB_SIZE],
            ready_at: [u64::MAX; MB_SIZE],
            base: None,
        }
    }

    /// Access latency of a row (the paper assumes 2 cycles, throughput 1).
    pub const ACCESS_LATENCY: u64 = 2;

    /// Storage size in bytes (16 rows of 16 pixels plus the flag bits).
    pub const SIZE_BYTES: usize = MB_SIZE * MB_SIZE + 2;

    /// Begins a new gather: clears all flags and records the macroblock
    /// base address.
    pub fn begin_gather(&mut self, base: u32) {
        self.ready_at = [u64::MAX; MB_SIZE];
        self.base = Some(base);
    }

    /// Stores row `r` (filled by a completed prefetch) with its arrival
    /// cycle; sets the row's `Done` flag.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 16`.
    pub fn fill_row(&mut self, r: usize, data: [u8; MB_SIZE], ready_at: u64) {
        self.rows[r] = data;
        self.ready_at[r] = ready_at;
    }

    /// The base address of the gathered macroblock.
    #[must_use]
    pub fn base(&self) -> Option<u32> {
        self.base
    }

    /// Whether row `r`'s `Done` flag is set by cycle `now`.
    #[must_use]
    pub fn row_done(&self, r: usize, now: u64) -> bool {
        self.ready_at[r] <= now
    }

    /// When row `r` becomes available (`u64::MAX` when never gathered).
    #[must_use]
    pub fn row_ready_at(&self, r: usize) -> u64 {
        self.ready_at[r]
    }

    /// The 16 pixels of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u8; MB_SIZE] {
        &self.rows[r]
    }
}

impl fmt::Display for LineBufferA {
    /// Renders the Figure 3 organisation: 16 row-registers and the `Done`
    /// column.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Line Buffer A (reference macroblock)        Done")?;
        for r in 0..MB_SIZE {
            write!(f, " {r:2} |")?;
            for b in self.rows[r] {
                write!(f, "{b:02x}")?;
            }
            writeln!(f, "|  {}", if self.ready_at[r] != u64::MAX { 1 } else { 0 })?;
        }
        Ok(())
    }
}

/// Status of one Line Buffer B entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbbStatus {
    /// The line's prefetch is in flight; data arrives at the cycle carried.
    Pending(u64),
    /// The line is resident.
    Done,
}

#[derive(Debug, Clone, Copy)]
struct LbbEntry {
    /// Cache-line base address (the tag).
    tag: u32,
    ready_at: u64,
}

/// Line Buffer B (Figure 4): fully associative storage for the cache lines
/// of candidate predictor macroblocks, double buffered (the prefetch for the
/// *next* candidate fills one bank while the loop reads the current one).
///
/// Capacity: 4 × 17 cache lines — 17 rows, a potentially crossed second line
/// per row, times two banks — 2176 bytes of data plus ~24 bytes of tags and
/// flags.
#[derive(Debug, Clone)]
pub struct LineBufferB {
    banks: [Vec<LbbEntry>; 2],
    /// Bank receiving the next prefetch.
    fill_bank: usize,
    per_bank_capacity: usize,
    /// Successful full-associative lookups.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found an in-flight entry and had to wait.
    pub late: u64,
    /// New prefetch requests avoided because the line was already pending
    /// or resident in either bank (the paper's dedup on pending requests).
    pub dedup: u64,
}

impl Default for LineBufferB {
    fn default() -> Self {
        Self::new()
    }
}

impl LineBufferB {
    /// Cache lines per bank: 17 rows × up to 2 lines each.
    pub const BANK_LINES: usize = 34;

    /// Total data bytes (4 × 17 × 32-byte cache lines = 2176 bytes,
    /// the paper's sizing).
    pub const SIZE_BYTES: usize = 4 * 17 * 32;

    /// An empty buffer with the paper's 34-lines-per-bank capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_bank_capacity(Self::BANK_LINES)
    }

    /// An empty buffer with a custom per-bank capacity (the line-buffer
    /// sizing ablation; the paper's value is [`LineBufferB::BANK_LINES`]).
    #[must_use]
    pub fn with_bank_capacity(lines: usize) -> Self {
        LineBufferB {
            banks: [Vec::new(), Vec::new()],
            fill_bank: 0,
            per_bank_capacity: lines,
            hits: 0,
            misses: 0,
            late: 0,
            dedup: 0,
        }
    }

    /// Access latency of a cache line (2 cycles, throughput 1, reading the
    /// line and its potential crossing at once).
    pub const ACCESS_LATENCY: u64 = 2;

    /// Switches the fill bank (called at each candidate-macroblock
    /// prefetch: the double-buffering scheme) and clears its previous
    /// contents.
    pub fn swap_banks(&mut self) {
        self.fill_bank ^= 1;
        self.banks[self.fill_bank].clear();
    }

    /// Looks for `line` in either bank (full associativity). Returns when
    /// the data is or becomes available.
    #[must_use]
    pub fn probe(&self, line: u32) -> Option<u64> {
        self.banks
            .iter()
            .flatten()
            .find(|e| e.tag == line)
            .map(|e| e.ready_at)
    }

    /// Records `line` arriving at `ready_at` into the fill bank. If the
    /// line is already tracked in either bank, the new entry inherits the
    /// earlier status (no duplicate request — the caller must not issue a
    /// new cache request when this returns `true`).
    pub fn allocate(&mut self, line: u32, ready_at: u64) -> bool {
        if let Some(prev) = self.probe(line) {
            self.dedup += 1;
            let bank = &mut self.banks[self.fill_bank];
            if !bank.iter().any(|e| e.tag == line) && bank.len() < self.per_bank_capacity {
                bank.push(LbbEntry {
                    tag: line,
                    ready_at: prev,
                });
            }
            return true;
        }
        let bank = &mut self.banks[self.fill_bank];
        if bank.len() < self.per_bank_capacity {
            bank.push(LbbEntry {
                tag: line,
                ready_at,
            });
        }
        false
    }

    /// A read of `line` at cycle `now`: returns the extra stall cycles
    /// (0 when resident, the remaining fill time when pending) or `None`
    /// when the line is absent (the caller falls back to the data cache).
    pub fn read(&mut self, line: u32, now: u64) -> Option<u64> {
        match self.probe(line) {
            Some(ready) if ready <= now => {
                self.hits += 1;
                Some(0)
            }
            Some(ready) => {
                self.late += 1;
                Some(ready - now)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Entries currently tracked across both banks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.banks.iter().map(Vec::len).sum()
    }

    /// Whether no entries are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for LineBufferB {
    /// Renders the Figure 4 organisation: tags with pending/done flags per
    /// bank.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Line Buffer B (candidate predictor macroblocks)")?;
        for (i, bank) in self.banks.iter().enumerate() {
            let role = if i == self.fill_bank {
                "filling"
            } else {
                "reading"
            };
            writeln!(f, " bank {i} ({role}): {} lines", bank.len())?;
            for e in bank {
                writeln!(
                    f,
                    "   tag {:08x}  D={}",
                    e.tag,
                    if e.ready_at == u64::MAX { 0 } else { 1 }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_done_flags_follow_time() {
        let mut lb = LineBufferA::new();
        lb.begin_gather(0x1000);
        lb.fill_row(3, [7; 16], 100);
        assert!(!lb.row_done(3, 99));
        assert!(lb.row_done(3, 100));
        assert!(!lb.row_done(4, 1_000_000));
        assert_eq!(lb.row(3)[0], 7);
        assert_eq!(lb.base(), Some(0x1000));
    }

    #[test]
    fn lba_begin_gather_clears_flags() {
        let mut lb = LineBufferA::new();
        lb.fill_row(0, [1; 16], 0);
        lb.begin_gather(0x2000);
        assert!(!lb.row_done(0, u64::MAX - 1));
    }

    #[test]
    fn lba_display_shows_done_column() {
        let mut lb = LineBufferA::new();
        lb.fill_row(0, [0xab; 16], 0);
        let s = lb.to_string();
        assert!(s.contains("Done"));
        assert!(s.lines().nth(1).unwrap().ends_with('1'));
        assert!(s.lines().nth(2).unwrap().ends_with('0'));
    }

    #[test]
    fn lbb_hit_pending_miss() {
        let mut lb = LineBufferB::new();
        assert!(!lb.allocate(0x100, 50));
        assert_eq!(lb.read(0x100, 60), Some(0)); // done
        assert_eq!(lb.read(0x100, 40), Some(10)); // pending 10 more cycles
        assert_eq!(lb.read(0x999, 40), None); // absent
        assert_eq!((lb.hits, lb.late, lb.misses), (1, 1, 1));
    }

    #[test]
    fn lbb_dedup_inherits_status() {
        let mut lb = LineBufferB::new();
        assert!(!lb.allocate(0x100, 50));
        lb.swap_banks();
        // Same line requested for the next candidate: dedup, no new request.
        assert!(lb.allocate(0x100, 999));
        assert_eq!(lb.dedup, 1);
        // Status inherited from the earlier request (ready at 50, not 999).
        assert_eq!(lb.read(0x100, 60), Some(0));
    }

    #[test]
    fn lbb_double_buffering_keeps_previous_bank() {
        let mut lb = LineBufferB::new();
        lb.allocate(0x100, 10);
        lb.swap_banks();
        lb.allocate(0x200, 20);
        // Both candidates' lines visible (full associativity across banks).
        assert!(lb.probe(0x100).is_some());
        assert!(lb.probe(0x200).is_some());
        // Swapping again clears the oldest bank.
        lb.swap_banks();
        assert!(lb.probe(0x100).is_none());
        assert!(lb.probe(0x200).is_some());
    }

    #[test]
    fn lbb_bank_capacity_is_34_lines() {
        let mut lb = LineBufferB::new();
        for i in 0..40u32 {
            lb.allocate(i * 64, 0);
        }
        assert_eq!(lb.len(), LineBufferB::BANK_LINES);
    }

    #[test]
    fn size_constants_match_paper() {
        assert_eq!(LineBufferA::SIZE_BYTES, 258);
        assert_eq!(LineBufferB::SIZE_BYTES, 2176);
    }
}
