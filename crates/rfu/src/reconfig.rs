//! Reconfiguration-overhead management.
//!
//! The paper's baseline assumes **zero reconfiguration penalty** ("this gives
//! an upper-bound performance assessment"), to be approached in real designs
//! through multi-context configuration memories and configuration caches
//! with prefetch. This module provides both the zero-penalty
//! assumption and a parameterized penalty model used by the ablation bench
//! (`ablation_reconfig`) to quantify how much of the loop-level speedup
//! survives realistic reconfiguration costs.

/// Multi-context reconfiguration model.
///
/// The RFU holds up to `contexts` configurations resident (multi-context
/// configuration memory). Activating a non-resident configuration costs
/// `penalty` cycles (loading from the configuration cache/memory) and evicts
/// the least recently activated context.
///
/// ```
/// use rvliw_rfu::ReconfigModel;
///
/// let mut m = ReconfigModel::with_penalty(100, 2);
/// assert_eq!(m.activate(1, 0), 100); // first load pays
/// assert_eq!(m.activate(1, 0), 0);   // resident: free
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigModel {
    penalty: u64,
    contexts: usize,
    /// Most recently used last.
    resident: Vec<u16>,
    /// Configuration prefetch: the controller starts loading the next
    /// configuration in the background as soon as the current one is
    /// activated, hiding up to `now - last_activation` cycles of the
    /// penalty (the management technique the paper defers to future work).
    prefetch_hiding: bool,
    last_activation: u64,
}

impl ReconfigModel {
    /// The paper's baseline: reconfiguration is free.
    #[must_use]
    pub fn zero_penalty() -> Self {
        ReconfigModel {
            penalty: 0,
            contexts: usize::MAX,
            resident: Vec::new(),
            prefetch_hiding: false,
            last_activation: 0,
        }
    }

    /// A penalty model with `contexts` resident configurations and
    /// `penalty` cycles per configuration load.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    #[must_use]
    pub fn with_penalty(penalty: u64, contexts: usize) -> Self {
        assert!(contexts > 0, "at least one resident context");
        ReconfigModel {
            penalty,
            contexts,
            resident: Vec::new(),
            prefetch_hiding: false,
            last_activation: 0,
        }
    }

    /// Enables configuration prefetch: time elapsed since the previous
    /// activation hides an equal share of the next load's penalty
    /// ("smart reconfiguration strategies, based on configuration prefetch
    /// and management, to hide the reconfiguration penalties").
    #[must_use]
    pub fn with_prefetch_hiding(mut self) -> Self {
        self.prefetch_hiding = true;
        self
    }

    /// Activates `cfg` at machine cycle `now`; returns the stall cycles
    /// paid (0 for resident contexts; partially or fully hidden when
    /// configuration prefetch is enabled).
    pub fn activate(&mut self, cfg: u16, now: u64) -> u64 {
        if let Some(pos) = self.resident.iter().position(|&c| c == cfg) {
            // Touch for LRU.
            self.resident.remove(pos);
            self.resident.push(cfg);
            self.last_activation = now;
            return 0;
        }
        if self.resident.len() >= self.contexts && self.contexts != usize::MAX {
            self.resident.remove(0);
        }
        if self.contexts != usize::MAX || self.resident.len() < 1024 {
            self.resident.push(cfg);
        }
        let visible = if self.prefetch_hiding {
            let hidden = now.saturating_sub(self.last_activation);
            self.penalty.saturating_sub(hidden)
        } else {
            self.penalty
        };
        self.last_activation = now;
        visible
    }

    /// The per-load penalty.
    #[must_use]
    pub fn penalty(&self) -> u64 {
        self.penalty
    }

    /// Resident contexts, least recently used first.
    #[must_use]
    pub fn resident(&self) -> &[u16] {
        &self.resident
    }
}

impl Default for ReconfigModel {
    fn default() -> Self {
        ReconfigModel::zero_penalty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_penalty_is_always_free() {
        let mut m = ReconfigModel::zero_penalty();
        for cfg in 0..100u16 {
            assert_eq!(m.activate(cfg, 0), 0);
        }
    }

    #[test]
    fn penalty_paid_on_first_activation_only() {
        let mut m = ReconfigModel::with_penalty(100, 2);
        assert_eq!(m.activate(1, 0), 100);
        assert_eq!(m.activate(1, 0), 0);
        assert_eq!(m.activate(2, 0), 100);
        assert_eq!(m.activate(1, 0), 0); // still resident
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut m = ReconfigModel::with_penalty(100, 2);
        m.activate(1, 0);
        m.activate(2, 0);
        m.activate(1, 0); // touch 1 ⇒ 2 becomes LRU
        assert_eq!(m.activate(3, 0), 100); // evicts 2
        assert_eq!(m.activate(1, 0), 0);
        assert_eq!(m.activate(2, 0), 100); // was evicted
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_contexts_rejected() {
        let _ = ReconfigModel::with_penalty(1, 0);
    }

    #[test]
    fn prefetch_hiding_absorbs_idle_time() {
        let mut m = ReconfigModel::with_penalty(100, 1).with_prefetch_hiding();
        assert_eq!(m.activate(1, 0), 100); // nothing to hide behind yet
                                           // 2 evicts 1; 60 idle cycles hide 60 of the 100-cycle load.
        assert_eq!(m.activate(2, 60), 40);
        // A long gap hides the whole load.
        assert_eq!(m.activate(1, 1000), 0);
        // Back-to-back switches pay almost everything.
        assert_eq!(m.activate(2, 1001), 99);
    }
}
