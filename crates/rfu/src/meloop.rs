//! The long-latency motion-estimation kernel-loop instruction.
//!
//! Functional semantics (exact MPEG-4 half-sample interpolation + SAD) and
//! the timed walk over the memory system: the RFU autonomously fetches the
//! predictor rows at the configured bandwidth while the reference macroblock
//! streams from Line Buffer A; with the two-line-buffer scheme the predictor
//! rows come from Line Buffer B and the cache is touched only on misses.

use rvliw_mem::{MemError, MemorySystem};
use rvliw_trace::{RfuEvent, Tracer};

use crate::config::{MeLoopCfg, SadApprox};
use crate::line_buffer::{LineBufferA, LineBufferB};
use crate::stats::RfuStats;
use crate::unit::RfuError;
use crate::{LB_DEADLOCK_LIMIT, MB_SIZE};

/// Half-sample interpolation mode of a candidate predictor, selected by the
/// sub-pixel components of the motion vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpMode {
    /// Integer-pixel candidate: no interpolation.
    #[default]
    None,
    /// Horizontal half-sample.
    H,
    /// Vertical half-sample.
    V,
    /// Diagonal half-sample (both components).
    Diag,
}

impl InterpMode {
    /// Encodes the mode into the 2-bit field carried by RFU instruction
    /// operands.
    #[must_use]
    pub fn to_bits(self) -> u32 {
        match self {
            InterpMode::None => 0,
            InterpMode::H => 1,
            InterpMode::V => 2,
            InterpMode::Diag => 3,
        }
    }

    /// Decodes the 2-bit operand field.
    #[must_use]
    pub fn from_bits(bits: u32) -> Self {
        match bits & 3 {
            0 => InterpMode::None,
            1 => InterpMode::H,
            2 => InterpMode::V,
            _ => InterpMode::Diag,
        }
    }

    /// Whether the predictor needs pixel column 16 (one past the block).
    #[must_use]
    pub fn needs_extra_col(self) -> bool {
        matches!(self, InterpMode::H | InterpMode::Diag)
    }

    /// Whether the predictor needs pixel row 16 (one below the block).
    #[must_use]
    pub fn needs_extra_row(self) -> bool {
        matches!(self, InterpMode::V | InterpMode::Diag)
    }
}

/// Exact MPEG-4 half-sample interpolation of one predictor pixel
/// (rounding control 0).
#[must_use]
pub fn interp_pixel(p00: u8, p01: u8, p10: u8, p11: u8, mode: InterpMode) -> u8 {
    let (a, b, c, d) = (
        u16::from(p00),
        u16::from(p01),
        u16::from(p10),
        u16::from(p11),
    );
    (match mode {
        InterpMode::None => a,
        InterpMode::H => (a + b + 1) >> 1,
        InterpMode::V => (a + c + 1) >> 1,
        InterpMode::Diag => (a + b + c + d + 2) >> 2,
    }) as u8
}

/// Golden SAD between the (interpolated) predictor at `cand_addr` and the
/// 16×16 reference at `ref_addr`, both laid out with row `stride`, reading
/// bytes functionally from RAM.
#[must_use]
pub fn golden_sad(
    ram: &rvliw_mem::Ram,
    ref_addr: u32,
    cand_addr: u32,
    stride: u32,
    mode: InterpMode,
) -> u32 {
    golden_sad_approx(ram, ref_addr, cand_addr, stride, mode, SadApprox::Exact)
}

/// [`golden_sad`] under an approximate datapath: the same interpolation,
/// with the mode's pixel mask, row subsampling and early-exit cutoff
/// applied exactly as the encoder-side reference does.
#[must_use]
pub fn golden_sad_approx(
    ram: &rvliw_mem::Ram,
    ref_addr: u32,
    cand_addr: u32,
    stride: u32,
    mode: InterpMode,
    approx: SadApprox,
) -> u32 {
    let p = |x: u32, y: u32| ram.load8(cand_addr + y * stride + x);
    let mask = approx.pixel_mask();
    let mut sad = 0u32;
    let mut y = 0;
    while y < MB_SIZE as u32 {
        for x in 0..MB_SIZE as u32 {
            let pix = interp_pixel(p(x, y), p(x + 1, y), p(x, y + 1), p(x + 1, y + 1), mode) & mask;
            let r = ram.load8(ref_addr + y * stride + x) & mask;
            sad += u32::from(pix.abs_diff(r));
        }
        if let SadApprox::EarlyExit { threshold } = approx {
            if sad > threshold {
                return sad;
            }
        }
        y += approx.row_step();
    }
    sad
}

/// Outcome of a timed kernel-loop execution (internal to the crate; the
/// public wrapper is [`crate::ExecOutcome`]).
pub(crate) struct LoopRun {
    pub sad: u32,
    pub busy: u64,
    pub stall: u64,
}

/// Executes the ME kernel loop: timed memory walk + functional SAD.
///
/// # Errors
///
/// [`RfuError::Mem`] when a macroblock footprint reaches outside simulated
/// memory, [`RfuError::LineBufferDeadlock`] when a line-buffer row's `Done`
/// flag is further than [`LB_DEADLOCK_LIMIT`] cycles away (only reachable
/// under injected faults).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_me_loop<T: Tracer + ?Sized>(
    cfg: &MeLoopCfg,
    cand_addr: u32,
    ref_addr: u32,
    mode: InterpMode,
    lb_a: &LineBufferA,
    lb_b: &mut LineBufferB,
    mem: &mut MemorySystem,
    now: u64,
    stats: &mut RfuStats,
    tracer: &mut T,
) -> Result<LoopRun, RfuError> {
    let ii = cfg.initiation_interval();
    let stride = cfg.stride;
    let mut stall: u64 = 0;
    let pred_rows = MB_SIZE as u32 + u32::from(mode.needs_extra_row());
    let pred_cols = MB_SIZE as u32 + u32::from(mode.needs_extra_col());

    // Validate both macroblock footprints before the timed walk so the
    // functional byte reads below can never index outside RAM.
    let ram_size = u64::from(mem.ram.size());
    let cand_end =
        u64::from(cand_addr) + u64::from(pred_rows - 1) * u64::from(stride) + u64::from(pred_cols);
    if cand_end > ram_size {
        return Err(RfuError::Mem(MemError::OutOfRange {
            addr: cand_addr,
            size: pred_cols,
        }));
    }
    let ref_end = u64::from(ref_addr) + (MB_SIZE as u64 - 1) * u64::from(stride) + MB_SIZE as u64;
    if ref_end > ram_size {
        return Err(RfuError::Mem(MemError::OutOfRange {
            addr: ref_addr,
            size: MB_SIZE as u32,
        }));
    }

    // The rows the walk actually touches: all of them in the exact modes,
    // only the sampled rows (plus the row below each, for vertical and
    // diagonal interpolation) under row subsampling. Early exit does not
    // shorten the walk — the loop latency is compiler-visible and fixed.
    let row_step = cfg.approx.row_step();
    let needed_rows: Vec<u32> = if row_step == 1 {
        (0..pred_rows).collect()
    } else {
        let mut v = Vec::new();
        let mut y = 0;
        while y < MB_SIZE as u32 {
            v.push(y);
            if mode.needs_extra_row() {
                v.push(y + 1);
            }
            y += row_step;
        }
        v
    };
    for (i, &r) in needed_rows.iter().enumerate() {
        let offset = cfg.prologue + i as u64 * ii;
        // --- predictor row: cache lines [row_addr, row_addr + cols) -------
        let row_addr = cand_addr + r * stride;
        let first_line = mem.dcache.line_of(row_addr);
        let last_line = mem.dcache.line_of(row_addr + pred_cols - 1);
        let mut line = first_line;
        loop {
            let eff = now + offset + stall;
            if cfg.use_line_buffer_b {
                match lb_b.read(line, eff) {
                    Some(0) => {
                        stats.lbb_hits += 1;
                        tracer.rfu(eff, RfuEvent::LbbHit);
                    }
                    Some(extra) => {
                        if extra > LB_DEADLOCK_LIMIT {
                            return Err(RfuError::LineBufferDeadlock {
                                row: r,
                                waited: extra,
                            });
                        }
                        stats.lbb_late += 1;
                        stall += extra;
                        mem.account_stall(extra);
                        tracer.rfu(eff, RfuEvent::LbbLate { wait: extra });
                    }
                    None => {
                        stats.lbb_misses += 1;
                        tracer.rfu(eff, RfuEvent::LbbMiss);
                        let acc = mem.read_traced(line, 4, eff, tracer)?;
                        stall += acc.stall;
                    }
                }
            } else {
                let acc = mem.read_traced(line.max(row_addr), 4, eff, tracer)?;
                stall += acc.stall;
            }
            if line == last_line {
                break;
            }
            line += mem.dcache.geometry().line_size;
        }
        // --- reference row from Line Buffer A -----------------------------
        // Only sampled rows difference against the reference; the +1 rows
        // of a subsampled walk feed interpolation only.
        if r % row_step == 0 && r < MB_SIZE as u32 {
            let eff = now + offset + stall;
            if lb_a.base() == Some(ref_addr) {
                let ready = lb_a.row_ready_at(r as usize);
                if ready == u64::MAX {
                    // Gather was dropped: the RFU stalls the processor and
                    // issues the corresponding cache accesses.
                    let row_addr = ref_addr + r * stride;
                    let acc = mem.read_traced(row_addr, 4, eff, tracer)?;
                    stall += acc.stall;
                } else if ready > eff {
                    let wait = ready - eff;
                    if wait > LB_DEADLOCK_LIMIT {
                        // The row's Done flag is unreachably far away — a
                        // stuck gather (fault injection), not a slow one.
                        return Err(RfuError::LineBufferDeadlock {
                            row: r,
                            waited: wait,
                        });
                    }
                    stats.lba_waits += 1;
                    stats.lba_wait_cycles += wait;
                    stall += wait;
                    mem.account_stall(wait);
                    tracer.rfu(eff, RfuEvent::LbaWait { row: r, wait });
                }
            } else {
                // No gathered reference: plain cache accesses.
                let row_addr = ref_addr + r * stride;
                let acc = mem.read_traced(row_addr, 4, eff, tracer)?;
                stall += acc.stall;
            }
        }
        tracer.rfu(
            now + offset,
            RfuEvent::LoopRow {
                row: r,
                stall_so_far: stall,
            },
        );
    }

    // Reference pixels come from Line Buffer A when it holds the gathered
    // macroblock — under fault-free operation the rows are bit-identical
    // copies of RAM, but an injected bit flip in the gather must surface in
    // the SAD the scenario observes.
    let sad = if lb_a.base() == Some(ref_addr) {
        sad_via_lba(
            lb_a, &mem.ram, ref_addr, cand_addr, stride, mode, cfg.approx,
        )
    } else {
        golden_sad_approx(&mem.ram, ref_addr, cand_addr, stride, mode, cfg.approx)
    };
    let busy = cfg.static_latency();
    stats.loops += 1;
    stats.loop_busy_cycles += busy;
    stats.loop_stall_cycles += stall;
    Ok(LoopRun { sad, busy, stall })
}

/// SAD with reference pixels sourced from Line Buffer A's gathered rows
/// (dropped rows fall back to RAM, mirroring the timed walk above).
fn sad_via_lba(
    lb_a: &LineBufferA,
    ram: &rvliw_mem::Ram,
    ref_addr: u32,
    cand_addr: u32,
    stride: u32,
    mode: InterpMode,
    approx: SadApprox,
) -> u32 {
    let p = |x: u32, y: u32| ram.load8(cand_addr + y * stride + x);
    let mask = approx.pixel_mask();
    let mut sad = 0u32;
    let mut y = 0;
    while y < MB_SIZE as u32 {
        let gathered = lb_a.row_ready_at(y as usize) != u64::MAX;
        for x in 0..MB_SIZE as u32 {
            let pix = interp_pixel(p(x, y), p(x + 1, y), p(x, y + 1), p(x + 1, y + 1), mode) & mask;
            let r = if gathered {
                lb_a.row(y as usize)[x as usize]
            } else {
                ram.load8(ref_addr + y * stride + x)
            } & mask;
            sad += u32::from(pix.abs_diff(r));
        }
        if let SadApprox::EarlyExit { threshold } = approx {
            if sad > threshold {
                return sad;
            }
        }
        y += approx.row_step();
    }
    sad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_modes_match_mpeg4_rounding() {
        assert_eq!(interp_pixel(10, 11, 20, 21, InterpMode::None), 10);
        assert_eq!(interp_pixel(10, 11, 20, 21, InterpMode::H), 11); // (21+1)/2
        assert_eq!(interp_pixel(10, 11, 20, 21, InterpMode::V), 15); // (30+1)/2
        assert_eq!(interp_pixel(10, 11, 20, 21, InterpMode::Diag), 16); // (62+2)/4
    }

    #[test]
    fn interp_bits_roundtrip() {
        for m in [
            InterpMode::None,
            InterpMode::H,
            InterpMode::V,
            InterpMode::Diag,
        ] {
            assert_eq!(InterpMode::from_bits(m.to_bits()), m);
        }
    }

    #[test]
    fn extra_row_col_requirements() {
        assert!(!InterpMode::None.needs_extra_col());
        assert!(InterpMode::H.needs_extra_col());
        assert!(!InterpMode::H.needs_extra_row());
        assert!(InterpMode::Diag.needs_extra_col());
        assert!(InterpMode::Diag.needs_extra_row());
    }

    #[test]
    fn golden_sad_zero_for_identical_blocks() {
        let mut ram = rvliw_mem::Ram::new(1 << 16);
        let stride = 64;
        let a = ram.alloc(stride * 32, 32);
        for i in 0..stride * 20 {
            ram.store8(a + i, (i * 7 % 251) as u8);
        }
        assert_eq!(golden_sad(&ram, a, a, stride, InterpMode::None), 0);
    }

    #[test]
    fn golden_sad_counts_differences() {
        let mut ram = rvliw_mem::Ram::new(1 << 16);
        let stride = 64;
        let r = ram.alloc(stride * 20, 32);
        let c = ram.alloc(stride * 20, 32);
        // reference all 10, candidate all 13 ⇒ SAD = 3 * 256
        for y in 0..17 {
            for x in 0..17 {
                ram.store8(r + y * stride + x, 10);
                ram.store8(c + y * stride + x, 13);
            }
        }
        assert_eq!(golden_sad(&ram, r, c, stride, InterpMode::None), 3 * 256);
        // flat field: every interpolation yields the same value
        assert_eq!(golden_sad(&ram, r, c, stride, InterpMode::Diag), 3 * 256);
    }
}
