//! RFU activity counters.

use std::fmt;

/// Counters accumulated by the [`Rfu`](crate::Rfu) model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RfuStats {
    /// `RFUINIT` operations executed.
    pub inits: u64,
    /// Reconfigurations that actually paid a penalty (0 under the paper's
    /// zero-penalty assumption).
    pub reconfigs: u64,
    /// Total reconfiguration penalty cycles.
    pub reconfig_penalty_cycles: u64,
    /// `RFUSEND` operations executed.
    pub sends: u64,
    /// Short `RFUEXEC` operations executed.
    pub execs: u64,
    /// Kernel-loop instructions executed.
    pub loops: u64,
    /// DCT-loop instructions executed (future-work extension).
    pub dct_loops: u64,
    /// Macroblock prefetch instructions executed.
    pub mb_prefetches: u64,
    /// Cache-line requests issued by macroblock prefetches.
    pub mb_prefetch_lines: u64,
    /// Loop reads that waited on a Line Buffer A row (`Done` flag clear).
    pub lba_waits: u64,
    /// Cycles spent waiting on Line Buffer A rows.
    pub lba_wait_cycles: u64,
    /// Loop reads served by Line Buffer B without stalling.
    pub lbb_hits: u64,
    /// Loop reads that waited on an in-flight Line Buffer B entry.
    pub lbb_late: u64,
    /// Loop reads that missed Line Buffer B and fell back to the cache.
    pub lbb_misses: u64,
    /// Total stall cycles the RFU inflicted on the machine while executing
    /// kernel loops (cache misses + line-buffer waits).
    pub loop_stall_cycles: u64,
    /// Total busy cycles of kernel-loop executions (static latencies).
    pub loop_busy_cycles: u64,
}

impl fmt::Display for RfuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inits {}  sends {}  execs {}  loops {} (busy {} + stall {})  mb-pref {} ({} lines)",
            self.inits,
            self.sends,
            self.execs,
            self.loops,
            self.loop_busy_cycles,
            self.loop_stall_cycles,
            self.mb_prefetches,
            self.mb_prefetch_lines,
        )
    }
}

impl RfuStats {
    /// Element-wise difference (`self - earlier`), for measuring a region.
    #[must_use]
    pub fn delta(&self, earlier: &RfuStats) -> RfuStats {
        RfuStats {
            inits: self.inits - earlier.inits,
            reconfigs: self.reconfigs - earlier.reconfigs,
            reconfig_penalty_cycles: self.reconfig_penalty_cycles - earlier.reconfig_penalty_cycles,
            sends: self.sends - earlier.sends,
            execs: self.execs - earlier.execs,
            loops: self.loops - earlier.loops,
            dct_loops: self.dct_loops - earlier.dct_loops,
            mb_prefetches: self.mb_prefetches - earlier.mb_prefetches,
            mb_prefetch_lines: self.mb_prefetch_lines - earlier.mb_prefetch_lines,
            lba_waits: self.lba_waits - earlier.lba_waits,
            lba_wait_cycles: self.lba_wait_cycles - earlier.lba_wait_cycles,
            lbb_hits: self.lbb_hits - earlier.lbb_hits,
            lbb_late: self.lbb_late - earlier.lbb_late,
            lbb_misses: self.lbb_misses - earlier.lbb_misses,
            loop_stall_cycles: self.loop_stall_cycles - earlier.loop_stall_cycles,
            loop_busy_cycles: self.loop_busy_cycles - earlier.loop_busy_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts() {
        let a = RfuStats {
            loops: 10,
            loop_busy_cycles: 900,
            ..Default::default()
        };
        let b = RfuStats {
            loops: 3,
            loop_busy_cycles: 300,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.loops, 7);
        assert_eq!(d.loop_busy_cycles, 600);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!RfuStats::default().to_string().is_empty());
    }
}
