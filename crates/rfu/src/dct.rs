//! The RFU's 8×8 forward-DCT datapath (future-work extension).
//!
//! The paper's outlook — mapping *other parts of the application* onto the
//! RFU — starts with the texture pipeline's DCT. This module implements
//! the same bit-true fixed-point algorithm as the software kernel (11-bit
//! scaled cosine constants, round-to-nearest rescale per 1-D pass); the
//! integration tests cross-check it against `mpeg4_enc::dct::fdct_fixed`.

use std::f64::consts::PI;

/// Configuration of the long-latency DCT instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DctLoopCfg {
    /// Technology-scaling factor β (multiplies the compute stages only).
    pub beta: u64,
    /// Compute pipeline depth at β = 1 (two multiply-accumulate pass
    /// stages plus the rescale).
    pub compute_depth: u64,
    /// Pipeline prologue (address setup, first row fetch).
    pub prologue: u64,
    /// Epilogue (final column writes).
    pub epilogue: u64,
}

impl DctLoopCfg {
    /// A configuration with the default pipeline shape.
    #[must_use]
    pub fn new(beta: u64) -> Self {
        DctLoopCfg {
            beta,
            compute_depth: 8,
            prologue: 10,
            epilogue: 4,
        }
    }

    /// Static latency: prologue + 16 pipelined 1-D passes + β·depth +
    /// epilogue.
    #[must_use]
    pub fn static_latency(&self) -> u64 {
        self.prologue + 16 + self.beta * self.compute_depth + self.epilogue
    }
}

fn fixed_coeffs() -> [[i32; 8]; 8] {
    let mut out = [[0i32; 8]; 8];
    for (u, row) in out.iter_mut().enumerate() {
        let alpha = if u == 0 {
            (1.0f64 / 8.0).sqrt()
        } else {
            (2.0f64 / 8.0).sqrt()
        };
        for (x, v) in row.iter_mut().enumerate() {
            let c = ((2.0 * x as f64 + 1.0) * u as f64 * PI / 16.0).cos();
            *v = (alpha * c * 2048.0).round() as i32;
        }
    }
    out
}

fn pass(input: &[i32; 8], coeffs: &[[i32; 8]; 8]) -> [i32; 8] {
    let mut out = [0i32; 8];
    for (u, o) in out.iter_mut().enumerate() {
        let mut s = 0i32;
        for x in 0..8 {
            s += coeffs[u][x] * input[x];
        }
        *o = (s + 1024) >> 11;
    }
    out
}

/// The RFU datapath's fixed-point 8×8 forward DCT (row pass then column
/// pass) — bit-true to the software kernel's reference.
#[must_use]
pub fn fdct_fixed_rfu(block: &[i32; 64]) -> [i32; 64] {
    let coeffs = fixed_coeffs();
    let mut mid = [0i32; 64];
    for y in 0..8 {
        let mut row = [0i32; 8];
        row.copy_from_slice(&block[y * 8..(y + 1) * 8]);
        mid[y * 8..(y + 1) * 8].copy_from_slice(&pass(&row, &coeffs));
    }
    let mut out = [0i32; 64];
    for u in 0..8 {
        let mut col = [0i32; 8];
        for y in 0..8 {
            col[y] = mid[y * 8 + u];
        }
        let t = pass(&col, &coeffs);
        for v in 0..8 {
            out[v * 8 + u] = t[v];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_shape() {
        let c1 = DctLoopCfg::new(1);
        let c5 = DctLoopCfg::new(5);
        assert_eq!(c1.static_latency(), 10 + 16 + 8 + 4);
        assert_eq!(c5.static_latency() - c1.static_latency(), 4 * 8);
    }

    #[test]
    fn dc_of_flat_block() {
        let out = fdct_fixed_rfu(&[100i32; 64]);
        assert!((out[0] - 800).abs() <= 2);
        assert!(out[1..].iter().all(|&c| c.abs() <= 1));
    }

    #[test]
    fn deterministic() {
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = (i as i32 * 31 % 255) - 127;
        }
        assert_eq!(fdct_fixed_rfu(&block), fdct_fixed_rfu(&block));
    }
}
