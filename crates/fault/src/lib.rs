//! Deterministic, seeded fault injection for the rvliw simulator.
//!
//! A [`FaultPlan`] describes *which* bounded perturbations a run may
//! suffer and *how often*; a [`FaultInjector`] is a plan specialised to
//! one component of one run (one memory system, one RFU) and carries the
//! random-number stream that decides *when* each perturbation fires.
//!
//! Design constraints, in order of importance:
//!
//! 1. **The zero-fault plan is inert.** [`FaultPlan::default`] has every
//!    rate at zero; injectors derived from it answer every query with
//!    "no fault" through an [`FaultInjector::is_inert`] early-out that
//!    never touches the RNG, so golden tables are bit-identical whether
//!    the fault layer exists or not.
//! 2. **Determinism is independent of thread scheduling.** Substreams
//!    are derived by hashing `(seed, component, salt)` — typically the
//!    scenario label — so the same scenario sees the same faults no
//!    matter which worker thread runs it or in what order.
//! 3. **Faults are bounded.** Each knob has an explicit ceiling; no
//!    injected perturbation can corrupt functional state outside the
//!    simulated machine (a bit flip lands in line-buffer pixel data, not
//!    in host memory).
//!
//! The RNG is xorshift64* — three shifts and a multiply, no
//! dependencies, and good enough statistical quality for rate-based
//! injection decisions.

use std::fmt;
use std::str::FromStr;

/// Scale of all probability knobs: parts per million per opportunity.
pub const PPM: u32 = 1_000_000;

/// A named preset of fault rates, selectable from the command line via
/// `--fault-profile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No faults (the default plan).
    None,
    /// Extra D-cache/bus latency jitter on demand accesses.
    Latency,
    /// Spurious whole-cache flushes.
    Flush,
    /// Delayed (and occasionally stuck) line-buffer row completion.
    LineBuffer,
    /// Bit flips in RFU-loaded pixel data.
    BitFlip,
    /// All of the above at once.
    Chaos,
}

impl FaultProfile {
    /// Every profile name accepted by [`FromStr`].
    pub const NAMES: [&'static str; 6] =
        ["none", "latency", "flush", "linebuffer", "bitflip", "chaos"];
}

impl FromStr for FaultProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "zero" => Ok(FaultProfile::None),
            "latency" => Ok(FaultProfile::Latency),
            "flush" => Ok(FaultProfile::Flush),
            "linebuffer" | "lb" => Ok(FaultProfile::LineBuffer),
            "bitflip" | "bit-flip" => Ok(FaultProfile::BitFlip),
            "chaos" => Ok(FaultProfile::Chaos),
            other => Err(format!(
                "unknown fault profile `{other}` (expected one of: {})",
                FaultProfile::NAMES.join(", ")
            )),
        }
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultProfile::None => "none",
            FaultProfile::Latency => "latency",
            FaultProfile::Flush => "flush",
            FaultProfile::LineBuffer => "linebuffer",
            FaultProfile::BitFlip => "bitflip",
            FaultProfile::Chaos => "chaos",
        };
        f.write_str(name)
    }
}

/// What happens to one line-buffer row gather under the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbRowFault {
    /// The row completes on time.
    None,
    /// The row's `Done` flag arrives this many extra cycles late.
    Delay(u64),
    /// The row's `Done` flag never arrives (deadlock-watchdog fodder).
    Stuck,
}

/// A seeded description of which perturbations a run may suffer.
///
/// All rates are in parts per million per opportunity ([`PPM`]); the
/// default plan has every rate at zero and is provably inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for every substream derived from this plan.
    pub seed: u64,
    /// Probability (ppm per demand access) of extra bus latency.
    pub mem_latency_ppm: u32,
    /// Ceiling on injected extra latency, in cycles.
    pub mem_latency_max: u64,
    /// Probability (ppm per demand access) of a spurious cache flush.
    pub flush_ppm: u32,
    /// Probability (ppm per row gather) of a delayed line-buffer row.
    pub lb_delay_ppm: u32,
    /// Ceiling on injected row-completion delay, in cycles.
    pub lb_delay_max: u64,
    /// Probability (ppm per row gather) that a row never completes.
    pub lb_stuck_ppm: u32,
    /// Probability (ppm per row load) of one bit flip in pixel data.
    pub bitflip_ppm: u32,
}

impl FaultPlan {
    /// The zero-fault plan (identical to [`FaultPlan::default`]).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Builds the plan for a named profile with the given seed.
    #[must_use]
    pub fn from_profile(profile: FaultProfile, seed: u64) -> Self {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        match profile {
            FaultProfile::None => {}
            FaultProfile::Latency => plan.set_latency(),
            FaultProfile::Flush => plan.set_flush(),
            FaultProfile::LineBuffer => plan.set_line_buffer(),
            FaultProfile::BitFlip => plan.set_bitflip(),
            FaultProfile::Chaos => {
                plan.set_latency();
                plan.set_flush();
                plan.set_line_buffer();
                plan.set_bitflip();
            }
        }
        plan
    }

    fn set_latency(&mut self) {
        self.mem_latency_ppm = 5_000; // one access in 200
        self.mem_latency_max = 40;
    }

    fn set_flush(&mut self) {
        self.flush_ppm = 200; // one access in 5000
    }

    fn set_line_buffer(&mut self) {
        self.lb_delay_ppm = 20_000; // one row in 50
        self.lb_delay_max = 250;
        self.lb_stuck_ppm = 50;
    }

    fn set_bitflip(&mut self) {
        self.bitflip_ppm = 5_000; // one row in 200
    }

    /// Whether this plan can never inject anything. Inert plans cost
    /// nothing at runtime: injectors derived from them short-circuit
    /// before touching the RNG.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.mem_latency_ppm == 0
            && self.flush_ppm == 0
            && self.lb_delay_ppm == 0
            && self.lb_stuck_ppm == 0
            && self.bitflip_ppm == 0
    }

    /// The plan a retry attempt runs under: attempt 0 is this plan
    /// unchanged (so first tries and cache keys are untouched), attempt
    /// `n > 0` carries a seed mixed from `(seed, "retry", n)` by the same
    /// FNV discipline as [`FaultPlan::injector`]. The rates stay
    /// identical — a retry faces the same fault *distribution*, just an
    /// independent draw from it — and the derivation is a pure function
    /// of `(self, attempt)`, so supervised reruns are reproducible.
    #[must_use]
    pub fn reseed_for_attempt(&self, attempt: u32) -> FaultPlan {
        if attempt == 0 {
            return *self;
        }
        let mut h = FNV_OFFSET;
        for b in self.seed.to_le_bytes() {
            h = fnv_step(h, b);
        }
        h = fnv_step(h, 0x1f);
        for &b in b"retry" {
            h = fnv_step(h, b);
        }
        h = fnv_step(h, 0x1f);
        for b in u64::from(attempt).to_le_bytes() {
            h = fnv_step(h, b);
        }
        FaultPlan {
            seed: if h == 0 { GOLDEN_GAMMA } else { h },
            ..*self
        }
    }

    /// Derives the injector for one component of one run.
    ///
    /// `component` names the consulting subsystem (`"mem"`, `"rfu"`);
    /// `salt` distinguishes runs (the scenario label in the case study).
    /// The derivation hashes all three inputs, so substreams are
    /// deterministic regardless of thread scheduling or run order.
    #[must_use]
    pub fn injector(&self, component: &str, salt: &str) -> FaultInjector {
        let mut h = FNV_OFFSET;
        for chunk in self.seed.to_le_bytes() {
            h = fnv_step(h, chunk);
        }
        h = fnv_step(h, 0x1f); // domain separator
        for &b in component.as_bytes() {
            h = fnv_step(h, b);
        }
        h = fnv_step(h, 0x1f);
        for &b in salt.as_bytes() {
            h = fnv_step(h, b);
        }
        FaultInjector {
            state: if h == 0 { GOLDEN_GAMMA } else { h },
            plan: *self,
            inert: self.is_inert(),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

/// A [`FaultPlan`] specialised to one component of one run, carrying
/// the substream state that decides when each perturbation fires.
///
/// Every query method takes `&mut self` (it advances the RNG) and has
/// an inert early-out that costs one branch.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
    plan: FaultPlan,
    inert: bool,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::inert()
    }
}

impl FaultInjector {
    /// An injector that never fires (derived from the zero-fault plan).
    #[must_use]
    pub fn inert() -> Self {
        FaultPlan::default().injector("", "")
    }

    /// Whether this injector can never fire.
    #[inline]
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.inert
    }

    /// The plan this injector was derived from.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// xorshift64*: the substream generator.
    #[inline]
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// One biased coin flip at `ppm` parts per million.
    #[inline]
    fn chance(&mut self, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        (self.next() >> 11) % u64::from(PPM) < u64::from(ppm)
    }

    /// Uniform draw in `1..=max` (`max` ≥ 1).
    #[inline]
    fn draw(&mut self, max: u64) -> u64 {
        1 + (self.next() >> 11) % max
    }

    /// Extra bus latency (cycles) to add to a demand access; 0 almost
    /// always, and always 0 under the inert plan.
    #[inline]
    pub fn extra_mem_latency(&mut self) -> u64 {
        if self.inert || !self.chance(self.plan.mem_latency_ppm) {
            return 0;
        }
        self.draw(self.plan.mem_latency_max.max(1))
    }

    /// Whether to spuriously flush the caches before this access.
    #[inline]
    pub fn spurious_flush(&mut self) -> bool {
        !self.inert && self.chance(self.plan.flush_ppm)
    }

    /// The fate of one line-buffer row gather.
    #[inline]
    pub fn lb_row_fault(&mut self) -> LbRowFault {
        if self.inert {
            return LbRowFault::None;
        }
        if self.chance(self.plan.lb_stuck_ppm) {
            return LbRowFault::Stuck;
        }
        if self.chance(self.plan.lb_delay_ppm) {
            return LbRowFault::Delay(self.draw(self.plan.lb_delay_max.max(1)));
        }
        LbRowFault::None
    }

    /// A uniform draw in `0..=max`, advancing the substream. Unlike the
    /// injection queries this has no inert early-out: it is the seam the
    /// supervised runner uses for deterministic retry-backoff jitter,
    /// which must produce the same bounded sequence for the same
    /// `(plan, component, salt)` regardless of thread scheduling.
    #[inline]
    pub fn uniform(&mut self, max: u64) -> u64 {
        if max == 0 {
            return 0;
        }
        (self.next() >> 11) % (max + 1)
    }

    /// Maybe flip one bit of a freshly loaded pixel row. Returns the
    /// byte index and the xor mask applied, or `None` when no fault
    /// fired (always `None` under the inert plan or for empty rows).
    #[inline]
    pub fn bit_flip(&mut self, data: &mut [u8]) -> Option<(usize, u8)> {
        if self.inert || data.is_empty() || !self.chance(self.plan.bitflip_ppm) {
            return None;
        }
        let byte = ((self.next() >> 11) % data.len() as u64) as usize;
        let mask = 1u8 << ((self.next() >> 11) % 8);
        data[byte] ^= mask;
        Some((byte, mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_inert());
        let mut inj = plan.injector("mem", "ORIG");
        assert!(inj.is_inert());
        let before = inj.state;
        for _ in 0..1000 {
            assert_eq!(inj.extra_mem_latency(), 0);
            assert!(!inj.spurious_flush());
            assert_eq!(inj.lb_row_fault(), LbRowFault::None);
            let mut row = [7u8; 20];
            assert_eq!(inj.bit_flip(&mut row), None);
            assert_eq!(row, [7u8; 20]);
        }
        assert_eq!(inj.state, before, "inert queries never touch the RNG");
    }

    #[test]
    fn substreams_are_deterministic_and_distinct() {
        let plan = FaultPlan::from_profile(FaultProfile::Chaos, 42);
        let seq = |component: &str, salt: &str| {
            let mut inj = plan.injector(component, salt);
            (0..64).map(|_| inj.next()).collect::<Vec<_>>()
        };
        assert_eq!(seq("mem", "ORIG"), seq("mem", "ORIG"));
        assert_ne!(seq("mem", "ORIG"), seq("rfu", "ORIG"));
        assert_ne!(seq("mem", "ORIG"), seq("mem", "A1"));
        let other = FaultPlan::from_profile(FaultProfile::Chaos, 43);
        let mut inj = other.injector("mem", "ORIG");
        let other_seq: Vec<u64> = (0..64).map(|_| inj.next()).collect();
        assert_ne!(seq("mem", "ORIG"), other_seq);
    }

    #[test]
    fn profiles_parse_and_set_expected_knobs() {
        for name in FaultProfile::NAMES {
            let p: FaultProfile = name.parse().unwrap();
            assert_eq!(p.to_string(), name);
        }
        assert!("garbage".parse::<FaultProfile>().is_err());
        let latency = FaultPlan::from_profile(FaultProfile::Latency, 1);
        assert!(latency.mem_latency_ppm > 0 && latency.bitflip_ppm == 0);
        assert!(!latency.is_inert());
        let chaos = FaultPlan::from_profile(FaultProfile::Chaos, 1);
        assert!(
            chaos.mem_latency_ppm > 0
                && chaos.flush_ppm > 0
                && chaos.lb_delay_ppm > 0
                && chaos.bitflip_ppm > 0
        );
        assert!(FaultPlan::from_profile(FaultProfile::None, 9).is_inert());
    }

    #[test]
    fn retry_reseed_is_deterministic_and_attempt_zero_is_identity() {
        let plan = FaultPlan::from_profile(FaultProfile::Chaos, 42);
        assert_eq!(plan.reseed_for_attempt(0), plan);
        let r1 = plan.reseed_for_attempt(1);
        let r2 = plan.reseed_for_attempt(2);
        // Same rates, fresh independent seeds, reproducibly.
        assert_eq!(r1.mem_latency_ppm, plan.mem_latency_ppm);
        assert_eq!(r1.bitflip_ppm, plan.bitflip_ppm);
        assert_ne!(r1.seed, plan.seed);
        assert_ne!(r1.seed, r2.seed);
        assert_eq!(plan.reseed_for_attempt(1), r1);
        // Distinct base seeds derive distinct retry seeds.
        let other = FaultPlan::from_profile(FaultProfile::Chaos, 43);
        assert_ne!(other.reseed_for_attempt(1).seed, r1.seed);
    }

    #[test]
    fn uniform_draws_are_bounded_and_deterministic() {
        let plan = FaultPlan::from_profile(FaultProfile::Chaos, 7);
        let draw = |salt: &str| {
            let mut inj = plan.injector("backoff", salt);
            (0..64).map(|_| inj.uniform(25)).collect::<Vec<_>>()
        };
        let a = draw("ORIG");
        assert_eq!(a, draw("ORIG"));
        assert_ne!(a, draw("A1"));
        assert!(a.iter().all(|&v| v <= 25));
        let mut inj = plan.injector("backoff", "zero");
        assert_eq!(inj.uniform(0), 0);
    }

    #[test]
    fn injected_faults_are_bounded() {
        let plan = FaultPlan::from_profile(FaultProfile::Chaos, 7);
        let mut inj = plan.injector("mem", "bounds");
        let mut fired = 0u32;
        for _ in 0..200_000 {
            let extra = inj.extra_mem_latency();
            assert!(extra <= plan.mem_latency_max);
            fired += u32::from(extra > 0);
            if let LbRowFault::Delay(d) = inj.lb_row_fault() {
                assert!(1 <= d && d <= plan.lb_delay_max);
            }
            let mut row = [0u8; 20];
            if let Some((byte, mask)) = inj.bit_flip(&mut row) {
                assert!(byte < row.len());
                assert_eq!(mask.count_ones(), 1);
                assert_eq!(row[byte], mask);
            }
        }
        assert!(fired > 0, "the latency fault fires at a nonzero rate");
    }
}
