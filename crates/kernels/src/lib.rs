#![warn(missing_docs)]
//! # rvliw-kernels
//!
//! The motion-estimation `GetSad` kernel as VLIW programs — the code the
//! paper profiles and accelerates.
//!
//! Every variant implements the same contract (see [`regs`] for the calling
//! convention): given the reference macroblock address, the candidate
//! predictor address (any byte alignment), the interpolation mode and the
//! frame stride, return the exact MPEG-4 SAD in `$r16`.
//!
//! * [`Variant::Orig`] — the optimized reference code: SIMD (`sad4`,
//!   `avg4r`) for the SAD and the horizontal/vertical interpolations, but
//!   the diagonal interpolation is **scalar** (byte extract / add / shift /
//!   repack): the basic SIMD subset has no exact 4-input rounding average,
//!   which is precisely the gap the paper's RFU instructions fill.
//! * [`Variant::A1`] — instruction-level scenario A1: the diagonal loop is
//!   reformulated with the new 1-cycle 2-pixel SIMD extensions
//!   (`hadd2`/`rnd2`/`pack4`), issued up to 4 per cycle.
//! * [`Variant::A2`] — scenario A2: an `RFUEXEC` diagonal-interpolation
//!   instruction over 4 pixels, operands loaded with `RFUSEND` (two words
//!   per send on the 64-bit RFU port), serialized on the single RFU slot.
//! * [`Variant::A3`] — scenario A3: one `RFUEXEC` per 16-pixel row (10
//!   words sent, results read back word by word).
//!
//! [`driver`] builds the *loop-level* programs (Tables 2–7): a per-
//!   macroblock preparation program (reference-macroblock prefetch into
//!   Line Buffer A) and a per-candidate program that prefetches the *next*
//!   candidate, executes the whole kernel loop as one long-latency RFU
//!   instruction and folds the running SAD minimum.

pub mod dct;
pub mod driver;
pub mod getsad;
pub mod mc;
pub mod regs;

pub use dct::build_dct;
pub use driver::{build_mb_prep, build_me_loop_call, DriverKind};
pub use getsad::{build_getsad, build_getsad_approx, Variant};
pub use mc::build_mc;
