//! Register calling conventions of the `GetSad` kernels and the loop-level
//! driver.
//!
//! Arguments arrive in `$r14`–`$r22`; the SAD result is returned in `$r16`
//! (reusing the first argument register, as a compiler would).

use rvliw_isa::Gpr;

/// Reference macroblock address (16-pixel aligned) — input.
pub const ARG_REF: Gpr = Gpr::new(16);
/// Candidate predictor address (any byte alignment) — input of the
/// instruction-level kernels.
pub const ARG_CAND: Gpr = Gpr::new(17);
/// Interpolation mode, 0 = none, 1 = H, 2 = V, 3 = diagonal — input.
pub const ARG_INTERP: Gpr = Gpr::new(18);
/// Frame row stride in bytes — input.
pub const ARG_STRIDE: Gpr = Gpr::new(19);
/// Running best SAD (loop-level driver) — input.
pub const ARG_BEST: Gpr = Gpr::new(15);
/// Reference-frame (previous reconstruction) base address (loop-level
/// driver) — input.
pub const ARG_BASE: Gpr = Gpr::new(14);
/// Candidate x coordinate in the reference frame (loop-level driver) —
/// input; shares the register of [`ARG_CAND`].
pub const ARG_CX: Gpr = Gpr::new(17);
/// Candidate y coordinate (loop-level driver) — input.
pub const ARG_CY: Gpr = Gpr::new(20);
/// Next candidate x, or [`NO_CANDIDATE`] (loop-level driver) — input.
pub const ARG_NCX: Gpr = Gpr::new(21);
/// Next candidate y (loop-level driver) — input.
pub const ARG_NCY: Gpr = Gpr::new(22);
/// Sentinel for "no next candidate".
pub const NO_CANDIDATE: u32 = u32::MAX;
/// The SAD result — output.
pub const RESULT: Gpr = Gpr::new(16);
/// Updated best SAD (loop-level driver) — output.
pub const RESULT_BEST: Gpr = Gpr::new(15);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convention_registers_are_distinct() {
        let all = [
            ARG_REF, ARG_CAND, ARG_INTERP, ARG_STRIDE, ARG_BEST, ARG_BASE, ARG_CY, ARG_NCX, ARG_NCY,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(RESULT, ARG_REF); // result reuses the first argument
        assert_eq!(ARG_CX, ARG_CAND); // coordinate aliases the address slot
    }
}
