//! The `GetSad` kernel programs (ORIG and the instruction-level RFU
//! scenarios A1–A3).
//!
//! All variants share the structure of the paper's Listing 1: a dispatch on
//! the interpolation mode, then a 16-iteration row loop that
//!
//! 1. reads the five packed 32-bit words of the predictor row,
//! 2. aligns the needed 17 pixels (variable shifts — the alignment is a
//!    run-time value),
//! 3. interpolates when a sub-pixel motion vector is given,
//! 4. reads the 16 reference pixels and accumulates the SAD (`sad4`).
//!
//! The variants differ **only in the diagonal-interpolation loop** — the
//! hot spot the paper attacks — exactly as in the case study.

use rvliw_asm::{schedule, Builder, Code, Label};
use rvliw_isa::{Gpr, MachineConfig, Src};
use rvliw_rfu::{cfgs, SadApprox};

use crate::regs::{ARG_CAND, ARG_INTERP, ARG_REF, ARG_STRIDE, RESULT};

/// Which kernel implementation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The optimized reference C code (basic SIMD subset; scalar diagonal).
    Orig,
    /// A1: new 1-cycle SIMD instructions (2-pixel exact diagonal family),
    /// issued on the regular 4-wide slots.
    A1,
    /// A2: `RFUEXEC` diagonal interpolation over 4 pixels.
    A2,
    /// A3: `RFUEXEC` diagonal interpolation over a 16-pixel row.
    A3,
}

impl Variant {
    /// Display name matching the paper's Table 1 rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Orig => "Orig",
            Variant::A1 => "A1",
            Variant::A2 => "A2",
            Variant::A3 => "A3",
        }
    }

    /// All variants in Table 1 order.
    #[must_use]
    pub fn all() -> [Variant; 4] {
        [Variant::Orig, Variant::A1, Variant::A2, Variant::A3]
    }
}

// ---- local register map (see regs.rs for the argument convention) -------
pub(crate) const CANDP: Gpr = Gpr::new(1); // word-aligned candidate pointer
pub(crate) const SH: Gpr = Gpr::new(2); // alignment shift in bits (0, 8, 16, 24)
pub(crate) const SHL: Gpr = Gpr::new(3); // 32 - SH
pub(crate) const REFP: Gpr = Gpr::new(4);
pub(crate) const CNT: Gpr = Gpr::new(5);
pub(crate) const ACC: Gpr = Gpr::new(6);
pub(crate) const TMP: Gpr = Gpr::new(7);
pub(crate) const ALIGN: Gpr = Gpr::new(60); // byte alignment 0..3 (RFU operand)

pub(crate) const W: [Gpr; 5] = [
    Gpr::new(8),
    Gpr::new(9),
    Gpr::new(10),
    Gpr::new(11),
    Gpr::new(12),
];
pub(crate) const A: [Gpr; 5] = [
    Gpr::new(20),
    Gpr::new(21),
    Gpr::new(22),
    Gpr::new(23),
    Gpr::new(24),
];
pub(crate) const REF: [Gpr; 4] = [Gpr::new(25), Gpr::new(26), Gpr::new(27), Gpr::new(28)];
pub(crate) const S: [Gpr; 4] = [Gpr::new(29), Gpr::new(30), Gpr::new(31), Gpr::new(13)];
pub(crate) const PA: [Gpr; 5] = [
    Gpr::new(32),
    Gpr::new(33),
    Gpr::new(34),
    Gpr::new(35),
    Gpr::new(36),
];
pub(crate) const PW: [Gpr; 5] = [
    Gpr::new(40),
    Gpr::new(41),
    Gpr::new(42),
    Gpr::new(43),
    Gpr::new(44),
];
pub(crate) const TT: [Gpr; 4] = [Gpr::new(45), Gpr::new(46), Gpr::new(47), Gpr::new(48)];
// Scalar diagonal working set (two sets, alternating by pixel parity, to
// expose a little ILP under realistic register pressure).
pub(crate) const BY: [Gpr; 2] = [Gpr::new(50), Gpr::new(52)];
pub(crate) const BY1: [Gpr; 2] = [Gpr::new(51), Gpr::new(53)];
pub(crate) const T1: [Gpr; 2] = [Gpr::new(54), Gpr::new(61)];
pub(crate) const T2: [Gpr; 2] = [Gpr::new(55), Gpr::new(62)];
pub(crate) const SS: [Gpr; 2] = [Gpr::new(56), Gpr::new(49)];
pub(crate) const DD: [Gpr; 2] = [Gpr::new(57), Gpr::new(37)];
pub(crate) const OW: Gpr = Gpr::new(58);
pub(crate) const DS: Gpr = Gpr::new(59);
// A1 family temporaries.
const HY: [Gpr; 2] = [Gpr::new(50), Gpr::new(52)];
const HY1: [Gpr; 2] = [Gpr::new(51), Gpr::new(53)];
const SUM: [Gpr; 2] = [Gpr::new(54), Gpr::new(61)];
const D2: [Gpr; 2] = [Gpr::new(56), Gpr::new(49)];
// A3 row result words.
const OWS: [Gpr; 4] = [Gpr::new(58), Gpr::new(57), Gpr::new(37), Gpr::new(38)];
// Approximate-mode registers. The two are never live together: a kernel is
// built for exactly one approximation, and subsampling and early exit do
// not combine.
const DSTRIDE: Gpr = Gpr::new(39); // stride between *sampled* rows
const THRESH: Gpr = Gpr::new(39); // early-exit threshold
const CANDP2: Gpr = Gpr::new(63); // row-below pointer (subsampled V/diag)

/// Builds and schedules the `GetSad` program for `variant`.
///
/// # Panics
///
/// Panics only on an internal generator bug (the emitted program always
/// validates and schedules).
#[must_use]
pub fn build_getsad(variant: Variant, cfg: &MachineConfig) -> Code {
    build_getsad_approx(variant, SadApprox::Exact, cfg)
}

/// Builds `variant`'s kernel with an approximate SAD datapath. With
/// [`SadApprox::Exact`] the emitted program is byte-identical to
/// [`build_getsad`]'s — the approximation hooks emit nothing — which keeps
/// exact-mode program hashes (and hence cache keys) stable.
///
/// # Panics
///
/// Panics only on an internal generator bug (the emitted program always
/// validates and schedules).
#[must_use]
pub fn build_getsad_approx(variant: Variant, approx: SadApprox, cfg: &MachineConfig) -> Code {
    let mut name = format!("getsad_{}", variant.name().to_lowercase());
    if !approx.is_exact() {
        name.push_str("_approx");
    }
    let mut b = Builder::new(name);
    let l_none = b.label();
    let l_h = b.label();
    let l_v = b.label();
    let l_diag = b.label();

    emit_init_dispatch(&mut b, l_none, l_h, l_v, l_diag, approx);

    b.bind(l_none);
    emit_body_none(&mut b, approx);
    b.bind(l_h);
    emit_body_h(&mut b, approx);
    b.bind(l_v);
    emit_body_v(&mut b, approx);
    b.bind(l_diag);
    match variant {
        Variant::Orig => emit_diag_scalar(&mut b, approx),
        Variant::A1 => emit_diag_a1(&mut b, approx),
        Variant::A2 => emit_diag_a2(&mut b, approx),
        Variant::A3 => emit_diag_a3(&mut b, approx),
    }

    let program = b.build();
    schedule(&program, cfg).unwrap_or_else(|e| panic!("GetSad kernels always schedule: {e}"))
}

/// Row subsampling step of the loop (1 = every row).
fn sub_step(approx: SadApprox) -> u32 {
    match approx {
        SadApprox::SubsampledRows { step } if step > 1 => u32::from(step),
        _ => 1,
    }
}

/// The 4-lane pixel mask word, when the mode masks pixels at all.
fn mask_word(approx: SadApprox) -> Option<i32> {
    let m = approx.pixel_mask();
    (m != 0xFF).then(|| i32::from_ne_bytes([m; 4]))
}

/// Common initialisation and the interpolation-mode dispatch.
fn emit_init_dispatch(
    b: &mut Builder,
    l_none: Label,
    l_h: Label,
    l_v: Label,
    l_diag: Label,
    approx: SadApprox,
) {
    // Pointer/shift setup: the candidate address is split into the aligned
    // word pointer and the byte alignment.
    b.and(CANDP, ARG_CAND, -4);
    b.and(ALIGN, ARG_CAND, 3);
    b.sll(SH, ALIGN, 3);
    b.movi(TMP, 32);
    b.sub(SHL, TMP, SH);
    b.mov(REFP, ARG_REF);
    b.movi(ACC, 0);
    let step = sub_step(approx);
    b.movi(CNT, (16 / step) as i32);
    if step > 1 {
        // Stride between consecutive *sampled* rows (step is 2 or 4).
        b.sll(DSTRIDE, ARG_STRIDE, step.trailing_zeros() as i32);
    }
    if let SadApprox::EarlyExit { threshold } = approx {
        b.movi(THRESH, threshold as i32);
    }
    let c0 = rvliw_isa::Br::new(0);
    let c1 = rvliw_isa::Br::new(1);
    let c2 = rvliw_isa::Br::new(2);
    b.cmpeq_br(c0, ARG_INTERP, 0);
    b.cmpeq_br(c1, ARG_INTERP, 1);
    b.cmpeq_br(c2, ARG_INTERP, 2);
    b.br(c0, l_none);
    b.br(c1, l_h);
    b.br(c2, l_v);
    b.goto(l_diag);
}

/// Loads the five packed words of the current predictor row.
pub(crate) fn emit_load_words(b: &mut Builder, dst: &[Gpr; 5]) {
    emit_load_words_from(b, CANDP, dst);
}

/// Loads five packed row words from an arbitrary word-aligned base (the
/// subsampled bodies fetch the row below through a second pointer).
fn emit_load_words_from(b: &mut Builder, base: Gpr, dst: &[Gpr; 5]) {
    for (k, &r) in dst.iter().enumerate() {
        b.ldw(r, base, (k * 4) as i32);
    }
}

/// Aligns `W` into the first four registers of `dst` (the 16 pixels), using
/// the run-time shift pair. `with_a4` also produces the 17th-pixel word.
pub(crate) fn emit_align(b: &mut Builder, dst: &[Gpr; 5], with_a4: bool) {
    for k in 0..4 {
        b.sll(TT[k], W[k + 1], SHL);
        b.srl(dst[k], W[k], SH);
        b.or(dst[k], dst[k], TT[k]);
    }
    if with_a4 {
        b.srl(dst[4], W[4], SH);
    }
}

/// Loads the four reference words of the current row, masking them in
/// place under reduced precision (they are reloaded every row).
fn emit_ref_loads(b: &mut Builder, approx: SadApprox) {
    for (k, &r) in REF.iter().enumerate() {
        b.ldw(r, REFP, (k * 4) as i32);
    }
    if let Some(m) = mask_word(approx) {
        for &r in &REF {
            b.and(r, r, m);
        }
    }
}

/// One `sad4` against a reference word, masking the (dead-after-use)
/// predictor word first under reduced precision.
fn emit_masked_sad4(b: &mut Builder, dst: Gpr, pred: Gpr, refw: Gpr, approx: SadApprox) {
    if let Some(m) = mask_word(approx) {
        b.and(pred, pred, m);
    }
    b.sad4(dst, pred, refw);
}

/// `sad4` the four predictor words in `pred` against the reference row and
/// accumulates (balanced tree to keep the dependence chain short).
fn emit_sad_acc(b: &mut Builder, pred: &[Gpr], approx: SadApprox) {
    for k in 0..4 {
        emit_masked_sad4(b, S[k], pred[k], REF[k], approx);
    }
    b.add(S[0], S[0], S[1]);
    b.add(S[2], S[2], S[3]);
    b.add(ACC, ACC, S[0]);
    b.add(ACC, ACC, S[2]);
}

/// Pointer advance, loop counter and back edge. Subsampled kernels step
/// both pointers by `step` rows at once.
fn emit_advance_loop(b: &mut Builder, top: Label, approx: SadApprox) {
    let stride: Gpr = if sub_step(approx) > 1 {
        DSTRIDE
    } else {
        ARG_STRIDE
    };
    b.add(CANDP, CANDP, stride);
    b.add(REFP, REFP, stride);
    b.subi(CNT, CNT, 1);
    let c = rvliw_isa::Br::new(3);
    b.cmpne_br(c, CNT, 0);
    b.br(c, top);
}

/// Ends a row body: the optional early-exit test, the loop back edge and
/// the epilogue. In exact mode this is exactly `advance + epilogue`.
fn emit_loop_end(b: &mut Builder, top: Label, approx: SadApprox) {
    if matches!(approx, SadApprox::EarlyExit { .. }) {
        // ACC > THRESH (unsigned) ⇒ the partial sum is the result.
        let l_done = b.label();
        let c4 = rvliw_isa::Br::new(4);
        b.cmpltu_br(c4, THRESH, ACC);
        b.br(c4, l_done);
        emit_advance_loop(b, top, approx);
        b.bind(l_done);
        emit_epilogue(b);
    } else {
        emit_advance_loop(b, top, approx);
        emit_epilogue(b);
    }
}

/// Result in `$r16`, stop.
fn emit_epilogue(b: &mut Builder) {
    b.mov(RESULT, ACC);
    b.halt();
}

/// Integer-pixel body: align and SAD.
fn emit_body_none(b: &mut Builder, approx: SadApprox) {
    let top = b.label();
    b.bind(top);
    emit_load_words(b, &W);
    emit_align(b, &A, false);
    emit_ref_loads(b, approx);
    emit_sad_acc(b, &A[..4], approx);
    emit_loop_end(b, top, approx);
}

/// Horizontal half-sample body: `avg4r` of the aligned row with its
/// one-byte-shifted window.
fn emit_body_h(b: &mut Builder, approx: SadApprox) {
    let top = b.label();
    b.bind(top);
    emit_load_words(b, &W);
    emit_align(b, &A, true);
    emit_ref_loads(b, approx);
    // Shifted windows: bytes k*4+1 .. k*4+5 of the aligned row. The raw
    // words are dead after alignment, so they host the shifted values.
    for k in 0..4 {
        b.sll(TT[k], A[k + 1], 24);
        b.srl(W[k], A[k], 8);
        b.or(W[k], W[k], TT[k]);
        b.avg4r(W[k], A[k], W[k]);
    }
    emit_sad_acc(b, &W[..4], approx);
    emit_loop_end(b, top, approx);
}

/// Vertical half-sample body: `avg4r` of the previous and current aligned
/// rows. With every row visited the previous row is carried across
/// iterations; a subsampled kernel instead fetches the row below through a
/// second pointer, because the next iteration's row is `step` rows away.
fn emit_body_v(b: &mut Builder, approx: SadApprox) {
    let top = b.label();
    if sub_step(approx) == 1 {
        // Prologue: align row 0 into PA.
        emit_load_words(b, &W);
        emit_align(b, &PA, false);
        b.add(CANDP, CANDP, ARG_STRIDE);
        b.bind(top);
        emit_load_words(b, &W);
        emit_align(b, &A, false);
        emit_ref_loads(b, approx);
        for k in 0..4 {
            b.avg4r(W[k], PA[k], A[k]);
        }
        emit_sad_acc(b, &W[..4], approx);
        for k in 0..4 {
            b.mov(PA[k], A[k]);
        }
    } else {
        b.bind(top);
        b.add(CANDP2, CANDP, ARG_STRIDE);
        emit_load_words(b, &W);
        emit_align(b, &PA, false);
        emit_load_words_from(b, CANDP2, &W);
        emit_align(b, &A, false);
        emit_ref_loads(b, approx);
        for k in 0..4 {
            b.avg4r(W[k], PA[k], A[k]);
        }
        emit_sad_acc(b, &W[..4], approx);
    }
    emit_loop_end(b, top, approx);
}

/// ORIG diagonal body: exact but **scalar** — byte extracts, 10-bit sums,
/// rounding shift, repack. The basic SIMD subset has no exact 4-input
/// rounded average, so this is what the compiled reference code does; it is
/// the hot spot the RFU scenarios attack.
fn emit_diag_scalar(b: &mut Builder, approx: SadApprox) {
    let carry = sub_step(approx) == 1;
    let top = b.label();
    if carry {
        emit_load_words(b, &W);
        emit_align(b, &PA, true);
        b.add(CANDP, CANDP, ARG_STRIDE);
        b.bind(top);
        emit_load_words(b, &W);
        emit_align(b, &A, true);
    } else {
        b.bind(top);
        b.add(CANDP2, CANDP, ARG_STRIDE);
        emit_load_words(b, &W);
        emit_align(b, &PA, true);
        emit_load_words_from(b, CANDP2, &W);
        emit_align(b, &A, true);
    }
    emit_ref_loads(b, approx);
    // Pixel 0's left neighbours.
    b.extbu(BY[0], PA[0], 0);
    b.extbu(BY1[0], A[0], 0);
    for i in 0..16usize {
        let cur = i % 2;
        let nxt = (i + 1) % 2;
        let wi = (i + 1) / 4;
        let lane = ((i + 1) % 4) as i32;
        // Next column of both rows.
        b.extbu(BY[nxt], PA[wi], lane);
        b.extbu(BY1[nxt], A[wi], lane);
        // s = p00 + p01 + p10 + p11 + 2; d = s >> 2.
        b.add(T1[cur], BY[cur], BY[nxt]);
        b.add(T2[cur], BY1[cur], BY1[nxt]);
        b.add(SS[cur], T1[cur], T2[cur]);
        b.addi(SS[cur], SS[cur], 2);
        b.srl(DD[cur], SS[cur], 2);
        // Repack into the output word.
        if i % 4 == 0 {
            b.mov(OW, DD[cur]);
        } else {
            b.sll(DS, DD[cur], (8 * (i % 4)) as i32);
            b.or(OW, OW, DS);
        }
        if i % 4 == 3 {
            let g = i / 4;
            emit_masked_sad4(b, S[g], OW, REF[g], approx);
            b.add(ACC, ACC, S[g]);
        }
    }
    if carry {
        for k in 0..5 {
            b.mov(PA[k], A[k]);
        }
    }
    emit_loop_end(b, top, approx);
}

/// A1 diagonal body: the 2-pixel exact family (`hadd2` horizontal pair
/// sums, plain adds for the vertical combine, `rnd2` rounding divide,
/// `pack4` repack) over the *aligned* rows — 4-issue 1-cycle operations.
fn emit_diag_a1(b: &mut Builder, approx: SadApprox) {
    let carry = sub_step(approx) == 1;
    let top = b.label();
    if carry {
        emit_load_words(b, &W);
        emit_align(b, &PA, true);
        b.add(CANDP, CANDP, ARG_STRIDE);
        b.bind(top);
        emit_load_words(b, &W);
        emit_align(b, &A, true);
    } else {
        b.bind(top);
        b.add(CANDP2, CANDP, ARG_STRIDE);
        emit_load_words(b, &W);
        emit_align(b, &PA, true);
        emit_load_words_from(b, CANDP2, &W);
        emit_align(b, &A, true);
    }
    emit_ref_loads(b, approx);
    for g in 0..8usize {
        let px = 2 * g;
        let wi = px / 4;
        let lane = (px % 4) as i32;
        let p = g % 2;
        b.op(rvliw_isa::Op::new(
            rvliw_isa::Opcode::Hadd2,
            HY[p].into(),
            &[PA[wi].into(), PA[wi + 1].into(), lane.into()],
        ));
        b.op(rvliw_isa::Op::new(
            rvliw_isa::Opcode::Hadd2,
            HY1[p].into(),
            &[A[wi].into(), A[wi + 1].into(), lane.into()],
        ));
        b.add(SUM[p], HY[p], HY1[p]);
        b.op(rvliw_isa::Op::new(
            rvliw_isa::Opcode::Rnd2,
            D2[p].into(),
            &[SUM[p].into()],
        ));
        if g % 2 == 1 {
            let word = g / 2;
            b.op(rvliw_isa::Op::new(
                rvliw_isa::Opcode::Pack4,
                OW.into(),
                &[D2[0].into(), D2[1].into()],
            ));
            emit_masked_sad4(b, S[word], OW, REF[word], approx);
            b.add(ACC, ACC, S[word]);
        }
    }
    if carry {
        for k in 0..5 {
            b.mov(PA[k], A[k]);
        }
    }
    emit_loop_end(b, top, approx);
}

/// A2 diagonal body: `RFUSEND` the raw word pairs of both rows, one
/// `RFUEXEC` per 4 pixels (alignment handled inside the configuration).
fn emit_diag_a2(b: &mut Builder, approx: SadApprox) {
    let carry = sub_step(approx) == 1;
    b.rfu_init(cfgs::DIAG4);
    let top = b.label();
    if carry {
        emit_load_words(b, &PW);
        b.add(CANDP, CANDP, ARG_STRIDE);
        b.bind(top);
        emit_load_words(b, &W);
    } else {
        b.bind(top);
        b.add(CANDP2, CANDP, ARG_STRIDE);
        emit_load_words(b, &PW);
        emit_load_words_from(b, CANDP2, &W);
    }
    emit_ref_loads(b, approx);
    for g in 0..4usize {
        b.rfu_send(cfgs::DIAG4, &[PW[g], PW[g + 1]]);
        b.rfu_send(cfgs::DIAG4, &[W[g], W[g + 1]]);
        b.rfu_exec(cfgs::DIAG4, OW, &[Src::Gpr(ALIGN)]);
        emit_masked_sad4(b, S[g], OW, REF[g], approx);
        b.add(ACC, ACC, S[g]);
    }
    if carry {
        for k in 0..5 {
            b.mov(PW[k], W[k]);
        }
    }
    emit_loop_end(b, top, approx);
}

/// A3 diagonal body: ten words sent, one `RFUEXEC` per 16-pixel row plus
/// three result reads.
fn emit_diag_a3(b: &mut Builder, approx: SadApprox) {
    let carry = sub_step(approx) == 1;
    b.rfu_init(cfgs::DIAG16);
    let top = b.label();
    if carry {
        emit_load_words(b, &PW);
        b.add(CANDP, CANDP, ARG_STRIDE);
        b.bind(top);
        emit_load_words(b, &W);
    } else {
        b.bind(top);
        b.add(CANDP2, CANDP, ARG_STRIDE);
        emit_load_words(b, &PW);
        emit_load_words_from(b, CANDP2, &W);
    }
    emit_ref_loads(b, approx);
    // Row y then row y+1, five words each.
    b.rfu_send(cfgs::DIAG16, &[PW[0], PW[1]]);
    b.rfu_send(cfgs::DIAG16, &[PW[2], PW[3]]);
    b.rfu_send(cfgs::DIAG16, &[PW[4], W[0]]);
    b.rfu_send(cfgs::DIAG16, &[W[1], W[2]]);
    b.rfu_send(cfgs::DIAG16, &[W[3], W[4]]);
    b.rfu_exec(cfgs::DIAG16, OWS[0], &[Src::Gpr(ALIGN)]);
    b.rfu_exec(cfgs::DIAG16_R1, OWS[1], &[]);
    b.rfu_exec(cfgs::DIAG16_R2, OWS[2], &[]);
    b.rfu_exec(cfgs::DIAG16_R3, OWS[3], &[]);
    for g in 0..4usize {
        emit_masked_sad4(b, S[g], OWS[g], REF[g], approx);
        b.add(ACC, ACC, S[g]);
    }
    if carry {
        for k in 0..5 {
            b.mov(PW[k], W[k]);
        }
    }
    emit_loop_end(b, top, approx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpeg4_enc::sad::{get_sad, InterpKind};
    use mpeg4_enc::types::Plane;
    use rvliw_rfu::{MeLoopCfg, RfuBandwidth};
    use rvliw_sim::Machine;

    const STRIDE: u32 = 176;

    fn textured_plane(w: usize, h: usize, seed: u32) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = (x as u32)
                    .wrapping_mul(31)
                    .wrapping_add((y as u32).wrapping_mul(17))
                    .wrapping_add(seed.wrapping_mul(97))
                    .wrapping_mul(2_654_435_761);
                p.set(x, y, (v >> 24) as u8);
            }
        }
        p
    }

    /// Loads a plane into simulator RAM, returning its base address.
    fn load_plane(m: &mut Machine, p: &Plane) -> u32 {
        let base = m.mem.ram.alloc((p.width() * p.height()) as u32, 32);
        for y in 0..p.height() {
            m.mem
                .ram
                .write_bytes(base + (y * p.width()) as u32, p.row(y));
        }
        base
    }

    fn machine_with_rfu() -> Machine {
        rvliw_core::SimSession::st200()
            .me_loop(MeLoopCfg::new(RfuBandwidth::B1x32, 1, STRIDE))
            .build()
    }

    fn run_kernel(m: &mut Machine, code: &Code, ref_addr: u32, cand_addr: u32, interp: u32) -> u32 {
        m.set_gpr(ARG_REF, ref_addr);
        m.set_gpr(ARG_CAND, cand_addr);
        m.set_gpr(ARG_INTERP, interp);
        m.set_gpr(ARG_STRIDE, STRIDE);
        m.run(code).unwrap();
        m.gpr(RESULT)
    }

    fn interp_code(kind: InterpKind) -> u32 {
        match kind {
            InterpKind::None => 0,
            InterpKind::H => 1,
            InterpKind::V => 2,
            InterpKind::Diag => 3,
        }
    }

    /// Every variant × every mode × every alignment matches the golden SAD.
    #[test]
    fn kernels_match_golden_sad_exactly() {
        let cur = textured_plane(176, 48, 1);
        let prev = textured_plane(176, 48, 2);
        for variant in Variant::all() {
            let code = build_getsad(variant, &MachineConfig::st200());
            let mut m = machine_with_rfu();
            let cur_base = load_plane(&mut m, &cur);
            let prev_base = load_plane(&mut m, &prev);
            for kind in [
                InterpKind::None,
                InterpKind::H,
                InterpKind::V,
                InterpKind::Diag,
            ] {
                for align in 0..4usize {
                    let (rx, ry) = (16, 16);
                    let (cx, cy) = (20 + align, 9);
                    let golden = get_sad(&cur, rx, ry, &prev, cx, cy, kind);
                    let got = run_kernel(
                        &mut m,
                        &code,
                        cur_base + (ry * 176 + rx) as u32,
                        prev_base + (cy * 176 + cx) as u32,
                        interp_code(kind),
                    );
                    assert_eq!(
                        got, golden,
                        "variant {:?} kind {kind:?} align {align}",
                        variant
                    );
                }
            }
        }
    }

    /// Every variant × approx mode × interpolation × alignment matches the
    /// scalar approximate reference bit for bit.
    #[test]
    fn approx_kernels_match_scalar_reference_exactly() {
        use mpeg4_enc::sad::{get_sad_approx, ApproxSad};
        let cur = textured_plane(176, 48, 7);
        let prev = textured_plane(176, 48, 8);
        let cases = [
            (
                ApproxSad::SubsampledRows { step: 2 },
                SadApprox::SubsampledRows { step: 2 },
            ),
            (
                ApproxSad::SubsampledRows { step: 4 },
                SadApprox::SubsampledRows { step: 4 },
            ),
            (
                ApproxSad::ReducedPrecision { bits: 1 },
                SadApprox::ReducedPrecision { bits: 1 },
            ),
            (
                ApproxSad::ReducedPrecision { bits: 3 },
                SadApprox::ReducedPrecision { bits: 3 },
            ),
            (
                ApproxSad::EarlyExit { threshold: 0 },
                SadApprox::EarlyExit { threshold: 0 },
            ),
            (
                ApproxSad::EarlyExit { threshold: 2000 },
                SadApprox::EarlyExit { threshold: 2000 },
            ),
        ];
        for variant in Variant::all() {
            for (host, hw) in cases {
                let code = build_getsad_approx(variant, hw, &MachineConfig::st200());
                let mut m = machine_with_rfu();
                let cur_base = load_plane(&mut m, &cur);
                let prev_base = load_plane(&mut m, &prev);
                for kind in [
                    InterpKind::None,
                    InterpKind::H,
                    InterpKind::V,
                    InterpKind::Diag,
                ] {
                    for align in 0..4usize {
                        let (rx, ry) = (16, 16);
                        let (cx, cy) = (20 + align, 9);
                        let golden = get_sad_approx(&cur, rx, ry, &prev, cx, cy, kind, host);
                        let got = run_kernel(
                            &mut m,
                            &code,
                            cur_base + (ry * 176 + rx) as u32,
                            prev_base + (cy * 176 + cx) as u32,
                            interp_code(kind),
                        );
                        assert_eq!(
                            got, golden,
                            "variant {variant:?} approx {hw:?} kind {kind:?} align {align}"
                        );
                    }
                }
            }
        }
    }

    /// The exact-mode approx builder is the plain builder, program for
    /// program (cache keys hash the program words).
    #[test]
    fn exact_approx_build_is_byte_identical() {
        for variant in Variant::all() {
            let a = build_getsad(variant, &MachineConfig::st200());
            let b = build_getsad_approx(variant, SadApprox::Exact, &MachineConfig::st200());
            assert_eq!(a.content_key().hex(), b.content_key().hex(), "{variant:?}");
        }
    }

    /// The RFU variants beat ORIG on diagonal calls, in the paper's order.
    #[test]
    fn diagonal_cycle_ordering_orig_a1_a2_a3() {
        let cur = textured_plane(176, 48, 3);
        let prev = textured_plane(176, 48, 4);
        let mut cycles = Vec::new();
        for variant in Variant::all() {
            let code = build_getsad(variant, &MachineConfig::st200());
            let mut m = machine_with_rfu();
            let cur_base = load_plane(&mut m, &cur);
            let prev_base = load_plane(&mut m, &prev);
            // Warm caches and I$ with one throwaway call.
            let _ = run_kernel(
                &mut m,
                &code,
                cur_base + 16 * 176 + 16,
                prev_base + 9 * 176 + 21,
                3,
            );
            let before = m.cycle();
            let _ = run_kernel(
                &mut m,
                &code,
                cur_base + 16 * 176 + 16,
                prev_base + 9 * 176 + 21,
                3,
            );
            cycles.push((variant, m.cycle() - before));
        }
        let orig = cycles[0].1;
        let a1 = cycles[1].1;
        let a2 = cycles[2].1;
        let a3 = cycles[3].1;
        assert!(orig > a1, "orig {orig} > a1 {a1}");
        assert!(a1 > a3, "a1 {a1} > a3 {a3}");
        assert!(a2 > a3, "a2 {a2} > a3 {a3}");
    }

    /// Non-diagonal calls cost the same across variants (the scenarios only
    /// modify the diagonal loop).
    #[test]
    fn non_diagonal_paths_identical_across_variants() {
        let cur = textured_plane(176, 48, 5);
        let prev = textured_plane(176, 48, 6);
        for interp in 0..3u32 {
            let mut per_variant = Vec::new();
            for variant in Variant::all() {
                let code = build_getsad(variant, &MachineConfig::st200());
                let mut m = machine_with_rfu();
                let cur_base = load_plane(&mut m, &cur);
                let prev_base = load_plane(&mut m, &prev);
                let _ = run_kernel(
                    &mut m,
                    &code,
                    cur_base + 16 * 176 + 16,
                    prev_base + 9 * 176 + 22,
                    interp,
                );
                let before = m.cycle();
                let _ = run_kernel(
                    &mut m,
                    &code,
                    cur_base + 16 * 176 + 16,
                    prev_base + 9 * 176 + 22,
                    interp,
                );
                per_variant.push(m.cycle() - before);
            }
            // A2/A3 share ORIG's none/h/v bodies; A1 too.
            assert!(
                per_variant.windows(2).all(|w| w[0] == w[1]),
                "interp {interp}: {per_variant:?}"
            );
        }
    }

    #[test]
    fn kernel_fits_the_instruction_cache() {
        for variant in Variant::all() {
            let code = build_getsad(variant, &MachineConfig::st200());
            // 128 KB I$; the paper says the whole application fits.
            assert!(code.size_words() * 4 < 16 * 1024, "{:?}", variant);
        }
    }
}
