//! An 8×8 forward-DCT kernel for the VLIW — the paper's future work
//! ("extend the analysis to other parts of the application") made concrete.
//!
//! The kernel is the bit-true integer algorithm of
//! [`mpeg4_enc::dct::fdct_fixed`]: two 1-D passes with 11-bit scaled cosine
//! constants and a round-to-nearest rescale after each pass. It exercises
//! the 16×32 multipliers (`mull16`), which `GetSad` never touches: the DCT
//! is multiplier-bound (64 multiplies per 1-D pass on 2 MUL units), where
//! the SAD kernel is load/ALU-bound — together they cover the datapath.
//!
//! Memory contract: `$r16` = source block (64 × i16, 16-byte row stride),
//! `$r17` = destination (same layout), `$r18` = 128-byte scratch for the
//! row-pass intermediate.

use rvliw_asm::{schedule, Builder, Code};
use rvliw_isa::{Br, Gpr, MachineConfig};

use mpeg4_enc::dct::fixed_coeffs;

/// Source block address argument.
pub const DCT_ARG_SRC: Gpr = Gpr::new(16);
/// Destination block address argument.
pub const DCT_ARG_DST: Gpr = Gpr::new(17);
/// Scratch (intermediate) block address argument.
pub const DCT_ARG_SCRATCH: Gpr = Gpr::new(18);

const SRCP: Gpr = Gpr::new(1);
const DSTP: Gpr = Gpr::new(2);
const CNT: Gpr = Gpr::new(5);
const V: [Gpr; 8] = [
    Gpr::new(20),
    Gpr::new(21),
    Gpr::new(22),
    Gpr::new(23),
    Gpr::new(24),
    Gpr::new(25),
    Gpr::new(26),
    Gpr::new(27),
];
const P: [Gpr; 8] = [
    Gpr::new(28),
    Gpr::new(29),
    Gpr::new(30),
    Gpr::new(31),
    Gpr::new(32),
    Gpr::new(33),
    Gpr::new(34),
    Gpr::new(35),
];
const POS: Gpr = Gpr::new(36);
const NEG: Gpr = Gpr::new(37);
const ACC: Gpr = Gpr::new(38);
/// Registers holding the distinct coefficient magnitudes.
const CMAG: [Gpr; 8] = [
    Gpr::new(50),
    Gpr::new(51),
    Gpr::new(52),
    Gpr::new(53),
    Gpr::new(54),
    Gpr::new(55),
    Gpr::new(56),
    Gpr::new(57),
];

/// The distinct coefficient magnitudes of the 11-bit table and a map from
/// each (u, x) coefficient to (magnitude register index, sign).
fn coefficient_plan() -> (Vec<i32>, [[(usize, bool); 8]; 8]) {
    let coeffs = fixed_coeffs();
    let mut mags: Vec<i32> = Vec::new();
    let mut plan = [[(0usize, false); 8]; 8];
    for u in 0..8 {
        for x in 0..8 {
            let c = coeffs[u][x];
            let mag = c.abs();
            let idx = match mags.iter().position(|&m| m == mag) {
                Some(i) => i,
                None => {
                    mags.push(mag);
                    mags.len() - 1
                }
            };
            plan[u][x] = (idx, c >= 0);
        }
    }
    assert!(
        mags.len() <= CMAG.len(),
        "coefficient magnitudes exceed the register budget: {mags:?}"
    );
    (mags, plan)
}

/// Emits one 1-D pass: 8 input values at `in_stride`-byte spacing from
/// `SRCP`, 8 outputs at `out_stride` from `DSTP`, looping `8` times with
/// the loop pointers advancing by `in_step`/`out_step`.
#[allow(clippy::too_many_arguments)]
fn emit_pass(
    b: &mut Builder,
    plan: &[[(usize, bool); 8]; 8],
    in_stride: i32,
    out_stride: i32,
    in_step: i32,
    out_step: i32,
) {
    b.movi(CNT, 8);
    let top = b.label();
    b.bind(top);
    // Load the 8 input values (sign-extended halfwords).
    for (x, &v) in V.iter().enumerate() {
        b.op(rvliw_isa::Op::new(
            rvliw_isa::Opcode::Ldh,
            v.into(),
            &[SRCP.into(), (x as i32 * in_stride).into()],
        ));
    }
    // Eight outputs, each a signed sum of 8 products.
    for (u, row) in plan.iter().enumerate() {
        for (x, &(mag, _)) in row.iter().enumerate() {
            b.op(rvliw_isa::Op::rrr(
                rvliw_isa::Opcode::Mull16,
                P[x],
                V[x],
                CMAG[mag],
            ));
        }
        // Positive and negative accumulation trees.
        let mut first_pos = true;
        let mut first_neg = true;
        for (x, &(_, positive)) in row.iter().enumerate() {
            if positive {
                if first_pos {
                    b.mov(POS, P[x]);
                    first_pos = false;
                } else {
                    b.add(POS, POS, P[x]);
                }
            } else if first_neg {
                b.mov(NEG, P[x]);
                first_neg = false;
            } else {
                b.add(NEG, NEG, P[x]);
            }
        }
        if first_neg {
            b.mov(ACC, POS);
        } else {
            b.sub(ACC, POS, NEG);
        }
        // Round-to-nearest rescale by 2^11, then store.
        b.addi(ACC, ACC, 1024);
        b.sra(ACC, ACC, 11);
        b.op(rvliw_isa::Op::new(
            rvliw_isa::Opcode::Sth,
            rvliw_isa::Dest::None,
            &[ACC.into(), DSTP.into(), (u as i32 * out_stride).into()],
        ));
    }
    b.addi(SRCP, SRCP, in_step);
    b.addi(DSTP, DSTP, out_step);
    b.subi(CNT, CNT, 1);
    let c = Br::new(0);
    b.cmpne_br(c, CNT, 0);
    b.br(c, top);
}

/// Builds the 8×8 forward-DCT program (bit-true to
/// [`mpeg4_enc::dct::fdct_fixed`]).
///
/// # Panics
///
/// Panics only on an internal generator bug.
#[must_use]
pub fn build_dct(cfg: &MachineConfig) -> Code {
    let (mags, plan) = coefficient_plan();
    let mut b = Builder::new("fdct8x8");
    for (i, &m) in mags.iter().enumerate() {
        b.movi(CMAG[i], m);
    }
    // Row pass: rows of the source into rows of the scratch.
    b.mov(SRCP, DCT_ARG_SRC);
    b.mov(DSTP, DCT_ARG_SCRATCH);
    emit_pass(&mut b, &plan, 2, 2, 16, 16);
    // Column pass: columns of the scratch into columns of the destination.
    b.mov(SRCP, DCT_ARG_SCRATCH);
    b.mov(DSTP, DCT_ARG_DST);
    emit_pass(&mut b, &plan, 16, 16, 2, 2);
    b.halt();
    schedule(&b.build(), cfg).unwrap_or_else(|e| panic!("DCT kernel always schedules: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpeg4_enc::dct::fdct_fixed;
    use rvliw_sim::Machine;

    fn run_dct(block: &[i32; 64]) -> ([i32; 64], u64) {
        let code = build_dct(&MachineConfig::st200());
        let mut m = Machine::st200();
        let src = m.mem.ram.alloc(128, 32);
        let dst = m.mem.ram.alloc(128, 32);
        let scratch = m.mem.ram.alloc(128, 32);
        for (i, &v) in block.iter().enumerate() {
            m.mem.ram.store16(src + i as u32 * 2, v as u16);
        }
        // Two passes: the first warms the caches, the second is measured.
        let mut cycles = 0;
        for pass in 0..2 {
            m.set_gpr(DCT_ARG_SRC, src);
            m.set_gpr(DCT_ARG_DST, dst);
            m.set_gpr(DCT_ARG_SCRATCH, scratch);
            let before = m.cycle();
            m.run(&code).unwrap();
            if pass == 1 {
                cycles = m.cycle() - before;
            }
        }
        let mut out = [0i32; 64];
        for (i, o) in out.iter_mut().enumerate() {
            *o = m.mem.ram.load16(dst + i as u32 * 2) as i16 as i32;
        }
        (out, cycles)
    }

    #[test]
    fn dct_kernel_is_bit_true_to_fixed_reference() {
        let mut block = [0i32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i as i32 * 37) % 255) - 127;
        }
        let (out, _) = run_dct(&block);
        assert_eq!(out, fdct_fixed(&block));
    }

    #[test]
    fn dct_kernel_handles_extremes() {
        for fill in [-255i32, 0, 255] {
            let block = [fill; 64];
            let (out, _) = run_dct(&block);
            assert_eq!(out, fdct_fixed(&block), "fill {fill}");
        }
    }

    #[test]
    fn dct_kernel_is_multiplier_bound() {
        let block = [7i32; 64];
        let (_, cycles) = run_dct(&block);
        // 2 × 8 passes × 64 multiplies on 2 MUL units = 512 cycles minimum;
        // the schedule should stay within ~2.5× of that bound.
        assert!(
            (500..1400).contains(&cycles),
            "DCT kernel took {cycles} cycles"
        );
    }
}
