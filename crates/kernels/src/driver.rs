//! Loop-level driver programs (Tables 2–7): the ME kernel loop as one
//! long-latency RFU instruction.
//!
//! Per reference macroblock, [`build_mb_prep`] issues the custom prefetch
//! that gathers the reference macroblock into Line Buffer A and starts the
//! prefetch of the macroblock's first candidate. Per candidate,
//! [`build_me_loop_call`] does what the search loop of the C code does:
//! computes the candidate address from its coordinates, issues the
//! (non-blocking) prefetch for the **next** candidate — "in order to try to
//! guarantee a wider time window for the predictor prefetches to complete"
//! — executes the kernel-loop instruction over the current candidate and
//! folds the running SAD minimum.

use rvliw_asm::{schedule, Builder, Code};
use rvliw_isa::{Br, Gpr, MachineConfig, Src};
use rvliw_rfu::cfgs;

use crate::regs::{
    ARG_BASE, ARG_BEST, ARG_CX, ARG_CY, ARG_INTERP, ARG_NCX, ARG_NCY, ARG_REF, ARG_STRIDE,
    NO_CANDIDATE, RESULT, RESULT_BEST,
};

/// Which local-memory scheme the loop-level driver uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriverKind {
    /// One line buffer (Line Buffer A for the reference macroblock);
    /// candidate rows are fetched from the data cache (Tables 2–6).
    SingleLineBuffer,
    /// Two line buffers: candidates are double-buffered in Line Buffer B
    /// (Table 7).
    DoubleLineBuffer,
}

impl DriverKind {
    /// The candidate-prefetch configuration id for this scheme.
    #[must_use]
    pub fn cand_prefetch_cfg(self) -> u16 {
        match self {
            DriverKind::SingleLineBuffer => cfgs::PREF_CAND,
            DriverKind::DoubleLineBuffer => cfgs::PREF_CAND_LBB,
        }
    }
}

// Driver-local temporaries.
const T_ROW: Gpr = Gpr::new(1);
const CAND: Gpr = Gpr::new(2);
const T_NROW: Gpr = Gpr::new(3);
const NEXT: Gpr = Gpr::new(4);

/// Emits the address computation `NEXT = base + ncy·stride + ncx` and the
/// candidate prefetch, skipped when `ncx` carries the no-candidate
/// sentinel.
fn emit_next_prefetch(b: &mut Builder, kind: DriverKind) {
    let skip = b.label();
    let c = Br::new(0);
    b.cmpeq_br(c, ARG_NCX, NO_CANDIDATE as i32);
    b.br(c, skip);
    b.mul(T_NROW, ARG_NCY, ARG_STRIDE);
    b.add(T_NROW, T_NROW, ARG_BASE);
    b.add(NEXT, T_NROW, ARG_NCX);
    b.rfu_pref(kind.cand_prefetch_cfg(), NEXT);
    b.bind(skip);
}

/// Per-macroblock preparation: make the kernel-loop configuration current,
/// gather the reference macroblock into Line Buffer A (its address stays in
/// RFU local registers) and launch the prefetch for the macroblock's first
/// candidate (`ARG_NCX`/`ARG_NCY`, sentinel = none).
///
/// # Panics
///
/// Panics only on an internal generator bug.
#[must_use]
pub fn build_mb_prep(kind: DriverKind, cfg: &MachineConfig) -> Code {
    let mut b = Builder::new("me_mb_prep");
    // Free under the paper's zero-penalty assumption; the reconfiguration
    // ablations charge it.
    b.rfu_init(cfgs::ME_LOOP);
    b.rfu_pref(cfgs::PREF_REF, ARG_REF);
    emit_next_prefetch(&mut b, kind);
    b.halt();
    schedule(&b.build(), cfg).unwrap_or_else(|e| panic!("prep program always schedules: {e}"))
}

/// Per-candidate program: compute the candidate address, prefetch the next
/// candidate, run the ME kernel loop, update the running best SAD.
///
/// # Panics
///
/// Panics only on an internal generator bug.
#[must_use]
pub fn build_me_loop_call(kind: DriverKind, cfg: &MachineConfig) -> Code {
    let mut b = Builder::new(match kind {
        DriverKind::SingleLineBuffer => "me_loop_call",
        DriverKind::DoubleLineBuffer => "me_loop_call_lbb",
    });
    // Candidate address from its search coordinates (what the C search
    // loop computes before calling GetSad).
    b.mul(T_ROW, ARG_CY, ARG_STRIDE);
    b.add(T_ROW, T_ROW, ARG_BASE);
    b.add(CAND, T_ROW, ARG_CX);
    emit_next_prefetch(&mut b, kind);
    b.rfu_loop(
        cfgs::ME_LOOP,
        RESULT,
        &[Src::Gpr(CAND), Src::Gpr(ARG_INTERP), Src::Gpr(ARG_REF)],
    );
    // The caller's running minimum (part of the ME loop in the C code).
    b.op(rvliw_isa::Op::rrr(
        rvliw_isa::Opcode::Minu,
        RESULT_BEST,
        ARG_BEST,
        RESULT,
    ));
    b.halt();
    schedule(&b.build(), cfg).unwrap_or_else(|e| panic!("driver program always schedules: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvliw_core::SimSession;
    use rvliw_rfu::{MeLoopCfg, RfuBandwidth};
    use rvliw_sim::Machine;

    const STRIDE: u32 = 176;

    fn setup(kind: DriverKind, bw: RfuBandwidth, beta: u64) -> (Machine, u32, u32) {
        let mut me = MeLoopCfg::new(bw, beta, STRIDE);
        if kind == DriverKind::DoubleLineBuffer {
            me = me.with_line_buffer_b();
        }
        let mut m = SimSession::st200_loop_level().me_loop(me).build();
        let cur = m.mem.ram.alloc(STRIDE * 160, 32);
        let prev = m.mem.ram.alloc(STRIDE * 160, 32);
        for i in 0..STRIDE * 160 {
            m.mem.ram.store8(cur + i, (i % 253) as u8);
            m.mem.ram.store8(prev + i, ((i * 3) % 251) as u8);
        }
        (m, cur, prev)
    }

    /// Sets the per-candidate driver arguments.
    #[allow(clippy::too_many_arguments)]
    fn set_call_args(
        m: &mut Machine,
        ref_addr: u32,
        base: u32,
        cx: u32,
        cy: u32,
        interp: u32,
        next: Option<(u32, u32)>,
        best: u32,
    ) {
        m.set_gpr(ARG_REF, ref_addr);
        m.set_gpr(ARG_BASE, base);
        m.set_gpr(ARG_CX, cx);
        m.set_gpr(ARG_CY, cy);
        m.set_gpr(ARG_INTERP, interp);
        m.set_gpr(ARG_STRIDE, STRIDE);
        let (ncx, ncy) = next.unwrap_or((NO_CANDIDATE, NO_CANDIDATE));
        m.set_gpr(ARG_NCX, ncx);
        m.set_gpr(ARG_NCY, ncy);
        m.set_gpr(ARG_BEST, best);
    }

    #[test]
    fn loop_call_returns_golden_sad_and_min() {
        for kind in [DriverKind::SingleLineBuffer, DriverKind::DoubleLineBuffer] {
            let (mut m, cur, prev) = setup(kind, RfuBandwidth::B1x32, 1);
            let prep = build_mb_prep(kind, &MachineConfig::st200());
            let call = build_me_loop_call(kind, &MachineConfig::st200());
            let ref_addr = cur + 16 * STRIDE + 32;
            let (cx, cy) = (37u32, 11u32);
            let cand_addr = prev + cy * STRIDE + cx;
            m.set_gpr(ARG_REF, ref_addr);
            m.set_gpr(ARG_BASE, prev);
            m.set_gpr(ARG_NCX, cx);
            m.set_gpr(ARG_NCY, cy);
            m.set_gpr(ARG_STRIDE, STRIDE);
            m.run(&prep).unwrap();
            set_call_args(&mut m, ref_addr, prev, cx, cy, 3, Some((cx + 1, cy)), 100);
            m.run(&call).unwrap();
            let golden = rvliw_rfu::meloop::golden_sad(
                &m.mem.ram,
                ref_addr,
                cand_addr,
                STRIDE,
                rvliw_rfu::InterpMode::Diag,
            );
            assert_eq!(m.gpr(RESULT), golden, "{kind:?}");
            assert_eq!(m.gpr(RESULT_BEST), golden.min(100), "{kind:?}");
        }
    }

    #[test]
    fn driver_overhead_is_moderate() {
        // The per-call driver adds the address arithmetic, prefetch issue
        // and minimum tracking around the RFU loop instruction: a real but
        // bounded overhead.
        let (mut m, cur, prev) = setup(DriverKind::SingleLineBuffer, RfuBandwidth::B1x32, 1);
        let prep = build_mb_prep(DriverKind::SingleLineBuffer, &MachineConfig::st200());
        let call = build_me_loop_call(DriverKind::SingleLineBuffer, &MachineConfig::st200());
        let ref_addr = cur + 16 * STRIDE + 32;
        m.set_gpr(ARG_REF, ref_addr);
        m.set_gpr(ARG_NCX, NO_CANDIDATE);
        m.run(&prep).unwrap();
        let run_once = |m: &mut Machine| {
            set_call_args(m, ref_addr, prev, 37, 11, 0, None, u32::MAX);
            m.run(&call).unwrap().cycles
        };
        let _ = run_once(&mut m);
        let warm = run_once(&mut m);
        let static_lat = MeLoopCfg::new(RfuBandwidth::B1x32, 1, STRIDE).static_latency();
        assert!(
            warm >= static_lat + 5 && warm < static_lat + 30,
            "warm {warm} vs Lat {static_lat}"
        );
    }

    #[test]
    fn higher_bandwidth_is_faster() {
        let mut results = Vec::new();
        for bw in RfuBandwidth::all() {
            let (mut m, cur, prev) = setup(DriverKind::SingleLineBuffer, bw, 1);
            let prep = build_mb_prep(DriverKind::SingleLineBuffer, &MachineConfig::st200());
            let call = build_me_loop_call(DriverKind::SingleLineBuffer, &MachineConfig::st200());
            let ref_addr = cur + 16 * STRIDE + 32;
            m.set_gpr(ARG_REF, ref_addr);
            m.set_gpr(ARG_NCX, NO_CANDIDATE);
            m.run(&prep).unwrap();
            let mut total = 0;
            for i in 0..10u32 {
                set_call_args(&mut m, ref_addr, prev, 30 + i, 11, i % 4, None, u32::MAX);
                total += m.run(&call).unwrap().cycles;
            }
            results.push(total);
        }
        assert!(
            results[0] > results[1] && results[1] > results[2],
            "{results:?}"
        );
    }
}
