//! Half-sample motion compensation as a VLIW program — the stage that
//! consumes the motion vectors `GetSad` selects.
//!
//! Same structure as the `GetSad` kernels (interpolation-mode dispatch, a
//! 16-row loop with run-time alignment) but instead of accumulating a SAD
//! it **stores** the interpolated 16×16 prediction into the destination
//! macroblock, ready for the residual computation. The diagonal path is
//! the same scalar bottleneck as in ORIG — evidence that the paper's RFU
//! instructions would pay off here too.
//!
//! Contract: [`regs::ARG_CAND`] = predictor address (any alignment),
//! [`regs::ARG_INTERP`] = mode, [`regs::ARG_STRIDE`] = frame stride,
//! [`MC_ARG_DST`] = 16-pixel-aligned destination.
//!
//! [`regs::ARG_CAND`]: crate::regs::ARG_CAND
//! [`regs::ARG_INTERP`]: crate::regs::ARG_INTERP
//! [`regs::ARG_STRIDE`]: crate::regs::ARG_STRIDE

use rvliw_asm::{schedule, Builder, Code, Label};
use rvliw_isa::{Gpr, MachineConfig};

use crate::getsad::{
    emit_align, emit_load_words, A, ALIGN, BY, BY1, CANDP, CNT, DD, DS, OW, PA, SH, SHL, SS, T1,
    T2, TMP, TT, W,
};
use crate::regs::{ARG_CAND, ARG_INTERP, ARG_STRIDE};

/// Destination macroblock address argument (16-pixel aligned).
pub const MC_ARG_DST: Gpr = Gpr::new(15);

const DSTP: Gpr = Gpr::new(4); // reuses GetSad's reference-pointer slot

/// Stores the four prediction words of the current row and advances both
/// pointers, closing the row loop.
fn emit_store_advance_loop(b: &mut Builder, pred: &[Gpr], top: Label) {
    for (k, &r) in pred.iter().enumerate().take(4) {
        b.stw(r, DSTP, (k * 4) as i32);
    }
    b.add(CANDP, CANDP, ARG_STRIDE);
    b.add(DSTP, DSTP, ARG_STRIDE);
    b.subi(CNT, CNT, 1);
    let c = rvliw_isa::Br::new(3);
    b.cmpne_br(c, CNT, 0);
    b.br(c, top);
    b.halt();
}

fn emit_mc_none(b: &mut Builder) {
    let top = b.label();
    b.bind(top);
    emit_load_words(b, &W);
    emit_align(b, &A, false);
    emit_store_advance_loop(b, &A[..4], top);
}

fn emit_mc_h(b: &mut Builder) {
    let top = b.label();
    b.bind(top);
    emit_load_words(b, &W);
    emit_align(b, &A, true);
    for k in 0..4 {
        b.sll(TT[k], A[k + 1], 24);
        b.srl(W[k], A[k], 8);
        b.or(W[k], W[k], TT[k]);
        b.avg4r(W[k], A[k], W[k]);
    }
    emit_store_advance_loop(b, &W[..4], top);
}

fn emit_mc_v(b: &mut Builder) {
    emit_load_words(b, &W);
    emit_align(b, &PA, false);
    b.add(CANDP, CANDP, ARG_STRIDE);
    let top = b.label();
    b.bind(top);
    emit_load_words(b, &W);
    emit_align(b, &A, false);
    for k in 0..4 {
        b.avg4r(W[k], PA[k], A[k]);
    }
    for k in 0..4 {
        b.mov(PA[k], A[k]);
    }
    // The averaged row lives in W; PA already holds the next iteration's
    // previous row.
    emit_store_advance_loop(b, &W[..4], top);
}

/// The same scalar diagonal pipeline as ORIG `GetSad`, storing instead of
/// accumulating.
fn emit_mc_diag(b: &mut Builder) {
    emit_load_words(b, &W);
    emit_align(b, &PA, true);
    b.add(CANDP, CANDP, ARG_STRIDE);
    let top = b.label();
    b.bind(top);
    emit_load_words(b, &W);
    emit_align(b, &A, true);
    b.extbu(BY[0], PA[0], 0);
    b.extbu(BY1[0], A[0], 0);
    for i in 0..16usize {
        let cur = i % 2;
        let nxt = (i + 1) % 2;
        let wi = (i + 1) / 4;
        let lane = ((i + 1) % 4) as i32;
        b.extbu(BY[nxt], PA[wi], lane);
        b.extbu(BY1[nxt], A[wi], lane);
        b.add(T1[cur], BY[cur], BY[nxt]);
        b.add(T2[cur], BY1[cur], BY1[nxt]);
        b.add(SS[cur], T1[cur], T2[cur]);
        b.addi(SS[cur], SS[cur], 2);
        b.srl(DD[cur], SS[cur], 2);
        if i % 4 == 0 {
            b.mov(OW, DD[cur]);
        } else {
            b.sll(DS, DD[cur], (8 * (i % 4)) as i32);
            b.or(OW, OW, DS);
        }
        if i % 4 == 3 {
            b.stw(OW, DSTP, ((i / 4) * 4) as i32);
        }
    }
    for k in 0..5 {
        b.mov(PA[k], A[k]);
    }
    b.add(CANDP, CANDP, ARG_STRIDE);
    b.add(DSTP, DSTP, ARG_STRIDE);
    b.subi(CNT, CNT, 1);
    let c = rvliw_isa::Br::new(3);
    b.cmpne_br(c, CNT, 0);
    b.br(c, top);
    b.halt();
}

/// Builds the motion-compensation program.
///
/// # Panics
///
/// Panics only on an internal generator bug.
#[must_use]
pub fn build_mc(cfg: &MachineConfig) -> Code {
    let mut b = Builder::new("mc_predict_mb");
    let l_none = b.label();
    let l_h = b.label();
    let l_v = b.label();
    let l_diag = b.label();
    // Shared setup, mirroring GetSad's dispatch.
    b.and(CANDP, ARG_CAND, -4);
    b.and(ALIGN, ARG_CAND, 3);
    b.sll(SH, ALIGN, 3);
    b.movi(TMP, 32);
    b.sub(SHL, TMP, SH);
    b.mov(DSTP, MC_ARG_DST);
    b.movi(CNT, 16);
    let c0 = rvliw_isa::Br::new(0);
    let c1 = rvliw_isa::Br::new(1);
    let c2 = rvliw_isa::Br::new(2);
    b.cmpeq_br(c0, ARG_INTERP, 0);
    b.cmpeq_br(c1, ARG_INTERP, 1);
    b.cmpeq_br(c2, ARG_INTERP, 2);
    b.br(c0, l_none);
    b.br(c1, l_h);
    b.br(c2, l_v);
    b.goto(l_diag);
    b.bind(l_none);
    emit_mc_none(&mut b);
    b.bind(l_h);
    emit_mc_h(&mut b);
    b.bind(l_v);
    emit_mc_v(&mut b);
    b.bind(l_diag);
    emit_mc_diag(&mut b);
    schedule(&b.build(), cfg).unwrap_or_else(|e| panic!("MC kernel always schedules: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpeg4_enc::mc::predict_mb;
    use mpeg4_enc::types::{Mv, Plane};
    use rvliw_sim::Machine;

    const STRIDE: u32 = 176;

    fn textured(seed: u32) -> Plane {
        let mut p = Plane::new(STRIDE as usize, 64);
        for y in 0..64 {
            for x in 0..STRIDE as usize {
                let v = (x as u32)
                    .wrapping_mul(37)
                    .wrapping_add((y as u32).wrapping_mul(101))
                    .wrapping_add(seed)
                    .wrapping_mul(2_654_435_761);
                p.set(x, y, (v >> 24) as u8);
            }
        }
        p
    }

    #[test]
    fn mc_kernel_matches_golden_prediction() {
        let prev = textured(3);
        let code = build_mc(&MachineConfig::st200());
        for (mvx, mvy) in [(0i16, 0i16), (5, 2), (3, 1), (2, 3), (1, 1), (-3, -1)] {
            let mv = Mv::new(mvx, mvy);
            let golden = predict_mb(&prev, 1, 1, mv);
            let mut m = Machine::st200();
            let base = m.mem.ram.alloc(STRIDE * 64, 32);
            for y in 0..prev.height() {
                m.mem
                    .ram
                    .write_bytes(base + (y * prev.width()) as u32, prev.row(y));
            }
            let dst = m.mem.ram.alloc(STRIDE * 16, 32);
            let (ix, iy) = mv.int_part();
            let cand = base
                .wrapping_add((16 + i32::from(iy)) as u32 * STRIDE)
                .wrapping_add((16 + i32::from(ix)) as u32);
            let interp = match mv.half_flags() {
                (false, false) => 0,
                (true, false) => 1,
                (false, true) => 2,
                (true, true) => 3,
            };
            m.set_gpr(ARG_CAND, cand);
            m.set_gpr(ARG_INTERP, interp);
            m.set_gpr(ARG_STRIDE, STRIDE);
            m.set_gpr(MC_ARG_DST, dst);
            m.run(&code).unwrap();
            for y in 0..16u32 {
                for x in 0..16u32 {
                    assert_eq!(
                        m.mem.ram.load8(dst + y * STRIDE + x),
                        golden[(y * 16 + x) as usize],
                        "mv {mv} pixel ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn mc_diag_is_the_slow_path() {
        let prev = textured(9);
        let code = build_mc(&MachineConfig::st200());
        let mut cycles = [0u64; 4];
        for (interp, slot) in cycles.iter_mut().enumerate() {
            let mut m = Machine::st200();
            let base = m.mem.ram.alloc(STRIDE * 64, 32);
            for y in 0..prev.height() {
                m.mem
                    .ram
                    .write_bytes(base + (y * prev.width()) as u32, prev.row(y));
            }
            let dst = m.mem.ram.alloc(STRIDE * 16, 32);
            for pass in 0..2 {
                m.set_gpr(ARG_CAND, base + 17 * STRIDE + 21);
                m.set_gpr(ARG_INTERP, interp as u32);
                m.set_gpr(ARG_STRIDE, STRIDE);
                m.set_gpr(MC_ARG_DST, dst);
                let before = m.cycle();
                m.run(&code).unwrap();
                if pass == 1 {
                    *slot = m.cycle() - before;
                }
            }
        }
        assert!(
            cycles[3] > 2 * cycles[0],
            "diagonal {} vs none {}",
            cycles[3],
            cycles[0]
        );
    }
}
