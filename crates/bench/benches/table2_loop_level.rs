//! Tables 2–6 — loop-level optimizations: the ME kernel loop as one RFU
//! instruction, across data bandwidths (1×32, 1×64, 2×64) and technology
//! scaling (β = 1, 5).
//!
//! One measurement pass regenerates the series of Tables 2 (Lat/cycles/
//! speedup), 3 (latency increase vs speedup reduction), 4 (cache stalls),
//! 5 (stall share) and 6 (theoretical vs experimental) — they are all
//! derived from the same six runs, as in the paper. Criterion then
//! benchmarks each design point.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rvliw_bench::bench_workload;
use rvliw_core::{run_me, Scenario};
use rvliw_rfu::RfuBandwidth;

fn bench_table2(c: &mut Criterion) {
    let workload = bench_workload();
    let orig = run_me(&Scenario::orig(), &workload).expect("ORIG replay succeeds");
    println!(
        "\nTables 2-6 series (Orig = {} cycles, {} stall cycles):",
        orig.me_cycles, orig.stall_cycles
    );
    println!(
        "{:>10} {:>5} {:>12} {:>6} {:>10} {:>8} {:>8}",
        "", "Lat", "Cycles", "S.Up", "Stalls", "%ofME", "Th.S.Up"
    );
    let mut points = Vec::new();
    for bw in RfuBandwidth::all() {
        for beta in [1u64, 5] {
            let sc = Scenario::loop_level(bw, beta);
            let lat = sc.static_latency(workload.stride);
            let r = run_me(&sc, &workload).expect("loop-level replay succeeds");
            let th = orig.me_cycles as f64 / (lat * r.calls) as f64;
            println!(
                "{:>10} {:>5} {:>12} {:>6.2} {:>10} {:>7.2}% {:>8.2}",
                sc.label,
                lat,
                r.me_cycles,
                r.speedup_vs(&orig),
                r.stall_cycles,
                r.stall_share() * 100.0,
                th
            );
            points.push(sc);
        }
    }

    let mut group = c.benchmark_group("table2_loop_level");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for sc in points {
        let label = sc.label.clone();
        group.bench_function(&label, |b| b.iter(|| run_me(&sc, &workload)));
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
