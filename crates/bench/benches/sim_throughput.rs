//! Steady-state simulator throughput on the real kernels: simulated
//! cycles per wall second while replaying the `GetSad` trace.
//!
//! `micro.rs` times a synthetic hot loop; this bench exercises the
//! pre-decoded issue path end to end (scoreboard, cache model, RFU) on
//! the same scenarios the tables use, so a regression in the decode
//! cache or the issue loop shows up directly as cycles/sec.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rvliw_bench::bench_workload;
use rvliw_core::{run_me, Scenario};
use rvliw_rfu::RfuBandwidth;
use rvliw_sim::ExecBackend;

fn bench_sim_throughput(c: &mut Criterion) {
    let workload = bench_workload();
    let mut group = c.benchmark_group("sim_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    // Elements = simulated cycles, so the reported rate is the headline
    // "simulated cycles per wall second" number. Each scenario runs under
    // both execution backends so an interpreter regression and a
    // block-compilation regression are both visible, as is the speedup
    // between them.
    for backend in [ExecBackend::Interpreter, ExecBackend::BlockCompiled] {
        backend.set_process_default();
        for (id, scenario) in [
            ("orig", Scenario::orig()),
            ("a3", Scenario::a3()),
            ("loop_1x32_b1", Scenario::loop_level(RfuBandwidth::B1x32, 1)),
            ("two_lb_b1", Scenario::loop_two_lb(1)),
        ] {
            let probe = run_me(&scenario, &workload).expect("scenario replay succeeds");
            group.throughput(Throughput::Elements(probe.me_cycles));
            group.bench_function(&format!("{id}/{backend}"), |b| {
                b.iter(|| black_box(run_me(black_box(&scenario), &workload)));
            });
        }
    }
    ExecBackend::Auto.set_process_default();

    group.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);
