//! Ablation: motion-search algorithm sensitivity.
//!
//! Table 1's percentages hinge on the share of diagonal-interpolation
//! `GetSad` calls (≈18 % in the paper's sequence). Different integer
//! searches change that share — a full search dilutes it to a few percent,
//! killing the instruction-level gains; fast searches concentrate it.
//! This ablation re-runs ORIG vs A3 under each search.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mpeg4_enc::me::{MotionSearch, SearchAlgorithm};
use mpeg4_enc::{EncoderConfig, SyntheticSequence};
use rvliw_core::{run_me, Scenario, Workload};

fn workload_for(algorithm: SearchAlgorithm) -> Workload {
    Workload::from_sequence(
        &SyntheticSequence::new(176, 144, 3, 0x4652_4d4e),
        EncoderConfig {
            q: 10,
            search: MotionSearch {
                algorithm,
                half_sample: true,
                approx: mpeg4_enc::ApproxSad::Exact,
            },
        },
    )
}

fn bench_search(c: &mut Criterion) {
    let algorithms: [(&str, SearchAlgorithm); 3] = [
        ("diamond", SearchAlgorithm::Diamond),
        ("three_step", SearchAlgorithm::ThreeStep),
        ("full_r8", SearchAlgorithm::Full { range: 8 }),
    ];
    println!("\nSearch-algorithm ablation (ORIG vs A3):");
    println!(
        "{:>10} {:>8} {:>7} {:>12} {:>10}",
        "search", "calls", "%diag", "Orig cycles", "A3 %improv"
    );
    let mut cases = Vec::new();
    for (name, algorithm) in algorithms {
        let w = workload_for(algorithm);
        let orig = run_me(&Scenario::orig(), &w).expect("scenario replay succeeds");
        let a3 = run_me(&Scenario::a3(), &w).expect("scenario replay succeeds");
        println!(
            "{:>10} {:>8} {:>6.1}% {:>12} {:>9.1}%",
            name,
            w.num_calls(),
            w.diag_share() * 100.0,
            orig.me_cycles,
            a3.improvement_vs(&orig) * 100.0
        );
        cases.push((name, w));
    }

    let mut group = c.benchmark_group("ablation_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, w) in &cases {
        // Benchmark the ORIG replay under each search's trace; the full
        // search is far larger, so its wall time reflects the call count.
        group.bench_function(name, |b| b.iter(|| run_me(&Scenario::orig(), w)));
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
