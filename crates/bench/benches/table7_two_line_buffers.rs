//! Table 7 — the two-line-buffer scheme: Line Buffer B double-buffers the
//! candidate predictor macroblocks, exploiting the overlap between
//! consecutive candidates; memory is accessed (1×32) only on misses.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rvliw_bench::bench_workload;
use rvliw_core::{run_me, AppModel, Scenario};

fn bench_table7(c: &mut Criterion) {
    let workload = bench_workload();
    let orig = run_me(&Scenario::orig(), &workload).expect("scenario replay succeeds");
    let app = AppModel::calibrated(orig.me_cycles);
    println!("\nTable 7 series:");
    println!(
        "{:>6} {:>5} {:>12} {:>6} {:>7} {:>10} {:>7}",
        "", "Lat", "ExCycles", "S.Up", "%Rel", "Stalls", "%Red"
    );
    println!(
        "{:>6} {:>5} {:>12} {:>6.2} {:>6.1}% {:>10}",
        "Orig",
        "",
        orig.me_cycles,
        1.0,
        app.me_share(orig.me_cycles) * 100.0,
        orig.stall_cycles
    );
    let mut points = Vec::new();
    for beta in [1u64, 5] {
        let sc = Scenario::loop_two_lb(beta);
        let lat = sc.static_latency(workload.stride);
        let r = run_me(&sc, &workload).expect("scenario replay succeeds");
        println!(
            "{:>6} {:>5} {:>12} {:>6.2} {:>6.2}% {:>10} {:>6.1}%",
            sc.label,
            lat,
            r.me_cycles,
            r.speedup_vs(&orig),
            app.me_share(r.me_cycles) * 100.0,
            r.stall_cycles,
            r.stall_reduction_vs(&orig) * 100.0
        );
        points.push(sc);
    }

    let mut group = c.benchmark_group("table7_two_line_buffers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("orig_baseline", |b| {
        b.iter(|| run_me(&Scenario::orig(), &workload));
    });
    for sc in points {
        let label = sc.label.clone();
        group.bench_function(&label, |b| b.iter(|| run_me(&sc, &workload)));
    }
    group.finish();
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
