//! Wall-clock micro-benchmarks of the substrates: simulator issue rate,
//! scheduler throughput, cache model, golden SAD and the encoder.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mpeg4_enc::sad::{get_sad, InterpKind};
use mpeg4_enc::types::Plane;
use mpeg4_enc::{Encoder, SyntheticSequence};
use rvliw_asm::{schedule_st200, Builder};
use rvliw_isa::{Br, Gpr, MachineConfig};
use rvliw_kernels::{build_getsad, Variant};
use rvliw_mem::{Cache, CacheGeometry};
use rvliw_sim::Machine;

/// A compute-heavy loop: 1024 iterations of independent ALU work.
fn hot_loop() -> rvliw_asm::Code {
    let mut b = Builder::new("hot");
    let i = Gpr::new(1);
    let c = Br::new(0);
    b.movi(i, 1024);
    let top = b.label();
    b.bind(top);
    for r in 2..10u8 {
        b.addi(Gpr::new(r), Gpr::new(r), i32::from(r));
    }
    b.subi(i, i, 1);
    b.cmpne_br(c, i, 0);
    b.br(c, top);
    b.halt();
    schedule_st200(&b.build()).unwrap()
}

fn bench_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    // Simulator issue rate (simulated ops per wall second).
    let code = hot_loop();
    let ops_per_run: u64 = 1024 * 11;
    group.throughput(Throughput::Elements(ops_per_run));
    group.bench_function("simulator_hot_loop", |b| {
        let mut m = Machine::st200();
        b.iter(|| {
            m.run(black_box(&code)).unwrap();
        });
    });

    // Scheduler throughput: rebuild + schedule the biggest kernel.
    group.throughput(Throughput::Elements(1));
    group.bench_function("schedule_getsad_orig", |b| {
        let cfg = MachineConfig::st200();
        b.iter(|| build_getsad(black_box(Variant::Orig), &cfg));
    });

    // Cache model: streaming accesses.
    group.throughput(Throughput::Elements(4096));
    group.bench_function("dcache_stream", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheGeometry::st200_dcache());
            for i in 0..4096u32 {
                let _ = cache.access(black_box(i * 8), false);
            }
            cache
        });
    });

    // Golden SAD (host reference).
    let mut prev = Plane::new(176, 144);
    let mut cur = Plane::new(176, 144);
    for y in 0..144 {
        for x in 0..176 {
            prev.set(x, y, ((x * 7 + y * 3) % 255) as u8);
            cur.set(x, y, ((x * 5 + y * 11) % 255) as u8);
        }
    }
    group.throughput(Throughput::Elements(256));
    group.bench_function("golden_sad_diag", |b| {
        b.iter(|| get_sad(&cur, 32, 32, &prev, 57, 41, black_box(InterpKind::Diag)));
    });

    // Host encoder (frames per second on QCIF).
    let frames = SyntheticSequence::new(176, 144, 2, 1).generate();
    group.throughput(Throughput::Elements(2));
    group.bench_function("encoder_qcif_2f", |b| {
        let enc = Encoder::default();
        b.iter(|| enc.encode(black_box(&frames)));
    });

    group.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
