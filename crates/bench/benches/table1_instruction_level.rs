//! Table 1 — instruction-level optimizations (ORIG, A1, A2, A3).
//!
//! The setup replays the reduced workload once per scenario and prints the
//! regenerated table rows (ME cycles, speedup, %improvement — the series
//! the paper reports); Criterion then benchmarks the wall-clock cost of
//! simulating each scenario.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rvliw_bench::bench_workload;
use rvliw_core::{run_me, Scenario};

fn bench_table1(c: &mut Criterion) {
    let workload = bench_workload();
    let scenarios = [
        Scenario::orig(),
        Scenario::a1(),
        Scenario::a2(),
        Scenario::a3(),
    ];
    let orig = run_me(&scenarios[0], &workload).expect("scenario replay succeeds");
    println!("\nTable 1 series ({} GetSad calls):", workload.num_calls());
    println!("{:>6} {:>12} {:>6} {:>9}", "", "CYCLES", "S.Up", "%Improv");
    for sc in &scenarios {
        let r = run_me(sc, &workload).expect("scenario replay succeeds");
        println!(
            "{:>6} {:>12} {:>6.2} {:>8.1}%",
            r.label,
            r.me_cycles,
            r.speedup_vs(&orig),
            r.improvement_vs(&orig) * 100.0
        );
    }

    let mut group = c.benchmark_group("table1_instruction_level");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for sc in scenarios {
        let label = sc.label.clone();
        group.bench_function(&label, |b| b.iter(|| run_me(&sc, &workload)));
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
