//! Ablation: reconfiguration overhead.
//!
//! The paper assumes zero reconfiguration penalty ("an upper-bound
//! performance assessment") and defers management techniques to future
//! work. This ablation charges a per-load penalty under a multi-context
//! configuration memory and measures how much of the loop-level speedup
//! survives — quantifying how much the paper's conclusion depends on the
//! assumption.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rvliw_bench::bench_workload;
use rvliw_core::{run_me, Scenario};
use rvliw_rfu::{ReconfigModel, RfuBandwidth};

fn bench_reconfig(c: &mut Criterion) {
    let workload = bench_workload();
    let orig = run_me(&Scenario::orig(), &workload).expect("scenario replay succeeds");
    println!("\nReconfiguration-penalty ablation (loop 1x32, b=1; one RFUINIT per macroblock):");
    println!(
        "{:>22} {:>12} {:>6} {:>14}",
        "model", "Cycles", "S.Up", "penalty cycles"
    );
    let mut points: Vec<(String, Scenario)> = Vec::new();
    points.push((
        "zero penalty".into(),
        Scenario::loop_level(RfuBandwidth::B1x32, 1),
    ));
    for penalty in [128u64, 512, 2048] {
        for contexts in [1usize, 4] {
            let sc = Scenario::loop_level(RfuBandwidth::B1x32, 1)
                .with_reconfig(ReconfigModel::with_penalty(penalty, contexts));
            points.push((format!("penalty {penalty} ctx {contexts}"), sc));
        }
        // The paper's proposed mitigation: configuration prefetch hides the
        // load behind the time since the previous activation.
        let sc = Scenario::loop_level(RfuBandwidth::B1x32, 1)
            .with_reconfig(ReconfigModel::with_penalty(penalty, 1).with_prefetch_hiding());
        points.push((format!("penalty {penalty} prefetched"), sc));
    }
    for (name, sc) in &points {
        let r = run_me(sc, &workload).expect("scenario replay succeeds");
        println!(
            "{:>22} {:>12} {:>6.2} {:>14}",
            name,
            r.me_cycles,
            r.speedup_vs(&orig),
            r.rfu.reconfig_penalty_cycles
        );
    }

    let mut group = c.benchmark_group("ablation_reconfig");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, sc) in points {
        group.bench_function(&name, |b| b.iter(|| run_me(&sc, &workload)));
    }
    group.finish();
}

criterion_group!(benches, bench_reconfig);
criterion_main!(benches);
