//! Ablation: core configuration — the Lx/ST200 scalability claim.
//!
//! The Lx platform is pitched as customizable ("its scalability and
//! customizability reflect in the multi-cluster organization"). This
//! ablation re-schedules and re-runs the ORIG kernel on narrower and wider
//! single-cluster datapaths, and shrinks the instruction cache to verify
//! the paper's assumption that 128 KB makes I-stalls negligible.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rvliw_bench::bench_workload;
use rvliw_core::{run_me, Scenario};
use rvliw_isa::MachineConfig;
use rvliw_mem::CacheGeometry;

fn issue_width(width: usize) -> MachineConfig {
    let base = MachineConfig::st200();
    match width {
        2 => MachineConfig {
            issue_width: 2,
            num_alus: 2,
            num_muls: 1,
            ..base
        },
        8 => MachineConfig {
            issue_width: 8,
            num_alus: 8,
            num_muls: 4,
            num_mem_units: 2,
            ..base
        },
        _ => base,
    }
}

fn bench_machine(c: &mut Criterion) {
    let workload = bench_workload();
    println!("\nCore-configuration ablation (ORIG kernel):");
    println!(
        "{:>18} {:>12} {:>8} {:>10}",
        "config", "Cycles", "IPC", "I$ stalls"
    );
    let mut points = Vec::new();
    for width in [2usize, 4, 8] {
        let mut sc = Scenario::orig();
        sc.machine = issue_width(width);
        sc.label = format!("{width}-issue");
        let r = run_me(&sc, &workload).expect("scenario replay succeeds");
        println!(
            "{:>18} {:>12} {:>8.2} {:>10}",
            sc.label,
            r.me_cycles,
            r.core.ipc(),
            r.core.ifetch_stall_cycles
        );
        points.push(sc);
    }
    for icache_kb in [2u32, 8, 128] {
        let mut sc = Scenario::orig();
        sc.mem.icache = CacheGeometry {
            capacity: icache_kb * 1024,
            ..CacheGeometry::st200_icache()
        };
        sc.label = format!("I$ {icache_kb}KB");
        let r = run_me(&sc, &workload).expect("scenario replay succeeds");
        println!(
            "{:>18} {:>12} {:>8.2} {:>10}",
            sc.label,
            r.me_cycles,
            r.core.ipc(),
            r.core.ifetch_stall_cycles
        );
        points.push(sc);
    }

    let mut group = c.benchmark_group("ablation_machine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for sc in points {
        let label = sc.label.clone();
        group.bench_function(&label, |b| b.iter(|| run_me(&sc, &workload)));
    }
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
