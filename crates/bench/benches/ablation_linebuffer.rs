//! Ablation: local-memory sizing.
//!
//! Sweeps Line Buffer B's per-bank capacity (the paper sizes it at 4×17
//! cache lines for double buffering plus crossings) and the prefetch
//! buffer depth (8 baseline, 64 in the paper's loop-level experiments),
//! showing where the "some extent of local memory" stops paying.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rvliw_bench::bench_workload;
use rvliw_core::{run_me, Scenario};
use rvliw_rfu::RfuBandwidth;

fn bench_linebuffer(c: &mut Criterion) {
    let workload = bench_workload();
    let orig = run_me(&Scenario::orig(), &workload).expect("scenario replay succeeds");

    println!("\nLine Buffer B per-bank capacity sweep (two-line-buffer scheme, b=1):");
    println!(
        "{:>10} {:>12} {:>6} {:>10} {:>10}",
        "lines/bank", "Cycles", "S.Up", "LBB hits", "LBB misses"
    );
    let mut points = Vec::new();
    for lines in [8usize, 17, 34, 68] {
        let sc = Scenario::loop_two_lb(1).with_lbb_bank_lines(lines);
        let r = run_me(&sc, &workload).expect("scenario replay succeeds");
        println!(
            "{:>10} {:>12} {:>6.2} {:>10} {:>10}",
            lines,
            r.me_cycles,
            r.speedup_vs(&orig),
            r.rfu.lbb_hits,
            r.rfu.lbb_misses
        );
        points.push((format!("lbb_{lines}_lines"), sc));
    }

    println!("\nPrefetch-buffer depth sweep (loop 1x32, b=1):");
    println!(
        "{:>8} {:>12} {:>6} {:>10}",
        "entries", "Cycles", "S.Up", "pf dropped"
    );
    for entries in [8usize, 16, 64] {
        let mut sc = Scenario::loop_level(RfuBandwidth::B1x32, 1);
        sc.mem.prefetch_entries = entries;
        sc.label = format!("1x32 pfb={entries}");
        let r = run_me(&sc, &workload).expect("scenario replay succeeds");
        println!(
            "{:>8} {:>12} {:>6.2} {:>10}",
            entries,
            r.me_cycles,
            r.speedup_vs(&orig),
            r.mem.pf_dropped
        );
        points.push((format!("pfb_{entries}_entries"), sc));
    }

    let mut group = c.benchmark_group("ablation_linebuffer");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, sc) in points {
        group.bench_function(&name, |b| b.iter(|| run_me(&sc, &workload)));
    }
    group.finish();
}

criterion_group!(benches, bench_linebuffer);
criterion_main!(benches);
