//! The paper's published numbers, used as anchors in the
//! paper-vs-measured comparison and in the reproduction tests.
//!
//! Several table cells are corrupted in the available OCR of the paper;
//! only values that are legible in the text are anchored here. Where a
//! cell is unreadable we reproduce the qualitative shape the prose
//! describes (see `EXPERIMENTS.md`).

/// Table 1 `%Improvement` for A1, A2, A3.
pub const T1_IMPROVEMENT: [(&str, f64); 3] = [("A1", 0.14), ("A2", 0.28), ("A3", 0.31)];

/// Table 2 speedups at β = 1 for 1×32 / 1×64 / 2×64.
pub const T2_SPEEDUP_B1: [(&str, f64); 3] = [("1x32", 3.18), ("1x64", 4.26), ("2x64", 5.29)];

/// Table 2 speedup at β = 5 for 1×32 (the only legible β = 5 cell).
pub const T2_SPEEDUP_1X32_B5: f64 = 2.74;

/// Table 3: the β = 1 → 5 latency increase is a fixed 12 cycles.
pub const T3_FIXED_LATENCY_INCREASE: u64 = 12;

/// Table 3: speedup reduction for 2×64 (legible cell).
pub const T3_SPEEDUP_REDUCTION_2X64: f64 = -0.212;

/// Table 5: ORIG cache stalls as a share of ME time.
pub const T5_ORIG_STALL_SHARE: f64 = 0.0196;

/// Table 5 stall shares at β = 5 (legible cells): 1×32, 1×64, 2×64.
pub const T5_STALL_SHARE_B5: [(&str, f64); 3] = [("1x32", 0.146), ("1x64", 0.229), ("2x64", 0.263)];

/// Table 6: the experimental speedup is always above 57 % of the
/// theoretical one.
pub const T6_MIN_RATIO: f64 = 0.57;

/// Table 7 speedups with two line buffers at β = 1 and β = 5.
pub const T7_SPEEDUP: [(u64, f64); 2] = [(1, 8.0), (5, 5.4)];

/// Table 7 `%Rel` (ME share of the application) at β = 1 and β = 5.
pub const T7_REL_SHARE: [(u64, f64); 2] = [(1, 0.0414), (5, 0.061)];

/// Table 7: stall reduction of at least 60 %.
pub const T7_MIN_STALL_REDUCTION: f64 = 0.60;

/// The initial profile: `GetSad` share of execution with ORIG.
pub const INITIAL_GETSAD_SHARE: f64 = 0.256;

/// Share of `GetSad` calls that use diagonal interpolation in the paper's
/// sequence.
pub const DIAG_CALL_SHARE: f64 = 0.18;

/// Late/incomplete reference-macroblock prefetches are below 1 %.
pub const MAX_REF_PREFETCH_LATE: f64 = 0.01;
