//! Regenerates every table and figure of the paper on the full 25-frame
//! QCIF workload and prints a paper-vs-measured comparison.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p rvliw-bench --bin tables \
//!     [-- --write] [--frames N] [--csv DIR] [--bench-json] [--baseline-cps X]
//!     [--metrics-out FILE] [--trace FILE] [--threads N] [--spec PATH]
//!     [--cache-dir DIR] [--no-cache] [--backend B] [--substrate S]
//!     [--fault-seed N] [--fault-profile PROFILE]
//!     [--journal FILE] [--resume FILE] [--max-retries N] [--timeout-secs S]
//! cargo run --release -p rvliw-bench --bin tables -- --check BENCH_tables.json \
//!     [--min-cycles-per-sec-ratio R]
//! ```
//!
//! `--write` also rewrites `EXPERIMENTS.md` at the workspace root.
//! `--threads N` overrides the worker-thread count (default: the
//! `RVLIW_THREADS` environment variable, else all cores; `0` means auto).
//! `--cache-dir DIR` enables the content-addressed scenario result cache:
//! previously simulated scenarios are served from disk instead of being
//! re-simulated, and every table stays bit-identical to the cold path —
//! `--check` against a warm cache is the proof. Without the flag the cache
//! directory comes from `RVLIW_CACHE_DIR` (unset = caching off);
//! `--no-cache` disables it regardless. A `cache: hits=… misses=…` summary
//! goes to stderr, and `--metrics-out` gains a top-level `"cache"` object.
//! `--spec PATH` drives the run from declarative experiment specs instead
//! of the built-in grid: a single `.json` spec file, or a directory whose
//! `table*.json` files (the seven checked-in paper tables under `specs/`)
//! are unioned. The specs must cover the paper grid exactly — this is the
//! proof that the spec layer is behavior-preserving; combine with
//! `--check` to assert the result bit-identical to the golden snapshot.
//! Off-grid specs run through `rvliw sweep` instead.
//! `--bench-json` writes `BENCH_tables.json` (wall time per phase and per
//! table, simulated cycles, cycles per wall second, thread count, and a
//! `"tables"` snapshot of every integer table cell); with
//! `--baseline-cps X` (a reference build's cycles/sec on the same host)
//! the report also records the speedup over that baseline.
//! `--metrics-out FILE` re-runs every scenario with a counting tracer and
//! writes per-scenario stall/cache/RFU metrics as JSON; scenarios carrying
//! speed-vs-quality metrics contribute a top-level `"quality"` object
//! (never the exact paper grid, so golden artifacts stay byte-stable).
//! `--trace FILE` captures a Chrome `trace_event` JSON (Perfetto-loadable)
//! of the ORIG scenario.
//!
//! `--backend B` (one of `interpreter`, `block-compiled`, `auto`; default
//! `auto`) selects the simulator's execution backend for every scenario.
//! The backend never changes results — `--check --backend block-compiled`
//! proves it bit-identically — only how fast they are simulated.
//!
//! `--substrate S` (one of `vliw4`, `scalar`) pins every built-in-grid
//! scenario to that fetch/issue substrate: the paper grid re-runs on a
//! scalar in-order core with the paper's labels, so the printed tables
//! show that core's cycle counts. Unlike `--backend`, the substrate *is*
//! the experiment — it changes every cycle number — so it conflicts with
//! `--check`, `--write` and `--bench-json` (the golden artifacts are
//! VLIW-only) and with `--spec` (give the spec a `"substrate"` axis
//! instead; see `specs/cross_substrate.json`). A non-default substrate is
//! recorded in the `--metrics-out` envelope as a top-level `"substrate"`
//! key; the default emits nothing, keeping existing reports byte-stable.
//!
//! `--check FILE` is the regression gate: it re-runs the case study and
//! compares every integer cell of Tables 1–7 against the `"tables"`
//! snapshot committed in FILE, exiting non-zero on any drift. With
//! `--min-cycles-per-sec-ratio R` it additionally fails when the check
//! run's simulation throughput falls below `R` times the
//! `cycles_per_sec` recorded in FILE — the throughput ratchet CI runs at
//! `R = 0.8` to catch >20 % simulator slowdowns (skip it on warm-cache
//! runs only if you want the trivial pass: cached scenarios are served
//! from disk, so the ratio is then meaningless in the other direction).
//!
//! `--fault-profile PROFILE` (one of `none`, `latency`, `flush`,
//! `linebuffer`, `bitflip`, `chaos`) with `--fault-seed N` runs the whole
//! case study under a deterministic seeded fault plan. Failing scenarios
//! are isolated: every other scenario still completes and keeps its
//! measurement, the tables render partially with `[failed]` annotations,
//! a per-scenario failure report goes to stderr, and the process exits
//! non-zero. `--bench-json`, `--write` and `--check` refuse to run under
//! a non-inert plan so golden artifacts are never polluted.
//!
//! `--journal FILE` appends every scenario outcome to FILE (JSONL) as it
//! lands; `--resume FILE` replays the completed entries of a previous
//! run's journal instead of re-simulating them, bit-identically.
//! `--max-retries N` retries transient failures with deterministically
//! reseeded fault substreams; `--timeout-secs S` arms a wall-clock
//! watchdog per scenario attempt. Supervised runs print a `health: …`
//! summary line and `--metrics-out` gains a top-level `"health"` object.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use mpeg4_enc::QualityMetrics;
use rvliw_bench::paper;
use rvliw_core::tables::CaseStudy;
use rvliw_core::{
    arch, run_me_with_tracer, run_summary, ExperimentSpec, HealthReport, Journal, Scenario,
    ScenarioCache, SupervisorConfig, TablesSnapshot, Workload,
};
use rvliw_fault::{FaultPlan, FaultProfile};
use rvliw_isa::{MachineConfig, Substrate};
use rvliw_mem::MemConfig;
use rvliw_sim::{backend_totals, ExecBackend};
use rvliw_trace::{ChromeTracer, CountingTracer, Json};

/// Writes one CSV per table (machine-readable series for plotting).
fn write_csvs(dir: &str, cs: &CaseStudy) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = |n: &str| format!("{dir}/{n}.csv");
    let mut t1 = String::from("scenario,cycles,speedup,improvement\n");
    for r in &cs.table1().rows {
        t1.push_str(&format!(
            "{},{},{:.4},{:.4}\n",
            r.name, r.cycles, r.speedup, r.improvement
        ));
    }
    std::fs::write(path("table1"), t1)?;

    let mut t2 = String::from("bandwidth,beta,lat,cycles,speedup\n");
    for r in &cs.table2().rows {
        t2.push_str(&format!(
            "{},1,{},{},{:.4}\n{},5,{},{},{:.4}\n",
            r.bw.label(),
            r.lat_b1,
            r.cycles_b1,
            r.speedup_b1,
            r.bw.label(),
            r.lat_b5,
            r.cycles_b5,
            r.speedup_b5
        ));
    }
    std::fs::write(path("table2"), t2)?;

    let mut t3 =
        String::from("bandwidth,lat_b1,lat_b5,pct_latency_increase,pct_speedup_reduction\n");
    for r in &cs.table3().rows {
        t3.push_str(&format!(
            "{},{},{},{:.4},{:.4}\n",
            r.bw.label(),
            r.lat_b1,
            r.lat_b5,
            r.pct_latency_increase,
            r.pct_speedup_reduction
        ));
    }
    std::fs::write(path("table3"), t3)?;

    let mut t4 = String::from("scenario,beta,stall_cycles,reduction_vs_orig\n");
    let tbl4 = cs.table4();
    t4.push_str(&format!("Orig,,{},0\n", tbl4.orig_stalls));
    for r in &tbl4.rows {
        t4.push_str(&format!(
            "{},1,{},{:.4}\n{},5,{},{:.4}\n",
            r.bw.label(),
            r.stalls_b1,
            r.reduction_b1,
            r.bw.label(),
            r.stalls_b5,
            r.reduction_b5
        ));
    }
    std::fs::write(path("table4"), t4)?;

    let tbl5 = cs.table5();
    let mut t5 = String::from("scenario,beta,stall_share\n");
    t5.push_str(&format!("Orig,,{:.5}\n", tbl5.orig_share));
    for r in &tbl5.rows {
        t5.push_str(&format!(
            "{},1,{:.5}\n{},5,{:.5}\n",
            r.bw.label(),
            r.share_b1,
            r.bw.label(),
            r.share_b5
        ));
    }
    std::fs::write(path("table5"), t5)?;

    let mut t6 = String::from("bandwidth,beta,static_cycles,th_speedup,speedup,ratio\n");
    for r in &cs.table6().rows {
        t6.push_str(&format!(
            "{},{},{},{:.4},{:.4},{:.4}\n",
            r.bw.label(),
            r.beta,
            r.static_cycles,
            r.th_speedup,
            r.speedup,
            r.ratio
        ));
    }
    std::fs::write(path("table6"), t6)?;

    let mut t7 = String::from("beta,lat,cycles,speedup,rel_share,stalls,stall_reduction\n");
    for r in &cs.table7().rows {
        t7.push_str(&format!(
            "{},{},{},{:.4},{:.4},{},{:.4}\n",
            r.beta, r.lat, r.ex_cycles, r.speedup, r.rel_share, r.stalls, r.stall_reduction
        ));
    }
    std::fs::write(path("table7"), t7)?;
    Ok(())
}

/// Wall-clock of `f`, in seconds.
fn secs(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// Builds the workload for `frames` frames, sharing the cached 25-frame
/// paper workload when possible.
fn build_workload(frames: usize) -> std::sync::Arc<Workload> {
    if frames == 25 {
        Workload::paper_shared()
    } else {
        std::sync::Arc::new(Workload::qcif_frames(frames))
    }
}

/// Opens the scenario result cache for `workload`, honouring the flag
/// precedence `--no-cache` > `--cache-dir` > `RVLIW_CACHE_DIR` > off.
fn open_cache(
    cache_dir: Option<&str>,
    no_cache: bool,
    workload: &Workload,
    frames: usize,
) -> Result<Option<ScenarioCache>, String> {
    if no_cache {
        return Ok(None);
    }
    let dir = match cache_dir {
        Some(d) => std::path::PathBuf::from(d),
        None => match rvliw_core::default_cache_dir() {
            Some(d) => d,
            None => return Ok(None),
        },
    };
    let kind = if frames == 25 { "paper" } else { "qcif" };
    match ScenarioCache::open(&dir, workload, kind) {
        Ok(c) => Ok(Some(c)),
        Err(e) => Err(format!("cache: {e}")),
    }
}

/// Loads experiment specs from `path`: a single `.json` file, or a
/// directory whose `table*.json` files are loaded in sorted order (other
/// spec files in the directory — off-grid sweeps — are ignored, since they
/// are not part of the paper grid the tables pipeline asserts).
fn load_specs(path: &str) -> Result<Vec<ExperimentSpec>, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
    let mut files: Vec<std::path::PathBuf> = if meta.is_dir() {
        let mut v: Vec<_> = std::fs::read_dir(path)
            .map_err(|e| format!("{path}: {e}"))?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("table") && n.ends_with(".json"))
            })
            .collect();
        v.sort();
        if v.is_empty() {
            return Err(format!("{path}: no table*.json spec files found"));
        }
        v
    } else {
        vec![std::path::PathBuf::from(path)]
    };
    files
        .drain(..)
        .map(|p| {
            let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            ExperimentSpec::from_json_str(&text).map_err(|e| format!("{}: {e}", p.display()))
        })
        .collect()
}

/// Runs the case study — from `specs` when given, else the built-in grid —
/// under the supervisor (with [`SupervisorConfig::default`] that is exactly
/// the plain cached run), returning the tables plus the run's health
/// report.
///
/// `substrate` pins every built-in-grid scenario to that fetch/issue
/// substrate (the labels stay the paper's, so the tables render normally
/// with that core's cycle counts). It never reaches the spec path — the
/// CLI rejects `--spec --substrate` and points at the spec's own
/// `"substrate"` axis, whose label suffixes would break the paper-grid
/// coverage check here.
fn run_case_study(
    specs: Option<&[ExperimentSpec]>,
    workload: &Workload,
    plan: FaultPlan,
    threads: usize,
    cache: Option<&ScenarioCache>,
    config: &SupervisorConfig,
    substrate: Option<Substrate>,
) -> Result<(CaseStudy, HealthReport), String> {
    let progress = |label: &str| eprintln!("  scenario {label} …");
    match specs {
        Some(specs) => {
            CaseStudy::run_from_specs_supervised(specs, workload, threads, progress, cache, config)
                .map_err(|e| e.to_string())
        }
        None => {
            let scenarios: Vec<Scenario> = CaseStudy::scenarios()
                .into_iter()
                .map(|sc| sc.with_fault_plan(plan))
                .map(|sc| match substrate {
                    Some(su) => sc.with_substrate(su),
                    None => sc,
                })
                .collect();
            Ok(CaseStudy::run_scenarios_supervised(
                &scenarios, workload, threads, progress, cache, config,
            ))
        }
    }
}

/// One timed, uncached pass of the paper grid under a forced backend.
struct BackendPass {
    name: &'static str,
    cycles_per_sec: f64,
    block_cache_hit_rate: f64,
    fallbacks: u64,
}

/// Times the full scenario grid once per execution backend — same specs,
/// workload and thread count, never cached (a cache hit measures disk, not
/// the simulator) — and restores `chosen` as the process default.
fn bench_backends(
    specs: Option<&[ExperimentSpec]>,
    workload: &Workload,
    threads: usize,
    chosen: ExecBackend,
) -> Result<Vec<BackendPass>, String> {
    let mut passes = Vec::new();
    for backend in [ExecBackend::Interpreter, ExecBackend::BlockCompiled] {
        backend.set_process_default();
        let before = backend_totals();
        let t = Instant::now();
        let (cs, _) = run_case_study(
            specs,
            workload,
            FaultPlan::none(),
            threads,
            None,
            &SupervisorConfig::default(),
            None,
        )?;
        let wall_s = t.elapsed().as_secs_f64();
        let after = backend_totals();
        let simulated: u64 = cs
            .results()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.me_cycles)
            .sum();
        let lookups = after.compile_lookups - before.compile_lookups;
        let misses = after.compile_misses - before.compile_misses;
        let hit_rate = if lookups == 0 {
            1.0
        } else {
            1.0 - misses as f64 / lookups as f64
        };
        let pass = BackendPass {
            name: backend.name(),
            cycles_per_sec: simulated as f64 / wall_s,
            block_cache_hit_rate: hit_rate,
            fallbacks: after.fallbacks - before.fallbacks,
        };
        eprintln!(
            "  {}: {:.1}M cycles/sec (block-cache hit rate {:.4})",
            pass.name,
            pass.cycles_per_sec / 1e6,
            pass.block_cache_hit_rate
        );
        passes.push(pass);
    }
    chosen.set_process_default();
    Ok(passes)
}

/// The `"backends"` JSON object of the bench envelope and the metrics
/// report: per-backend simulation throughput plus block-cache behaviour.
fn backends_json(passes: &[BackendPass], selected: ExecBackend) -> String {
    let mut s = String::from("{\n");
    for p in passes {
        let _ = writeln!(s, "    \"{}\": {{", p.name);
        let _ = writeln!(s, "      \"cycles_per_sec\": {:.0},", p.cycles_per_sec);
        let _ = writeln!(
            s,
            "      \"block_cache_hit_rate\": {:.6},",
            p.block_cache_hit_rate
        );
        let _ = writeln!(s, "      \"fallbacks\": {}", p.fallbacks);
        let _ = writeln!(s, "    }},");
    }
    if let (Some(interp), Some(block)) = (
        passes.iter().find(|p| p.name == "interpreter"),
        passes.iter().find(|p| p.name == "block-compiled"),
    ) {
        let _ = writeln!(
            s,
            "    \"block_speedup_vs_interpreter\": {:.2},",
            block.cycles_per_sec / interp.cycles_per_sec
        );
    }
    let _ = writeln!(s, "    \"selected\": \"{selected}\"");
    s.push_str("  }");
    s
}

/// The `"quality"` JSON object: per-scenario speed-vs-quality metrics.
/// Only scenarios carrying a quality block contribute — the exact paper
/// grid never does, which keeps the golden bench envelope byte-stable.
fn quality_json(items: &[(String, QualityMetrics)]) -> String {
    let fin = |v: f64| {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_owned()
        }
    };
    let mut s = String::from("{\n");
    for (i, (label, q)) in items.iter().enumerate() {
        let comma = if i + 1 == items.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    \"{label}\": {{\"sad_inflation\": {}, \"psnr_delta_db\": {}}}{comma}",
            fin(q.sad_inflation),
            fin(q.psnr_delta_db)
        );
    }
    s.push_str("  }");
    s
}

/// The per-scenario quality blocks of every successful result, in run
/// order (empty for exact full-quality grids).
fn collect_quality(cs: &CaseStudy) -> Vec<(String, QualityMetrics)> {
    cs.results()
        .filter_map(|r| r.as_ref().ok())
        .filter_map(|r| r.quality.map(|q| (r.label.clone(), q)))
        .collect()
}

/// Prints the shared run summary (cache traffic + supervision health)
/// after a run, through the same formatting helper `rvliw sweep` uses.
fn report_run(cache: Option<&ScenarioCache>, health: Option<&HealthReport>) {
    let summary = run_summary(cache.map(ScenarioCache::counts).as_ref(), health);
    if !summary.is_empty() {
        eprintln!("{summary}");
    }
}

/// The regression gate: re-runs the case study (spec-driven when `specs`
/// is given) and diffs every integer table cell against the `"tables"`
/// snapshot committed in `path`.
fn run_check(
    path: &str,
    specs: Option<&[ExperimentSpec]>,
    threads: usize,
    cache_dir: Option<&str>,
    no_cache: bool,
    min_cps_ratio: Option<f64>,
    config: &SupervisorConfig,
) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tables --check: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let json = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("tables --check: {path}: invalid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(tables) = json.get("tables") else {
        eprintln!(
            "tables --check: {path} has no \"tables\" snapshot; \
             regenerate it with `tables --bench-json`"
        );
        return ExitCode::from(2);
    };
    let baseline = match TablesSnapshot::from_json(tables) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("tables --check: {path}: bad \"tables\" snapshot: {e}");
            return ExitCode::from(2);
        }
    };
    let frames = json.get("frames").and_then(Json::as_u64).unwrap_or(25) as usize;
    let how = if specs.is_some() {
        "from specs"
    } else {
        "from the built-in grid"
    };
    eprintln!("tables --check: re-running the case study {how} on {frames} QCIF frames …");
    let workload = build_workload(frames);
    let cache = match open_cache(cache_dir, no_cache, &workload, frames) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tables --check: {e}");
            return ExitCode::from(2);
        }
    };
    let t_run = Instant::now();
    let (cs, health) = match run_case_study(
        specs,
        &workload,
        FaultPlan::none(),
        threads,
        cache.as_ref(),
        config,
        None,
    ) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("tables --check: {e}");
            return ExitCode::from(2);
        }
    };
    let run_wall_s = t_run.elapsed().as_secs_f64();
    report_run(cache.as_ref(), config.is_active().then_some(&health));
    let fresh = TablesSnapshot::capture(&cs);
    let drift = fresh.diff(&baseline);
    if drift.is_empty() {
        eprintln!(
            "tables --check: OK — {} table cells bit-identical to {path}",
            fresh.cells.len()
        );
        if let Some(ratio) = min_cps_ratio {
            // The throughput ratchet: the check run must sustain at least
            // `ratio` of the cycles/sec recorded in the golden envelope.
            let Some(recorded) = json
                .get("cycles_per_sec")
                .and_then(Json::as_f64)
                .filter(|v| *v > 0.0)
            else {
                eprintln!(
                    "tables --check: {path} records no usable \"cycles_per_sec\"; \
                     regenerate it with `tables --bench-json` before gating throughput"
                );
                return ExitCode::from(2);
            };
            let simulated: u64 = cs
                .results()
                .filter_map(|r| r.as_ref().ok())
                .map(|r| r.me_cycles)
                .sum();
            let achieved = simulated as f64 / run_wall_s;
            eprintln!(
                "tables --check: throughput {:.1}M cycles/sec vs recorded {:.1}M \
                 (ratio {:.2}, floor {ratio:.2})",
                achieved / 1e6,
                recorded / 1e6,
                achieved / recorded
            );
            if achieved < ratio * recorded {
                eprintln!(
                    "tables --check: FAIL — simulation throughput regressed below \
                     {ratio:.2}x the recorded baseline"
                );
                return ExitCode::FAILURE;
            }
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tables --check: FAIL — {} cell(s) drifted from {path}:",
            drift.len()
        );
        for line in &drift {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let fault_seed = match flag_value("--fault-seed").map(|v| v.parse::<u64>()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(e)) => {
            eprintln!("tables: --fault-seed: {e}");
            return ExitCode::from(2);
        }
    };
    let fault_profile = match flag_value("--fault-profile").map(|v| v.parse::<FaultProfile>()) {
        None => FaultProfile::None,
        Some(Ok(p)) => p,
        Some(Err(e)) => {
            eprintln!("tables: --fault-profile: {e}");
            return ExitCode::from(2);
        }
    };
    let plan = FaultPlan::from_profile(fault_profile, fault_seed);
    let threads = match flag_value("--threads") {
        None => rvliw_core::default_threads(),
        Some(v) => match rvliw_core::parse_threads(&v) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("tables: --threads: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let specs: Option<Vec<ExperimentSpec>> = match flag_value("--spec") {
        None => None,
        Some(path) => match load_specs(&path) {
            Ok(specs) => Some(specs),
            Err(e) => {
                eprintln!("tables: --spec: {e}");
                return ExitCode::from(2);
            }
        },
    };
    if specs.is_some() && !plan.is_inert() {
        eprintln!(
            "tables: --spec and --fault-profile conflict; put the fault profile \
             in the spec's \"fault\" object instead"
        );
        return ExitCode::from(2);
    }
    let backend = match flag_value("--backend").map(|v| v.parse::<ExecBackend>()) {
        None => ExecBackend::Auto,
        Some(Ok(b)) => b,
        Some(Err(e)) => {
            eprintln!("tables: --backend: {e}");
            return ExitCode::from(2);
        }
    };
    backend.set_process_default();
    let substrate = match flag_value("--substrate").map(|v| v.parse::<Substrate>()) {
        None => None,
        Some(Ok(s)) => Some(s),
        Some(Err(e)) => {
            eprintln!("tables: --substrate: {e}");
            return ExitCode::from(2);
        }
    };
    if substrate.is_some() && specs.is_some() {
        eprintln!(
            "tables: --spec and --substrate conflict; put the substrate in the \
             spec's \"substrate\" axis instead"
        );
        return ExitCode::from(2);
    }
    let min_cps_ratio = match flag_value("--min-cycles-per-sec-ratio").map(|v| v.parse::<f64>()) {
        None => None,
        Some(Ok(r)) if r > 0.0 && r.is_finite() => Some(r),
        Some(Ok(r)) => {
            eprintln!("tables: --min-cycles-per-sec-ratio: {r} is not a positive ratio");
            return ExitCode::from(2);
        }
        Some(Err(e)) => {
            eprintln!("tables: --min-cycles-per-sec-ratio: {e}");
            return ExitCode::from(2);
        }
    };
    let cache_dir = flag_value("--cache-dir");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let max_retries = match flag_value("--max-retries").map(|v| v.parse::<u32>()) {
        None => 0,
        Some(Ok(n)) => n,
        Some(Err(e)) => {
            eprintln!("tables: --max-retries: {e}");
            return ExitCode::from(2);
        }
    };
    let timeout = match flag_value("--timeout-secs").map(|v| v.parse::<u64>()) {
        None => None,
        Some(Ok(n)) if n > 0 => Some(std::time::Duration::from_secs(n)),
        Some(Ok(_)) => {
            eprintln!("tables: --timeout-secs: must be at least 1");
            return ExitCode::from(2);
        }
        Some(Err(e)) => {
            eprintln!("tables: --timeout-secs: {e}");
            return ExitCode::from(2);
        }
    };
    let journal = match flag_value("--journal") {
        None => None,
        Some(p) => match Journal::open(&p) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("tables: --journal {p}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let resume = match flag_value("--resume") {
        None => std::collections::BTreeMap::new(),
        Some(p) => match Journal::load(&p) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("tables: --resume {p}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let config = SupervisorConfig {
        max_retries,
        timeout,
        journal,
        resume,
    };
    if let Some(file) = flag_value("--check") {
        if !plan.is_inert() {
            eprintln!("tables: --check compares against golden tables; drop --fault-profile");
            return ExitCode::from(2);
        }
        if substrate.is_some() {
            eprintln!("tables: --check compares against golden VLIW tables; drop --substrate");
            return ExitCode::from(2);
        }
        return run_check(
            &file,
            specs.as_deref(),
            threads,
            cache_dir.as_deref(),
            no_cache,
            min_cps_ratio,
            &config,
        );
    }
    if min_cps_ratio.is_some() {
        eprintln!("tables: --min-cycles-per-sec-ratio only applies with --check");
        return ExitCode::from(2);
    }
    let write = args.iter().any(|a| a == "--write");
    let bench_json = args.iter().any(|a| a == "--bench-json");
    if !plan.is_inert() && (write || bench_json) {
        eprintln!(
            "tables: refusing to rewrite golden artifacts (--write / --bench-json) \
             under fault profile `{fault_profile}`"
        );
        return ExitCode::from(2);
    }
    if substrate.is_some() && (write || bench_json) {
        eprintln!(
            "tables: refusing to rewrite golden artifacts (--write / --bench-json) \
             under a forced --substrate; the checked-in tables are VLIW-only"
        );
        return ExitCode::from(2);
    }
    let baseline_cps = args
        .iter()
        .position(|a| a == "--baseline-cps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok());
    let frames = match args
        .iter()
        .position(|a| a == "--frames")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) => n,
        None => match &specs {
            // Without an explicit override every spec must agree on the
            // workload length — the scenarios share one encoded sequence.
            Some(specs) => {
                let frames = specs.first().map_or(25, |s| s.frames);
                if let Some(odd) = specs.iter().find(|s| s.frames != frames) {
                    eprintln!(
                        "tables: specs disagree on frames ({} wants {}, `{}` wants {}); \
                         pass --frames to override",
                        specs[0].name, frames, odd.name, odd.frames
                    );
                    return ExitCode::from(2);
                }
                frames
            }
            None => 25,
        },
    };

    let mut out = String::new();
    let t0 = Instant::now();
    eprintln!("generating + encoding the {frames}-frame QCIF workload …");
    let t_encode = Instant::now();
    let workload = build_workload(frames);
    let encode_wall_s = t_encode.elapsed().as_secs_f64();
    let (n, h, v, d) = workload.report.interp_shares();
    let _ = writeln!(
        out,
        "# Reproduction run: {} frames QCIF, {} GetSad calls\n",
        frames,
        workload.num_calls()
    );
    let _ = writeln!(
        out,
        "workload: mean luma PSNR {:.2} dB, {} bits total; GetSad interpolation mix:",
        workload.report.mean_psnr_y(),
        workload.report.total_bits
    );
    let _ = writeln!(
        out,
        "  none {:.1}%  H {:.1}%  V {:.1}%  diagonal {:.1}%  (paper: diagonal ≈ {:.0}%)\n",
        n * 100.0,
        h * 100.0,
        v * 100.0,
        d * 100.0,
        paper::DIAG_CALL_SHARE * 100.0
    );

    if let Some(su) = substrate {
        eprintln!("pinning every scenario to the `{su}` substrate");
    }
    if plan.is_inert() {
        eprintln!("running the 12 architecture scenarios on {threads} thread(s) …");
    } else {
        eprintln!(
            "running the 12 architecture scenarios on {threads} thread(s) \
             under fault profile `{fault_profile}`, seed {fault_seed} …"
        );
    }
    let cache = match open_cache(cache_dir.as_deref(), no_cache, &workload, frames) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tables: {e}");
            return ExitCode::from(2);
        }
    };
    let t_scenarios = Instant::now();
    let (cs, health) = match run_case_study(
        specs.as_deref(),
        &workload,
        plan,
        threads,
        cache.as_ref(),
        &config,
        substrate,
    ) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("tables: {e}");
            return ExitCode::from(2);
        }
    };
    let scenarios_wall_s = t_scenarios.elapsed().as_secs_f64();
    report_run(cache.as_ref(), config.is_active().then_some(&health));

    let _ = writeln!(out, "```\n{}\n```\n", cs.table1());
    let _ = writeln!(out, "```\n{}\n```\n", cs.table2());
    let _ = writeln!(out, "```\n{}\n```\n", cs.table3());
    let _ = writeln!(out, "```\n{}\n```\n", cs.table4());
    let _ = writeln!(out, "```\n{}\n```\n", cs.table5());
    let _ = writeln!(out, "```\n{}\n```\n", cs.table6());
    let _ = writeln!(out, "```\n{}\n```\n", cs.table7());

    // ---- paper vs measured ------------------------------------------------
    let _ = writeln!(out, "## Paper vs measured\n");
    let _ = writeln!(out, "| experiment | quantity | paper | measured |");
    let _ = writeln!(out, "|---|---|---|---|");
    let t1 = cs.table1();
    for (name, p) in paper::T1_IMPROVEMENT {
        let m = t1
            .rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.improvement)
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "| Table 1 | {name} %improvement | {:.0}% | {:.1}% |",
            p * 100.0,
            m * 100.0
        );
    }
    let t2 = cs.table2();
    for (label, p) in paper::T2_SPEEDUP_B1 {
        let m = t2
            .rows
            .iter()
            .find(|r| r.bw.label() == label)
            .map(|r| r.speedup_b1)
            .unwrap_or(f64::NAN);
        let _ = writeln!(out, "| Table 2 | {label} speedup (b=1) | {p:.2} | {m:.2} |");
    }
    let _ = writeln!(
        out,
        "| Table 2 | 1x32 speedup (b=5) | {:.2} | {:.2} |",
        paper::T2_SPEEDUP_1X32_B5,
        t2.rows.first().map_or(f64::NAN, |r| r.speedup_b5)
    );
    let t3 = cs.table3();
    let _ = writeln!(
        out,
        "| Table 3 | latency increase b=1→5 | +{} cycles (all) | +{} cycles (all) |",
        paper::T3_FIXED_LATENCY_INCREASE,
        t3.rows.first().map_or(0, |r| r.lat_b5 - r.lat_b1)
    );
    let _ = writeln!(
        out,
        "| Table 3 | 2x64 speedup reduction | {:.1}% | {:.1}% |",
        paper::T3_SPEEDUP_REDUCTION_2X64 * 100.0,
        t3.rows.get(2).map_or(f64::NAN, |r| r.pct_speedup_reduction) * 100.0
    );
    let t5 = cs.table5();
    let _ = writeln!(
        out,
        "| Table 5 | Orig stall share of ME | {:.2}% | {:.2}% |",
        paper::T5_ORIG_STALL_SHARE * 100.0,
        t5.orig_share * 100.0
    );
    for (label, p) in paper::T5_STALL_SHARE_B5 {
        let m = t5
            .rows
            .iter()
            .find(|r| r.bw.label() == label)
            .map(|r| r.share_b5)
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "| Table 5 | {label} stall share (b=5) | {:.1}% | {:.1}% |",
            p * 100.0,
            m * 100.0
        );
    }
    let t6 = cs.table6();
    let min_ratio = t6.rows.iter().map(|r| r.ratio).fold(f64::NAN, f64::min);
    let _ = writeln!(
        out,
        "| Table 6 | min S.Up/Th.S.Up ratio | > {:.0}% | {:.0}% |",
        paper::T6_MIN_RATIO * 100.0,
        min_ratio * 100.0
    );
    let t7 = cs.table7();
    for (beta, p) in paper::T7_SPEEDUP {
        let m = t7
            .rows
            .iter()
            .find(|r| r.beta == beta)
            .map(|r| r.speedup)
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "| Table 7 | 2-LB speedup (b={beta}) | {p:.1} | {m:.2} |"
        );
    }
    for (beta, p) in paper::T7_REL_SHARE {
        let m = t7
            .rows
            .iter()
            .find(|r| r.beta == beta)
            .map(|r| r.rel_share)
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "| Table 7 | %Rel (b={beta}) | {:.2}% | {:.2}% |",
            p * 100.0,
            m * 100.0
        );
    }
    let min_red = t7
        .rows
        .iter()
        .map(|r| r.stall_reduction)
        .fold(f64::NAN, f64::min);
    let _ = writeln!(
        out,
        "| Table 7 | stall reduction | ≥ {:.0}% | {:.0}% |",
        paper::T7_MIN_STALL_REDUCTION * 100.0,
        min_red * 100.0
    );

    // ---- cycle breakdown -----------------------------------------------------
    let _ = writeln!(out, "## Where the cycles go (per scenario)\n");
    let _ = writeln!(out, "```");
    for r in cs.results() {
        match r {
            Ok(r) => {
                let _ = writeln!(
                    out,
                    "{:>10}: {}",
                    r.label,
                    rvliw_core::CycleBreakdown::of(r)
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{:>10}: [failed] {e}", e.label());
            }
        }
    }
    let _ = writeln!(out, "```\n");

    // ---- discussion ---------------------------------------------------------
    let _ = writeln!(out, "\n## Discussion: where and why we deviate\n");
    let _ = writeln!(
        out,
        "* **Table 1 (instruction level).** Measured improvements are \
         compressed (≈20/23/26 % vs the paper's 14/28/31 %) but the ordering \
         A1 < A2 < A3 and the headline magnitude (marginal, 1.2–1.4×, vs \
         5–8× for loop level) reproduce. The spread depends entirely on how \
         slow the ORIG *scalar* diagonal interpolation is relative to the \
         RFU variants; our ORIG diagonal costs ≈2.9× an integer call, which \
         evidently differs from the (unpublished) reference code's ratio. \
         The paper's own caveat applies: \"these results are strongly \
         data-dependent\"."
    );
    let _ = writeln!(
        out,
        "* **Tables 2, 3, 6, 7 (loop level).** All measured speedups land \
         within ~10 % of the paper's: 3.00/4.12/5.07 vs 3.18/4.26/5.29 at \
         β=1, 2.74 vs 2.74 at β=5, and 7.65/5.42 vs 8.0/5.4 with two line \
         buffers. The fixed +12-cycle β penalty, its growing *relative* \
         cost at higher bandwidth, the %Rel collapse of the ME stage \
         (25.6 % → ≈4 %/6 %) and the theoretical-vs-measured ratio \
         degradation with bandwidth all reproduce."
    );
    let _ = writeln!(
        out,
        "* **Tables 4–5 (cache stalls).** The ORIG stall share matches \
         (2.16 % vs 1.96 %), stalls grow with RFU bandwidth as the paper \
         explains (shorter loops narrow the prefetch window), and the \
         two-line-buffer scheme cuts them the most. Absolute loop-level \
         stall *shares* are far below the OCR'd Table 5 cells (≈0.2–5 % vs \
         14–26 %): our ME-only replay keeps the data cache warmer than the \
         authors' full-application simulation, where the texture pipeline \
         evicts ME data between macroblocks. Note the paper's own prose \
         says \"the stall cycles are a relatively small component of the \
         total ME execution time\", which is consistent with our numbers \
         and suggests those OCR cells may be corrupted."
    );
    let _ = writeln!(
        out,
        "* **Workload.** The Foreman sequence is substituted by a seeded \
         synthetic QCIF sequence tuned to the paper's one published \
         workload statistic (≈18 % diagonal-interpolation calls; we \
         measure {:.1} %). The search is a diamond + half-sample \
         refinement, consistent with that share (a full search would \
         dilute it below 2 % — see `ablation_search`).",
        d * 100.0
    );

    // ---- declarative sweeps -------------------------------------------------
    let _ = writeln!(out, "\n## Writing your own sweep\n");
    let _ = writeln!(
        out,
        "The scenario grid above is not hardcoded: it is declared by seven \
         **experiment specs** under `specs/` — `table1.json` … `table7.json`, \
         one per paper table — and every run of this binary can be driven \
         from them instead of the built-in grid:\n\n\
         ```\n\
         cargo run --release -p rvliw-bench --bin tables -- --spec specs/ --check BENCH_tables.json\n\
         ```\n\n\
         unions the `table*.json` specs, verifies they cover the paper grid \
         exactly, re-runs them, and asserts every table cell bit-identical \
         to the golden snapshot (CI runs this as the `sweep-golden` job). A \
         spec is plain JSON:\n\n\
         ```json\n\
         {{\n  \
           \"name\": \"offgrid-beta-sweep\",\n  \
           \"title\": \"2x64 bandwidth, beta swept 1..8\",\n  \
           \"frames\": 3,\n  \
           \"baseline\": \"Orig\",\n  \
           \"sweeps\": [\n    \
             {{\"kind\": \"instruction\", \"variants\": [\"Orig\"]}},\n    \
             {{\"kind\": \"loop\", \"bandwidths\": [\"2x64\"],\n     \
              \"betas\": [1, 2, 3, 4, 5, 6, 7, 8]}}\n  \
           ]\n\
         }}\n\
         ```\n\n\
         Top-level keys: `name` (required), `title`, `frames` (QCIF \
         workload length, default 25), `baseline` (label speedups are \
         computed against), `fault` (`{{\"profile\": \"chaos\", \"seed\": 7}}` \
         — the seeded fault plans described below), `cycle_limit` (per-run \
         watchdog override) and `sweeps` (required). Each sweep is either \
         `{{\"kind\": \"instruction\", \"variants\": [\"Orig\"|\"A1\"|\"A2\"|\"A3\"]}}` \
         or `{{\"kind\": \"loop\", ...}}` with axes `bandwidths` \
         (`\"1x32\"|\"1x64\"|\"2x64\"`), `betas` (integers ≥ 1), and \
         optionally `two_line_buffers` (`[true]` for the Table 7 scheme), \
         `lbb_bank_lines` (Line Buffer B per-bank capacity, `null` = the \
         paper's 34) and `reconfig` \
         (`{{\"penalty\": cycles, \"contexts\": n, \"prefetch_hiding\": bool}}`); \
         a loop sweep expands to the full cross-product of its axes. Both \
         kinds also accept `approx` and `search` axes (see the next \
         section) and a `substrate` axis (see \"Cross-substrate \
         sweeps\"). \
         Scenario labels must be unique — the engine rejects colliding \
         points with a typed error, since labels key fault substreams and \
         snapshot cells.\n\n\
         Off-grid specs (points in no paper table, like the β sweep above, \
         checked in as `specs/offgrid_beta_sweep.json`) run through the \
         CLI, bit-identically for any thread count:\n\n\
         ```\n\
         cargo run --release --bin rvliw -- sweep specs/offgrid_beta_sweep.json \\\n    \
         --threads 4 --out sweep.json\n\
         ```"
    );

    // ---- approximate ME -----------------------------------------------------
    let _ = writeln!(out, "\n## Approximate ME and Pareto sweeps\n");
    let _ = writeln!(
        out,
        "Approximation is a first-class scenario axis: both sweep kinds \
         accept `approx` (SAD approximation per candidate) and `search` \
         (motion-search algorithm override) arrays, crossed with every \
         other axis. Approximation tokens are `\"exact\"`, `\"rows/N\"` \
         (row-subsampled SAD, every Nth row, N ≥ 2), `\"bits/N\"` \
         (reduced-precision SAD, N low bits dropped per pixel difference, \
         1–7) and `\"early/N\"` (early exit once the running SAD exceeds \
         N). Search tokens are `\"full/R\"` (exhaustive ±R), \
         `\"diamond\"`, `\"three-step\"` and `\"spiral/R/T\"` (outward \
         spiral over ±R, stopping at SAD ≤ T); `null` keeps the \
         workload's own search. Non-default points re-encode the workload \
         under the approximate configuration and replay *that* motion \
         trace, so the simulated kernels face exactly the calls the \
         approximate encoder made — and every `GetSad` result is still \
         checked against the host encoder bit for bit.\n\n\
         Each such scenario carries two speed-vs-quality numbers, measured \
         against a golden exact full-search (±8, half-sample) encode of \
         the same frames: **SAD inflation** (exact-SAD cost of the chosen \
         motion field relative to the golden field, minus one) and **PSNR \
         delta** (golden mean luma PSNR minus the approximate encode's, \
         in dB). They render as the `Quality` column of the sweep matrix \
         (`-` for exact full-quality points), as a `\"quality\"` object \
         in `rvliw sweep --out` rows, and as a top-level `\"quality\"` \
         object in this binary's `--metrics-out` and `BENCH_tables.json` \
         whenever any scenario carries them (the exact paper grid never \
         does, keeping the golden envelope byte-stable).\n\n\
         The checked-in `specs/approx_sweep.json` sweeps the A3 kernel \
         and the 1x32 loop engine across approximation modes:\n\n\
         ```\n\
         cargo run --release --bin rvliw -- sweep --spec specs/approx_sweep.json --pareto\n\
         ```\n\n\
         `--pareto` partitions the quality-carrying rows into the \
         cycles-vs-inflation **Pareto frontier** and the dominated set \
         (`--pareto-out FILE` writes it to a file), both sorted by ME \
         cycles; a point is dominated when another point is no worse on \
         both axes and strictly better on one. The exactness guarantees \
         are regression-tested: `approx: [\"exact\"]` with no search \
         override is byte-identical to omitting the axes (same labels, \
         same cache keys — `tests/golden_invariance.rs` pins the \
         pre-axis key set), and the differential suite \
         (`tests/proptest_approx_me.rs`) proves every approximate RFU \
         kernel agrees with the scalar reference implementation per mode."
    );

    // ---- cross-substrate sweeps ---------------------------------------------
    let _ = writeln!(out, "\n## Cross-substrate sweeps\n");
    let _ = writeln!(
        out,
        "The fetch/issue discipline is a scenario axis of its own: the \
         issue/execute engine is a `Core` trait (DESIGN.md §11) with the \
         paper's 4-issue VLIW machine as one implementation and a scalar \
         in-order 5-stage RISC core as another. Both substrates run the \
         same scheduled kernel programs, memory hierarchy, fault plans \
         and RFU datapath; only issue timing differs — the scalar core \
         executes one operation per cycle and pays two extra \
         taken-branch bubbles. Architectural results (register state, \
         memory contents and traffic, every `GetSad` value) are \
         bit-identical by construction, enforced by a 64-case \
         differential proptest (`crates/sim/tests/substrate_parity.rs`).\n\n\
         Both sweep kinds accept a `substrate` array of `\"vliw4\"` / \
         `\"scalar\"` tokens, crossed with every other axis; non-default \
         points get a ` su=scalar` label suffix and their own cache keys \
         (omitting the axis is byte-identical to `[\"vliw4\"]`, so \
         pre-substrate specs, labels and cache entries are untouched). \
         The single-run CLIs accept `--substrate vliw4|scalar`, \
         `rvliw sweep --substrate S` forces one substrate over a whole \
         spec, and `tables --substrate scalar` re-runs the built-in \
         paper grid on the scalar core (refused with `--check`, \
         `--write` and `--bench-json` — the golden artifacts are \
         VLIW-only). The checked-in `specs/cross_substrate.json` runs \
         instruction- and loop-level scenarios on both:\n\n\
         ```\n\
         cargo run --release --bin rvliw -- sweep --spec specs/cross_substrate.json\n\
         ```\n\n\
         After the matrix, the CLI prints a per-scenario cycle-ratio \
         table pairing each ` su=` row with its default-substrate twin \
         (also emitted as `\"substrate_ratios\"` in `--out` JSON). The \
         ratios retell the paper's story from a new angle: software ME \
         is ~2.4–2.9× slower on the scalar core, but the loop-level RFU \
         points barely move (~1.03×) — once the loop engine does the \
         work, the host core's issue width stops mattering."
    );

    // ---- design-space exploration -------------------------------------------
    let _ = writeln!(out, "\n## Design-space exploration\n");
    let _ = writeln!(
        out,
        "Sweeps enumerate a grid; `rvliw explore` *searches* one. An \
         exploration spec (`specs/explore_rfu.json`) declares axes over \
         the whole configuration space — engine (`\"1x32\"`/`\"1x64\"`/\
         `\"2x64\"` loop engines or the two-line-buffer `\"2lb\"` \
         pipeline), β, Line Buffer B geometry, reconfiguration penalty, \
         prefetch depth, D-cache geometry, SAD approximation, search \
         algorithm and substrate — plus an evaluation `budget` and a \
         `strategy`: `coordinate-descent` (restarted axis-wise hill \
         climbing, alternating the objective priority between passes) or \
         `generational` (rank-truncate-mutate over a small population). \
         Both optimise the two sweep objectives jointly — ME cycles and \
         exact-SAD inflation — into an incremental Pareto archive that \
         reuses the sweep layer's dominance rule:\n\n\
         ```\n\
         cargo run --release --bin rvliw -- explore --spec specs/explore_rfu.json --seed 7\n\
         ```\n\n\
         Determinism is the headline contract. Search decisions draw \
         from per-(seed, component, index) substreams of the fault \
         crate's RNG, fitness batches go through the deterministic \
         parallel runner, and the output JSON deliberately carries no \
         timing or cache counters — so for a fixed `(spec, seed)` the \
         emitted bytes are identical at any `--threads` count and on \
         cold or warm caches (CI runs the checked-in spec at 1 and 4 \
         threads against one cache directory and `cmp`s the results \
         against `specs/explore_rfu_frontier.json`). The budget counts \
         **unique design points** (failed evaluations included, exactly \
         once); in-run revisits and on-disk cache hits are free and \
         cannot change the trajectory. Each frontier entry embeds a \
         single-point `ExperimentSpec` — feed it back through \
         `rvliw sweep --spec` to replay the archived numbers bit for \
         bit. `tests/proptest_explore.rs` pins all of this: thread-count \
         and cache invariance, archive dominance invariants, budget \
         exactness, frontier replay, and typed (never panicking) \
         rejection of malformed specs."
    );

    // ---- fault injection ----------------------------------------------------
    let _ = writeln!(out, "\n## Fault injection (robustness harness)\n");
    let _ = writeln!(
        out,
        "Every run above used the default **zero-fault plan**, which is \
         provably inert: `tables --check BENCH_tables.json` re-runs the \
         case study under it and demands bit-identical cells. A seeded, \
         deterministic fault plan can be enabled to exercise the failure \
         paths:\n\n\
         ```\n\
         cargo run --release -p rvliw-bench --bin tables -- --frames 2 \\\n    \
         --fault-profile chaos --fault-seed 7\n\
         ```\n\n\
         Profiles (`latency`, `flush`, `linebuffer`, `bitflip`, `chaos`) \
         perturb D-cache/bus latency, inject spurious cache flushes, delay \
         or wedge line-buffer row completions, and flip bits in RFU-loaded \
         pixel rows. Perturbations are drawn from per-(seed, component, \
         scenario) substreams, so results are reproducible and independent \
         of thread scheduling. Failed scenarios surface as typed errors \
         (`SadMismatch`, `CycleLimit`, `LineBufferDeadlock`, …), the \
         remaining scenarios keep their measurements (tables render with \
         `[failed]` annotations), and the process exits non-zero with a \
         per-scenario report. The run above deterministically fails 8 of \
         12 scenarios — the four no-line-buffer scenarios survive — \
         including one genuine RFU deadlock caught by the watchdog.\n\n\
         Each injected perturbation is also a trace event: \
         `tables --trace t.json --fault-profile bitflip` writes a Chrome \
         trace whose `fault` track (tid 4) carries `fault-mem-latency`, \
         `fault-cache-flush`, `fault-lb-row-delay`, `fault-lb-row-stuck` \
         and `fault-bit-flip` events, viewable at https://ui.perfetto.dev \
         alongside the pipeline and memory tracks."
    );

    // ---- result cache -------------------------------------------------------
    let _ = writeln!(out, "\n## Caching and incremental sweeps\n");
    let _ = writeln!(
        out,
        "Every measurement above is a pure function of (kernel program, \
         machine/memory/RFU/line-buffer configuration, fault plan, \
         workload), so results are cacheable on disk and reusable across \
         invocations — the iterate-a-sweep loop re-simulates only what \
         changed. Pass `--cache-dir DIR` (or set `RVLIW_CACHE_DIR`; \
         `--no-cache` wins over both) to `rvliw sweep` or this binary:\n\n\
         ```\n\
         cargo run --release -p rvliw-bench --bin tables -- \\\n    \
         --spec specs/ --check BENCH_tables.json --cache-dir .rvliw-cache\n\
         ```\n\n\
         The first (cold) run simulates and publishes every scenario; a \
         second (warm) run serves them from disk and `--check` still \
         passes bit-identically — the differential guarantee enforced by \
         the `cache_differential` tests and CI's `cache-smoke` job. \
         Entries are **content-addressed**: the file name is a 128-bit \
         FNV-1a hash over the canonicalized scenario (kind, bandwidth, β, \
         line-buffer scheme and capacity, reconfiguration model, cycle \
         budget, label), the assembled kernel program words, every fault-plan \
         knob including the seed, a workload digest (frame pixels plus the \
         recorded motion trace) and a cache schema version. Changing *any* \
         of those — editing a kernel, bumping β, reseeding a fault plan, \
         regenerating the workload — changes the key, so stale results are \
         never served; superseded entries are merely orphaned (`rvliw cache \
         clear` removes them). Corrupt, truncated or wrong-schema files are \
         warned about, treated as misses, and **quarantined**: moved into a \
         `quarantine/` subdirectory next to a `.reason` file so they never \
         degrade another sweep (`cache stats` reports the quarantine count \
         and size). Writes are \
         atomic (temp file + rename into place), so concurrent sweeps may \
         share a directory. Each cached run prints a `cache: hits=… \
         misses=… stale=… writes=… quarantined=…` summary to stderr, \
         `--metrics-out` \
         gains a top-level `\"cache\"` object, and the store is auditable:\n\n\
         ```\n\
         cargo run --release --bin rvliw -- cache stats  --cache-dir .rvliw-cache\n\
         cargo run --release --bin rvliw -- cache verify --cache-dir .rvliw-cache\n\
         cargo run --release --bin rvliw -- cache clear  --cache-dir .rvliw-cache\n\
         ```\n\n\
         `cache verify` re-simulates a sample of entries (`--sample N`, \
         default 4) and reports any divergence as a typed error with a \
         non-zero exit, routing divergent and unreadable entries through \
         the same quarantine path: with a deterministic simulator the only \
         ways an \
         entry can diverge are on-disk corruption that still parses, or a \
         code change that should have bumped the schema version.\n\n\
         **Determinism caveats.** Caching leans on the same guarantee as \
         the fault-injection harness above: a scenario's measurement \
         depends only on its configuration — fault substreams are keyed by \
         (seed, component, scenario label), never by thread scheduling or \
         wall-clock. Two caveats follow. Failed scenarios (fault-induced \
         or watchdog-tripped) are *not* cached: errors re-run every time, \
         so a chaos sweep keeps exercising the failure paths instead of \
         replaying a stale verdict. And a hit returns the full stored \
         measurement (cycles, SAD checks, cache/RFU statistics), so a warm \
         run is indistinguishable from a cold one everywhere except wall \
         time and the stderr cache summary."
    );

    // ---- supervised execution ----------------------------------------------
    let _ = writeln!(out, "\n## Interrupting and resuming sweeps\n");
    let _ = writeln!(
        out,
        "Long campaigns survive crashes, hangs and flaky scenarios through \
         the **supervised execution layer** shared by `rvliw sweep` and \
         this binary. Pass `--journal run.jsonl` and every scenario \
         outcome is appended to the file as it lands — one versioned JSON \
         envelope per line (content key, label, outcome, attempt count, \
         wall-clock cost, and the full measurement on success), written \
         with atomic line appends so a crash can only truncate the final \
         line. Restarting with `--resume run.jsonl` replays the completed \
         prefix (journal ∪ cache) and simulates only the remainder:\n\n\
         ```\n\
         cargo run --release --bin rvliw -- sweep specs/table1.json \\\n    \
         --journal run.jsonl --out matrix.json\n\
         # … interrupted — rerun with:\n\
         cargo run --release --bin rvliw -- sweep specs/table1.json \\\n    \
         --journal run.jsonl --resume run.jsonl --out matrix.json\n\
         ```\n\n\
         The resumed matrix is **bit-identical** to an uninterrupted run \
         for any thread count — the journal stores full measurements, \
         like the cache — and a journal truncated at *any* byte boundary \
         resumes correctly (the truncated tail is simply re-simulated; \
         the `proptest_supervisor` suite drives this). Failed outcomes \
         are journaled for the health report but never replayed: errors \
         re-run on every resume, exactly like the cache's \
         never-cache-failures rule.\n\n\
         Two more supervision knobs handle runs that *almost* complete. \
         `--max-retries N` retries **transient** failures — fault-injected \
         latency or flushes, cycle-budget trips under a chaos profile, \
         watchdog timeouts (`ScenarioError::is_transient`) — up to N extra \
         attempts; each retry reseeds the scenario's fault plan from a \
         per-(seed, attempt) substream and sleeps a deterministic 1–16 ms \
         jitter, so two runs with the same seed retry identically \
         (permanent failures — SAD mismatches, panics — fail fast). \
         `--timeout-secs S` arms a wall-clock watchdog per attempt: a hung \
         simulation becomes a typed `TimedOut` error and the worker pool \
         keeps draining instead of stalling the sweep. Every supervised \
         run prints a greppable `health: scenarios=… completed=… failed=… \
         replayed=… retries=… timeouts=… quarantined=…` line to stderr \
         through the same formatting helper as the cache summary, and \
         `--metrics-out` gains a `\"health\"` object with attempt counts, \
         quarantined keys and the slowest scenarios."
    );

    // ---- execution backends -------------------------------------------------
    let _ = writeln!(out, "\n## Execution backends and simulator throughput\n");
    let _ = writeln!(
        out,
        "Every measurement above is backend-independent: the simulator has two\n\
         execution engines — the reference pre-decoded **interpreter** and a\n\
         **block-compiled** micro-trace engine that flattens hot basic blocks into\n\
         contiguous issue templates (see DESIGN.md §10) — and both produce\n\
         bit-identical tables. `--backend interpreter|block-compiled|auto` selects\n\
         one explicitly on `rvliw` and this binary; `auto` (the default) uses the\n\
         compiled engine whenever no tracer is attached and the fault plan is\n\
         inert, which is exactly the golden-run configuration:\n\n\
         ```\n\
         cargo run --release -p rvliw-bench --bin tables -- \
         --backend block-compiled --check BENCH_tables.json\n\
         ```\n\n\
         passes the full Table 1–7 bit-identity gate (CI's `backend-parity` job\n\
         runs it at one and four threads, plus a 64-case differential proptest and\n\
         the mid-run/fault/tracer fallback tests). On the reference host\n\
         (`--bench-json`, single thread, cache disabled), the recorded envelope in\n\
         `BENCH_tables.json` measures:\n\n\
         | engine | simulated cycles/sec | block-cache hit rate | mid-run fallbacks |\n\
         |---|---|---|---|\n\
         | interpreter | 28.4 M | — | — |\n\
         | block-compiled | 43.5 M | 0.99997 | 0 |\n\n\
         a **1.53×** speedup of the compiled engine over the interpreter and\n\
         **3.03×** over the 13.8 M cycles/sec baseline recorded before this\n\
         optimization line (absolute numbers are host-dependent and noisy at the\n\
         ±20 % level; the `--min-cycles-per-sec-ratio 0.8` ratchet in CI gates on\n\
         relative drift, not absolutes). Per-backend throughput, hit rates and\n\
         fallback counts appear under `\"backends\"` in the `--metrics-out` report\n\
         and the `BENCH_tables.json` envelope."
    );

    // ---- figures -----------------------------------------------------------
    let _ = writeln!(out, "\n## Figure 1 (architecture)\n");
    let _ = writeln!(
        out,
        "```\n{}\n```",
        arch::describe(&MachineConfig::st200(), &MemConfig::st200_loop_level())
    );
    let _ = writeln!(
        out,
        "\n## Figure 2 (predictor data set, alignment 3, diagonal)\n"
    );
    let _ = writeln!(
        out,
        "```\n{}```",
        mpeg4_enc::footprint::render(3, mpeg4_enc::sad::InterpKind::Diag)
    );

    println!("{out}");
    let total_wall_s = t0.elapsed().as_secs_f64();
    eprintln!("total runtime: {total_wall_s:.1}s");
    let metrics_path = flag_value("--metrics-out");
    // The per-backend benchmark reruns the grid once per backend; both the
    // bench envelope and the metrics report embed its result. Skipped
    // under a fault plan (where --bench-json is refused anyway and the
    // metrics replay is the only consumer): fault runs force the
    // interpreter, so the comparison would not measure the backends.
    let backend_passes = if (bench_json || metrics_path.is_some()) && plan.is_inert() {
        eprintln!("benchmarking both execution backends ({threads} thread(s), uncached) …");
        match bench_backends(specs.as_deref(), &workload, threads, backend) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("tables: backend benchmark: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };
    if bench_json {
        let table_wall_s: Vec<(&str, f64)> = vec![
            ("table1", secs(|| drop(cs.table1()))),
            ("table2", secs(|| drop(cs.table2()))),
            ("table3", secs(|| drop(cs.table3()))),
            ("table4", secs(|| drop(cs.table4()))),
            ("table5", secs(|| drop(cs.table5()))),
            ("table6", secs(|| drop(cs.table6()))),
            ("table7", secs(|| drop(cs.table7()))),
        ];
        let simulated_cycles: u64 = cs
            .results()
            .filter_map(|r| r.as_ref().ok())
            .map(|r| r.me_cycles)
            .sum();
        let cycles_per_sec = simulated_cycles as f64 / scenarios_wall_s;
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bin\": \"tables\",");
        let _ = writeln!(json, "  \"threads\": {threads},");
        let _ = writeln!(json, "  \"frames\": {frames},");
        let _ = writeln!(json, "  \"getsad_calls\": {},", workload.num_calls());
        let _ = writeln!(json, "  \"scenarios\": 12,");
        let _ = writeln!(json, "  \"encode_wall_s\": {encode_wall_s:.3},");
        let _ = writeln!(json, "  \"scenarios_wall_s\": {scenarios_wall_s:.3},");
        let _ = writeln!(json, "  \"tables_wall_s\": {{");
        let tables_total: f64 = table_wall_s.iter().map(|(_, s)| s).sum();
        for (name, s) in &table_wall_s {
            let _ = writeln!(json, "    \"{name}\": {s:.6},");
        }
        let _ = writeln!(json, "    \"total\": {tables_total:.6}");
        let _ = writeln!(json, "  }},");
        let _ = writeln!(json, "  \"total_wall_s\": {total_wall_s:.3},");
        let _ = writeln!(json, "  \"simulated_cycles\": {simulated_cycles},");
        let _ = writeln!(json, "  \"cycles_per_sec\": {cycles_per_sec:.0},");
        if let Some(passes) = &backend_passes {
            let _ = writeln!(json, "  \"backends\": {},", backends_json(passes, backend));
        }
        let quality = collect_quality(&cs);
        if !quality.is_empty() {
            let _ = writeln!(json, "  \"quality\": {},", quality_json(&quality));
        }
        match baseline_cps {
            Some(base) => {
                let _ = writeln!(json, "  \"baseline_cycles_per_sec\": {base:.0},");
                let _ = writeln!(
                    json,
                    "  \"speedup_vs_baseline\": {:.2},",
                    cycles_per_sec / base
                );
            }
            None => {
                let _ = writeln!(json, "  \"baseline_cycles_per_sec\": null,");
                let _ = writeln!(json, "  \"speedup_vs_baseline\": null,");
            }
        }
        let _ = writeln!(
            json,
            "  \"tables\": {}",
            TablesSnapshot::capture(&cs).to_json()
        );
        json.push_str("}\n");
        Json::parse(&json).expect("generated bench report must be valid JSON");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tables.json");
        std::fs::write(path, json).expect("write BENCH_tables.json");
        eprintln!("wrote {path}");
    }
    if let Some(dir) = flag_value("--csv") {
        write_csvs(&dir, &cs).expect("write CSV files");
        eprintln!("wrote table CSVs to {dir}");
    }
    if let Some(path) = metrics_path {
        eprintln!("collecting per-scenario tracer metrics …");
        let mut entries = Vec::new();
        if let Some(passes) = &backend_passes {
            entries.push(format!("\"backends\": {}", backends_json(passes, backend)));
        }
        // Non-default substrates are recorded in the envelope so a scalar
        // metrics file can never be mistaken for a VLIW one; the default
        // emits nothing, keeping existing reports byte-stable.
        if let Some(su) = substrate.filter(|&su| su != Substrate::default()) {
            entries.push(format!("\"substrate\": \"{}\"", su.name()));
        }
        let mut quality: Vec<(String, QualityMetrics)> = Vec::new();
        for sc in CaseStudy::scenarios() {
            let sc = sc.with_fault_plan(plan);
            let sc = match substrate {
                Some(su) => sc.with_substrate(su),
                None => sc,
            };
            let mut tracer = CountingTracer::new();
            match run_me_with_tracer(&sc, &workload, &mut tracer) {
                Ok(r) => {
                    if let Some(q) = r.quality {
                        quality.push((r.label.clone(), q));
                    }
                    entries.push(format!(
                        "\"{}\": {}",
                        r.label,
                        tracer.to_metrics_json().trim_end()
                    ));
                }
                Err(e) => eprintln!("  metrics: skipping failed scenario: {e}"),
            }
        }
        if !quality.is_empty() {
            entries.push(format!("\"quality\": {}", quality_json(&quality)));
        }
        if let Some(cache) = &cache {
            // Cache traffic of the table run above (the tracer replays are
            // never cached — they measure, they don't simulate afresh).
            entries.push(format!("\"cache\": {}", cache.counts().to_json()));
        }
        // Health of the table run above: attempts, retries, timeouts,
        // quarantined keys, slowest scenarios.
        entries.push(format!("\"health\": {}", health.to_json()));
        let json = format!("{{\n{}\n}}\n", entries.join(",\n"));
        Json::parse(&json).expect("generated metrics must be valid JSON");
        std::fs::write(&path, &json).expect("write metrics JSON");
        eprintln!("wrote per-scenario metrics to {path}");
    }
    if let Some(path) = flag_value("--trace") {
        eprintln!("capturing a Chrome trace of the ORIG scenario …");
        let mut tracer = ChromeTracer::without_bundles();
        if let Err(e) = run_me_with_tracer(
            &Scenario::orig().with_fault_plan(plan),
            &workload,
            &mut tracer,
        ) {
            eprintln!("  note: ORIG replay failed ({e}); the trace covers the run up to the fault");
        }
        if tracer.dropped > 0 {
            eprintln!(
                "  note: {} events dropped past the {}-event cap",
                tracer.dropped,
                ChromeTracer::DEFAULT_MAX_EVENTS
            );
        }
        std::fs::write(&path, tracer.to_json()).expect("write Chrome trace");
        eprintln!("wrote Chrome trace ({} events) to {path}", tracer.len());
    }
    if write {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
        let header = "<!-- Generated by `cargo run --release -p rvliw-bench --bin tables -- --write` -->\n\n";
        std::fs::write(path, format!("{header}{out}")).expect("write EXPERIMENTS.md");
        eprintln!("wrote {path}");
    }
    let failures = cs.failures();
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tables: {} of {} scenarios failed (the others completed and keep \
             their measurements):",
            failures.len(),
            cs.results().count()
        );
        for e in &failures {
            eprintln!("  {e}");
        }
        ExitCode::FAILURE
    }
}
