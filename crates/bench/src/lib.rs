#![warn(missing_docs)]
//! # rvliw-bench
//!
//! Benchmark harness regenerating every table and figure of the paper.
//!
//! * `cargo run --release -p rvliw-bench --bin tables` — runs the full
//!   25-frame QCIF case study and prints Tables 1–7 plus Figures 1–4 and
//!   the paper-vs-measured comparison (also written to `EXPERIMENTS.md`
//!   with `--write`).
//! * `cargo bench -p rvliw-bench` — Criterion benches: one per
//!   table/figure on a reduced workload (so iterations stay in seconds),
//!   plus the ablation studies (reconfiguration penalty, search-algorithm
//!   sensitivity, line-buffer sizing).
//!
//! The library part hosts the paper's reference numbers ([`paper`]) and
//! shared helpers for the benches and the `tables` binary.

pub mod paper;

use std::sync::{Arc, OnceLock};

use rvliw_core::{CaseStudy, Workload};

pub use rvliw_core as core;

/// The reduced workload used by the Criterion benches (QCIF, 4 frames);
/// the `tables` binary uses the full 25 frames. Host-encoded at most once
/// per process and shared behind an [`Arc`] — every bench in a binary
/// reuses the same immutable workload instead of re-encoding it.
#[must_use]
pub fn bench_workload() -> Arc<Workload> {
    static BENCH: OnceLock<Arc<Workload>> = OnceLock::new();
    Arc::clone(BENCH.get_or_init(|| Arc::new(Workload::qcif_frames(4))))
}

/// Runs the whole case study on a workload (shared by benches and tests).
#[must_use]
pub fn run_case_study(workload: &Workload) -> CaseStudy {
    CaseStudy::run(workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_self_consistent() {
        // Speedups must increase with bandwidth at β = 1.
        let s: Vec<f64> = paper::T2_SPEEDUP_B1.iter().map(|&(_, v)| v).collect();
        assert!(s[0] < s[1] && s[1] < s[2]);
        // β = 5 is slower than β = 1 for 1×32.
        assert!(paper::T2_SPEEDUP_1X32_B5 < s[0]);
        // Table 7 dominates Table 2 at matching β.
        assert!(paper::T7_SPEEDUP[0].1 > s[2]);
        assert!((paper::INITIAL_GETSAD_SHARE - 0.256).abs() < 1e-12);
    }

    #[test]
    fn bench_workload_is_nonempty_and_qcif() {
        let w = bench_workload();
        assert!(w.num_calls() > 1000);
        assert_eq!(w.stride, 176);
    }
}
