#![warn(missing_docs)]
//! # rvliw-cache
//!
//! A content-addressed, versioned, on-disk result cache for deterministic
//! simulation outputs.
//!
//! Scenario results in this workspace are pure functions of (kernel program
//! bytes, machine/memory/RFU configuration, workload, fault plan). That
//! makes them cacheable by content address: hash every input into a
//! [`CacheKey`], store the result JSON under `<key>.json`, and on the next
//! sweep look the key up before simulating.
//!
//! The crate is deliberately policy-free: it knows how to hash tagged byte
//! fields ([`KeyBuilder`]), how to read and write envelope files atomically
//! ([`ResultCache`]), and how to count what happened ([`CacheStats`]). What
//! goes *into* a key — the canonicalized scenario, encoded program words,
//! workload digest — is decided by the caller (`rvliw-core`).
//!
//! Robustness rules, enforced here and exercised by the workspace proptests:
//!
//! * a missing entry is a **miss**;
//! * a corrupt, truncated, wrong-schema or wrong-key entry is **stale**:
//!   it is treated as a miss (with a stderr warning), never a panic and
//!   never a wrong result;
//! * writes go to a unique temp file in the cache directory and are
//!   published with `rename`, so concurrent sweeps sharing a cache
//!   directory never observe half-written entries;
//! * a bad entry discovered at lookup (or routed in by `verify`) is
//!   **quarantined**: moved into a `quarantine/` subdirectory next to a
//!   `.reason` file instead of being left in place to degrade every
//!   future sweep, and counted so `cache stats` can surface it.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use rvliw_trace::Json;

/// Version of the on-disk envelope and of the key derivation in this crate.
///
/// Bump whenever the envelope layout or [`KeyBuilder`] byte encoding
/// changes; old entries then read back as stale and are re-simulated.
pub const SCHEMA_VERSION: u64 = 1;

/// A 128-bit content address, rendered as 32 lowercase hex digits.
///
/// Derived from two independent 64-bit FNV-1a streams over the same input
/// bytes (different offset bases), which keeps the implementation
/// dependency-free while making accidental collisions across a sweep grid
/// implausible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// The key as a 32-character lowercase hex string (also the cache file
    /// stem).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses a 32-character hex string back into a key.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey { hi, lo })
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// FNV-1a, 64-bit. The standard offset basis and prime, plus an alternate
/// basis for the second half of a [`CacheKey`].
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// Alternate offset basis for the second 64-bit stream (arbitrary odd
/// constant, distinct from `FNV_BASIS`).
const FNV_BASIS_ALT: u64 = 0x6b4f_9a3e_12d7_c581;

/// Accumulates tagged, length-prefixed byte fields into a [`CacheKey`].
///
/// Every field is written as `tag-bytes · len(tag) · payload-bytes ·
/// len(payload)` (lengths as little-endian u64), which makes the encoding
/// prefix-free: no two distinct field sequences serialize to the same byte
/// stream, so "field moved" or "field concatenation" ambiguities cannot
/// produce key collisions.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    a: u64,
    b: u64,
}

impl KeyBuilder {
    /// Starts a new key over the given domain (e.g. `"scenario-result"`)
    /// and schema version. Domain separation means keys from different
    /// subsystems can never alias even over identical payloads.
    #[must_use]
    pub fn new(domain: &str, schema: u64) -> KeyBuilder {
        let mut kb = KeyBuilder {
            a: FNV_BASIS,
            b: FNV_BASIS_ALT,
        };
        kb.field_bytes("domain", domain.as_bytes());
        kb.field_u64("schema", schema);
        kb
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Adds a tagged byte-string field.
    pub fn field_bytes(&mut self, tag: &str, bytes: &[u8]) -> &mut Self {
        self.absorb(tag.as_bytes());
        self.absorb(&(tag.len() as u64).to_le_bytes());
        self.absorb(bytes);
        self.absorb(&(bytes.len() as u64).to_le_bytes());
        self
    }

    /// Adds a tagged string field.
    pub fn field_str(&mut self, tag: &str, s: &str) -> &mut Self {
        self.field_bytes(tag, s.as_bytes())
    }

    /// Adds a tagged integer field.
    pub fn field_u64(&mut self, tag: &str, v: u64) -> &mut Self {
        self.field_bytes(tag, &v.to_le_bytes())
    }

    /// Adds a tagged `u32`-word-sequence field (e.g. encoded program
    /// words).
    pub fn field_words(&mut self, tag: &str, words: &[u32]) -> &mut Self {
        self.absorb(tag.as_bytes());
        self.absorb(&(tag.len() as u64).to_le_bytes());
        for w in words {
            self.absorb(&w.to_le_bytes());
        }
        self.absorb(&(words.len() as u64).to_le_bytes());
        self
    }

    /// Finishes the key. The builder can keep absorbing afterwards; each
    /// call returns the key over everything absorbed so far.
    #[must_use]
    pub fn finish(&self) -> CacheKey {
        CacheKey {
            hi: self.a,
            lo: self.b,
        }
    }
}

/// Typed cache failure, used by `open`/`clear`/`verify`-style operations
/// (lookups never fail — a bad entry is just a stale miss).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// Filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// The underlying error, as text.
        message: String,
    },
    /// An entry exists but its envelope does not parse.
    Corrupt {
        /// Path of the entry.
        path: PathBuf,
        /// What failed to parse.
        message: String,
    },
    /// An entry was written by a different schema version.
    Schema {
        /// Path of the entry.
        path: PathBuf,
        /// Schema version found in the envelope.
        found: u64,
        /// Schema version this build expects.
        want: u64,
    },
    /// An entry's embedded key does not match its filename (rename or
    /// tamper).
    KeyMismatch {
        /// Path of the entry.
        path: PathBuf,
    },
    /// `verify` re-simulated an entry and the fresh result differs from
    /// the cached one.
    Divergence {
        /// Scenario label of the divergent entry.
        label: String,
        /// Content key of the divergent entry.
        key: String,
        /// Human-readable description of the difference.
        detail: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Io { path, message } => {
                write!(f, "cache I/O error at {}: {message}", path.display())
            }
            CacheError::Corrupt { path, message } => {
                write!(f, "corrupt cache entry {}: {message}", path.display())
            }
            CacheError::Schema { path, found, want } => write!(
                f,
                "cache entry {} has schema {found}, this build expects {want}",
                path.display()
            ),
            CacheError::KeyMismatch { path } => write!(
                f,
                "cache entry {} embeds a key different from its filename",
                path.display()
            ),
            CacheError::Divergence { label, key, detail } => {
                write!(f, "cache divergence for `{label}` (key {key}): {detail}")
            }
        }
    }
}

impl std::error::Error for CacheError {}

/// Monotonic counters for one cache handle's lifetime. Thread-safe: the
/// deterministic parallel runner probes the cache from worker threads.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    quarantined: AtomicU64,
}

impl CacheStats {
    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }
    fn count_stale(&self) {
        self.stale.fetch_add(1, Ordering::Relaxed);
    }
    fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }
    fn count_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
    }
    fn count_quarantined(&self) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of the counters.
    #[must_use]
    pub fn snapshot(&self) -> CacheCounts {
        CacheCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of [`CacheStats`], plain values for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups with no entry on disk.
    pub misses: u64,
    /// Lookups that found an unusable entry (corrupt / truncated / wrong
    /// schema / key mismatch) and fell back to simulation.
    pub stale: u64,
    /// Entries successfully published.
    pub writes: u64,
    /// Entry writes that failed (counted, warned, never fatal).
    pub write_errors: u64,
    /// Bad entries moved into the `quarantine/` subdirectory by this
    /// handle.
    pub quarantined: u64,
}

impl CacheCounts {
    /// The machine-greppable one-line summary printed by sweeps
    /// (`cache: hits=H misses=M stale=S writes=W quarantined=Q`).
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "cache: hits={} misses={} stale={} writes={} quarantined={}",
            self.hits, self.misses, self.stale, self.writes, self.quarantined
        )
    }

    /// The counters as a JSON object (for `--metrics-out`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("hits".to_owned(), Json::Num(self.hits.to_string()));
        m.insert("misses".to_owned(), Json::Num(self.misses.to_string()));
        m.insert("stale".to_owned(), Json::Num(self.stale.to_string()));
        m.insert("writes".to_owned(), Json::Num(self.writes.to_string()));
        m.insert(
            "write_errors".to_owned(),
            Json::Num(self.write_errors.to_string()),
        );
        m.insert(
            "quarantined".to_owned(),
            Json::Num(self.quarantined.to_string()),
        );
        Json::Obj(m)
    }

    /// Parses the [`Self::to_json`] object back into counters. Returns
    /// `None` when any counter is missing or not an unsigned integer, so
    /// `CacheCounts::from_json(&c.to_json()) == Some(c)` for every value.
    #[must_use]
    pub fn from_json(j: &Json) -> Option<Self> {
        let field = |key: &str| j.get(key)?.as_u64();
        Some(CacheCounts {
            hits: field("hits")?,
            misses: field("misses")?,
            stale: field("stale")?,
            writes: field("writes")?,
            write_errors: field("write_errors")?,
            quarantined: field("quarantined")?,
        })
    }
}

/// One decoded cache entry, as returned by [`ResultCache::entries`].
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The content key (from the filename, cross-checked with the
    /// envelope).
    pub key: CacheKey,
    /// The caller-supplied payload.
    pub payload: Json,
    /// Path of the backing file.
    pub path: PathBuf,
}

/// Process-unique counter for temp-file names; combined with the pid this
/// keeps concurrent writers (threads and processes) from colliding.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The on-disk cache: one directory, one JSON envelope file per key.
///
/// Envelope layout:
///
/// ```json
/// {"schema": 1, "key": "<32 hex digits>", "payload": { ... }}
/// ```
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    stats: CacheStats,
    /// Keys (file stems) this handle moved to quarantine, for the health
    /// report.
    quarantine_log: Mutex<Vec<String>>,
}

impl ResultCache {
    /// Opens (and creates, if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ResultCache, CacheError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CacheError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        Ok(ResultCache {
            dir,
            stats: CacheStats::default(),
            quarantine_log: Mutex::new(Vec::new()),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lifetime counters for this handle.
    #[must_use]
    pub fn counts(&self) -> CacheCounts {
        self.stats.snapshot()
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// The `quarantine/` subdirectory bad entries are moved into.
    #[must_use]
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Keys (file stems) this handle has quarantined, in quarantine order.
    #[must_use]
    pub fn quarantined_keys(&self) -> Vec<String> {
        self.quarantine_log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Moves the entry file at `path` into `quarantine/` and writes a
    /// sibling `<stem>.reason` file explaining why. Returns `true` when
    /// the entry was moved. Failures degrade to a stderr warning — the
    /// entry is then deleted instead, so a bad entry never survives in
    /// the hot directory either way.
    pub fn quarantine_path(&self, path: &Path, reason: &str) -> bool {
        let Some(name) = path.file_name().map(std::ffi::OsStr::to_owned) else {
            return false;
        };
        let qdir = self.quarantine_dir();
        let moved = fs::create_dir_all(&qdir)
            .and_then(|()| fs::rename(path, qdir.join(&name)))
            .is_ok();
        if moved {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("entry")
                .to_owned();
            let _ = fs::write(qdir.join(format!("{stem}.reason")), format!("{reason}\n"));
            self.stats.count_quarantined();
            self.quarantine_log
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(stem);
        } else {
            eprintln!(
                "warning: could not quarantine cache entry {}; removing it instead",
                path.display()
            );
            let _ = fs::remove_file(path);
        }
        moved
    }

    /// [`Self::quarantine_path`] addressed by content key. Returns `false`
    /// when no entry exists under that key.
    pub fn quarantine_key(&self, key: &CacheKey, reason: &str) -> bool {
        let path = self.entry_path(key);
        path.exists() && self.quarantine_path(&path, reason)
    }

    /// Entry files currently sitting in `quarantine/` (empty when the
    /// subdirectory does not exist), sorted, for `cache stats`.
    #[must_use]
    pub fn quarantined_entries(&self) -> Vec<PathBuf> {
        let Ok(rd) = fs::read_dir(self.quarantine_dir()) else {
            return Vec::new();
        };
        let mut found: Vec<PathBuf> = rd
            .filter_map(Result::ok)
            .map(|de| de.path())
            .filter(|p| Self::is_entry_file(p))
            .collect();
        found.sort();
        found
    }

    /// Reads and validates one envelope file. Shared by `lookup` (which
    /// degrades errors to stale-misses) and `entries`/`verify` (which
    /// report them).
    fn read_entry(path: &Path, want_key: Option<&CacheKey>) -> Result<CacheEntry, CacheError> {
        let text = fs::read_to_string(path).map_err(|e| CacheError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        let env = Json::parse(&text).map_err(|message| CacheError::Corrupt {
            path: path.to_path_buf(),
            message,
        })?;
        let schema =
            env.get("schema")
                .and_then(Json::as_u64)
                .ok_or_else(|| CacheError::Corrupt {
                    path: path.to_path_buf(),
                    message: "missing `schema`".to_owned(),
                })?;
        if schema != SCHEMA_VERSION {
            return Err(CacheError::Schema {
                path: path.to_path_buf(),
                found: schema,
                want: SCHEMA_VERSION,
            });
        }
        let embedded = env
            .get("key")
            .and_then(Json::as_str)
            .and_then(CacheKey::from_hex)
            .ok_or_else(|| CacheError::Corrupt {
                path: path.to_path_buf(),
                message: "missing or malformed `key`".to_owned(),
            })?;
        let stem_key = path
            .file_stem()
            .and_then(|s| s.to_str())
            .and_then(CacheKey::from_hex);
        let filename_matches = stem_key.is_none_or(|k| k == embedded);
        let wanted_matches = want_key.is_none_or(|k| *k == embedded);
        if !filename_matches || !wanted_matches {
            return Err(CacheError::KeyMismatch {
                path: path.to_path_buf(),
            });
        }
        let payload = env
            .get("payload")
            .cloned()
            .ok_or_else(|| CacheError::Corrupt {
                path: path.to_path_buf(),
                message: "missing `payload`".to_owned(),
            })?;
        Ok(CacheEntry {
            key: embedded,
            payload,
            path: path.to_path_buf(),
        })
    }

    /// Looks up `key`. `Some(payload)` on a valid hit; `None` on a miss
    /// (no file) or a stale entry (unreadable / corrupt / wrong schema /
    /// key mismatch — warned on stderr, counted as stale).
    #[must_use]
    pub fn lookup(&self, key: &CacheKey) -> Option<Json> {
        self.lookup_map(key, |payload| Some(payload.clone()))
    }

    /// [`Self::lookup`], decoding the payload through `parse`. A payload
    /// `parse` rejects counts as stale (the envelope was valid but the
    /// content was not decodable by this build) and the lookup degrades to
    /// a miss — never a panic, never a wrong result.
    pub fn lookup_map<T>(
        &self,
        key: &CacheKey,
        parse: impl FnOnce(&Json) -> Option<T>,
    ) -> Option<T> {
        let path = self.entry_path(key);
        if !path.exists() {
            self.stats.count_miss();
            return None;
        }
        match Self::read_entry(&path, Some(key)) {
            Ok(entry) => match parse(&entry.payload) {
                Some(v) => {
                    self.stats.count_hit();
                    Some(v)
                }
                None => {
                    eprintln!(
                        "warning: treating cache entry as miss: payload of {} does not \
                         decode under this build",
                        path.display()
                    );
                    self.stats.count_stale();
                    self.quarantine_path(&path, "payload does not decode under this build");
                    None
                }
            },
            Err(e) => {
                eprintln!("warning: treating cache entry as miss: {e}");
                self.stats.count_stale();
                // An I/O failure may be transient (permissions, races);
                // everything else is a structurally bad entry that would
                // degrade every future sweep — move it out of the way.
                if !matches!(e, CacheError::Io { .. }) {
                    self.quarantine_path(&path, &e.to_string());
                }
                None
            }
        }
    }

    /// Publishes `payload` under `key`, atomically: the envelope is
    /// written to a unique temp file in the cache directory and moved
    /// into place with `rename`, so readers only ever see complete
    /// entries. Write failures are warned and counted, never fatal — the
    /// cache is an accelerator, not a dependency.
    pub fn store(&self, key: &CacheKey, payload: &Json) {
        let mut env = BTreeMap::new();
        env.insert("schema".to_owned(), Json::Num(SCHEMA_VERSION.to_string()));
        env.insert("key".to_owned(), Json::Str(key.hex()));
        env.insert("payload".to_owned(), payload.clone());
        let text = Json::Obj(env).to_string();
        let tmp = self.dir.join(format!(
            "{}.{}.{}.tmp",
            key.hex(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let publish = fs::write(&tmp, text).and_then(|()| fs::rename(&tmp, self.entry_path(key)));
        match publish {
            Ok(()) => self.stats.count_write(),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                eprintln!("warning: cache write failed for {}: {e}", key.hex());
                self.stats.count_write_error();
            }
        }
    }

    /// All valid entries in the cache directory, sorted by key. Unusable
    /// files are returned separately as errors so `stats`/`verify` can
    /// report them.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the directory itself cannot be read.
    pub fn entries(&self) -> Result<(Vec<CacheEntry>, Vec<CacheError>), CacheError> {
        let mut good = Vec::new();
        let mut bad = Vec::new();
        let rd = fs::read_dir(&self.dir).map_err(|e| CacheError::Io {
            path: self.dir.clone(),
            message: e.to_string(),
        })?;
        for de in rd {
            let de = de.map_err(|e| CacheError::Io {
                path: self.dir.clone(),
                message: e.to_string(),
            })?;
            let path = de.path();
            if !Self::is_entry_file(&path) {
                continue;
            }
            match Self::read_entry(&path, None) {
                Ok(entry) => good.push(entry),
                Err(e) => bad.push(e),
            }
        }
        good.sort_by_key(|e| e.key);
        Ok((good, bad))
    }

    /// True for `<32 hex digits>.json` — the only files the cache owns
    /// besides its `*.tmp` staging files.
    fn is_entry_file(path: &Path) -> bool {
        path.extension().and_then(|e| e.to_str()) == Some("json")
            && path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(CacheKey::from_hex)
                .is_some()
    }

    /// Deletes every cache entry and leftover temp file in the directory.
    /// Files with other names are left alone.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] on the first file that cannot be removed.
    pub fn clear(&self) -> Result<u64, CacheError> {
        let mut removed = 0;
        let rd = fs::read_dir(&self.dir).map_err(|e| CacheError::Io {
            path: self.dir.clone(),
            message: e.to_string(),
        })?;
        for de in rd {
            let de = de.map_err(|e| CacheError::Io {
                path: self.dir.clone(),
                message: e.to_string(),
            })?;
            let path = de.path();
            let is_tmp = path.extension().and_then(|e| e.to_str()) == Some("tmp");
            if Self::is_entry_file(&path) || is_tmp {
                fs::remove_file(&path).map_err(|e| CacheError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rvliw-cache-test-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payload(n: u64) -> Json {
        let mut m = BTreeMap::new();
        m.insert("cycles".to_owned(), Json::Num(n.to_string()));
        Json::Obj(m)
    }

    #[test]
    fn key_hex_roundtrips() {
        let k = KeyBuilder::new("t", 1).finish();
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(k.hex().len(), 32);
        assert!(CacheKey::from_hex("xyz").is_none());
        assert!(CacheKey::from_hex(&"a".repeat(31)).is_none());
    }

    #[test]
    fn keys_are_order_and_boundary_sensitive() {
        let mut a = KeyBuilder::new("t", 1);
        a.field_str("x", "ab").field_str("y", "c");
        let mut b = KeyBuilder::new("t", 1);
        b.field_str("x", "a").field_str("y", "bc");
        let mut c = KeyBuilder::new("t", 1);
        c.field_str("y", "c").field_str("x", "ab");
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), c.finish());
        assert_ne!(
            KeyBuilder::new("t", 1).finish(),
            KeyBuilder::new("t", 2).finish()
        );
        assert_ne!(
            KeyBuilder::new("t", 1).finish(),
            KeyBuilder::new("u", 1).finish()
        );
    }

    #[test]
    fn store_then_lookup_hits() {
        let dir = tmpdir("hit");
        let cache = ResultCache::open(&dir).unwrap();
        let key = KeyBuilder::new("t", 1).finish();
        assert_eq!(cache.lookup(&key), None);
        cache.store(&key, &payload(42));
        assert_eq!(cache.lookup(&key), Some(payload(42)));
        let c = cache.counts();
        assert_eq!((c.hits, c.misses, c.stale, c.writes), (1, 1, 0, 1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_stale_misses() {
        let dir = tmpdir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        let key = KeyBuilder::new("t", 1).finish();
        // Truncated JSON.
        fs::write(dir.join(format!("{}.json", key.hex())), "{\"schema\": 1,").unwrap();
        assert_eq!(cache.lookup(&key), None);
        // Wrong schema.
        fs::write(
            dir.join(format!("{}.json", key.hex())),
            format!(
                "{{\"schema\": 999, \"key\": \"{}\", \"payload\": {{}}}}",
                key.hex()
            ),
        )
        .unwrap();
        assert_eq!(cache.lookup(&key), None);
        // Key mismatch (entry renamed onto the wrong filename).
        let other = KeyBuilder::new("t", 2).finish();
        fs::write(
            dir.join(format!("{}.json", key.hex())),
            format!(
                "{{\"schema\": 1, \"key\": \"{}\", \"payload\": {{}}}}",
                other.hex()
            ),
        )
        .unwrap();
        assert_eq!(cache.lookup(&key), None);
        assert_eq!(cache.counts().stale, 3);
        // Every bad entry was quarantined, not left to rot in place.
        assert_eq!(cache.counts().quarantined, 3);
        assert!(!dir.join(format!("{}.json", key.hex())).exists());
        assert!(cache
            .quarantine_dir()
            .join(format!("{}.json", key.hex()))
            .exists());
        assert!(cache
            .quarantine_dir()
            .join(format!("{}.reason", key.hex()))
            .exists());
        // A second lookup is a plain miss: the entry is gone.
        assert_eq!(cache.lookup(&key), None);
        assert_eq!(cache.counts().misses, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_is_keyed_logged_and_invisible_to_entries() {
        let dir = tmpdir("quarantine");
        let cache = ResultCache::open(&dir).unwrap();
        let good = KeyBuilder::new("t", 1).finish();
        let bad = KeyBuilder::new("t", 2).finish();
        cache.store(&good, &payload(1));
        cache.store(&bad, &payload(2));
        assert!(cache.quarantine_key(&bad, "diverged under re-simulation"));
        // Quarantining an absent key reports false.
        assert!(!cache.quarantine_key(&bad, "again"));
        let (entries, errors) = cache.entries().unwrap();
        assert_eq!(entries.len(), 1);
        assert!(errors.is_empty());
        assert_eq!(cache.quarantined_keys(), vec![bad.hex()]);
        assert_eq!(cache.quarantined_entries().len(), 1);
        let reason =
            fs::read_to_string(cache.quarantine_dir().join(format!("{}.reason", bad.hex())))
                .unwrap();
        assert!(reason.contains("diverged"));
        // The quarantined entry reads back as a miss, and `clear` leaves
        // the quarantine subdirectory alone.
        assert_eq!(cache.lookup(&bad), None);
        assert_eq!(cache.clear().unwrap(), 1);
        assert_eq!(cache.quarantined_entries().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_and_clear_see_only_cache_files() {
        let dir = tmpdir("clear");
        let cache = ResultCache::open(&dir).unwrap();
        let k1 = KeyBuilder::new("t", 1).finish();
        let k2 = KeyBuilder::new("t", 2).finish();
        cache.store(&k1, &payload(1));
        cache.store(&k2, &payload(2));
        fs::write(dir.join("README.txt"), "not a cache entry").unwrap();
        fs::write(dir.join("stray.tmp"), "leftover").unwrap();
        let (good, bad) = cache.entries().unwrap();
        assert_eq!(good.len(), 2);
        assert!(bad.is_empty());
        assert_eq!(cache.clear().unwrap(), 3); // two entries + the stray tmp
        assert!(dir.join("README.txt").exists());
        let (good, _) = cache.entries().unwrap();
        assert!(good.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summary_line_is_greppable() {
        let c = CacheCounts {
            hits: 3,
            misses: 2,
            stale: 1,
            writes: 2,
            write_errors: 0,
            quarantined: 1,
        };
        assert_eq!(
            c.summary_line(),
            "cache: hits=3 misses=2 stale=1 writes=2 quarantined=1"
        );
        let j = c.to_json();
        assert_eq!(j.get("hits").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("quarantined").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn cache_counts_round_trip_through_json() {
        let c = CacheCounts {
            hits: 7,
            misses: 11,
            stale: 2,
            writes: 9,
            write_errors: 1,
            quarantined: 3,
        };
        // Serialize, re-parse the printed text, and decode: identity.
        let parsed = Json::parse(&c.to_json().to_string()).unwrap();
        assert_eq!(CacheCounts::from_json(&parsed), Some(c));
        // Missing or mistyped counters decode to None, never panic.
        assert_eq!(CacheCounts::from_json(&Json::Null), None);
        let mut m = BTreeMap::new();
        m.insert("hits".to_owned(), Json::Str("three".to_owned()));
        assert_eq!(CacheCounts::from_json(&Json::Obj(m)), None);
    }
}
