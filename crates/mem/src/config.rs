//! Memory-system configuration.

use crate::cache::CacheGeometry;

/// Timing and shape parameters of the memory system.
///
/// Defaults model the paper's platform: 32 KB 4-way data cache, 128 KB
/// direct-mapped instruction cache, an 8-entry prefetch buffer and an
/// early-2000s embedded SDRAM path a few tens of CPU cycles away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Data-cache geometry.
    pub dcache: CacheGeometry,
    /// Instruction-cache geometry.
    pub icache: CacheGeometry,
    /// Simulated RAM size in bytes.
    pub ram_size: u32,
    /// Cycles from starting a line fill to data arrival.
    pub fill_latency: u64,
    /// Cycles a line fill occupies the memory bus (fills pipeline at this
    /// rate; it bounds prefetch throughput).
    pub bus_occupancy: u64,
    /// Bus cycles consumed by a dirty-line writeback.
    pub writeback_occupancy: u64,
    /// Prefetch-buffer entries (8 baseline; the paper extends it to 64 for
    /// the loop-level experiments).
    pub prefetch_entries: usize,
}

impl MemConfig {
    /// Baseline configuration (instruction-level experiments).
    #[must_use]
    pub fn st200() -> Self {
        MemConfig {
            dcache: CacheGeometry::st200_dcache(),
            icache: CacheGeometry::st200_icache(),
            ram_size: 4 * 1024 * 1024,
            fill_latency: 10,
            bus_occupancy: 5,
            writeback_occupancy: 3,
            prefetch_entries: 8,
        }
    }

    /// Loop-level configuration: prefetch buffer extended to 64 entries.
    #[must_use]
    pub fn st200_loop_level() -> Self {
        MemConfig {
            prefetch_entries: 64,
            ..Self::st200()
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::st200()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_shapes() {
        let c = MemConfig::default();
        assert_eq!(c.dcache.capacity, 32 * 1024);
        assert_eq!(c.dcache.ways, 4);
        assert_eq!(c.icache.capacity, 128 * 1024);
        assert_eq!(c.icache.ways, 1);
        assert_eq!(c.prefetch_entries, 8);
        assert_eq!(MemConfig::st200_loop_level().prefetch_entries, 64);
    }
}
