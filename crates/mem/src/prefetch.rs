//! The prefetch buffer: in-flight non-blocking line fills.
//!
//! The modelled ST200 data cache has an 8-entry prefetch buffer; the paper
//! extends it to 64 entries for the loop-level RFU experiments so that the
//! custom macroblock-pattern prefetches (17 lines per macroblock plus
//! crossings, double-buffered) fit.

use std::collections::HashMap;

/// Outcome of a prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The fill was scheduled; the line arrives at the returned cycle.
    Scheduled {
        /// Absolute cycle at which the line is available.
        ready_at: u64,
    },
    /// The line is already cached or already in flight.
    Redundant,
    /// The buffer was full; the request was dropped (counted as an
    /// incomplete prefetch in the paper's terms).
    Dropped,
}

/// Tracks outstanding prefetched lines and their arrival times.
///
/// ```
/// use rvliw_mem::PrefetchQueue;
///
/// let mut q = PrefetchQueue::new(8);
/// q.insert(0x1000, 24); // line arrives at cycle 24
/// assert_eq!(q.pending_ready_at(0x1000), Some(24));
/// assert_eq!(q.consume(0x1000, 30), Some(24)); // consumed after arrival
/// assert_eq!(q.useful, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchQueue {
    capacity: usize,
    pending: HashMap<u32, u64>,
    /// Requests accepted into the buffer.
    pub issued: u64,
    /// Requests rejected because the buffer was full.
    pub dropped: u64,
    /// Requests for lines already present or in flight.
    pub redundant: u64,
    /// Demand accesses fully covered by a completed prefetch.
    pub useful: u64,
    /// Demand accesses that had to wait for an in-flight prefetch
    /// ("late" prefetches).
    pub late: u64,
}

impl PrefetchQueue {
    /// Creates a queue holding at most `capacity` in-flight lines.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        PrefetchQueue {
            capacity,
            pending: HashMap::new(),
            issued: 0,
            dropped: 0,
            redundant: 0,
            useful: 0,
            late: 0,
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lines currently in flight or waiting to drain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no prefetches are outstanding.
    #[must_use]
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Records a scheduled fill for `line` arriving at `ready_at`.
    /// Returns `false` (and counts a drop) when the buffer is full.
    pub fn insert(&mut self, line: u32, ready_at: u64) -> bool {
        if self.pending.contains_key(&line) {
            self.redundant += 1;
            return false;
        }
        if self.pending.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.pending.insert(line, ready_at);
        self.issued += 1;
        true
    }

    /// Whether `line` is in flight, and when it arrives.
    #[must_use]
    pub fn pending_ready_at(&self, line: u32) -> Option<u64> {
        self.pending.get(&line).copied()
    }

    /// Removes `line` (a demand access consumed it). Updates the
    /// useful/late statistics against `now`.
    #[inline(always)]
    pub fn consume(&mut self, line: u32, now: u64) -> Option<u64> {
        // Every demand access probes here; skip the hash when nothing is
        // in flight (always true outside the loop-level scenarios).
        if self.pending.is_empty() {
            return None;
        }
        let ready = self.pending.remove(&line)?;
        if ready <= now {
            self.useful += 1;
        } else {
            self.late += 1;
        }
        Some(ready)
    }

    /// Drains every fill that has completed by `now`, returning the line
    /// addresses so the caller can install them in the cache.
    pub fn drain_completed(&mut self, now: u64) -> Vec<u32> {
        let done: Vec<u32> = self
            .pending
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&l, _)| l)
            .collect();
        for l in &done {
            self.pending.remove(l);
            self.useful += 1;
        }
        done
    }

    /// Clears all in-flight state (statistics are kept).
    pub fn flush(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_limit_drops() {
        let mut q = PrefetchQueue::new(2);
        assert!(q.insert(0, 10));
        assert!(q.insert(64, 10));
        assert!(!q.insert(128, 10));
        assert_eq!(q.dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn duplicate_insert_is_redundant() {
        let mut q = PrefetchQueue::new(4);
        assert!(q.insert(0, 10));
        assert!(!q.insert(0, 20));
        assert_eq!(q.redundant, 1);
        assert_eq!(q.pending_ready_at(0), Some(10));
    }

    #[test]
    fn consume_classifies_useful_vs_late() {
        let mut q = PrefetchQueue::new(4);
        q.insert(0, 10);
        q.insert(64, 100);
        assert_eq!(q.consume(0, 50), Some(10));
        assert_eq!(q.consume(64, 50), Some(100));
        assert_eq!(q.useful, 1);
        assert_eq!(q.late, 1);
        assert_eq!(q.consume(128, 50), None);
    }

    #[test]
    fn drain_completed_returns_only_done() {
        let mut q = PrefetchQueue::new(4);
        q.insert(0, 10);
        q.insert(64, 100);
        let mut done = q.drain_completed(50);
        done.sort_unstable();
        assert_eq!(done, vec![0]);
        assert_eq!(q.len(), 1);
    }
}
