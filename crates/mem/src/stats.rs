//! Aggregated memory-system statistics.

use std::fmt;

/// Counters accumulated by [`MemorySystem`](crate::MemorySystem).
///
/// `d_stall_cycles` is the quantity the paper reports as "cache stalls"
/// (Tables 4 and 5): cycles the whole machine is frozen waiting for the data
/// cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Data loads issued.
    pub loads: u64,
    /// Data stores issued.
    pub stores: u64,
    /// Data-cache hits.
    pub d_hits: u64,
    /// Data-cache demand misses.
    pub d_misses: u64,
    /// Demand accesses that found their line in flight (late prefetch) and
    /// paid a partial stall.
    pub d_late_covered: u64,
    /// Total machine-stall cycles caused by the data cache.
    pub d_stall_cycles: u64,
    /// Dirty-line writebacks.
    pub writebacks: u64,
    /// Instruction-cache misses.
    pub i_misses: u64,
    /// Stall cycles caused by the instruction cache.
    pub i_stall_cycles: u64,
    /// Prefetch requests accepted.
    pub pf_issued: u64,
    /// Prefetch requests dropped (buffer full).
    pub pf_dropped: u64,
    /// Prefetch requests that were redundant (line present or in flight).
    pub pf_redundant: u64,
    /// Prefetches fully completed before their demand use.
    pub pf_useful: u64,
    /// Prefetches still in flight at their demand use.
    pub pf_late: u64,
}

impl MemStats {
    /// Data-cache hit rate over demand accesses, in `0.0..=1.0`.
    #[must_use]
    pub fn d_hit_rate(&self) -> f64 {
        let total = self.d_hits + self.d_misses + self.d_late_covered;
        if total == 0 {
            return 1.0;
        }
        self.d_hits as f64 / total as f64
    }

    /// Fraction of issued prefetches that were late or dropped — the
    /// paper's "late and incomplete prefetch operations".
    #[must_use]
    pub fn pf_late_or_incomplete_rate(&self) -> f64 {
        let denom = self.pf_issued + self.pf_dropped;
        if denom == 0 {
            return 0.0;
        }
        (self.pf_late + self.pf_dropped) as f64 / denom as f64
    }

    /// Element-wise difference (`self - earlier`), for measuring a region.
    #[must_use]
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            d_hits: self.d_hits - earlier.d_hits,
            d_misses: self.d_misses - earlier.d_misses,
            d_late_covered: self.d_late_covered - earlier.d_late_covered,
            d_stall_cycles: self.d_stall_cycles - earlier.d_stall_cycles,
            writebacks: self.writebacks - earlier.writebacks,
            i_misses: self.i_misses - earlier.i_misses,
            i_stall_cycles: self.i_stall_cycles - earlier.i_stall_cycles,
            pf_issued: self.pf_issued - earlier.pf_issued,
            pf_dropped: self.pf_dropped - earlier.pf_dropped,
            pf_redundant: self.pf_redundant - earlier.pf_redundant,
            pf_useful: self.pf_useful - earlier.pf_useful,
            pf_late: self.pf_late - earlier.pf_late,
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "loads {}  stores {}  D$ hits {}  misses {}  stall {}",
            self.loads, self.stores, self.d_hits, self.d_misses, self.d_stall_cycles
        )?;
        write!(
            f,
            "pf issued {}  dropped {}  late {}  useful {}  I$ miss {}",
            self.pf_issued, self.pf_dropped, self.pf_late, self.pf_useful, self.i_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_of_empty_is_one() {
        assert_eq!(MemStats::default().d_hit_rate(), 1.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = MemStats {
            loads: 10,
            d_stall_cycles: 100,
            ..Default::default()
        };
        let b = MemStats {
            loads: 4,
            d_stall_cycles: 30,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.loads, 6);
        assert_eq!(d.d_stall_cycles, 70);
    }

    #[test]
    fn late_rate_counts_drops() {
        let s = MemStats {
            pf_issued: 8,
            pf_dropped: 2,
            pf_late: 3,
            ..Default::default()
        };
        assert!((s.pf_late_or_incomplete_rate() - 0.5).abs() < 1e-12);
    }
}
