//! Flat main memory with a bump allocator.

use std::fmt;

/// Byte-addressed main memory.
///
/// All multi-byte accesses are little-endian. Out-of-range accesses panic —
/// the simulator treats them as fatal program errors (there is no MMU in the
/// modelled embedded platform).
#[derive(Clone)]
pub struct Ram {
    bytes: Vec<u8>,
    brk: u32,
}

impl fmt::Debug for Ram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ram")
            .field("size", &self.bytes.len())
            .field("brk", &self.brk)
            .finish()
    }
}

impl Ram {
    /// Creates a zero-initialised memory of `size` bytes.
    #[must_use]
    pub fn new(size: u32) -> Self {
        Ram {
            bytes: vec![0; size as usize],
            // Address 0 is reserved so that 0 can serve as a null pointer.
            brk: 64,
        }
    }

    /// Memory size in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Allocates `len` bytes aligned to `align` (a power of two), returning
    /// the base address. The paper aligns frame buffers on 32-byte
    /// boundaries.
    ///
    /// # Panics
    ///
    /// Panics when memory is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, len: u32, align: u32) -> u32 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.brk + align - 1) & !(align - 1);
        let end = base
            .checked_add(len)
            .unwrap_or_else(|| panic!("allocation of {len} bytes overflows the address space"));
        assert!(
            end <= self.size(),
            "out of simulated memory: need {end} bytes, have {}",
            self.size()
        );
        self.brk = end;
        base
    }

    /// Loads one byte.
    #[must_use]
    #[inline]
    pub fn load8(&self, addr: u32) -> u8 {
        self.bytes[addr as usize]
    }

    /// Loads a 16-bit little-endian value.
    #[must_use]
    #[inline]
    pub fn load16(&self, addr: u32) -> u16 {
        let a = addr as usize;
        u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]])
    }

    /// Loads a 32-bit little-endian value.
    #[must_use]
    #[inline]
    pub fn load32(&self, addr: u32) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ])
    }

    /// Stores one byte.
    #[inline]
    pub fn store8(&mut self, addr: u32, v: u8) {
        self.bytes[addr as usize] = v;
    }

    /// Stores a 16-bit little-endian value.
    #[inline]
    pub fn store16(&mut self, addr: u32, v: u16) {
        self.bytes[addr as usize..addr as usize + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Stores a 32-bit little-endian value.
    #[inline]
    pub fn store32(&mut self, addr: u32, v: u32) {
        self.bytes[addr as usize..addr as usize + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: u32) -> &[u8] {
        &self.bytes[addr as usize..(addr + len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut ram = Ram::new(4096);
        let a = ram.alloc(10, 32);
        assert_eq!(a % 32, 0);
        let b = ram.alloc(10, 32);
        assert_eq!(b % 32, 0);
        assert!(b >= a + 10);
    }

    #[test]
    fn alloc_never_returns_null() {
        let mut ram = Ram::new(4096);
        assert_ne!(ram.alloc(1, 1), 0);
    }

    #[test]
    fn little_endian_roundtrip() {
        let mut ram = Ram::new(128);
        ram.store32(64, 0x0403_0201);
        assert_eq!(ram.load8(64), 1);
        assert_eq!(ram.load8(67), 4);
        assert_eq!(ram.load16(64), 0x0201);
        assert_eq!(ram.load32(64), 0x0403_0201);
    }

    #[test]
    #[should_panic(expected = "out of simulated memory")]
    fn alloc_exhaustion_panics() {
        let mut ram = Ram::new(128);
        let _ = ram.alloc(256, 1);
    }

    #[test]
    fn write_read_bytes() {
        let mut ram = Ram::new(256);
        ram.write_bytes(100, &[1, 2, 3, 4, 5]);
        assert_eq!(ram.read_bytes(100, 5), &[1, 2, 3, 4, 5]);
    }
}
