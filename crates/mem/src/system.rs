//! The combined memory system: RAM + caches + prefetch buffer + bus.

use std::fmt;

use crate::cache::Cache;
use crate::config::MemConfig;
use crate::prefetch::PrefetchQueue;
use crate::ram::Ram;
use crate::stats::MemStats;
use rvliw_fault::FaultInjector;
use rvliw_trace::{FaultEvent, MemEvent, NullTracer, Tracer};

/// A rejected memory access. These are *simulated-program* errors — the
/// memory system reports them instead of unwinding so a bad scenario can
/// fail in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Access size was not 1, 2 or 4 bytes.
    UnsupportedSize {
        /// The rejected size.
        size: u32,
    },
    /// The access extends past the end of simulated memory.
    OutOfRange {
        /// Base byte address of the access.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::UnsupportedSize { size } => {
                write!(f, "unsupported access size {size} (expected 1, 2 or 4)")
            }
            MemError::OutOfRange { addr, size } => {
                write!(
                    f,
                    "access of {size} byte(s) at {addr:#x} is outside simulated memory"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Result of a timed data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The loaded value (zero-extended into 32 bits; undefined for writes).
    pub value: u32,
    /// Machine stall cycles this access caused.
    pub stall: u64,
    /// Whether the access hit in the data cache outright.
    pub hit: bool,
}

/// The memory hierarchy as seen by the core and the RFU.
///
/// Functional state (bytes) always lives in [`Ram`]; the caches model
/// *timing only*, so simulation results are functionally exact regardless of
/// cache configuration.
///
/// Timing model: a single memory bus serves line fills (demand and prefetch)
/// in order. A fill occupies the bus for [`MemConfig::bus_occupancy`] cycles
/// and delivers its line [`MemConfig::fill_latency`] cycles after it starts;
/// on a demand miss the whole machine stalls until delivery, as in the
/// paper.
#[derive(Debug)]
pub struct MemorySystem {
    /// Main memory (functional state).
    pub ram: Ram,
    /// The data cache (timing state).
    pub dcache: Cache,
    /// The instruction cache (timing state).
    pub icache: Cache,
    /// The prefetch buffer.
    pub pfq: PrefetchQueue,
    cfg: MemConfig,
    bus_free_at: u64,
    stats: MemStats,
    fault: FaultInjector,
}

impl MemorySystem {
    /// Creates a cold memory system.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        MemorySystem {
            ram: Ram::new(cfg.ram_size),
            dcache: Cache::new(cfg.dcache),
            icache: Cache::new(cfg.icache),
            pfq: PrefetchQueue::new(cfg.prefetch_entries),
            cfg,
            bus_free_at: 0,
            stats: MemStats::default(),
            fault: FaultInjector::inert(),
        }
    }

    /// Installs a fault injector; the default is the inert injector,
    /// under which the timing model is bit-identical to a build without
    /// the fault layer.
    pub fn set_fault(&mut self, fault: FaultInjector) {
        self.fault = fault;
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// A snapshot of the counters (cache/prefetch counters folded in).
    #[must_use]
    pub fn stats(&self) -> MemStats {
        let mut s = self.stats;
        s.writebacks = self.dcache.writebacks;
        s.pf_issued = self.pfq.issued;
        s.pf_dropped = self.pfq.dropped;
        s.pf_redundant = self.pfq.redundant;
        s.pf_useful = self.pfq.useful;
        s.pf_late = self.pfq.late;
        s
    }

    /// First cycle at which the bus can accept a new fill.
    #[must_use]
    pub fn bus_free_at(&self) -> u64 {
        self.bus_free_at
    }

    #[inline]
    fn drain_prefetches<T: Tracer + ?Sized>(&mut self, now: u64, tracer: &mut T) {
        if self.pfq.is_empty() {
            return;
        }
        for line in self.pfq.drain_completed(now) {
            if self.dcache.install(line).is_some() {
                // Dirty eviction on drain: the writeback occupies the bus.
                self.bus_free_at = self.bus_free_at.max(now) + self.cfg.writeback_occupancy;
                tracer.mem(now, MemEvent::Writeback);
            }
        }
    }

    /// Schedules a line fill on the bus; returns the delivery cycle.
    fn schedule_fill(&mut self, now: u64) -> u64 {
        let start = self.bus_free_at.max(now);
        self.bus_free_at = start + self.cfg.bus_occupancy;
        start + self.cfg.fill_latency
    }

    /// Core of the timing model, shared by loads and stores, plus the
    /// fault-injection envelope (a spurious flush may hit before the
    /// access, latency jitter after it). Under the inert injector the
    /// envelope reduces to one never-taken branch.
    #[inline(always)]
    fn access_timed<T: Tracer + ?Sized>(
        &mut self,
        addr: u32,
        now: u64,
        write: bool,
        tracer: &mut T,
    ) -> (u64, bool) {
        if !self.fault.is_inert() {
            if self.fault.spurious_flush() {
                self.flush_caches();
                tracer.fault(now, FaultEvent::CacheFlush);
            }
            let (mut stall, hit) = self.access_timed_inner(addr, now, write, tracer);
            let extra = self.fault.extra_mem_latency();
            if extra > 0 {
                stall += extra;
                self.stats.d_stall_cycles += extra;
                tracer.fault(now, FaultEvent::MemLatency { addr, extra });
            }
            return (stall, hit);
        }
        self.access_timed_inner(addr, now, write, tracer)
    }

    #[inline(always)]
    fn access_timed_inner<T: Tracer + ?Sized>(
        &mut self,
        addr: u32,
        now: u64,
        write: bool,
        tracer: &mut T,
    ) -> (u64, bool) {
        self.drain_prefetches(now, tracer);
        let line = self.dcache.line_of(addr);
        // A line still in flight from a prefetch: wait for it.
        if let Some(ready) = self.pfq.consume(line, now) {
            if self.dcache.install(line).is_some() {
                self.bus_free_at = self.bus_free_at.max(now) + self.cfg.writeback_occupancy;
                tracer.mem(now, MemEvent::Writeback);
            }
            // Mark hit/dirty state via a (now free) access.
            let _ = self.dcache.access(addr, write);
            let stall = ready.saturating_sub(now);
            self.stats.d_late_covered += 1;
            self.stats.d_stall_cycles += stall;
            tracer.mem(now, MemEvent::DLateCovered { addr, stall });
            return (stall, false);
        }
        let out = self.dcache.access(addr, write);
        if out.hit {
            self.stats.d_hits += 1;
            tracer.mem(now, MemEvent::DHit { addr });
            (0, true)
        } else {
            self.stats.d_misses += 1;
            if out.writeback.is_some() {
                self.bus_free_at = self.bus_free_at.max(now) + self.cfg.writeback_occupancy;
                tracer.mem(now, MemEvent::Writeback);
            }
            let ready = self.schedule_fill(now);
            let stall = ready - now;
            self.stats.d_stall_cycles += stall;
            tracer.mem(now, MemEvent::DMiss { addr, stall });
            (stall, false)
        }
    }

    /// Rejects accesses the hardware could never perform, *before* any
    /// timing state is touched: a rejected access perturbs no counters.
    #[inline(always)]
    fn check_access(&self, addr: u32, size: u32) -> Result<(), MemError> {
        if !matches!(size, 1 | 2 | 4) {
            return Err(MemError::UnsupportedSize { size });
        }
        if u64::from(addr) + u64::from(size) > u64::from(self.ram.size()) {
            return Err(MemError::OutOfRange { addr, size });
        }
        Ok(())
    }

    /// Timed load of `size` ∈ {1, 2, 4} bytes at `addr`, `now` being the
    /// current machine cycle.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on an unsupported size or an out-of-range
    /// address; the timing state is untouched in that case.
    #[inline(always)]
    pub fn read(&mut self, addr: u32, size: u32, now: u64) -> Result<Access, MemError> {
        self.read_traced(addr, size, now, &mut NullTracer)
    }

    /// [`MemorySystem::read`], emitting cache events into `tracer`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on an unsupported size or an out-of-range
    /// address; the timing state is untouched in that case.
    #[inline(always)]
    pub fn read_traced<T: Tracer + ?Sized>(
        &mut self,
        addr: u32,
        size: u32,
        now: u64,
        tracer: &mut T,
    ) -> Result<Access, MemError> {
        self.check_access(addr, size)?;
        self.stats.loads += 1;
        let (stall, hit) = self.access_timed(addr, now, false, tracer);
        let value = match size {
            1 => u32::from(self.ram.load8(addr)),
            2 => u32::from(self.ram.load16(addr)),
            _ => self.ram.load32(addr),
        };
        Ok(Access { value, stall, hit })
    }

    /// Timed store (write-allocate): the line is fetched on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on an unsupported size or an out-of-range
    /// address; the timing state is untouched in that case.
    #[inline(always)]
    pub fn write(
        &mut self,
        addr: u32,
        size: u32,
        value: u32,
        now: u64,
    ) -> Result<Access, MemError> {
        self.write_traced(addr, size, value, now, &mut NullTracer)
    }

    /// [`MemorySystem::write`], emitting cache events into `tracer`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on an unsupported size or an out-of-range
    /// address; the timing state is untouched in that case.
    #[inline(always)]
    pub fn write_traced<T: Tracer + ?Sized>(
        &mut self,
        addr: u32,
        size: u32,
        value: u32,
        now: u64,
        tracer: &mut T,
    ) -> Result<Access, MemError> {
        self.check_access(addr, size)?;
        self.stats.stores += 1;
        let (stall, hit) = self.access_timed(addr, now, true, tracer);
        match size {
            1 => self.ram.store8(addr, value as u8),
            2 => self.ram.store16(addr, value as u16),
            _ => self.ram.store32(addr, value),
        }
        Ok(Access { value, stall, hit })
    }

    /// Non-blocking prefetch of the line containing `addr`. Returns the
    /// cycle the line will be available, or `None` when the request was
    /// redundant or dropped.
    pub fn prefetch(&mut self, addr: u32, now: u64) -> Option<u64> {
        self.prefetch_traced(addr, now, &mut NullTracer)
    }

    /// [`MemorySystem::prefetch`], emitting prefetch events into `tracer`.
    pub fn prefetch_traced<T: Tracer + ?Sized>(
        &mut self,
        addr: u32,
        now: u64,
        tracer: &mut T,
    ) -> Option<u64> {
        self.drain_prefetches(now, tracer);
        let line = self.dcache.line_of(addr);
        if self.dcache.probe(line) || self.pfq.pending_ready_at(line).is_some() {
            self.pfq.redundant += 1;
            tracer.mem(now, MemEvent::PrefetchRedundant { line });
            return None;
        }
        if self.pfq.len() >= self.pfq.capacity() {
            self.pfq.dropped += 1;
            tracer.mem(now, MemEvent::PrefetchDropped { line });
            return None;
        }
        let ready = self.schedule_fill(now);
        let inserted = self.pfq.insert(line, ready);
        debug_assert!(inserted);
        tracer.mem(
            now,
            MemEvent::PrefetchIssued {
                line,
                ready_at: ready,
            },
        );
        Some(ready)
    }

    /// Instruction fetch for the bundle at byte address `addr`; returns
    /// stall cycles (0 on a hit).
    #[inline]
    pub fn ifetch(&mut self, addr: u32, now: u64) -> u64 {
        self.ifetch_traced(addr, now, &mut NullTracer)
    }

    /// [`MemorySystem::ifetch`], emitting icache-miss events into `tracer`.
    #[inline]
    pub fn ifetch_traced<T: Tracer + ?Sized>(
        &mut self,
        addr: u32,
        now: u64,
        tracer: &mut T,
    ) -> u64 {
        let out = self.icache.access(addr, false);
        if out.hit {
            0
        } else {
            self.stats.i_misses += 1;
            let stall = self.cfg.fill_latency;
            self.stats.i_stall_cycles += stall;
            tracer.mem(now, MemEvent::IMiss { addr, stall });
            stall
        }
    }

    /// Accounts stall cycles caused by waiting on memory outside the
    /// load/store path (e.g. the RFU waiting on an in-flight line-buffer
    /// fill). They are part of the paper's "cache stalls".
    pub fn account_stall(&mut self, cycles: u64) {
        self.stats.d_stall_cycles += cycles;
    }

    /// Invalidates both caches and the prefetch buffer (statistics kept).
    pub fn flush_caches(&mut self) {
        self.dcache.flush();
        self.icache.flush();
        self.pfq.flush();
        self.bus_free_at = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemConfig::default())
    }

    #[test]
    fn cold_miss_costs_fill_latency() {
        let mut m = sys();
        let a = m.ram.alloc(64, 64);
        let acc = m.read(a, 4, 0).unwrap();
        assert_eq!(acc.stall, m.config().fill_latency);
        assert!(!acc.hit);
        let acc2 = m.read(a + 4, 4, 100).unwrap();
        assert_eq!(acc2.stall, 0);
        assert!(acc2.hit);
    }

    #[test]
    fn functional_value_correct_even_on_miss() {
        let mut m = sys();
        let a = m.ram.alloc(64, 64);
        m.ram.store32(a + 8, 1234);
        assert_eq!(m.read(a + 8, 4, 0).unwrap().value, 1234);
    }

    #[test]
    fn prefetch_hides_latency_when_early() {
        let mut m = sys();
        let a = m.ram.alloc(256, 64);
        let ready = m.prefetch(a, 0).unwrap();
        assert_eq!(ready, m.config().fill_latency);
        // Access long after arrival: free.
        let acc = m.read(a, 4, ready + 10).unwrap();
        assert_eq!(acc.stall, 0);
        let s = m.stats();
        assert_eq!(s.pf_useful, 1);
        assert_eq!(s.d_misses, 0);
    }

    #[test]
    fn late_prefetch_pays_partial_stall() {
        let mut m = sys();
        let a = m.ram.alloc(256, 64);
        let ready = m.prefetch(a, 0).unwrap();
        // Access halfway through the fill.
        let now = ready - 10;
        let acc = m.read(a, 4, now).unwrap();
        assert_eq!(acc.stall, 10);
        let s = m.stats();
        assert_eq!(s.pf_late, 1);
        assert_eq!(s.d_late_covered, 1);
    }

    #[test]
    fn bus_serializes_fills() {
        let mut m = sys();
        let a = m.ram.alloc(1024, 64);
        let r1 = m.prefetch(a, 0).unwrap();
        let r2 = m.prefetch(a + 64, 0).unwrap();
        assert_eq!(r2 - r1, m.config().bus_occupancy);
    }

    #[test]
    fn redundant_prefetch_of_cached_line() {
        let mut m = sys();
        let a = m.ram.alloc(64, 64);
        let _ = m.read(a, 4, 0).unwrap();
        assert!(m.prefetch(a, 10).is_none());
        assert_eq!(m.stats().pf_redundant, 1);
    }

    #[test]
    fn prefetch_buffer_capacity_drops() {
        let mut m = sys();
        let a = m.ram.alloc(64 * 64, 64);
        let mut dropped = 0;
        for i in 0..10u32 {
            if m.prefetch(a + i * 64, 0).is_none() {
                dropped += 1;
            }
        }
        // 8-entry buffer: two of ten dropped.
        assert_eq!(dropped, 2);
        assert_eq!(m.stats().pf_dropped, 2);
    }

    #[test]
    fn write_allocates_and_store_is_visible() {
        let mut m = sys();
        let a = m.ram.alloc(64, 64);
        let w = m.write(a, 4, 777, 0).unwrap();
        assert!(!w.hit);
        assert_eq!(m.read(a, 4, 50).unwrap().value, 777);
    }

    #[test]
    fn ifetch_miss_then_hit() {
        let mut m = sys();
        assert!(m.ifetch(0x1000, 0) > 0);
        assert_eq!(m.ifetch(0x1000, 1), 0);
        assert_eq!(m.stats().i_misses, 1);
    }

    #[test]
    fn stall_cycles_accumulate() {
        let mut m = sys();
        let a = m.ram.alloc(4096, 64);
        let mut now = 0;
        for i in 0..4u32 {
            let acc = m.read(a + i * 64, 4, now).unwrap();
            now += acc.stall + 1;
        }
        assert_eq!(m.stats().d_misses, 4);
        assert!(m.stats().d_stall_cycles >= 4 * m.config().fill_latency);
    }
}
