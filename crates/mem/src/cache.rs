//! Generic set-associative cache model.

use std::fmt;

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Least recently used (the modelled ST200 data cache).
    #[default]
    Lru,
    /// First in, first out.
    Fifo,
    /// Pseudo-random (xorshift over an internal seed; deterministic).
    Random,
}

/// Size/shape parameters of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u32,
    /// Line size in bytes (a power of two).
    pub line_size: u32,
    /// Associativity (ways); 1 = direct mapped.
    pub ways: u32,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheGeometry {
    /// The paper's 32 KB 4-way set-associative data cache. The 32-byte line
    /// size follows the paper's Line Buffer B sizing (68 lines = 2176
    /// bytes).
    #[must_use]
    pub fn st200_dcache() -> Self {
        CacheGeometry {
            capacity: 32 * 1024,
            line_size: 32,
            ways: 4,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// The paper's 128 KB direct-mapped instruction cache.
    #[must_use]
    pub fn st200_icache() -> Self {
        CacheGeometry {
            capacity: 128 * 1024,
            line_size: 64,
            ways: 1,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> u32 {
        self.capacity / (self.line_size * self.ways)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// LRU stamp or FIFO insertion counter.
    stamp: u64,
}

/// Result of a cache lookup-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// A dirty line was evicted (its base address).
    pub writeback: Option<u32>,
}

/// A set-associative, write-back, write-allocate cache.
///
/// The model tracks tags only — data always lives in [`Ram`](crate::Ram)
/// (the simulator is functionally exact regardless of cache state; the cache
/// decides *timing*).
///
/// ```
/// use rvliw_mem::{Cache, CacheGeometry};
///
/// let mut dcache = Cache::new(CacheGeometry::st200_dcache());
/// assert!(!dcache.access(0x1000, false).hit); // cold miss
/// assert!(dcache.access(0x1004, false).hit);  // same 32-byte line
/// ```
#[derive(Clone)]
pub struct Cache {
    geom: CacheGeometry,
    sets: Vec<Way>,
    tick: u64,
    rng: u32,
    /// `log2(line_size)` — the line size is asserted to be a power of two.
    line_shift: u32,
    /// Set count, cached so the hot lookup path never re-derives it.
    num_sets: u32,
    /// `log2(num_sets)` when the set count is a power of two (the common
    /// case, letting index/tag extraction use shifts instead of division).
    sets_shift: Option<u32>,
    /// Direct-mapped fast path: the line index of a known-resident line
    /// (`u32::MAX` = none). With one way, a repeat read of this line is a
    /// guaranteed hit and skips the lookup entirely; any fill resets the
    /// memo. Only consulted when `ways == 1`, where LRU stamps cannot
    /// influence victim selection.
    last_line: u32,
    /// Bumped whenever the set of resident lines can shrink (any fill or
    /// flush). While this is unchanged, every line observed resident is
    /// still resident — the basis for [`Cache::contents_gen`] memos.
    gen: u64,
    /// Lookup/fill counters.
    pub hits: u64,
    /// Demand misses (fills).
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("geom", &self.geom)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl Cache {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or a non-power-of-two
    /// line size).
    #[must_use]
    pub fn new(geom: CacheGeometry) -> Self {
        assert!(geom.line_size.is_power_of_two(), "line size power of two");
        assert!(geom.num_sets() > 0, "cache must have at least one set");
        let num_sets = geom.num_sets();
        Cache {
            geom,
            sets: vec![Way::default(); (num_sets * geom.ways) as usize],
            tick: 0,
            rng: 0x2545_f491,
            line_shift: geom.line_size.trailing_zeros(),
            num_sets,
            sets_shift: num_sets
                .is_power_of_two()
                .then(|| num_sets.trailing_zeros()),
            last_line: u32::MAX,
            gen: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The geometry this cache was built with.
    #[must_use]
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// The base address of the line containing `addr`.
    #[must_use]
    pub fn line_of(&self, addr: u32) -> u32 {
        addr & !(self.geom.line_size - 1)
    }

    fn set_index(&self, addr: u32) -> u32 {
        let line = addr >> self.line_shift;
        match self.sets_shift {
            Some(s) => line & ((1 << s) - 1),
            None => line % self.num_sets,
        }
    }

    fn tag_of(&self, addr: u32) -> u32 {
        let line = addr >> self.line_shift;
        match self.sets_shift {
            Some(s) => line >> s,
            None => line / self.num_sets,
        }
    }

    fn set_ways(&mut self, set: u32) -> &mut [Way] {
        let w = self.geom.ways as usize;
        let base = set as usize * w;
        &mut self.sets[base..base + w]
    }

    /// Accounts a repeat access to the same line the previous access
    /// touched, without re-running the lookup.
    ///
    /// Valid only for a direct-mapped cache (`ways == 1`) and only when
    /// the caller knows the previous access was to the same line (then
    /// this access is a guaranteed hit, nothing can have evicted the line
    /// in between, and — with a single way — LRU stamps never influence
    /// victim selection). The bookkeeping is exactly what
    /// [`Cache::access`]'s resident-line fast path performs, so counters
    /// stay bit-identical to issuing the access.
    ///
    /// The block-compiled simulator backend uses this to batch per-bundle
    /// instruction fetches that stay within one cache line.
    pub fn note_repeat_hit(&mut self) {
        debug_assert_eq!(
            self.geom.ways, 1,
            "repeat-hit shortcut is direct-mapped only"
        );
        self.tick += 1;
        self.hits += 1;
    }

    /// [`Cache::note_repeat_hit`], `n` accesses at once. The same validity
    /// conditions apply to every one of them.
    pub fn note_repeat_hits(&mut self, n: u64) {
        debug_assert!(self.geom.ways == 1 || n == 0);
        self.tick += n;
        self.hits += n;
    }

    /// An opaque stamp of the resident-line set: unchanged means no line
    /// has been evicted or invalidated since the stamp was taken, so any
    /// line observed resident then is resident now (fills only add lines).
    /// Lets the block-compiled simulator backend skip re-looking-up lines
    /// it has already proven resident.
    #[must_use]
    pub fn contents_gen(&self) -> u64 {
        self.gen
    }

    /// Whether the line containing `addr` is present (no state change, no
    /// statistics).
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let w = self.geom.ways as usize;
        let base = set as usize * w;
        self.sets[base..base + w]
            .iter()
            .any(|way| way.valid && way.tag == tag)
    }

    /// Accesses `addr`, filling on miss; `write` marks the line dirty.
    #[inline(always)]
    pub fn access(&mut self, addr: u32, write: bool) -> FillOutcome {
        // Direct-mapped repeat read of a known-resident line: a guaranteed
        // hit. Skipping the stamp update is safe with a single way (the
        // victim choice never consults stamps), and the dirty bit only
        // changes on writes, which take the slow path.
        if !write && self.geom.ways == 1 && (addr >> self.line_shift) == self.last_line {
            self.tick += 1;
            self.hits += 1;
            return FillOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let policy = self.geom.policy;
        let ways = self.geom.ways;
        // Fast path: hit.
        if let Some(way) = self
            .set_ways(set)
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
        {
            if policy == ReplacementPolicy::Lru {
                way.stamp = tick;
            }
            way.dirty |= write;
            self.hits += 1;
            if ways == 1 {
                self.last_line = addr >> self.line_shift;
            }
            return FillOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        let writeback = self.fill(addr, write, tick);
        FillOutcome {
            hit: false,
            writeback,
        }
    }

    /// Installs the line containing `addr` without counting a demand access
    /// (used when a completed prefetch drains into the cache). Returns the
    /// evicted dirty line, if any. No-op when the line is already present.
    pub fn install(&mut self, addr: u32) -> Option<u32> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        if self.set_ways(set).iter().any(|w| w.valid && w.tag == tag) {
            return None;
        }
        self.fill(addr, false, tick)
    }

    fn fill(&mut self, addr: u32, write: bool, tick: u64) -> Option<u32> {
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);
        let line_size = self.geom.line_size;
        let num_sets = self.num_sets;
        let policy = self.geom.policy;
        // Victim selection. Advance the xorshift32 state up front so the
        // borrow of the set does not overlap the RNG update.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 17;
        self.rng ^= self.rng << 5;
        let rng = self.rng;
        let victim_idx = {
            let ways = self.set_ways(set);
            if let Some(i) = ways.iter().position(|w| !w.valid) {
                i
            } else {
                match policy {
                    ReplacementPolicy::Lru | ReplacementPolicy::Fifo => ways
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, w)| w.stamp)
                        .map(|(i, _)| i)
                        .unwrap_or(0),
                    ReplacementPolicy::Random => (rng as usize) % ways.len(),
                }
            }
        };
        let ways = self.set_ways(set);
        let victim = &mut ways[victim_idx];
        let mut writeback = None;
        if victim.valid && victim.dirty {
            let old_addr = (victim.tag * num_sets + set) * line_size;
            writeback = Some(old_addr);
        }
        *victim = Way {
            valid: true,
            dirty: write,
            tag,
            stamp: tick,
        };
        if writeback.is_some() {
            self.writebacks += 1;
        }
        self.gen += 1;
        // A fill may have evicted the memoized line; repoint the memo at
        // the line that is now certainly resident.
        self.last_line = if self.geom.ways == 1 {
            addr >> self.line_shift
        } else {
            u32::MAX
        };
        writeback
    }

    /// Invalidates everything (cold restart between experiments).
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            *w = Way::default();
        }
        self.tick = 0;
        self.last_line = u32::MAX;
        self.gen += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(ways: u32, policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheGeometry {
            capacity: 1024,
            line_size: 64,
            ways,
            policy,
        })
    }

    #[test]
    fn geometry_of_paper_caches() {
        let d = CacheGeometry::st200_dcache();
        assert_eq!(d.num_sets(), 256);
        let i = CacheGeometry::st200_icache();
        assert_eq!(i.num_sets(), 2048);
        assert_eq!(i.ways, 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, ReplacementPolicy::Lru);
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x104, false).hit); // same line
        assert!(!c.access(0x140, false).hit); // next line: cold miss
        assert_eq!((c.hits, c.misses), (1, 2));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1024 B, 64 B lines, 2-way ⇒ 8 sets. Lines 0, 8, 16 (in units of
        // lines) map to set 0.
        let mut c = small(2, ReplacementPolicy::Lru);
        let line = |i: u32| i * 64;
        c.access(line(0), false);
        c.access(line(8), false);
        c.access(line(0), false); // touch line 0 ⇒ line 8 is LRU
        c.access(line(16), false); // evicts line 8
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(8)));
        assert!(c.probe(line(16)));
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut c = small(2, ReplacementPolicy::Fifo);
        let line = |i: u32| i * 64;
        c.access(line(0), false);
        c.access(line(8), false);
        c.access(line(0), false); // touch does not refresh FIFO order
        c.access(line(16), false); // evicts line 0 (oldest insertion)
        assert!(!c.probe(line(0)));
        assert!(c.probe(line(8)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small(1, ReplacementPolicy::Lru); // direct mapped, 16 sets
        let conflict = 1024; // same set as address 0
        c.access(0, true); // dirty
        let out = c.access(conflict, false);
        assert!(!out.hit);
        assert_eq!(out.writeback, Some(0));
        assert_eq!(c.writebacks, 1);
    }

    #[test]
    fn install_is_idempotent_and_uncounted() {
        let mut c = small(2, ReplacementPolicy::Lru);
        assert!(c.install(0x200).is_none());
        assert!(c.install(0x200).is_none());
        assert!(c.probe(0x200));
        assert_eq!(c.hits + c.misses, 0);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = small(2, ReplacementPolicy::Lru);
        c.access(0x300, false);
        assert!(c.probe(0x300));
        c.flush();
        assert!(!c.probe(0x300));
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = small(2, ReplacementPolicy::Random);
            for i in 0..64u32 {
                c.access(i * 64, false);
            }
            (0..64u32).filter(|i| c.probe(i * 64)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn line_of_masks_offset() {
        let c = small(2, ReplacementPolicy::Lru);
        assert_eq!(c.line_of(0x12_345), 0x12_340 & !63);
    }
}
