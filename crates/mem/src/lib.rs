#![warn(missing_docs)]
//! # rvliw-mem
//!
//! Memory-hierarchy models for the rvliw simulator, matching the paper's
//! platform:
//!
//! * a flat byte-addressed [`Ram`] with a bump [`Ram::alloc`]ator for frame
//!   buffers (the paper aligns frames on 32-byte boundaries);
//! * generic set-associative write-back [`Cache`]s — instantiated as the
//!   **128 KB direct-mapped instruction cache** and the **32 KB 4-way data
//!   cache** of the modelled ST200;
//! * a [`PrefetchQueue`] modelling the 8-entry prefetch buffer (extended to
//!   64 entries for the loop-level RFU experiments);
//! * [`MemorySystem`], which combines them with a single-ported memory bus
//!   and produces the *stall cycles* the paper reports in Tables 4 and 5
//!   ("on data cache misses, the whole machine stalls as usual").
//!
//! ```
//! use rvliw_mem::{MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::default());
//! let buf = mem.ram.alloc(64, 32);
//! mem.ram.store32(buf, 0xdead_beef);
//! let acc = mem.read(buf, 4, 0).unwrap();
//! assert_eq!(acc.value, 0xdead_beef);
//! assert!(acc.stall > 0); // cold miss
//! let acc2 = mem.read(buf, 4, 100).unwrap();
//! assert_eq!(acc2.stall, 0); // warm hit
//! ```

pub mod cache;
pub mod config;
pub mod prefetch;
pub mod ram;
pub mod stats;
pub mod system;

pub use cache::{Cache, CacheGeometry, ReplacementPolicy};
pub use config::MemConfig;
pub use prefetch::PrefetchQueue;
pub use ram::Ram;
pub use stats::MemStats;
pub use system::{Access, MemError, MemorySystem};
