//! A minimal JSON reader/writer.
//!
//! The build environment is fully offline (no serde); the observability
//! layer needs just enough JSON to emit Chrome traces and metrics files and
//! to read back the committed `BENCH_tables.json` baseline for the
//! regression gate. Numbers keep their raw source text so integer cells
//! compare exactly, bit for bit.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (exact for u64 cells).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) — key order is not preserved,
    /// which is fine for lookup-style use.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses `text` into a [`Json`] value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other variants or a missing
    /// key).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exactly-parsed unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(raw) => write!(f, "{raw}"),
            Json::Str(s) => write!(f, "\"{}\"", escape_json(s)),
            Json::Arr(v) => {
                write!(f, "[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            Json::Obj(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape_json(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        raw.parse::<f64>()
            .map_err(|_| format!("bad number `{raw}` at byte {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3], "b": "x\"y", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn large_u64_cells_roundtrip_exactly() {
        let big = u64::MAX - 7;
        let v = Json::parse(&format!("{{\"cycles\": {big}}}")).unwrap();
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn display_roundtrips() {
        let src = r#"{"k":[1,"two",{"n":null}]}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn escape_handles_controls() {
        assert_eq!(escape_json("a\"b\\c\n\u{1}"), "a\\\"b\\\\c\\n\\u0001");
    }
}
