#![warn(missing_docs)]
//! # rvliw-trace
//!
//! Structured, cycle-accurate tracing for the rvliw simulator stack.
//!
//! The paper's whole argument rests on cycle-level accounting (cycles,
//! stalls, RFU pipeline occupancy, line-buffer hits). This crate defines
//! the event vocabulary and the [`Tracer`] trait that `rvliw-mem`,
//! `rvliw-rfu` and `rvliw-sim` emit into, plus the sinks:
//!
//! * [`NullTracer`] — disabled tracing. The simulator is generic over the
//!   tracer, so this monomorphizes to nothing: the hot issue loop compiles
//!   exactly as it did before tracing existed.
//! * [`CountingTracer`] — per-PC and per-stall-site histograms on top of
//!   the legacy end-of-run totals; its totals bit-match `SimStats`/
//!   `MemStats`/`RfuStats`.
//! * [`ChromeTracer`] — Chrome `trace_event` JSON for `chrome://tracing`
//!   or <https://ui.perfetto.dev> (one cycle = 1 µs).
//! * [`TeeTracer`] — fans one deterministic run out to two sinks (e.g. a
//!   Chrome trace plus counting metrics).
//!
//! The [`json`] module carries the minimal JSON reader/writer the exporters
//! and the `tables --check` regression gate share (the build environment is
//! offline; there is no serde).
//!
//! ```
//! use rvliw_trace::{CountingTracer, StallCause, Tracer};
//!
//! let mut t = CountingTracer::new();
//! t.bundle(0, 0, 4);
//! t.stall(1, 0, StallCause::DCache, 143);
//! assert_eq!(t.stall_cycles(StallCause::DCache), 143);
//! ```

pub mod chrome;
pub mod event;
pub mod json;
pub mod tracer;

pub use chrome::ChromeTracer;
pub use event::{FaultEvent, MemEvent, RfuEvent, StallCause};
pub use json::Json;
pub use tracer::{CountingTracer, NullTracer, PcCounters, TeeTracer, Tracer};
