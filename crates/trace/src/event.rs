//! The event vocabulary of the tracing layer.
//!
//! Events are deliberately small `Copy` types: the hot path constructs them
//! unconditionally, so they must cost nothing to build and nothing to drop
//! when the tracer is [`NullTracer`](crate::NullTracer).

/// Why the machine lost cycles. Each variant maps onto one of the stall
/// accounts the paper's tables are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Instruction-cache miss refill.
    Ifetch,
    /// Scoreboard interlock: an operand was not ready.
    Interlock,
    /// The RFU was busy with a kernel loop.
    RfuBusy,
    /// Taken-branch pipeline bubble.
    BranchBubble,
    /// Demand data-cache miss (or late prefetch) on a core load/store.
    DCache,
    /// Stalls inflicted by an RFU kernel-loop execution (its cache misses
    /// and line-buffer waits).
    RfuLoop,
    /// Reconfiguration penalty paid by `RFUINIT`.
    Reconfig,
}

impl StallCause {
    /// Every cause, in [`StallCause::index`] order.
    pub const ALL: [StallCause; 7] = [
        StallCause::Ifetch,
        StallCause::Interlock,
        StallCause::RfuBusy,
        StallCause::BranchBubble,
        StallCause::DCache,
        StallCause::RfuLoop,
        StallCause::Reconfig,
    ];

    /// Stable dense index (histogram key).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StallCause::Ifetch => 0,
            StallCause::Interlock => 1,
            StallCause::RfuBusy => 2,
            StallCause::BranchBubble => 3,
            StallCause::DCache => 4,
            StallCause::RfuLoop => 5,
            StallCause::Reconfig => 6,
        }
    }

    /// Short human-readable label (also the Chrome trace event name).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::Ifetch => "ifetch-stall",
            StallCause::Interlock => "interlock",
            StallCause::RfuBusy => "rfu-busy",
            StallCause::BranchBubble => "branch-bubble",
            StallCause::DCache => "dcache-stall",
            StallCause::RfuLoop => "rfu-loop-stall",
            StallCause::Reconfig => "reconfig",
        }
    }
}

/// Memory-hierarchy events, emitted by the memory system itself so that
/// every consumer (core loads, RFU loop fetches, prefetch engine) is
/// observed uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// Demand access hit the data cache outright.
    DHit {
        /// Accessed byte address.
        addr: u32,
    },
    /// Demand miss: the machine froze for `stall` cycles.
    DMiss {
        /// Accessed byte address.
        addr: u32,
        /// Whole-machine stall cycles paid.
        stall: u64,
    },
    /// Demand access found its line in flight from a prefetch and paid a
    /// partial stall.
    DLateCovered {
        /// Accessed byte address.
        addr: u32,
        /// Remaining fill cycles paid.
        stall: u64,
    },
    /// Instruction-cache miss.
    IMiss {
        /// Bundle byte address.
        addr: u32,
        /// Refill stall cycles.
        stall: u64,
    },
    /// A prefetch request was accepted by the bus.
    PrefetchIssued {
        /// Cache-line base address.
        line: u32,
        /// Cycle the line will be resident.
        ready_at: u64,
    },
    /// A prefetch request was dropped (buffer full).
    PrefetchDropped {
        /// Cache-line base address.
        line: u32,
    },
    /// A prefetch request was redundant (line resident or in flight).
    PrefetchRedundant {
        /// Cache-line base address.
        line: u32,
    },
    /// A dirty line was written back to memory.
    Writeback,
}

/// RFU pipeline events: configuration management, kernel-loop stage
/// advance, line-buffer activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfuEvent {
    /// `RFUINIT` activated a configuration.
    Init {
        /// Configuration id.
        cfg: u16,
        /// Reconfiguration penalty paid (0 under the paper's assumption).
        penalty: u64,
    },
    /// `RFUSEND` appended operands.
    Send {
        /// Configuration id.
        cfg: u16,
    },
    /// A short (single-cycle) custom instruction executed.
    ShortExec {
        /// Configuration id.
        cfg: u16,
    },
    /// One software-pipeline stage of a kernel loop advanced (one predictor
    /// row processed).
    LoopRow {
        /// Row index within the macroblock walk.
        row: u32,
        /// Stall cycles accumulated so far in this loop execution.
        stall_so_far: u64,
    },
    /// A kernel-loop instruction retired.
    LoopDone {
        /// Configuration id.
        cfg: u16,
        /// Static busy latency occupied by the loop.
        busy: u64,
        /// Machine-stall cycles the loop inflicted.
        stall: u64,
    },
    /// A macroblock-pattern prefetch instruction launched.
    MbPrefetch {
        /// Configuration id.
        cfg: u16,
        /// Target base address.
        addr: u32,
    },
    /// A Line Buffer A row gather completed (its `Done` flag set).
    LbaRowDone {
        /// Row index (0–15).
        row: u32,
        /// Cycle at which the row's data is available (`u64::MAX` when the
        /// underlying prefetch was dropped).
        ready_at: u64,
    },
    /// The kernel loop waited on a Line Buffer A row still being gathered.
    LbaWait {
        /// Row index waited on.
        row: u32,
        /// Wait cycles.
        wait: u64,
    },
    /// A loop read was served by Line Buffer B without stalling.
    LbbHit,
    /// A loop read found its Line Buffer B entry still in flight.
    LbbLate {
        /// Remaining fill cycles paid.
        wait: u64,
    },
    /// A loop read missed Line Buffer B and fell back to the data cache.
    LbbMiss,
}

/// Injected-fault events, emitted at the point a
/// [`FaultPlan`](../rvliw_fault/struct.FaultPlan.html) perturbation
/// actually fires so a perturbed run is distinguishable from a healthy
/// one in every tracer backend. A zero-fault run emits none of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Extra bus latency was added to a demand access.
    MemLatency {
        /// Accessed byte address.
        addr: u32,
        /// Extra stall cycles injected.
        extra: u64,
    },
    /// The caches and prefetch buffer were spuriously flushed.
    CacheFlush,
    /// A line-buffer row's completion was delayed.
    LbRowDelay {
        /// Row index within the gather.
        row: u32,
        /// Extra cycles before the row's `Done` flag arrives.
        extra: u64,
    },
    /// A line-buffer row will never complete (its `Done` flag is stuck).
    LbRowStuck {
        /// Row index within the gather.
        row: u32,
    },
    /// One bit of a freshly loaded pixel row was flipped.
    BitFlip {
        /// Row index within the gather.
        row: u32,
        /// Byte offset within the row.
        byte: u32,
        /// Xor mask applied (a single set bit).
        mask: u8,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_cause_indices_are_dense_and_distinct() {
        for (i, c) in StallCause::ALL.into_iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
        }
    }
}
