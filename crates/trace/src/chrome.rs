//! Chrome `trace_event` exporter: load the output in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see bundles, stalls, memory traffic and RFU
//! pipeline occupancy on a shared cycle timeline.
//!
//! One simulated cycle maps to one microsecond of trace time. Events land
//! on three tracks (Chrome "threads") of one process: `core`, `mem`, `rfu`.

use crate::event::{FaultEvent, MemEvent, RfuEvent, StallCause};
use crate::json::escape_json;
use crate::tracer::Tracer;

/// Track id of the core issue pipeline.
const TID_CORE: u32 = 1;
/// Track id of the memory hierarchy.
const TID_MEM: u32 = 2;
/// Track id of the RFU.
const TID_RFU: u32 = 3;
/// Track id of the fault-injection layer.
const TID_FAULT: u32 = 4;

/// A [`Tracer`] that records Chrome `trace_event` JSON.
///
/// Bundle issues and stalls become complete (`"ph": "X"`) slices on the
/// core track; cache misses and prefetches become instant events on the
/// memory track; kernel loops become slices on the RFU track whose duration
/// is the loop's busy latency.
#[derive(Debug, Clone)]
pub struct ChromeTracer {
    events: Vec<String>,
    /// Cap on recorded events, guarding against multi-gigabyte traces on
    /// long runs (the default is [`ChromeTracer::DEFAULT_MAX_EVENTS`]).
    max_events: usize,
    /// Events dropped after [`ChromeTracer::max_events`] was reached.
    pub dropped: u64,
    record_bundles: bool,
}

impl Default for ChromeTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTracer {
    /// Default event cap (~100 MB of JSON at worst).
    pub const DEFAULT_MAX_EVENTS: usize = 2_000_000;

    /// A tracer recording every event kind, including per-bundle slices.
    #[must_use]
    pub fn new() -> Self {
        ChromeTracer {
            events: Vec::new(),
            max_events: Self::DEFAULT_MAX_EVENTS,
            dropped: 0,
            record_bundles: true,
        }
    }

    /// A tracer that skips per-bundle slices (stalls, memory and RFU events
    /// only) — appropriate for multi-million-cycle runs.
    #[must_use]
    pub fn without_bundles() -> Self {
        ChromeTracer {
            record_bundles: false,
            ..Self::new()
        }
    }

    /// Overrides the event cap.
    #[must_use]
    pub fn with_max_events(mut self, max: usize) -> Self {
        self.max_events = max;
        self
    }

    /// Events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, ev: String) {
        if self.events.len() >= self.max_events {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    /// A complete ("X") slice.
    fn slice(&mut self, tid: u32, name: &str, ts: u64, dur: u64, args: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}{args}}}",
            escape_json(name)
        ));
    }

    /// An instant ("i") event.
    fn instant(&mut self, tid: u32, name: &str, ts: u64, args: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}{args}}}",
            escape_json(name)
        ));
    }

    /// Serializes the recorded trace as a Chrome `trace_event` JSON object
    /// (the `{"traceEvents": [...]}` envelope Perfetto and `chrome://tracing`
    /// both accept).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[\n");
        // Track-name metadata first.
        for (tid, name) in [
            (TID_CORE, "core"),
            (TID_MEM, "mem"),
            (TID_RFU, "rfu"),
            (TID_FAULT, "fault"),
        ] {
            s.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}},\n"
            ));
        }
        for (i, ev) in self.events.iter().enumerate() {
            s.push_str(ev);
            if i + 1 != self.events.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        s
    }
}

impl Tracer for ChromeTracer {
    fn bundle(&mut self, cycle: u64, pc: usize, ops: usize) {
        if self.record_bundles {
            self.slice(
                TID_CORE,
                "bundle",
                cycle,
                1,
                &format!(",\"args\":{{\"pc\":{pc},\"ops\":{ops}}}"),
            );
        }
    }

    fn stall(&mut self, cycle: u64, pc: usize, cause: StallCause, cycles: u64) {
        self.slice(
            TID_CORE,
            cause.label(),
            cycle,
            cycles.max(1),
            &format!(",\"args\":{{\"pc\":{pc}}}"),
        );
    }

    fn mem(&mut self, cycle: u64, event: MemEvent) {
        match event {
            MemEvent::DHit { .. } => {} // too frequent to be useful as events
            MemEvent::DMiss { addr, stall } => self.slice(
                TID_MEM,
                "d-miss",
                cycle,
                stall.max(1),
                &format!(",\"args\":{{\"addr\":{addr}}}"),
            ),
            MemEvent::DLateCovered { addr, stall } => self.slice(
                TID_MEM,
                "d-late-covered",
                cycle,
                stall.max(1),
                &format!(",\"args\":{{\"addr\":{addr}}}"),
            ),
            MemEvent::IMiss { addr, stall } => self.slice(
                TID_MEM,
                "i-miss",
                cycle,
                stall.max(1),
                &format!(",\"args\":{{\"addr\":{addr}}}"),
            ),
            MemEvent::PrefetchIssued { line, ready_at } => self.slice(
                TID_MEM,
                "prefetch",
                cycle,
                ready_at.saturating_sub(cycle).max(1),
                &format!(",\"args\":{{\"line\":{line}}}"),
            ),
            MemEvent::PrefetchDropped { line } => self.instant(
                TID_MEM,
                "prefetch-dropped",
                cycle,
                &format!(",\"args\":{{\"line\":{line}}}"),
            ),
            MemEvent::PrefetchRedundant { .. } => {}
            MemEvent::Writeback => self.instant(TID_MEM, "writeback", cycle, ""),
        }
    }

    fn rfu(&mut self, cycle: u64, event: RfuEvent) {
        match event {
            RfuEvent::Init { cfg, penalty } => self.instant(
                TID_RFU,
                "rfu-init",
                cycle,
                &format!(",\"args\":{{\"cfg\":{cfg},\"penalty\":{penalty}}}"),
            ),
            RfuEvent::Send { .. } | RfuEvent::LbbHit => {}
            RfuEvent::ShortExec { cfg } => self.slice(
                TID_RFU,
                "rfu-exec",
                cycle,
                1,
                &format!(",\"args\":{{\"cfg\":{cfg}}}"),
            ),
            RfuEvent::LoopRow { row, stall_so_far } => self.instant(
                TID_RFU,
                "loop-row",
                cycle,
                &format!(",\"args\":{{\"row\":{row},\"stall_so_far\":{stall_so_far}}}"),
            ),
            RfuEvent::LoopDone { cfg, busy, stall } => self.slice(
                TID_RFU,
                "kernel-loop",
                cycle,
                busy + stall,
                &format!(",\"args\":{{\"cfg\":{cfg},\"busy\":{busy},\"stall\":{stall}}}"),
            ),
            RfuEvent::MbPrefetch { cfg, addr } => self.instant(
                TID_RFU,
                "mb-prefetch",
                cycle,
                &format!(",\"args\":{{\"cfg\":{cfg},\"addr\":{addr}}}"),
            ),
            RfuEvent::LbaRowDone { row, ready_at } => {
                if ready_at != u64::MAX {
                    self.slice(
                        TID_RFU,
                        "lba-row-gather",
                        cycle,
                        ready_at.saturating_sub(cycle).max(1),
                        &format!(",\"args\":{{\"row\":{row}}}"),
                    );
                }
            }
            RfuEvent::LbaWait { row, wait } => self.slice(
                TID_RFU,
                "lba-wait",
                cycle,
                wait.max(1),
                &format!(",\"args\":{{\"row\":{row}}}"),
            ),
            RfuEvent::LbbLate { wait } => self.slice(TID_RFU, "lbb-late", cycle, wait.max(1), ""),
            RfuEvent::LbbMiss => self.instant(TID_RFU, "lbb-miss", cycle, ""),
        }
    }

    fn fault(&mut self, cycle: u64, event: FaultEvent) {
        match event {
            FaultEvent::MemLatency { addr, extra } => self.slice(
                TID_FAULT,
                "fault-mem-latency",
                cycle,
                extra.max(1),
                &format!(",\"args\":{{\"addr\":{addr},\"extra\":{extra}}}"),
            ),
            FaultEvent::CacheFlush => self.instant(TID_FAULT, "fault-cache-flush", cycle, ""),
            FaultEvent::LbRowDelay { row, extra } => self.slice(
                TID_FAULT,
                "fault-lb-row-delay",
                cycle,
                extra.max(1),
                &format!(",\"args\":{{\"row\":{row},\"extra\":{extra}}}"),
            ),
            FaultEvent::LbRowStuck { row } => self.instant(
                TID_FAULT,
                "fault-lb-row-stuck",
                cycle,
                &format!(",\"args\":{{\"row\":{row}}}"),
            ),
            FaultEvent::BitFlip { row, byte, mask } => self.instant(
                TID_FAULT,
                "fault-bit-flip",
                cycle,
                &format!(",\"args\":{{\"row\":{row},\"byte\":{byte},\"mask\":{mask}}}"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn trace_json_is_valid_and_carries_events() {
        let mut t = ChromeTracer::new();
        t.bundle(0, 0, 4);
        t.stall(1, 0, StallCause::DCache, 12);
        t.mem(
            1,
            MemEvent::DMiss {
                addr: 256,
                stall: 12,
            },
        );
        t.rfu(
            20,
            RfuEvent::LoopDone {
                cfg: 32,
                busy: 104,
                stall: 0,
            },
        );
        let json = t.to_json();
        let parsed = Json::parse(&json).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 4 metadata + 4 recorded.
        assert_eq!(events.len(), 8);
        assert!(json.contains("\"dcache-stall\""));
        assert!(json.contains("\"kernel-loop\""));
    }

    #[test]
    fn fault_events_land_on_their_own_track() {
        let mut t = ChromeTracer::new();
        t.fault(10, FaultEvent::MemLatency { addr: 64, extra: 7 });
        t.fault(20, FaultEvent::CacheFlush);
        t.fault(
            30,
            FaultEvent::BitFlip {
                row: 3,
                byte: 5,
                mask: 0x10,
            },
        );
        let json = t.to_json();
        assert!(Json::parse(&json).is_ok());
        assert!(json.contains("\"fault-mem-latency\""));
        assert!(json.contains("\"fault-cache-flush\""));
        assert!(json.contains("\"fault-bit-flip\""));
        assert!(json.contains("\"args\":{\"name\":\"fault\"}"));
    }

    #[test]
    fn event_cap_drops_rather_than_grows() {
        let mut t = ChromeTracer::new().with_max_events(2);
        for i in 0..5 {
            t.bundle(i, 0, 1);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 3);
        assert!(Json::parse(&t.to_json()).is_ok());
    }

    #[test]
    fn without_bundles_skips_issue_slices() {
        let mut t = ChromeTracer::without_bundles();
        t.bundle(0, 0, 4);
        assert!(t.is_empty());
        t.stall(0, 0, StallCause::Interlock, 2);
        assert_eq!(t.len(), 1);
    }
}
